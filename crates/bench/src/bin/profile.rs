//! Stack-attributed garbage attribution: for every subject workload, run
//! Go and GoFree traced, fold the event stream into a per-call-stack
//! allocation profile (reconciled field-exactly against the run's
//! [`gofree::Report::metrics`]), and print the top-10 garbage-producing
//! stacks under each setting — showing *where* GoFree's compiler-
//! inserted frees remove garbage at its source, not just how much.
//!
//! "Garbage" is every byte a stack handed to the collector: gc-swept
//! bytes plus bytes still live at finalization. Under GoFree the same
//! stacks should show those bytes migrating to the `tcfreed` column.

use gofree::{Profile, RunConfig, Setting, StackStat};
use gofree_bench::{pct, HarnessOptions};

/// Rows shown per setting, the paper-table convention.
const TOP: usize = 10;

fn main() {
    let opts = HarnessOptions::from_args();
    let cfg = RunConfig {
        trace: true,
        ..opts.run_config()
    };
    println!("Garbage attribution by call stack (top {TOP} stacks, Go vs GoFree)\n");
    let mut last_gofree = None;
    for w in gofree_workloads::all(opts.scale()) {
        println!("== {} ==", w.name);
        let mut garbage = [0u64; 2];
        let mut scope_profile = None;
        for (i, setting) in [Setting::Go, Setting::GoFree].into_iter().enumerate() {
            let compiled =
                gofree::compile(&w.source, &setting.compile_options()).expect("compiles");
            let report = gofree::execute(&compiled, setting, &cfg).expect("runs");
            let trace = report.trace.as_ref().expect("traced run carries a trace");
            let profile = Profile::build(trace);
            profile
                .reconcile(&report.metrics)
                .unwrap_or_else(|e| panic!("{}/{setting}: {e}", w.name));
            let t = profile.totals();
            garbage[i] = t.garbage_bytes();
            println!(
                "{setting}: allocated {} B, tcfreed {} B ({}), garbage {} B \
                 (swept {} B + leftover {} B), {} GCs",
                t.alloc_bytes,
                t.free_bytes,
                pct(t.free_bytes as f64 / t.alloc_bytes.max(1) as f64),
                t.garbage_bytes(),
                t.swept_bytes,
                t.leftover_bytes,
                trace.gc_count(),
            );
            let ranked = profile.ranked_by(|s: &StackStat| s.garbage_bytes());
            let shown: Vec<_> = ranked
                .iter()
                .filter(|(_, s)| s.garbage_bytes() > 0)
                .take(TOP)
                .collect();
            if shown.is_empty() {
                println!("  (no garbage: every allocation was stack-placed or tcfreed)");
            } else {
                println!(
                    "  {:>12} {:>12} {:>12} {:>6}  stack",
                    "garbage B", "swept B", "leftover B", "freed%"
                );
                for (id, s) in shown {
                    println!(
                        "  {:>12} {:>12} {:>12} {:>5}%  {}",
                        s.garbage_bytes(),
                        s.swept_bytes,
                        s.leftover_bytes,
                        (s.free_bytes * 100).checked_div(s.alloc_bytes).unwrap_or(0),
                        trace.stacks.folded(*id),
                    );
                }
            }
            if setting == Setting::GoFree {
                scope_profile = Some(profile);
                last_gofree = Some((report, compiled.phase_times.clone()));
            }
        }
        let scope_profile = scope_profile.expect("GoFree setting profiled");
        let removed = garbage[0].saturating_sub(garbage[1]);
        println!(
            "GoFree removed {removed} B of garbage ({} of Go's)",
            pct(removed as f64 / garbage[0].max(1) as f64)
        );
        // The remaining alloc→tcfree gap is placement drag; compile once
        // more under lastuse to show how much of it liveness-driven
        // placement recovers (the `liveness` binary studies this fully).
        let lastuse_opts = gofree::CompileOptions {
            free_placement: gofree::FreePlacement::LastUse,
            ..Setting::GoFree.compile_options()
        };
        let lu = gofree::compile(&w.source, &lastuse_opts).expect("compiles");
        let lu_report = gofree::execute(&lu, Setting::GoFree, &cfg).expect("runs");
        let lu_trace = lu_report.trace.as_ref().expect("traced");
        let lu_profile = Profile::build(lu_trace);
        lu_profile
            .reconcile(&lu_report.metrics)
            .unwrap_or_else(|e| panic!("{}/lastuse: {e}", w.name));
        let drag = |p: &Profile| {
            let (ticks, count) = p.sites.iter().fold((0u64, 0u64), |(t, c), d| {
                (t + d.tcfree.sum(), c + d.tcfree.count())
            });
            ticks as f64 / count.max(1) as f64
        };
        let (sc, lu_drag) = (drag(&scope_profile), drag(&lu_profile));
        let stats = lu.placement.expect("lastuse compile carries stats");
        println!(
            "lastuse placement: mean tcfree drag {sc:.1} -> {lu_drag:.1} ticks ({}), \
             advanced {} free(s), {} partial free(s)\n",
            pct((lu_drag + 1.0) / (sc + 1.0)),
            stats.lastuse_advanced,
            stats.partial_frees,
        );
    }
    println!("Every profile above reconciled field-exactly with the run's Metrics.");
    if let Some((report, phases)) = &last_gofree {
        opts.emit_observability(report, phases);
    }
}
