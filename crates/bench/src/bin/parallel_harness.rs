//! Wall-clock comparison of the parallel run-distribution harness.
//!
//! Times the full three-setting run matrix of every table7 workload at
//! 1/2/4/8 worker threads, checks each parallel sweep is bit-identical
//! to the sequential baseline, and prints per-workload and geomean
//! speedups. Reported experiment numbers never depend on `--jobs`
//! (tests/parallel.rs); only host wall-clock does, bounded by the
//! host's core count (recorded in the header).
//!
//! `results/parallel_harness.txt` is a saved run of this binary.

use std::time::{Duration, Instant};

use gofree::{compile, run_matrix, Compiled, RunConfig, Setting};
use gofree_bench::HarnessOptions;

const JOB_LEVELS: [usize; 4] = [1, 2, 4, 8];

/// One full (setting × run-index) sweep of a workload, returning the
/// wall-clock time and a fingerprint of every report for the
/// bit-identity check.
fn sweep(
    cells: &[(&Compiled, Setting)],
    base: &RunConfig,
    runs: u64,
    jobs: usize,
) -> (Duration, String) {
    let cfg = RunConfig {
        jobs,
        ..base.clone()
    };
    let start = Instant::now();
    let reports = run_matrix(cells, &cfg, runs).expect("workload runs");
    let elapsed = start.elapsed();
    (elapsed, format!("{reports:?}"))
}

fn main() {
    let opts = HarnessOptions::from_args();
    let base = opts.run_config();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Parallel harness wall-clock ({} runs x 3 settings per workload, host cores: {cores})\n",
        opts.runs
    );
    println!(
        "{:<10} {:>10} {:>8} {:>8} {:>8}",
        "workload", "jobs=1", "jobs=2", "jobs=4", "jobs=8"
    );

    // geomean accumulator: per job level, the ln-sum of speedups vs jobs=1.
    let mut lnsum = [0.0f64; JOB_LEVELS.len()];
    let mut count = 0u32;
    for w in gofree_workloads::all(opts.scale()) {
        let compiled: Vec<(Compiled, Setting)> = Setting::all()
            .into_iter()
            .map(|s| {
                let c = compile(&w.source, &s.compile_options()).expect("workload compiles");
                (c, s)
            })
            .collect();
        let cells: Vec<(&Compiled, Setting)> = compiled.iter().map(|(c, s)| (c, *s)).collect();
        // Warm-up, and the sequential baseline everything is compared to.
        let (_, baseline_fp) = sweep(&cells, &base, opts.runs, 1);
        let mut times: Vec<f64> = Vec::new();
        for (i, &jobs) in JOB_LEVELS.iter().enumerate() {
            let (t, fp) = sweep(&cells, &base, opts.runs, jobs);
            assert_eq!(
                fp, baseline_fp,
                "reports at jobs={jobs} diverge from sequential for {}",
                w.name
            );
            if i > 0 {
                lnsum[i] += (times[0] / t.as_secs_f64().max(1e-9)).ln();
            }
            times.push(t.as_secs_f64());
        }
        count += 1;
        println!(
            "{:<10} {:>8.2}ms {:>7.2}x {:>7.2}x {:>7.2}x",
            w.name,
            times[0] * 1e3,
            times[0] / times[1].max(1e-9),
            times[0] / times[2].max(1e-9),
            times[0] / times[3].max(1e-9),
        );
    }

    let geomean = |i: usize| (lnsum[i] / count as f64).exp();
    println!(
        "\n{:<10} {:>10} {:>7.2}x {:>7.2}x {:>7.2}x",
        "geomean",
        "",
        geomean(1),
        geomean(2),
        geomean(3)
    );
    println!("\nAll parallel sweeps verified bit-identical to the sequential baseline.");
    if cores < 4 {
        println!(
            "Note: host exposes {cores} core(s); speedups are bounded by available parallelism."
        );
    }
    // The sweeps only keep fingerprints, so observability artifacts come
    // from a designated workload run.
    opts.observe_workload("json");
}
