//! Liveness-driven free placement study (`results/liveness.txt`): for
//! every subject workload, compile GoFree twice — `--free-placement
//! scope` (§4.5 scope exit) and `--free-placement lastuse` (last-use
//! advancement + partial frees) — run both traced, and compare per-site
//! lifetime drag (virtual ticks between allocation and `tcfree`). The
//! outputs must match bit-exactly; only *when* frees run may differ, so
//! any drag reduction is pure placement win. Ends with directed
//! partial-free demonstrations: struct locals the §6.5 target
//! restriction abandons whole, reclaimed field-by-field.
//!
//! Every lastuse compile audits under `warn`, so the printed proof rate
//! covers the advanced and partial sites; a `suppressed` count > 0 would
//! mean the independent auditor refused a planned placement.

use std::collections::HashMap;

use gofree::{AuditMode, CompileOptions, FreePlacement, Profile, RunConfig, Setting};
use gofree_bench::{pct, HarnessOptions};

fn compile_placed(src: &str, placement: FreePlacement) -> gofree::Compiled {
    let opts = CompileOptions {
        audit: AuditMode::Warn,
        free_placement: placement,
        ..Setting::GoFree.compile_options()
    };
    gofree::compile(src, &opts).expect("workload compiles")
}

/// Per-site mean alloc→tcfree drag, keyed by trace site id.
fn site_drags(profile: &Profile) -> HashMap<u32, f64> {
    profile
        .sites
        .iter()
        .filter_map(|d| {
            let site = d.site?;
            (d.tcfree.count() > 0).then(|| (site, d.tcfree.sum() as f64 / d.tcfree.count() as f64))
        })
        .collect()
}

/// Bytes reclaimed by explicit `tcfree` entry points (everything but
/// the runtime's own map-growth frees).
fn tcfreed_bytes(m: &minigo_runtime::Metrics) -> u64 {
    [
        gofree::FreeSource::SliceLifetime,
        gofree::FreeSource::MapLifetime,
        gofree::FreeSource::Object,
    ]
    .into_iter()
    .map(|s| m.freed_bytes_by_source[s.index()])
    .sum()
}

fn run_traced(compiled: &gofree::Compiled, cfg: &RunConfig) -> (gofree::Report, Profile) {
    let report = gofree::execute(compiled, Setting::GoFree, cfg).expect("workload runs");
    let trace = report.trace.as_ref().expect("traced run carries a trace");
    let profile = Profile::build(trace);
    profile
        .reconcile(&report.metrics)
        .expect("profile reconciles with metrics");
    (report, profile)
}

/// Directed drag-shaped subjects: each builds slice/map temporaries in
/// an early stage, finishes with them, and then runs a long
/// temporary-free tail — the shape where scope-exit placement leaves
/// the whole tail as lifetime drag. Stage sizes follow the harness
/// scale like the corpus analogues do.
fn drag_subjects(scale: gofree_workloads::Scale) -> Vec<(&'static str, String)> {
    let reps = match scale {
        gofree_workloads::Scale::Test => 40,
        gofree_workloads::Scale::Full => 600,
    };
    let stage = format!(
        "func step(n int) int {{\n\
         \tbuf := make([]int, n)\n\
         \tfor i := 0; i < n; i += 1 {{ buf[i] = i * 3 % 251 }}\n\
         \tacc := buf[0] + buf[n-1] + buf[n/2]\n\
         \ttail := 0\n\
         \tfor i := 0; i < n*4; i += 1 {{ tail += i % 7 }}\n\
         \treturn acc + tail\n}}\n\
         func main() {{ total := 0\n\
         \tfor r := 0; r < {reps}; r += 1 {{ total += step(192 + r%64) }}\n\
         \tprint(total) }}\n"
    );
    let staggered = format!(
        "func wave(n int) int {{\n\
         \ta := make([]int, n)\n\
         \ta[0] = n\n\
         \tb := make(map[int]int)\n\
         \tb[1] = a[0] * 2\n\
         \tc := make([]int, n/2)\n\
         \tc[0] = b[1] + 1\n\
         \tacc := c[0]\n\
         \ttail := 0\n\
         \tfor i := 0; i < n*3; i += 1 {{ tail += i % 5 }}\n\
         \treturn acc + tail\n}}\n\
         func main() {{ total := 0\n\
         \tfor r := 0; r < {reps}; r += 1 {{ total += wave(128 + r%32) }}\n\
         \tprint(total) }}\n"
    );
    let deadarg = format!(
        "func digest(s []int, salt int) int {{ return salt * 17 % 1009 }}\n\
         func round(n int) int {{\n\
         \tkey := make([]int, n)\n\
         \tkey[0] = n % 13\n\
         \th := key[0] + 1\n\
         \tacc := digest(key, h)\n\
         \ttail := 0\n\
         \tfor i := 0; i < n*4; i += 1 {{ tail += i % 3 }}\n\
         \treturn acc + tail\n}}\n\
         func main() {{ total := 0\n\
         \tfor r := 0; r < {reps}; r += 1 {{ total += round(160 + r%48) }}\n\
         \tprint(total) }}\n"
    );
    vec![
        ("stage-tail", stage),
        ("staggered", staggered),
        ("dead-arg", deadarg),
    ]
}

fn main() {
    let opts = HarnessOptions::from_args();
    let cfg = RunConfig {
        trace: true,
        ..opts.run_config()
    };
    println!("Liveness-driven free placement: scope vs lastuse drag (virtual ticks)\n");
    println!(
        "{:<10} {:>5} {:>7} {:>6} {:>7} {:>12} {:>12} {:>7} {:>9}",
        "workload",
        "adv",
        "partial",
        "suppr",
        "proof",
        "scope-drag",
        "lastuse-drag",
        "ratio",
        "regressed"
    );
    let mut log_ratios: Vec<f64> = Vec::new();
    let mut total_regressed = 0usize;
    let mut last_gofree = None;
    // The six corpus analogues, plus directed drag-shaped subjects whose
    // temporaries die well before scope exit — the placement the §4.5
    // instrumentation cannot express and the PR 5 profiler measured as
    // lifetime drag. (The corpus analogues consume most temporaries
    // right up to scope end, so their ratio is expected to sit near
    // 100%; the headroom lives in stage-structured code like these.)
    let mut subjects: Vec<(String, String)> = gofree_workloads::all(opts.scale())
        .into_iter()
        .map(|w| (w.name.to_string(), w.source))
        .collect();
    for (name, src) in drag_subjects(opts.scale()) {
        subjects.push((name.to_string(), src));
    }
    for (wname, wsource) in &subjects {
        let scope = compile_placed(wsource, FreePlacement::Scope);
        let lastuse = compile_placed(wsource, FreePlacement::LastUse);
        let (sr, sp) = run_traced(&scope, &cfg);
        let (lr, lp) = run_traced(&lastuse, &cfg);
        assert_eq!(sr.output, lr.output, "{wname}: placement changed output");
        let p = lastuse.placement.expect("lastuse compile carries stats");
        let audit = lastuse.audit.as_ref().expect("audit ran");
        let sd = site_drags(&sp);
        let ld = site_drags(&lp);
        // Per-site drag ratios over sites tcfreed under both placements.
        // +1 smoothing keeps already-zero-drag sites out of the geomean's
        // way without dropping them.
        let mut regressed = 0usize;
        let (mut s_sum, mut l_sum, mut n) = (0.0f64, 0.0f64, 0u32);
        for (site, s_mean) in &sd {
            let Some(l_mean) = ld.get(site) else { continue };
            log_ratios.push(((l_mean + 1.0) / (s_mean + 1.0)).ln());
            s_sum += s_mean;
            l_sum += l_mean;
            n += 1;
            if l_mean > s_mean {
                regressed += 1;
            }
        }
        total_regressed += regressed;
        let (s_mean, l_mean) = if n > 0 {
            (s_sum / n as f64, l_sum / n as f64)
        } else {
            (0.0, 0.0)
        };
        println!(
            "{:<10} {:>5} {:>7} {:>6} {:>7} {:>12.1} {:>12.1} {:>7} {:>9}",
            wname,
            p.lastuse_advanced,
            p.partial_frees,
            p.suppressed,
            pct(audit.proof_rate()),
            s_mean,
            l_mean,
            pct((l_mean + 1.0) / (s_mean + 1.0)),
            regressed,
        );
        assert_eq!(p.suppressed, 0, "{wname}: auditor refused a placement");
        last_gofree = Some((lr, lastuse.phase_times.clone()));
    }
    let geomean = if log_ratios.is_empty() {
        1.0
    } else {
        (log_ratios.iter().sum::<f64>() / log_ratios.len() as f64).exp()
    };
    println!(
        "\ngeomean per-site tcfree drag, lastuse/scope (+1-smoothed, {} sites): {}",
        log_ratios.len(),
        pct(geomean)
    );
    println!("sites where lastuse increased drag: {total_regressed}");
    println!("outputs matched bit-exactly between placements on every workload.\n");

    // Directed partial-free demonstrations: the §6.5 restriction frees
    // only slice/map locals whole, so a struct local holding them is
    // abandoned to the GC. Under lastuse its fields are reclaimed
    // individually the moment each falls dead.
    let demos: &[(&str, &str)] = &[
        (
            "ptr-struct",
            "type Sess struct { buf []int\n idx map[int]int }\n\
             func handle(n int) int {\n\
             \tx := &Sess{make([]int, n), make(map[int]int)}\n\
             \tfor i := 0; i < n; i += 1 { x.buf[i] = i }\n\
             \tt := x.buf[0] + x.buf[n-1]\n\
             \tx.idx[1] = t\n\
             \tu := x.idx[1]\n\
             \ts := 0\n\
             \tfor i := 0; i < 400; i += 1 { s += i }\n\
             \treturn t + u + s\n}\n\
             func main() { total := 0\n\
             \tfor r := 0; r < 50; r += 1 { total += handle(256) }\n\
             \tprint(total) }\n",
        ),
        (
            "value-struct",
            "type Pair struct { a []int\n b []int }\n\
             func sum(n int) int {\n\
             \tx := Pair{make([]int, n), make([]int, n)}\n\
             \tx.a[0] = n\n\
             \tx.b[0] = n * 2\n\
             \tt := x.a[0] + x.b[0]\n\
             \ts := 0\n\
             \tfor i := 0; i < 400; i += 1 { s += i }\n\
             \treturn t + s\n}\n\
             func main() { total := 0\n\
             \tfor r := 0; r < 50; r += 1 { total += sum(256) }\n\
             \tprint(total) }\n",
        ),
    ];
    println!("-- partial-free demonstrations --");
    for (name, src) in demos {
        let scope = compile_placed(src, FreePlacement::Scope);
        let lastuse = compile_placed(src, FreePlacement::LastUse);
        let p = lastuse.placement.expect("stats");
        let san = RunConfig {
            sanitize: true,
            ..cfg.clone()
        };
        let (sr, _) = run_traced(&scope, &san);
        let (lr, _) = run_traced(&lastuse, &san);
        assert_eq!(sr.output, lr.output, "{name}: placement changed output");
        assert!(lr.violations.is_empty(), "{name}: sanitizer violations");
        let partial_lines: Vec<String> = lastuse
            .instrumented_source()
            .lines()
            .filter(|l| l.contains("tcfree("))
            .map(|l| l.trim().to_string())
            .collect();
        println!(
            "{name}: partial={} advanced={} suppressed={} | tcfreed {} B (scope: {} B) | {}",
            p.partial_frees,
            p.lastuse_advanced,
            p.suppressed,
            tcfreed_bytes(&lr.metrics),
            tcfreed_bytes(&sr.metrics),
            partial_lines.join("; "),
        );
        assert!(p.partial_frees > 0, "{name}: no partial frees planned");
        assert_eq!(p.suppressed, 0, "{name}: auditor refused a partial free");
    }
    println!("\nEvery placement above was proved by the free-safety auditor;");
    println!("sanitized demo runs reported zero shadow-heap violations.");
    if let Some((report, phases)) = &last_gofree {
        opts.emit_observability(report, phases);
    }
}
