//! Regenerates the §6.8 robustness experiment: run every workload with
//! the mock `tcfree` that corrupts memory (zeroing or bit-flipping)
//! instead of deallocating. If GoFree ever frees a live object, a later
//! read observes the corruption and the run fails — so all runs passing
//! means the inserted frees are sound.

use gofree::{compile, execute, PoisonMode, RunConfig, Setting};
use gofree_bench::HarnessOptions;

fn main() {
    let opts = HarnessOptions::from_args();
    println!("Robustness (§6.8): mock tcfree corrupts instead of freeing\n");
    let mut checked = 0;
    let mut failed = 0;
    let mut observed = None;
    for w in gofree_workloads::all(opts.scale()) {
        let compiled = compile(&w.source, &Setting::GoFree.compile_options()).expect("compiles");
        let clean = execute(&compiled, Setting::GoFree, &opts.run_config()).expect("clean run");
        for (label, poison) in [("zero", PoisonMode::Zero), ("flip", PoisonMode::Flip)] {
            let cfg = RunConfig {
                poison,
                ..opts.run_config()
            };
            checked += 1;
            match execute(&compiled, Setting::GoFree, &cfg) {
                Ok(r) if r.output == clean.output => {
                    println!("{:<10} {:<5} OK (output identical)", w.name, label);
                }
                Ok(_) => {
                    failed += 1;
                    println!("{:<10} {:<5} FAIL: output diverged", w.name, label);
                }
                Err(e) => {
                    failed += 1;
                    println!("{:<10} {:<5} FAIL: {e}", w.name, label);
                }
            }
        }
        observed = Some(clean);
    }
    println!(
        "\n{} poisoned runs, {} failures — {}",
        checked,
        failed,
        if failed == 0 {
            "the GoFree algorithm never freed live memory (paper: all tests pass)"
        } else {
            "UNSOUND FREES DETECTED"
        }
    );
    if failed > 0 {
        std::process::exit(1);
    }
    if let Some(r) = &observed {
        opts.emit_observability(r, &[]);
    }
}
