//! The §5 "Possibility of Batching" measurement: adjacent tcfrees share
//! one call overhead. The paper predicts limited gains ("few objects are
//! freed in a single scope") — this binary quantifies it.

use gofree::{compile, CompileOptions};
use gofree_bench::HarnessOptions;
use minigo_runtime::RuntimeConfig;
use minigo_vm::VmConfig;

fn run_with_batching(src: &str, batch: bool, cfg: &gofree::RunConfig) -> minigo_vm::RunOutcome {
    let compiled = compile(src, &CompileOptions::default()).expect("compiles");
    let vm_cfg = VmConfig {
        runtime: RuntimeConfig {
            gc_enabled: true,
            min_heap: cfg.min_heap,
            seed: cfg.seed,
            migrate_prob: cfg.migrate_prob,
            jitter: 0.0,
            ..RuntimeConfig::default()
        },
        batch_frees: batch,
        ..VmConfig::default()
    };
    minigo_vm::run(
        &compiled.program,
        &compiled.resolution,
        &compiled.types,
        &compiled.analysis,
        vm_cfg,
    )
    .expect("runs")
}

/// A scope that frees several objects at once — the best case for
/// batching.
fn multi_free_source(n: u64) -> String {
    format!(
        r#"
func burst(n int) int {{
    a := make([]int, n)
    b := make([]int, n)
    c := make([]int, n)
    m := make(map[int]int)
    a[0] = 1
    b[0] = 2
    c[0] = 3
    m[0] = 4
    x := a[0] + b[0] + c[0] + m[0]
    return x
}}

func main() {{
    total := 0
    for i := 0; i < {n}; i += 1 {{
        total += burst(64 + i%32)
    }}
    print(total)
}}
"#
    )
}

fn main() {
    let opts = HarnessOptions::from_args();
    let n = if opts.quick { 100 } else { 2000 };
    let base = opts.run_config();
    println!(
        "tcfree batching (§5): {} burst scopes, 4 frees per scope\n",
        n
    );
    println!(
        "{:<22} {:>12} {:>10} {:>10}",
        "workload", "time", "frees", "delta"
    );
    let mut rows = Vec::new();
    let srcs = [("burst (best case)", multi_free_source(n))];
    for (label, src) in &srcs {
        let plain = run_with_batching(src, false, &base);
        let batched = run_with_batching(src, true, &base);
        assert_eq!(plain.output, batched.output);
        let delta = 1.0 - batched.time as f64 / plain.time as f64;
        println!(
            "{:<22} {:>12} {:>10} {:>9.2}%",
            label,
            plain.time,
            plain.metrics.tcfree_attempts,
            delta * 100.0
        );
        rows.push(delta);
    }
    for w in gofree_workloads::all(opts.scale()) {
        let plain = run_with_batching(&w.source, false, &base);
        let batched = run_with_batching(&w.source, true, &base);
        assert_eq!(plain.output, batched.output);
        let delta = 1.0 - batched.time as f64 / plain.time as f64;
        println!(
            "{:<22} {:>12} {:>10} {:>9.2}%",
            w.name,
            plain.time,
            plain.metrics.tcfree_attempts,
            delta * 100.0
        );
        rows.push(delta);
    }
    println!(
        "\nAs the paper predicts, batching saves little (<1%) on realistic\nworkloads — most of tcfree's cost is the per-object safety checks,\nwhich batching cannot avoid."
    );
    assert!(
        rows.iter().all(|&d| d < 0.05),
        "batching gains must be limited: {rows:?}"
    );
    // Batching is a VM-level toggle with no pipeline Report, so the
    // observability artifacts come from a designated workload run.
    opts.observe_workload("json");
}
