//! Regenerates the §6.7 compilation-speed experiment: compiling a large
//! generated package repeatedly with the plain-Go analysis and with
//! GoFree's analysis, then testing whether the difference is significant
//! (the paper reports p = 0.496 — no observable slowdown).
//!
//! Also measures the two baselines' scaling (Fast O(N) and the connection
//! graph O(N³)) against program size, backing §2.1.2's complexity table.

use std::time::Instant;

use gofree::{compile, welch_t_test, CompileOptions};
use gofree_bench::HarnessOptions;
use gofree_workloads::corpus;
use minigo_escape::baseline::{conn, fast};
use minigo_escape::{build_func_graph, solve, BuildOptions, SolveConfig};
use minigo_syntax::frontend;

/// Interleaves the two compilers' runs so thermal/frequency drift hits
/// both samples equally.
fn time_interleaved(
    src: &str,
    a: &CompileOptions,
    b: &CompileOptions,
    reps: u64,
) -> (Vec<f64>, Vec<f64>) {
    let mut ta = Vec::new();
    let mut tb = Vec::new();
    let one = |opts: &CompileOptions, out: &mut Vec<f64>| {
        let t0 = Instant::now();
        let c = compile(src, opts).expect("corpus compiles");
        std::hint::black_box(c.analysis.stats.locations);
        out.push(t0.elapsed().as_secs_f64() * 1e6);
    };
    // Warm up both paths before measuring.
    one(a, &mut Vec::new());
    one(b, &mut Vec::new());
    ta.clear();
    tb.clear();
    for _ in 0..reps {
        one(a, &mut ta);
        one(b, &mut tb);
    }
    (ta, tb)
}

fn main() {
    let opts = HarnessOptions::from_args();
    let reps = opts.runs;
    let nfuncs = if opts.quick { 60 } else { 320 };
    let src = corpus::generate(nfuncs);
    println!(
        "Compilation speed (§6.7): corpus of {nfuncs} functions, {reps} compiles per compiler\n"
    );

    let (go_times, gofree_times) = time_interleaved(
        &src,
        &CompileOptions::go(),
        &CompileOptions::default(),
        reps,
    );
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let w = welch_t_test(&gofree_times, &go_times);
    let overhead = (mean(&gofree_times) / mean(&go_times) - 1.0) * 100.0;
    println!(
        "Go      mean {:>9.1} us  (stack-allocation analysis only)",
        mean(&go_times)
    );
    println!(
        "GoFree  mean {:>9.1} us  (+completeness, lifetime, content tags, instrumentation)",
        mean(&gofree_times)
    );
    println!(
        "analysis-pass overhead {overhead:+.1}%   Welch p = {:.3}",
        w.p
    );
    println!(
        "\nContext: this times ONLY the front end + escape analysis. In the real\nGo compiler the escape pass is a few percent of total compile time, so a\n~10-15% slowdown of the pass itself is invisible end-to-end — which is\nhow the paper can report p = 0.496 on whole compilations (§6.7). The\nimportant check is that GoFree stays within a small constant of Go's\nO(N^2) pass rather than growing asymptotically:"
    );

    println!("\nScaling of the three analyses (one pass per size, microseconds):");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>12}",
        "funcs", "fast O(N)", "Go O(N^2)", "GoFree O(N^2)", "conn O(N^3)"
    );
    for n in [40usize, 80, 160, 320] {
        let src = corpus::generate(n);
        let (program, res, types) = frontend(&src).expect("corpus compiles");

        let t0 = Instant::now();
        for f in &program.funcs {
            std::hint::black_box(fast::analyze_func(&program, &res, &types, f));
        }
        let t_fast = t0.elapsed().as_secs_f64() * 1e6;

        let t0 = Instant::now();
        std::hint::black_box(compile(&src, &CompileOptions::go()).unwrap());
        let t_go = t0.elapsed().as_secs_f64() * 1e6;

        let t0 = Instant::now();
        std::hint::black_box(compile(&src, &CompileOptions::default()).unwrap());
        let t_gofree = t0.elapsed().as_secs_f64() * 1e6;

        let t0 = Instant::now();
        for f in &program.funcs {
            std::hint::black_box(conn::analyze_func(&program, &res, &types, f));
        }
        let t_conn = t0.elapsed().as_secs_f64() * 1e6;

        println!("{n:>8} {t_fast:>12.0} {t_go:>12.0} {t_gofree:>14.0} {t_conn:>12.0}");
    }
    println!("\nExpected shape: GoFree tracks Go closely (same O(N^2) frame);");
    println!("fast is cheapest; the connection graph grows fastest.");

    // Dirty-root tracking: solve every corpus function with and without
    // skipping clean roots and report how much propagation work it saves
    // (the solutions are asserted identical).
    println!("\nDirty-root tracking in the property solver (same fixpoint, less work):");
    println!(
        "{:>8} {:>24} {:>24} {:>18}",
        "", "-- full passes --", "-- dirty roots --", "-- reduction --"
    );
    println!(
        "{:>8} {:>10} {:>13} {:>10} {:>13} {:>9} {:>8}",
        "funcs", "walks", "relaxations", "walks", "relaxations", "walks", "relax"
    );
    for n in [40usize, 160, 320] {
        let src = corpus::generate(n);
        let (program, res, types) = frontend(&src).expect("corpus compiles");
        let run = |dirty_roots: bool| {
            let mut walks = 0usize;
            let mut relax = 0usize;
            let mut dumps = String::new();
            for f in &program.funcs {
                let mut fg = build_func_graph(
                    &program,
                    &res,
                    &types,
                    f,
                    &std::collections::HashMap::new(),
                    &BuildOptions::default(),
                );
                let s = solve(
                    &mut fg.graph,
                    &SolveConfig {
                        dirty_roots,
                        ..SolveConfig::default()
                    },
                );
                walks += s.walks;
                relax += s.relaxations;
                dumps.push_str(&fg.graph.dump());
            }
            (walks, relax, dumps)
        };
        let (w_full, r_full, d_full) = run(false);
        let (w_dirty, r_dirty, d_dirty) = run(true);
        assert_eq!(d_full, d_dirty, "dirty-root tracking changed the solution");
        println!(
            "{n:>8} {w_full:>10} {r_full:>13} {w_dirty:>10} {r_dirty:>13} {:>8.1}% {:>8.1}%",
            (1.0 - w_dirty as f64 / w_full.max(1) as f64) * 100.0,
            (1.0 - r_dirty as f64 / r_full.max(1) as f64) * 100.0,
        );
    }
}
