//! Regenerates table 7: the effect of GoFree's optimizations on the six
//! subject workloads — time / GC-time / GC-count / free-ratio / maxheap
//! ratios with standard deviations and Welch p-values, over N seeded runs
//! per setting (the paper uses 99).

use gofree::table7_row;
use gofree_bench::{fmt_p, pct, run_three_settings, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_args();
    let base = opts.run_config();
    println!(
        "Table 7: effect of GoFree's optimizations ({} runs per setting, ratios are GoFree/Go; <100% means GoFree is better)\n",
        opts.runs
    );
    println!(
        "{:<10} | {:>6} {:>6} {:>7} | {:>7} | {:>6} {:>6} {:>7} | {:>6} | {:>7} {:>6} {:>7}",
        "project",
        "time",
        "stdev",
        "p",
        "GCtime",
        "GCs",
        "stdev",
        "p",
        "free",
        "maxheap",
        "stdev",
        "p"
    );
    println!("{}", "-".repeat(108));

    let mut rows = Vec::new();
    let mut observed = None;
    for w in gofree_workloads::all(opts.scale()) {
        let (go, gofree, gcoff) = run_three_settings(&w.source, opts.runs, &base);
        let row = table7_row(w.name, &go, &gofree, &gcoff);
        println!(
            "{:<10} | {:>6} {:>5.0}% {:>7} | {:>7} | {:>6} {:>5.0}% {:>7} | {:>6} | {:>7} {:>5.0}% {:>7}",
            row.project,
            pct(row.time.ratio),
            row.time.stdev * 100.0,
            fmt_p(row.time.p_value),
            pct(row.gc_time_ratio),
            pct(row.gcs.ratio),
            row.gcs.stdev * 100.0,
            fmt_p(row.gcs.p_value),
            pct(row.free_ratio),
            pct(row.maxheap.ratio),
            row.maxheap.stdev * 100.0,
            fmt_p(row.maxheap.p_value),
        );
        rows.push(row);
        observed = gofree.into_iter().next();
    }

    let avg =
        |f: &dyn Fn(&gofree::Table7Row) -> f64| rows.iter().map(f).sum::<f64>() / rows.len() as f64;
    println!("{}", "-".repeat(108));
    println!(
        "{:<10} | {:>6} {:>6} {:>7} | {:>7} | {:>6} {:>6} {:>7} | {:>6} | {:>7} {:>6} {:>7}",
        "average",
        pct(avg(&|r| r.time.ratio)),
        "",
        "",
        pct(avg(&|r| r.gc_time_ratio)),
        pct(avg(&|r| r.gcs.ratio)),
        "",
        "",
        pct(avg(&|r| r.free_ratio)),
        pct(avg(&|r| r.maxheap.ratio)),
        "",
        "",
    );
    println!("\nPaper's averages: time 98%, GC time 87%, GCs 93%, free 14%, maxheap 96%.");
    println!("Expected shape: GoFree never loses; json/scheck/slayout benefit most; badger/hugo are flat.");
    if let Some(r) = &observed {
        opts.emit_observability(r, &[]);
    }
}
