//! Regenerates table 9: the contribution breakdown of reclaimed space —
//! FreeSlice() vs FreeMap() vs GrowMapAndFreeOld() (§6.6).

use gofree::{execute, table9_row, Setting};
use gofree_bench::{pct, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_args();
    let base = opts.run_config();
    println!("Table 9: contribution breakdown of reclaimed space (rows sum to 100%)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>20}",
        "project", "FreeSlice()", "FreeMap()", "GrowMapAndFreeOld()"
    );
    println!("{}", "-".repeat(58));
    let mut observed = None;
    for w in gofree_workloads::all(opts.scale()) {
        let compiled =
            gofree::compile(&w.source, &Setting::GoFree.compile_options()).expect("compiles");
        let report = execute(&compiled, Setting::GoFree, &base).expect("runs");
        let row = table9_row(w.name, &report);
        println!(
            "{:<10} {:>12} {:>12} {:>20}",
            row.project,
            pct(row.free_slice),
            pct(row.free_map),
            pct(row.grow_map),
        );
        observed = Some(report);
    }
    println!("{}", "-".repeat(58));
    println!("\nPaper's shape: Go/hugo slice-dominated (56/14/30);");
    println!("badger/json pure growth (0/0/100); scheck split (2/50/48); slayout growth (1/0/99).");
    if let Some(r) = &observed {
        opts.emit_observability(r, &[]);
    }
}
