//! One-page reproduction summary: runs a quick pass of every experiment
//! and prints the paper-vs-measured verdicts. Useful as a smoke test of
//! the whole artifact (`--runs`/`--quick` apply).

use gofree::{compile, execute, table7_row, table9_row, AuditMode, CompileOptions, Setting};
use gofree_bench::{pct, run_three_settings, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_args();
    let runs = opts.runs.min(15);
    let base = opts.run_config();
    println!(
        "GoFree reproduction summary ({runs} runs per setting, scale: {:?}, engine: {})\n",
        opts.scale(),
        opts.engine
    );

    let mut time = Vec::new();
    let mut gcs = Vec::new();
    let mut free = Vec::new();
    println!(
        "{:<10} {:>6} {:>6} {:>6}   reclamation S/M/G",
        "project", "time", "GCs", "free"
    );
    for w in gofree_workloads::all(opts.scale()) {
        let (go, gofree, gcoff) = run_three_settings(&w.source, runs, &base);
        let row = table7_row(w.name, &go, &gofree, &gcoff);
        let t9 = table9_row(w.name, &gofree[0]);
        println!(
            "{:<10} {:>6} {:>6} {:>6}   {:>3.0}/{:<3.0}/{:<3.0}",
            row.project,
            pct(row.time.ratio),
            pct(row.gcs.ratio),
            pct(row.free_ratio),
            t9.free_slice * 100.0,
            t9.free_map * 100.0,
            t9.grow_map * 100.0,
        );
        time.push(row.time.ratio);
        gcs.push(row.gcs.ratio);
        free.push(row.free_ratio);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "{:<10} {:>6} {:>6} {:>6}",
        "average",
        pct(avg(&time)),
        pct(avg(&gcs)),
        pct(avg(&free))
    );
    println!("paper      {:>6} {:>6} {:>6}", "98%", "93%", "14%");

    // Headline invariants the artifact must uphold. (At --quick scale the
    // workloads barely trigger GC, so allow time to sit at parity + noise;
    // the full scale reproduces the paper's 98%.)
    let slack = if opts.quick { 1.02 } else { 1.005 };
    assert!(
        avg(&time) <= slack,
        "GoFree must not lose on average: {:.3}",
        avg(&time)
    );
    assert!(avg(&gcs) < 1.0, "GoFree must reduce collections");
    assert!(avg(&free) > 0.05, "GoFree must reclaim a real fraction");

    // Free-safety audit: recompile every workload under `--audit deny`
    // and report, via the run metric, how much reclamation the auditor
    // refused to prove. A healthy artifact suppresses nothing.
    let deny = CompileOptions {
        audit: AuditMode::Deny,
        ..CompileOptions::default()
    };
    let mut audited_sites = 0usize;
    let mut suppressed = 0u64;
    for w in gofree_workloads::all(opts.scale()) {
        let c = compile(&w.source, &deny).expect("workload compiles under deny");
        audited_sites += c.audit.as_ref().expect("audit ran").sites.len();
        let report = execute(&c, Setting::GoFree, &base).expect("audited workload runs");
        suppressed += report.metrics.frees_suppressed;
    }
    println!(
        "\naudit (deny): {suppressed} of {audited_sites} free sites suppressed across workloads \
         (run `--bin audit` for the full sweep)"
    );
    assert_eq!(suppressed, 0, "the auditor must prove every workload free");

    // Table 3's precision ladder.
    let fig1 = "func fig1(c int, d int) *int { pc := &c\n pd := &d\n ppd := &pd\n *ppd = pc\n pd2 := *ppd\n return pd2 }\nfunc main() { x := 0\n x = x }\n";
    let compiled = compile(fig1, &Setting::GoFree.compile_options()).expect("fig1");
    let f = compiled.program.func("fig1").unwrap().id;
    let fg = &compiled.analysis.funcs[&f];
    let pd2 = fg
        .graph
        .ids()
        .find(|&i| fg.graph.loc(i).name == "pd2")
        .unwrap();
    assert!(fg.graph.loc(pd2).incomplete);
    println!("\ntable 3: Go graph's PointsTo(pd2) flagged Incomplete -> never freed  OK");
    println!("robustness: run `--bin robustness` / `--bin fuzz` for the soundness suite");
    println!("\nAll headline invariants hold.");

    // `--trace PATH`: export one traced GoFree run of the json workload.
    if opts.trace.is_some() {
        let w = gofree_workloads::by_name("json", opts.scale()).expect("json workload");
        let c = compile(&w.source, &Setting::GoFree.compile_options()).expect("compiles");
        let r = execute(&c, Setting::GoFree, &base).expect("workload runs");
        opts.emit_observability(&r, &c.phase_times);
    }
}
