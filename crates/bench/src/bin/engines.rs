//! Wall-clock comparison of the execution engines.
//!
//! Runs every workload under Go and GoFree on the tree-walking
//! interpreter, the baseline bytecode VM (`--opt off`), and the
//! optimized bytecode VM (`--opt full`), printing the best-of-N host
//! time for each and the geomean speedups. Virtual-time metrics are
//! identical across all three by construction (tests/engines.rs
//! enforces this), so host time is the only dimension where they
//! differ.
//!
//! `results/vm_engines.txt` is a saved run of this binary.

use std::time::{Duration, Instant};

use gofree::{compile, execute, Compiled, OptLevel, RunConfig, Setting, VmEngine};
use gofree_bench::HarnessOptions;

fn best_of(reps: u64, compiled: &Compiled, setting: Setting, cfg: &RunConfig) -> Duration {
    execute(compiled, setting, cfg).expect("workload runs"); // warm-up
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            execute(compiled, setting, cfg).expect("workload runs");
            start.elapsed()
        })
        .min()
        .expect("at least one rep")
}

fn geomean(ratios: &[f64]) -> f64 {
    (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp()
}

fn main() {
    let opts = HarnessOptions::from_args();
    let reps = if opts.quick { 2 } else { 5 };
    let base = opts.run_config();
    println!(
        "VM engine wall-clock comparison (best of {reps}, scale {:?})\n",
        opts.scale()
    );
    println!(
        "{:<10} {:<7} {:>12} {:>12} {:>13} {:>8} {:>8}",
        "workload", "setting", "tree-walk", "bytecode", "bytecode+opt", "bc/tw", "opt/bc"
    );
    let mut bc_over_tw = Vec::new();
    let mut opt_over_bc = Vec::new();
    let mut opt_over_tw = Vec::new();
    for w in gofree_workloads::all(opts.scale()) {
        for setting in [Setting::Go, Setting::GoFree] {
            let compiled =
                compile(&w.source, &setting.compile_options()).expect("workload compiles");
            let time = |engine: VmEngine, opt: OptLevel| {
                let cfg = RunConfig {
                    engine,
                    opt,
                    ..base.clone()
                };
                best_of(reps, &compiled, setting, &cfg)
            };
            let tree = time(VmEngine::TreeWalk, OptLevel::Off);
            let byte = time(VmEngine::Bytecode, OptLevel::Off);
            let opt = time(VmEngine::Bytecode, OptLevel::Full);
            let bc_tw = tree.as_secs_f64() / byte.as_secs_f64();
            let opt_bc = byte.as_secs_f64() / opt.as_secs_f64();
            bc_over_tw.push(bc_tw);
            opt_over_bc.push(opt_bc);
            opt_over_tw.push(tree.as_secs_f64() / opt.as_secs_f64());
            println!(
                "{:<10} {:<7} {:>10.2}ms {:>10.2}ms {:>11.2}ms {:>7.2}x {:>7.2}x",
                w.name,
                setting.to_string(),
                tree.as_secs_f64() * 1e3,
                byte.as_secs_f64() * 1e3,
                opt.as_secs_f64() * 1e3,
                bc_tw,
                opt_bc
            );
        }
    }
    println!(
        "\ngeomean speedups: bytecode {:.2}x over tree-walk; \
         bytecode+opt {:.2}x over bytecode, {:.2}x over tree-walk",
        geomean(&bc_over_tw),
        geomean(&opt_over_bc),
        geomean(&opt_over_tw)
    );

    // `--trace PATH`: export one traced GoFree run of the json workload
    // (traces are engine- and opt-identical, so the selection is moot).
    if opts.trace.is_some() {
        let w = gofree_workloads::by_name("json", opts.scale()).expect("json workload");
        let compiled = compile(&w.source, &Setting::GoFree.compile_options()).expect("compiles");
        let r = execute(&compiled, Setting::GoFree, &base).expect("workload runs");
        opts.emit_observability(&r, &compiled.phase_times);
    }
}
