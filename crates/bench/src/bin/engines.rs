//! Wall-clock comparison of the two execution engines.
//!
//! Runs every workload under Go and GoFree on the tree-walking
//! interpreter and the bytecode VM, printing the best-of-N host time
//! for each and the geomean speedup. Virtual-time metrics are identical
//! across engines by construction (tests/engines.rs enforces this), so
//! host time is the only dimension where the engines differ.
//!
//! `results/vm_engines.txt` is a saved run of this binary.

use std::time::{Duration, Instant};

use gofree::{compile, execute, Compiled, RunConfig, Setting, VmEngine};
use gofree_bench::HarnessOptions;

fn best_of(reps: u64, compiled: &Compiled, setting: Setting, cfg: &RunConfig) -> Duration {
    execute(compiled, setting, cfg).expect("workload runs"); // warm-up
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            execute(compiled, setting, cfg).expect("workload runs");
            start.elapsed()
        })
        .min()
        .expect("at least one rep")
}

fn main() {
    let opts = HarnessOptions::from_args();
    let reps = if opts.quick { 2 } else { 5 };
    let base = opts.run_config();
    println!(
        "VM engine wall-clock comparison (best of {reps}, scale {:?})\n",
        opts.scale()
    );
    println!(
        "{:<10} {:<7} {:>12} {:>12} {:>9}",
        "workload", "setting", "tree-walk", "bytecode", "speedup"
    );
    let mut ratios = Vec::new();
    for w in gofree_workloads::all(opts.scale()) {
        for setting in [Setting::Go, Setting::GoFree] {
            let compiled =
                compile(&w.source, &setting.compile_options()).expect("workload compiles");
            let time = |engine: VmEngine| {
                let cfg = RunConfig {
                    engine,
                    ..base.clone()
                };
                best_of(reps, &compiled, setting, &cfg)
            };
            let tree = time(VmEngine::TreeWalk);
            let byte = time(VmEngine::Bytecode);
            let speedup = tree.as_secs_f64() / byte.as_secs_f64();
            ratios.push(speedup);
            println!(
                "{:<10} {:<7} {:>10.2}ms {:>10.2}ms {:>8.2}x",
                w.name,
                setting.to_string(),
                tree.as_secs_f64() * 1e3,
                byte.as_secs_f64() * 1e3,
                speedup
            );
        }
    }
    let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    println!("\ngeomean speedup: {geomean:.2}x (bytecode over tree-walk)");

    // `--trace PATH`: export one traced GoFree run of the json workload
    // (traces are engine-identical, so the selected engine is moot).
    if opts.trace.is_some() {
        let w = gofree_workloads::by_name("json", opts.scale()).expect("json workload");
        let compiled = compile(&w.source, &Setting::GoFree.compile_options()).expect("compiles");
        let r = execute(&compiled, Setting::GoFree, &base).expect("workload runs");
        opts.emit_observability(&r, &compiled.phase_times);
    }
}
