//! Re-derives the paper's heap-behaviour figures from the runtime event
//! trace instead of end-of-run aggregates, cross-checking every derived
//! number against [`gofree::Report::metrics`]:
//!
//! * a fig. 10-style object-size sweep where the GC-count and peak-heap
//!   ratios are computed from `GcEnd`/`Alloc` events;
//! * a fig. 11-style per-workload view of the six subject programs with
//!   an ASCII live-heap curve sampled from the event stream.
//!
//! Every row asserts `Trace::gc_count == Metrics::gcs`,
//! `Trace::max_footprint == Metrics::maxheap`, and full
//! [`gofree::Trace::reconcile`] — the trace layer cannot drift from the
//! published numbers without this experiment failing.

use gofree::{RunConfig, Setting, Trace};
use gofree_bench::{pct, HarnessOptions};
use gofree_workloads::micro;

/// Buckets in the live-heap curve sparkline.
const CURVE_WIDTH: usize = 32;

/// Renders the live-heap curve as a fixed-width ASCII sparkline: the
/// peak live bytes per virtual-time bucket, scaled to the row maximum.
fn curve_spark(trace: &Trace) -> String {
    let curve = trace.heap_curve();
    let Some((t0, _)) = curve.first().copied() else {
        return format!("|{}|", " ".repeat(CURVE_WIDTH));
    };
    let t1 = curve.last().map(|&(t, _)| t).unwrap_or(t0);
    let span = (t1 - t0).max(1);
    let mut buckets = [0u64; CURVE_WIDTH];
    for &(at, live) in &curve {
        let idx = (((at - t0) as u128 * CURVE_WIDTH as u128 / (span as u128 + 1)) as usize)
            .min(CURVE_WIDTH - 1);
        buckets[idx] = buckets[idx].max(live);
    }
    let max = buckets.iter().copied().max().unwrap_or(0).max(1);
    const RAMP: &[u8] = b" _.-=+*#%@";
    let mut out = String::with_capacity(CURVE_WIDTH + 2);
    out.push('|');
    for &b in &buckets {
        let idx = if b == 0 {
            0
        } else {
            ((b as u128 * (RAMP.len() - 1) as u128).div_ceil(max as u128) as usize)
                .min(RAMP.len() - 1)
        };
        out.push(RAMP[idx] as char);
    }
    out.push('|');
    out
}

/// Runs one compiled setting traced and cross-checks every trace-derived
/// figure against the run's metrics, returning the report.
fn run_checked(
    compiled: &gofree::Compiled,
    setting: Setting,
    cfg: &RunConfig,
    what: &str,
) -> gofree::Report {
    let report = gofree::execute(compiled, setting, cfg).expect("workload runs");
    let trace = report.trace.as_ref().expect("tracing was enabled");
    assert_eq!(
        trace.gc_count(),
        report.metrics.gcs,
        "{what}: GC count from events != metrics"
    );
    assert_eq!(
        trace.max_footprint(),
        report.metrics.maxheap,
        "{what}: peak footprint from events != metrics"
    );
    trace
        .reconcile(&report.metrics)
        .unwrap_or_else(|e| panic!("{what}: {e}"));
    report
}

fn main() {
    let opts = HarnessOptions::from_args();
    let cfg = RunConfig {
        trace: true,
        ..opts.run_config()
    };

    println!("Trace experiment: heap figures re-derived from runtime events\n");
    println!("Fig. 10 shape from events (GC and peak-heap ratios, GoFree/Go):");
    println!(
        "{:>4} | {:>8} {:>8} {:>8} | {:>10} {:>10}",
        "c", "events", "GCs", "GC ratio", "peak heap", "heap ratio"
    );
    println!("{}", "-".repeat(62));
    let budget = if opts.quick { 128 } else { 2048 };
    let mut last_gofree = None;
    for &c in micro::C_VALUES {
        let src = micro::source(c, budget);
        let go = gofree::compile(&src, &Setting::Go.compile_options()).expect("compiles");
        let gf = gofree::compile(&src, &Setting::GoFree.compile_options()).expect("compiles");
        let go_r = run_checked(&go, Setting::Go, &cfg, "fig10/go");
        let gf_r = run_checked(&gf, Setting::GoFree, &cfg, "fig10/gofree");
        let (go_t, gf_t) = (go_r.trace.as_ref().unwrap(), gf_r.trace.as_ref().unwrap());
        let gc_ratio = gf_t.gc_count() as f64 / go_t.gc_count().max(1) as f64;
        let heap_ratio = gf_t.max_footprint() as f64 / go_t.max_footprint().max(1) as f64;
        println!(
            "{:>4} | {:>8} {:>8} {:>8} | {:>8} B {:>10}",
            c,
            gf_t.events.len(),
            gf_t.gc_count(),
            pct(gc_ratio),
            gf_t.max_footprint(),
            pct(heap_ratio),
        );
        last_gofree = Some((gf_r, gf.phase_times.clone()));
    }

    println!("\nFig. 11 shape from events (live-heap curve over virtual time):");
    println!(
        "{:<10} {:>7} | {:>7} {:>10} | {:<34}",
        "workload", "setting", "GCs", "peak heap", "live-heap curve"
    );
    println!("{}", "-".repeat(78));
    for w in gofree_workloads::all(opts.scale()) {
        for setting in [Setting::Go, Setting::GoFree] {
            let compiled =
                gofree::compile(&w.source, &setting.compile_options()).expect("compiles");
            let r = run_checked(&compiled, setting, &cfg, w.name);
            let t = r.trace.as_ref().unwrap();
            println!(
                "{:<10} {:>7} | {:>7} {:>8} B | {}",
                w.name,
                setting.to_string(),
                t.gc_count(),
                t.max_footprint(),
                curve_spark(t),
            );
        }
    }
    println!("{}", "-".repeat(78));
    println!("\nAll trace-derived figures matched Metrics exactly (gc_count, maxheap,");
    println!("and the full fold/reconcile) for every run above, on both settings.");

    if let Some((report, phases)) = last_gofree {
        opts.emit_observability(&report, &phases);
    }
}
