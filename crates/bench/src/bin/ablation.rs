//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. content tags (§4.4) on/off — cross-call frees vanish without them;
//! 2. free-target selection (§6.5) — slices+maps vs all pointers;
//! 3. the tcfree bail-out environment — migration probability sweep;
//! 4. GrowMapAndFreeOld (§4.6.2) on/off.

use gofree::{compile, execute, CompileOptions, FreeTargets, Mode, RunConfig, Setting};
use gofree_bench::{pct, HarnessOptions};

fn free_ratio(src: &str, copts: &CompileOptions, cfg: &RunConfig) -> (f64, u64, u64) {
    let compiled = compile(src, copts).expect("compiles");
    let r = execute(&compiled, Setting::GoFree, cfg).expect("runs");
    (
        r.metrics.free_ratio(),
        r.metrics.tcfree_attempts,
        r.metrics.tcfree_bails.iter().sum(),
    )
}

/// A pipeline workload whose frees are all *cross-call*: buffers and
/// nodes are allocated by callees and freed by the caller, which only the
/// content tags of §4.4 make possible.
fn pipeline_source(n: u64) -> String {
    format!(
        r#"
type Item struct {{
    key int
    weight int
}}

func makeBuffer(n int) []int {{
    buf := make([]int, n)
    for i := 0; i < n; i += 1 {{
        buf[i] = i * 3
    }}
    return buf
}}

func makeItem(k int) *Item {{
    it := &Item{{k, k * 2}}
    return it
}}

func main() {{
    total := 0
    for i := 0; i < {n}; i += 1 {{
        buf := makeBuffer(120 + i%40)
        it := makeItem(i)
        total += buf[0] + it.weight
    }}
    print(total)
}}
"#
    )
}

fn main() {
    let opts = HarnessOptions::from_args();
    let base = opts.run_config();
    println!("Ablations\n");
    let n = if opts.quick { 40 } else { 600 };
    let pipeline = pipeline_source(n);

    println!("1) Content tags (§4.4): free ratio with vs without");
    println!("   (cross-call pipeline: callee-allocated, caller-freed buffers)");
    println!("{:<10} {:>8} {:>10}", "project", "with", "without");
    {
        let with = free_ratio(&pipeline, &CompileOptions::default(), &base).0;
        let without = free_ratio(
            &pipeline,
            &CompileOptions {
                content_tags: false,
                ..CompileOptions::default()
            },
            &base,
        )
        .0;
        println!("{:<10} {:>8} {:>10}", "pipeline", pct(with), pct(without));
        assert!(
            with > 0.3 && without < 0.05,
            "content tags must be what enables cross-call frees: {with} vs {without}"
        );
    }
    for w in gofree_workloads::all(opts.scale()) {
        let with = free_ratio(&w.source, &CompileOptions::default(), &base).0;
        let without = free_ratio(
            &w.source,
            &CompileOptions {
                content_tags: false,
                ..CompileOptions::default()
            },
            &base,
        )
        .0;
        println!("{:<10} {:>8} {:>10}", w.name, pct(with), pct(without));
    }

    println!("\n2) Free targets (§6.5): slices+maps (paper) vs all pointers");
    println!("{:<10} {:>12} {:>8}", "project", "slices+maps", "all");
    {
        let paper = free_ratio(&pipeline, &CompileOptions::default(), &base).0;
        let all = free_ratio(
            &pipeline,
            &CompileOptions {
                free_targets: FreeTargets::All,
                ..CompileOptions::default()
            },
            &base,
        )
        .0;
        println!("{:<10} {:>12} {:>8}", "pipeline", pct(paper), pct(all));
        assert!(all > paper, "widening targets frees the Item objects too");
    }
    for w in gofree_workloads::all(opts.scale()) {
        let paper = free_ratio(&w.source, &CompileOptions::default(), &base).0;
        let all = free_ratio(
            &w.source,
            &CompileOptions {
                free_targets: FreeTargets::All,
                ..CompileOptions::default()
            },
            &base,
        )
        .0;
        println!("{:<10} {:>12} {:>8}", w.name, pct(paper), pct(all));
    }

    println!("\n3) tcfree bail-outs vs scheduler migration probability (json workload)");
    println!(
        "{:<12} {:>9} {:>8} {:>10}",
        "migrate p", "attempts", "bails", "free ratio"
    );
    let w = gofree_workloads::by_name("json", opts.scale()).expect("json");
    for p in [0.0, 0.0005, 0.005, 0.05] {
        let cfg = RunConfig {
            migrate_prob: p,
            ..opts.run_config()
        };
        let (fr, attempts, bails) = free_ratio(&w.source, &CompileOptions::default(), &cfg);
        println!("{p:<12} {attempts:>9} {bails:>8} {:>10}", pct(fr));
    }

    println!("\n4) GrowMapAndFreeOld (§4.6.2): GoFree vs GoFree-without-grow-free (slayout)");
    let w = gofree_workloads::by_name("slayout", opts.scale()).expect("slayout");
    let compiled = compile(&w.source, &CompileOptions::default()).expect("compiles");
    let with = execute(&compiled, Setting::GoFree, &base).expect("runs");
    // Re-run the instrumented program but with the runtime optimization
    // off, modeling a GoFree build without §4.6.2.
    let vm_cfg = minigo_vm::VmConfig {
        runtime: minigo_runtime::RuntimeConfig {
            gc_enabled: true,
            min_heap: base.min_heap,
            seed: base.seed,
            migrate_prob: base.migrate_prob,
            jitter: base.jitter,
            ..minigo_runtime::RuntimeConfig::default()
        },
        grow_map_free_old: false,
        ..minigo_vm::VmConfig::default()
    };
    let without = minigo_vm::run(
        &compiled.program,
        &compiled.resolution,
        &compiled.types,
        &compiled.analysis,
        vm_cfg,
    )
    .expect("runs");
    println!(
        "with:    free ratio {:>5}  GCs {}",
        pct(with.metrics.free_ratio()),
        with.metrics.gcs
    );
    println!(
        "without: free ratio {:>5}  GCs {}",
        pct(without.metrics.free_ratio()),
        without.metrics.gcs
    );
    opts.emit_observability(&with, &compiled.phase_times);
    let _ = Mode::GoFree;
}
