//! The §4.6.4 experiment: Go's escape analysis benefits from inlining
//! (objects escaping small callees by return become stack-allocatable),
//! while GoFree's content tags already free them without inlining.

use gofree::{compile, execute, CompileOptions, Mode, Setting};
use gofree_bench::{pct, HarnessOptions};

/// A factory-heavy program: every temporary comes from a small callee.
fn factory_source(n: u64) -> String {
    format!(
        r#"
func mkBuf() []int {{
    b := make([]int, 24)
    b[0] = 1
    return b
}}

func mkBig(n int) []int {{
    b := make([]int, n)
    b[0] = 2
    return b
}}

func main() {{
    total := 0
    for i := 0; i < {n}; i += 1 {{
        small := mkBuf()
        big := mkBig(100 + i%50)
        total += small[0] + big[0]
    }}
    print(total)
}}
"#
    )
}

fn main() {
    let opts = HarnessOptions::from_args();
    let n = if opts.quick { 50 } else { 800 };
    let src = factory_source(n);
    let base = opts.run_config();

    println!("Inlining ablation (§4.6.4): factory-heavy workload, {n} iterations\n");
    println!(
        "{:<22} {:>11} {:>10} {:>10} {:>8}",
        "configuration", "stack objs", "heap objs", "freed", "GCs"
    );
    let mut rows = Vec::new();
    let mut observed = None;
    for (label, mode, inline) in [
        ("Go", Mode::Go, false),
        ("Go + inline", Mode::Go, true),
        ("GoFree", Mode::GoFree, false),
        ("GoFree + inline", Mode::GoFree, true),
    ] {
        let copts = CompileOptions {
            mode,
            inline,
            ..CompileOptions::default()
        };
        let compiled = compile(&src, &copts).expect("compiles");
        let setting = if mode == Mode::GoFree {
            Setting::GoFree
        } else {
            Setting::Go
        };
        let r = execute(&compiled, setting, &base).expect("runs");
        let stack: u64 = r.metrics.stack_allocs.iter().sum();
        let heap: u64 = r.metrics.heap_allocs.iter().sum();
        println!(
            "{:<22} {:>11} {:>10} {:>10} {:>8}",
            label,
            stack,
            heap,
            format!("{}", pct(r.metrics.free_ratio())),
            r.metrics.gcs
        );
        rows.push((label, stack, heap, r.metrics.free_ratio(), r.metrics.gcs));
        observed = Some(r);
    }
    println!();
    let (_, go_stack, _, _, _) = rows[0];
    let (_, goinl_stack, _, _, _) = rows[1];
    let (_, _, _, gofree_ratio, _) = rows[2];
    assert!(
        goinl_stack > go_stack,
        "inlining must increase Go's stack allocation"
    );
    assert!(
        gofree_ratio > 0.3,
        "GoFree frees the factory results without inlining"
    );
    println!("Go gains stack allocations only with inlining; GoFree reclaims the");
    println!("factory results either way — its inter-procedural analysis \"provides");
    println!("enough information to analyze the caller as precisely as the");
    println!("intra-procedural analysis does\" (§4.6.4).");
    if let Some(r) = &observed {
        opts.emit_observability(r, &[]);
    }
}
