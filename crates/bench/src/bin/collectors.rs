//! The collector study: re-runs the table 7–9 measurements and the
//! fig. 10/11-style heap curves under both collection backends — `go`
//! (the paper's mark-sweep) and `gen` (the generational nursery with
//! minor/major cycles) — and prints, per backend, the Go vs GoFree
//! deltas in GC cycles, reclaimed bytes, and virtual time.
//!
//! The expected shape: under `gen`, plain Go runs extra cheap minor
//! cycles over the nursery, while GoFree's `tcfree` evicts short-lived
//! objects from the nursery before they ever trigger one — so the
//! GoFree/Go cycle gap widens and the generational backend amplifies
//! the paper's headline effect rather than washing it out.

use gofree::{table7_row, table8_row, table9_row, CollectorKind, RunConfig, Setting};
use gofree_bench::{fmt_p, pct, run_three_settings, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_args();
    println!(
        "Collector study: tables 7-9 and heap curves per backend ({} runs per setting)",
        opts.runs
    );

    let mut observed = None;
    for collector in CollectorKind::all() {
        let base = RunConfig {
            collector,
            ..opts.run_config()
        };
        println!("\n==== collector: {collector} ====\n");
        println!("Table 7 ({collector}): ratios are GoFree/Go; <100% means GoFree is better");
        println!(
            "{:<10} | {:>6} {:>7} | {:>7} | {:>6} {:>7} | {:>6} | {:>7}",
            "project", "time", "p", "GCtime", "GCs", "p", "free", "maxheap"
        );
        println!("{}", "-".repeat(76));

        let mut t7 = Vec::new();
        let mut t8 = Vec::new();
        let mut t9 = Vec::new();
        let mut deltas = Vec::new();
        for w in gofree_workloads::all(opts.scale()) {
            let (go, gofree, gcoff) = run_three_settings(&w.source, opts.runs, &base);
            let row = table7_row(w.name, &go, &gofree, &gcoff);
            println!(
                "{:<10} | {:>6} {:>7} | {:>7} | {:>6} {:>7} | {:>6} | {:>7}",
                row.project,
                pct(row.time.ratio),
                fmt_p(row.time.p_value),
                pct(row.gc_time_ratio),
                pct(row.gcs.ratio),
                fmt_p(row.gcs.p_value),
                pct(row.free_ratio),
                pct(row.maxheap.ratio),
            );
            t8.push(table8_row(w.name, &gofree[0]));
            t9.push(table9_row(w.name, &gofree[0]));
            deltas.push(delta_row(w.name, opts.scale(), &base));
            t7.push(row);
            observed = gofree.into_iter().next();
        }
        let avg =
            |f: &dyn Fn(&gofree::Table7Row) -> f64| t7.iter().map(f).sum::<f64>() / t7.len() as f64;
        println!("{}", "-".repeat(76));
        println!(
            "{:<10} | {:>6} {:>7} | {:>7} | {:>6} {:>7} | {:>6} | {:>7}",
            "average",
            pct(avg(&|r| r.time.ratio)),
            "",
            pct(avg(&|r| r.gc_time_ratio)),
            pct(avg(&|r| r.gcs.ratio)),
            "",
            pct(avg(&|r| r.free_ratio)),
            pct(avg(&|r| r.maxheap.ratio)),
        );

        println!("\nTable 8 ({collector}): tcfree share of heap reclamation");
        println!(
            "{:<10} | {:>12} {:>10}",
            "project", "slice share", "map share"
        );
        for row in &t8 {
            println!(
                "{:<10} | {:>12} {:>10}",
                row.project,
                pct(row.slice_share()),
                pct(row.map_share()),
            );
        }

        println!("\nTable 9 ({collector}): reclaimed-byte shares by free source");
        println!(
            "{:<10} | {:>10} {:>8} {:>8}",
            "project", "FreeSlice", "FreeMap", "GrowMap"
        );
        for row in &t9 {
            println!(
                "{:<10} | {:>10} {:>8} {:>8}",
                row.project,
                pct(row.free_slice),
                pct(row.free_map),
                pct(row.grow_map),
            );
        }

        println!(
            "\nGo vs GoFree deltas ({collector}): cycles (minor+major), GC-reclaimed bytes, \
             virtual time (fig. 10/11-style heap curves from one traced run per setting)"
        );
        println!(
            "{:<10} | {:>16} {:>16} | {:>11} {:>11} | {:>10} {:>10} | {:>9} {:>9}",
            "project",
            "Go cycles",
            "GoFree cycles",
            "Go swept B",
            "GF swept B",
            "Go time",
            "GF time",
            "Go peak",
            "GF peak"
        );
        println!("{}", "-".repeat(118));
        for d in &deltas {
            println!(
                "{:<10} | {:>16} {:>16} | {:>11} {:>11} | {:>10} {:>10} | {:>9} {:>9}",
                d.project,
                format!("{} ({}m/{}M)", d.go.cycles, d.go.minor, d.go.major),
                format!(
                    "{} ({}m/{}M)",
                    d.gofree.cycles, d.gofree.minor, d.gofree.major
                ),
                d.go.swept_bytes,
                d.gofree.swept_bytes,
                d.go.time,
                d.gofree.time,
                d.go.peak_footprint,
                d.gofree.peak_footprint,
            );
        }
    }

    println!(
        "\nExpected shape: the go backend reproduces the paper bit-identically \
         (tests/collector_identity.rs); under gen, tcfree drains the nursery so \
         GoFree skips minor cycles Go still pays for."
    );
    if let Some(r) = &observed {
        opts.emit_observability(r, &[]);
    }
}

/// One setting's single-run observables under a backend, taken from a
/// traced run 0 (same seed for every cell, so rows are comparable).
struct CellStats {
    cycles: u64,
    minor: u64,
    major: u64,
    swept_bytes: u64,
    time: u64,
    peak_footprint: u64,
}

struct DeltaRow {
    project: &'static str,
    go: CellStats,
    gofree: CellStats,
}

fn delta_row(project: &'static str, scale: gofree_workloads::Scale, base: &RunConfig) -> DeltaRow {
    let cell = |setting: Setting| {
        let w = gofree_workloads::by_name(project, scale).expect("workload exists");
        let compiled =
            gofree::compile(&w.source, &setting.compile_options()).expect("workload compiles");
        let cfg = RunConfig {
            trace: true,
            jobs: 1,
            ..base.clone()
        };
        let report = gofree::execute(&compiled, setting, &cfg).expect("workload runs");
        let trace = report.trace.as_ref().expect("traced run carries a trace");
        let swept_bytes = trace
            .events
            .iter()
            .map(|ev| match *ev {
                gofree::TraceEvent::GcEnd { swept_bytes, .. } => swept_bytes,
                _ => 0,
            })
            .sum();
        let peak_footprint = trace.max_footprint();
        CellStats {
            cycles: report.metrics.gcs,
            minor: report.metrics.gcs_minor,
            major: report.metrics.gcs_major,
            swept_bytes,
            time: report.time,
            peak_footprint,
        }
    };
    DeltaRow {
        project,
        go: cell(Setting::Go),
        gofree: cell(Setting::GoFree),
    }
}
