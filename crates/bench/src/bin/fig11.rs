//! Regenerates fig. 11: the run-time distribution across N runs under the
//! three settings (GoFree, Go, Go-GCOff), shown as a text histogram.

use gofree::{distribution, Histogram, Setting};
use gofree_bench::{run_three_settings, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_args();
    let w = gofree_workloads::by_name("json", opts.scale()).expect("json workload");
    println!(
        "Fig. 11: run-time distribution, {} runs per setting (workload: json analogue)\n",
        opts.runs
    );
    let (go, gofree, gcoff) = run_three_settings(&w.source, opts.runs, &opts.run_config());
    let dists = [
        distribution(Setting::GoFree.to_string(), &gofree),
        distribution(Setting::Go.to_string(), &go),
        distribution(Setting::GoGcOff.to_string(), &gcoff),
    ];

    let lo = dists.iter().map(|d| d.min).fold(f64::INFINITY, f64::min);
    let hi = dists
        .iter()
        .map(|d| d.max)
        .fold(f64::NEG_INFINITY, f64::max);

    // One shared log₂ histogram per setting over each sample's distance
    // from the global minimum (the spread is what fig. 11 shows, and the
    // offset keeps tightly-clustered run times out of a single bucket).
    for d in &dists {
        println!(
            "{:<8} mean {:>12.0}  stdev {:>9.0}  min {:>12.0}  max {:>12.0}",
            d.label, d.mean, d.stdev, d.min, d.max
        );
        let mut hist: Histogram<64> = Histogram::new();
        for &s in &d.samples {
            hist.record((s - lo) as u64);
        }
        println!("         |{}|", hist.spark());
    }
    println!(
        "\n(ticks {lo:.0}..{hi:.0}, log2-bucketed offset from the fastest run; \
         expected shape: GCOff fastest, GoFree between GCOff and Go, Go slowest)"
    );
    let mean = |d: &gofree::Distribution| d.mean;
    if mean(&dists[2]) <= mean(&dists[0]) && mean(&dists[0]) <= mean(&dists[1]) {
        println!("Ordering GCOff <= GoFree <= Go holds on the means.");
    } else {
        println!(
            "Note: the strict GCOff <= GoFree <= Go ordering did not hold at this \
             scale (expected at --quick; run at full scale for the paper's shape)."
        );
    }
    // `--trace PATH`: export run 0's GoFree event stream (compile phases
    // are not collected here; the runtime track carries everything).
    opts.emit_observability(&gofree[0], &[]);
}
