//! Differential fuzzing campaign: generated programs must behave
//! identically under Go, GoFree, and GoFree with the poisoning mock
//! (§6.8). Any divergence is a miscompilation or an unsound free.
//!
//! `--runs N` controls the number of seeds (default 99).

use gofree::{compile, execute, CompileOptions, PoisonMode, RunConfig, Setting};
use gofree_bench::HarnessOptions;
use gofree_workloads::fuzzgen;

fn main() {
    let opts = HarnessOptions::from_args();
    let seeds = opts.runs * 5;
    println!("Differential fuzz: {seeds} generated programs x 3 configurations");
    let mut failures = 0;
    let mut total_frees = 0u64;
    for seed in 0..seeds {
        let src = fuzzgen::generate(seed);
        let cfg = RunConfig::deterministic(seed);
        let result = (|| -> Result<u64, String> {
            let go = compile(&src, &CompileOptions::go()).map_err(|e| e.render(&src))?;
            let gofree = compile(&src, &CompileOptions::default()).map_err(|e| e.render(&src))?;
            let go_out = execute(&go, Setting::Go, &cfg).map_err(|e| e.to_string())?;
            let gf_out = execute(&gofree, Setting::GoFree, &cfg).map_err(|e| e.to_string())?;
            if go_out.output != gf_out.output {
                return Err(format!(
                    "OUTPUT DIVERGED: go={:?} gofree={:?}",
                    go_out.output.trim(),
                    gf_out.output.trim()
                ));
            }
            let poisoned = execute(
                &gofree,
                Setting::GoFree,
                &RunConfig {
                    poison: PoisonMode::Flip,
                    ..cfg.clone()
                },
            )
            .map_err(|e| format!("UNSOUND FREE: {e}"))?;
            if poisoned.output != go_out.output {
                return Err("POISONED OUTPUT DIVERGED".to_string());
            }
            Ok(gf_out.metrics.freed_bytes)
        })();
        match result {
            Ok(freed) => total_frees += freed,
            Err(msg) => {
                failures += 1;
                eprintln!("seed {seed}: {msg}\n--- program ---\n{src}");
            }
        }
        if seed % 100 == 99 {
            println!("  {}/{} seeds checked...", seed + 1, seeds);
        }
    }
    println!(
        "{seeds} seeds, {failures} failures; GoFree freed {total_frees} bytes across the campaign"
    );
    if failures > 0 {
        std::process::exit(1);
    }
    println!("All generated programs behave identically under every configuration.");
    opts.observe_workload("json");
}
