//! Free-safety audit report: runs the independent auditor over the
//! whole workload/corpus/fuzz sweep, prints per-program proof rates,
//! then cross-validates every fully-proved program against the
//! shadow-heap sanitizer on both engines (zero violations required) and
//! demonstrates detection on a planted use-after-free.
//!
//! Regenerates `results/audit.txt` (`--quick` and `--engine` apply).

use gofree::{
    compile, execute, AuditMode, CompileOptions, RunConfig, Setting, ViolationKind, VmEngine,
};
use gofree_bench::{eval_run_config, pct, HarnessOptions};
use gofree_workloads::{corpus, fuzzgen};

fn main() {
    let opts = HarnessOptions::from_args();
    let fuzz_seeds = if opts.quick { 20 } else { 60 };

    let mut programs: Vec<(String, String, bool)> = gofree_workloads::all(opts.scale())
        .into_iter()
        .map(|w| (w.name.to_string(), w.source, true))
        .collect();
    let nworkloads = programs.len();
    for nfuncs in [1, 4, 16] {
        programs.push((format!("corpus-{nfuncs}"), corpus::generate(nfuncs), false));
    }
    for seed in 0..fuzz_seeds {
        programs.push((format!("fuzz-{seed}"), fuzzgen::generate(seed), false));
    }

    println!(
        "Free-safety audit over {} programs ({} workloads, 3 corpus, {} fuzzed; engine: {})\n",
        programs.len(),
        nworkloads,
        fuzz_seeds,
        opts.engine
    );
    println!(
        "{:<12} {:>6} {:>7} {:>6}",
        "program", "sites", "proved", "rate"
    );

    let audit_opts = CompileOptions {
        audit: AuditMode::Warn,
        ..CompileOptions::default()
    };
    let mut wl_sites = 0usize;
    let mut wl_proved = 0usize;
    let mut all_sites = 0usize;
    let mut all_proved = 0usize;
    let mut violations = 0usize;
    let mut checked_runs = 0usize;
    for (name, src, is_workload) in &programs {
        let compiled = compile(src, &audit_opts).expect("sweep programs compile");
        let report = compiled.audit.as_ref().expect("audit ran");
        let proved = report.proved();
        let total = report.sites.len();
        println!(
            "{name:<12} {total:>6} {proved:>7} {:>6}",
            pct(report.proof_rate())
        );
        for site in report.unproven() {
            println!(
                "             unproven: {}({}) in {}: {}",
                site.kind, site.target, site.func, site.verdict
            );
        }
        all_sites += total;
        all_proved += proved;
        if *is_workload {
            wl_sites += total;
            wl_proved += proved;
        }

        // Sanitizer cross-check: a fully-proved program must run with
        // zero shadow-heap violations on both engines. Fuzzed programs
        // may fail at run time (bounds, nil) — those runs prove nothing
        // about free safety and are skipped.
        if proved != total {
            continue;
        }
        for engine in [VmEngine::TreeWalk, VmEngine::Bytecode] {
            let cfg = RunConfig {
                engine,
                sanitize: true,
                ..eval_run_config()
            };
            if let Ok(run) = execute(&compiled, Setting::GoFree, &cfg) {
                checked_runs += 1;
                if !run.violations.is_empty() {
                    violations += run.violations.len();
                    eprintln!("  !! {name} ({engine}): {:?}", run.violations);
                }
            }
        }
    }

    let wl_rate = wl_proved as f64 / wl_sites.max(1) as f64;
    let all_rate = all_proved as f64 / all_sites.max(1) as f64;
    println!(
        "\nworkloads: {wl_proved}/{wl_sites} sites proved ({})",
        pct(wl_rate)
    );
    println!(
        "overall:   {all_proved}/{all_sites} sites proved ({})",
        pct(all_rate)
    );
    println!("sanitizer: {violations} violations across {checked_runs} sanitized runs");

    // Detection check: the sanitizer and the auditor must both catch a
    // planted premature free, and `--audit deny` must neutralize it.
    let bug =
        "func main() { n := 100\n s := make([]int, n)\n s[0] = 7\n tcfree(s)\n print(s[0]) }\n";
    let warned = compile(bug, &audit_opts).expect("bug compiles");
    let unproven = warned.audit.as_ref().unwrap().unproven().count();
    assert!(unproven >= 1, "auditor must flag the planted bug");
    let mut caught = 0;
    for engine in [VmEngine::TreeWalk, VmEngine::Bytecode] {
        let cfg = RunConfig {
            engine,
            sanitize: true,
            ..eval_run_config()
        };
        let run = execute(&warned, Setting::GoFree, &cfg).expect("bug runs");
        if run
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::UseAfterFree)
        {
            caught += 1;
        }
    }
    assert_eq!(
        caught, 2,
        "sanitizer must catch the planted bug on both engines"
    );
    let denied = compile(
        bug,
        &CompileOptions {
            audit: AuditMode::Deny,
            ..CompileOptions::default()
        },
    )
    .expect("bug compiles under deny");
    println!(
        "planted bug: auditor flagged {unproven} site(s), sanitizer caught it on both engines, \
         deny stripped {} free(s)",
        denied.frees_suppressed
    );

    // Headline invariants (the PR's acceptance bars).
    assert!(
        wl_rate >= 0.95,
        "workload proof rate {wl_rate:.3} below the 0.95 bar"
    );
    assert_eq!(violations, 0, "sanitizer must be clean on proved programs");
    println!("\nAll audit invariants hold.");
    opts.observe_workload("json");
}
