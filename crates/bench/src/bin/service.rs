//! Regenerates the service-mode tail-latency study: every service
//! scenario × the three settings (GoFree, Go, Go-GCOff) × both collector
//! backends, driven by the open-loop traffic harness. Reports exact
//! latency percentiles (p50/p99/p999/max), GC pause counts/worst-case,
//! and heap high-water marks — the tail-latency story behind the paper's
//! throughput tables: compiler-inserted freeing shrinks the GC work that
//! turns into p999 queueing under the burst phase change.

use gofree::{
    compile, run_service, service_gctrace_lines, service_report_json, Arrival, CollectorKind,
    RunConfig, ServiceConfig, ServiceReport, Setting,
};
use gofree_bench::HarnessOptions;
use gofree_workloads::service::scenarios;
use gofree_workloads::Scale;

/// Offered load per scenario, chosen against the calibrated mean
/// service times (~800/~2200/~460 ticks) so steady state sits near
/// 30–50% utilization and the 4× burst phase is what drives queueing.
fn rps_for(name: &str) -> u64 {
    match name {
        "jsonsvc" => 250,
        "rotate" => 800,
        _ => 400,
    }
}

fn main() {
    let opts = HarnessOptions::from_args();
    let requests = match opts.scale() {
        Scale::Test => 2_000,
        Scale::Full => 100_000,
    };
    println!(
        "Service study: open-loop burst arrivals, {requests} requests per cell \
         (latencies in virtual ticks)\n"
    );

    let mut observed: Option<(ServiceReport, Vec<gofree::PhaseTime>)> = None;
    for collector in CollectorKind::all() {
        let base = RunConfig {
            collector,
            ..opts.run_config()
        };
        println!("==== collector: {collector} ====\n");
        println!(
            "{:<8} {:<8} | {:>6} {:>8} {:>8} {:>8} {:>8} | {:>5} {:>8} | {:>9} | pause-histogram",
            "scenario",
            "setting",
            "p50",
            "p99",
            "p999",
            "max",
            "queue99",
            "gcs",
            "worstgc",
            "heap-hwm",
        );
        println!("{}", "-".repeat(96));
        for w in scenarios(opts.scale()) {
            let svc = ServiceConfig {
                requests,
                rps: rps_for(w.name),
                arrival: Arrival::Burst,
            };
            let mut p999 = Vec::new();
            for setting in [Setting::GoFree, Setting::Go, Setting::GoGcOff] {
                let compiled = compile(&w.source, &opts.compile_options(setting))
                    .unwrap_or_else(|e| panic!("{}: {e}", w.name));
                let r = run_service(&compiled, setting, &base, &svc)
                    .unwrap_or_else(|e| panic!("{}/{setting}: {e}", w.name));
                let s = &r.stats;
                // Pause histogram (minor + major merged) as a spark: digit
                // per log2 bucket, '-' when GC never ran (GCOff).
                let mut pauses = s.pause_minor;
                pauses.merge(&s.pause_major);
                let spark = if pauses.is_empty() {
                    "-".to_string()
                } else {
                    pauses.spark()
                };
                println!(
                    "{:<8} {:<8} | {:>6} {:>8} {:>8} {:>8} {:>8} | {:>5} {:>8} | {:>9} | {}",
                    w.name,
                    setting.to_string(),
                    s.latency_q.p50,
                    s.latency_q.p99,
                    s.latency_q.p999,
                    s.latency_q.max,
                    s.queue_q.p99,
                    s.gcs(),
                    s.pause_max(),
                    s.heap_hwm,
                    spark,
                );
                p999.push((setting, s.latency_q.p999));
                if setting == Setting::GoFree && observed.is_none() {
                    observed = Some((r, compiled.phase_times.clone()));
                }
            }
            if let (Some(&(_, free)), Some(&(_, go))) = (
                p999.iter().find(|(s, _)| *s == Setting::GoFree),
                p999.iter().find(|(s, _)| *s == Setting::Go),
            ) {
                let delta = go as i64 - free as i64;
                println!(
                    "{:<8} p999 delta GoFree vs Go: {delta:+} ticks ({})",
                    "",
                    if delta >= 0 {
                        "GoFree no worse"
                    } else {
                        "Go better here"
                    }
                );
            }
            println!();
        }
    }
    println!(
        "(expected shape: under the burst phase change GoFree's prompt reclamation \
         runs fewer/cheaper GC cycles than Go's GOGC pacing, so its p999 and worst \
         pause are no worse; GCOff has zero pauses but the largest heap.)"
    );

    // Observability artifacts come from the designated run: the first
    // GoFree cell (go collector, first scenario).
    if let Some((r, phases)) = observed {
        if opts.gctrace {
            eprint!("{}", service_gctrace_lines(&r.stats));
        }
        if let Some(path) = &opts.report_json {
            std::fs::write(path, service_report_json(&r.report, Some(&r.stats)))
                .expect("report json written");
            eprintln!("[report-json] wrote {path}");
        }
        opts.write_trace(&r.report, &phases);
    }
}
