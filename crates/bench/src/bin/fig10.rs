//! Regenerates fig. 10: the map microbenchmark sweeping the deallocated-
//! object-size parameter `c`. Bigger `c` keeps the free *ratio* comparable
//! while the mean freed object grows, shifting the benefit from GC-count
//! reduction toward heap-size reduction (§6.3).

use gofree::{fig10_point, Setting};
use gofree_bench::{pct, HarnessOptions};
use gofree_workloads::micro;

fn main() {
    let opts = HarnessOptions::from_args();
    let budget = if opts.quick { 128 } else { 2048 };
    let base = opts.run_config();
    println!("Fig. 10: microbenchmark, object-size sweep (total allocation held ~constant)\n");
    println!(
        "{:>4} | {:>10} {:>10} {:>10} {:>10} | {:>14}",
        "c", "free ratio", "time", "GCs", "maxheap", "mean freed obj"
    );
    println!("{}", "-".repeat(70));
    let mut points = Vec::new();
    let mut last_traced = None;
    for &c in micro::C_VALUES {
        let src = micro::source(c, budget);
        let go = gofree::compile(&src, &Setting::Go.compile_options()).expect("compiles");
        let gofree = gofree::compile(&src, &Setting::GoFree.compile_options()).expect("compiles");
        let go_r = gofree::execute(&go, Setting::Go, &base).expect("runs");
        let gf_r = gofree::execute(&gofree, Setting::GoFree, &base).expect("runs");
        assert_eq!(go_r.output, gf_r.output, "same behaviour at c={c}");
        let p = fig10_point(c, &go_r, &gf_r);
        let freed_objs: u64 = gf_r.metrics.freed_objects_by_source.iter().sum();
        let mean_obj = gf_r
            .metrics
            .freed_bytes
            .checked_div(freed_objs)
            .unwrap_or(0);
        println!(
            "{:>4} | {:>10} {:>10} {:>10} {:>10} | {:>12} B",
            p.c,
            pct(p.free_ratio),
            pct(p.time_ratio),
            pct(p.gc_ratio),
            pct(p.heap_ratio),
            mean_obj,
        );
        points.push(p);
        last_traced = Some((gf_r, gofree.phase_times.clone()));
    }
    println!("{}", "-".repeat(70));
    println!("\nExpected shape (paper fig. 10): free ratio comparable across c;");
    println!("small c -> bigger GC-count/time reduction; large c -> bigger heap reduction.");
    let first = &points[0];
    let last = &points[points.len() - 1];
    if last.heap_ratio < first.heap_ratio {
        println!("heap benefit grows with c: OK");
    }
    if first.gc_ratio <= last.gc_ratio {
        println!("GC-count benefit shrinks with c: OK");
    }
    // `--trace PATH`: export the last sweep point's GoFree event stream.
    if let Some((report, phases)) = last_traced {
        opts.emit_observability(&report, &phases);
    }
}
