//! GOGC sensitivity sweep: how GoFree's benefit varies with the GC pacing
//! knob. Smaller GOGC means more frequent collections, so explicit
//! deallocation avoids more of them; large GOGC amortizes GC so well that
//! GoFree's effect shrinks toward the allocator level. (The paper fixes
//! GOGC at the default 100; this extends table 7 along that axis.)

use gofree::{compile, execute, RunConfig, Setting};
use gofree_bench::{pct, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_args();
    let w = gofree_workloads::by_name("json", opts.scale()).expect("json workload");
    println!("GOGC sweep (json analogue)\n");
    println!(
        "{:>6} | {:>9} {:>9} {:>8} | {:>9} {:>9} {:>8}",
        "GOGC", "Go GCs", "GF GCs", "ratio", "Go time", "GF time", "ratio"
    );
    println!("{}", "-".repeat(72));
    let mut observed = None;
    for gogc in [25u64, 50, 100, 200, 400] {
        let cfg = RunConfig {
            gogc,
            ..opts.run_config()
        };
        let go = compile(&w.source, &Setting::Go.compile_options()).expect("compiles");
        let gf = compile(&w.source, &Setting::GoFree.compile_options()).expect("compiles");
        let go_r = execute(&go, Setting::Go, &cfg).expect("runs");
        let gf_r = execute(&gf, Setting::GoFree, &cfg).expect("runs");
        observed = Some(gf_r.clone());
        assert_eq!(go_r.output, gf_r.output);
        let gcs_ratio = if go_r.metrics.gcs == 0 {
            1.0
        } else {
            gf_r.metrics.gcs as f64 / go_r.metrics.gcs as f64
        };
        println!(
            "{:>6} | {:>9} {:>9} {:>8} | {:>9} {:>9} {:>8}",
            gogc,
            go_r.metrics.gcs,
            gf_r.metrics.gcs,
            pct(gcs_ratio),
            go_r.time,
            gf_r.time,
            pct(gf_r.time as f64 / go_r.time as f64),
        );
    }
    println!("\nExpected shape: tighter pacing (low GOGC) = more GCs avoided = bigger");
    println!("time benefit; generous pacing dilutes GoFree's effect.");
    if let Some(r) = &observed {
        opts.emit_observability(r, &[]);
    }
}
