//! Regenerates table 3: the points-to set of fig. 1's `pd2` under the
//! three escape analyses — Fast Escape Analysis (O(N)), the Go escape
//! graph (O(N²)), and the connection graph (O(N³)).

use std::collections::HashMap;

use minigo_escape::baseline::{conn, fast};
use minigo_escape::{build_func_graph, points_to, solve, BuildOptions, LocKind, SolveConfig};
use minigo_syntax::{frontend, VarId};

/// The paper's fig. 1 program (MiniGo syntax).
const FIG1: &str = r#"
type Big struct {
    fat []int
    p *int
}

func fig1(c int, d int) *int {
    s := make([]int, 10)
    bigObj := Big{s, &c}
    pc := &c
    pd := &d
    ppd := &pd
    *ppd = pc
    pd2 := *ppd
    bigObj.p = pd2
    return pd2
}
"#;

fn main() {
    let (program, res, types) = frontend(FIG1).expect("fig. 1 compiles");
    let func = program.func("fig1").expect("fig1").clone();
    let var_named = |name: &str| -> VarId {
        VarId(
            res.vars()
                .iter()
                .position(|v| v.name == name)
                .unwrap_or_else(|| panic!("no var {name}")) as u32,
        )
    };
    let pd2 = var_named("pd2");
    let name_of = |v: VarId| res.var(v).name.clone();

    println!("Table 3: PointsTo(L(pd2)) in different escape analyses");
    println!("(program: fig. 1; the indirect store *ppd = pc is the untracked flow)\n");
    println!(
        "{:<22} {:<12} {:<28} complete?",
        "Method", "Complexity", "PointsTo(L(pd2))"
    );

    // Fast Escape Analysis.
    let f = fast::analyze_func(&program, &res, &types, &func);
    let fast_pts: Vec<String> = f
        .points_to(pd2)
        .into_iter()
        .map(|p| match p {
            fast::Pointee::Var(v) => name_of(v),
            fast::Pointee::Alloc(e) => format!("alloc@{e}"),
        })
        .collect();
    println!(
        "{:<22} {:<12} {:<28} {}",
        "Fast Esc. Analysis",
        "O(N)",
        format!("{{{}}}", fast_pts.join(", ")),
        if f.is_incomplete(pd2) {
            "no (deref untracked)"
        } else {
            "yes"
        }
    );

    // Go escape graph (+ GoFree completeness analysis).
    let mut fg = build_func_graph(
        &program,
        &res,
        &types,
        &func,
        &HashMap::new(),
        &BuildOptions::default(),
    );
    solve(&mut fg.graph, &SolveConfig::default());
    let loc = fg.loc_of(pd2);
    let go_pts: Vec<String> = points_to(&fg.graph, loc)
        .into_iter()
        .filter(|l| {
            matches!(
                fg.graph.loc(*l).kind,
                LocKind::Var(_) | LocKind::Alloc(_, _)
            )
        })
        .map(|l| fg.graph.loc(l).name.clone())
        .collect();
    println!(
        "{:<22} {:<12} {:<28} {}",
        "Go esc. graph",
        "O(N^2)",
        format!("{{{}}}", go_pts.join(", ")),
        if fg.graph.loc(loc).incomplete {
            "no (GoFree: Incomplete, not freed)"
        } else {
            "yes"
        }
    );

    // Connection graph.
    let c = conn::analyze_func(&program, &res, &types, &func);
    let mut conn_pts: Vec<String> = c
        .points_to(pd2)
        .into_iter()
        .filter_map(|n| match n {
            conn::Node::Var(v) => Some(name_of(v)),
            conn::Node::Alloc(e) if e.0 < program.expr_count => Some(format!("alloc@{e}")),
            _ => None,
        })
        .collect();
    conn_pts.sort();
    println!(
        "{:<22} {:<12} {:<28} yes (tracks indirect stores)",
        "Conn. graph",
        "O(N^3)",
        format!("{{{}}}", conn_pts.join(", "))
    );

    println!("\nExpected shape (paper table 3):");
    println!("  Fast:  {{}} — every dereference loses the set");
    println!("  Go:    {{d}} — misses c (flow through *ppd omitted)");
    println!("  Conn.: {{c, d}} — complete");
    assert!(fast_pts.is_empty(), "fast analysis must lose the set");
    assert!(
        go_pts.iter().any(|n| n == "d") && !go_pts.iter().any(|n| n == "c"),
        "Go graph sees d but not c: {go_pts:?}"
    );
    assert!(
        conn_pts.iter().any(|n| n == "c") && conn_pts.iter().any(|n| n == "d"),
        "connection graph sees both: {conn_pts:?}"
    );
    assert!(fg.graph.loc(loc).incomplete, "GoFree flags pd2 incomplete");
    println!("\nAll table 3 invariants hold.");
}
