//! Regenerates table 8: stack/heap allocation decisions for slices, maps,
//! and other data, plus the `tcfree/(tcfree+GC)` reclamation shares that
//! justify GoFree's deallocation-target selection (§6.5).

use gofree::{execute, table8_row, Setting};
use gofree_bench::{pct, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_args();
    let base = opts.run_config();
    println!("Table 8: stack/heap allocation decisions (one GoFree run per project)\n");
    println!(
        "{:<10} | {:>9} {:>8} | {:>8} {:>9} {:>8} {:>7} | {:>8} {:>9} {:>8} {:>7}",
        "project",
        "stack-oth",
        "heapGC-o",
        "stack-sl",
        "tcfree-sl",
        "heapGC-s",
        "share",
        "stack-mp",
        "tcfree-mp",
        "heapGC-m",
        "share"
    );
    println!("{}", "-".repeat(112));
    let mut slice_shares = Vec::new();
    let mut map_shares = Vec::new();
    let mut observed = None;
    for w in gofree_workloads::all(opts.scale()) {
        let compiled =
            gofree::compile(&w.source, &Setting::GoFree.compile_options()).expect("compiles");
        let report = execute(&compiled, Setting::GoFree, &base).expect("runs");
        let row = table8_row(w.name, &report);
        println!(
            "{:<10} | {:>9} {:>8} | {:>8} {:>9} {:>8} {:>7} | {:>8} {:>9} {:>8} {:>7}",
            row.project,
            row.stack_others,
            row.heap_gc_others,
            row.stack_slices,
            row.heap_tcfree_slices,
            row.heap_gc_slices,
            pct(row.slice_share()),
            row.stack_maps,
            row.heap_tcfree_maps,
            row.heap_gc_maps,
            pct(row.map_share()),
        );
        if row.heap_tcfree_slices + row.heap_gc_slices > 0 {
            slice_shares.push(row.slice_share());
        }
        if row.heap_tcfree_maps + row.heap_gc_maps > 0 {
            map_shares.push(row.map_share());
        }
        observed = Some(report);
    }
    println!("{}", "-".repeat(112));
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "{:<10} | {:>30} {:>15} avg share {:>6} | {:>24} avg share {:>6}",
        "average",
        "",
        "",
        pct(avg(&slice_shares)),
        "",
        pct(avg(&map_shares)),
    );
    println!(
        "\nPaper: slices avg share 10%, maps avg share 34%; \"others\" are overwhelmingly stack-allocated,"
    );
    println!("which is why GoFree restricts freeing to slices and maps.");
    if let Some(r) = &observed {
        opts.emit_observability(r, &[]);
    }
}
