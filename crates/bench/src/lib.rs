//! # gofree-bench
//!
//! The benchmark harness regenerating every table and figure in the
//! GoFree paper's evaluation (§6). Each experiment is a binary:
//!
//! | target | regenerates |
//! |---|---|
//! | `table3` | points-to sets across the three analyses (§4.2) |
//! | `table7` | real-world performance ratios with p-values (§6.4) |
//! | `table8` | stack/heap decisions + tcfree shares (§6.5) |
//! | `table9` | contribution breakdown (§6.6) |
//! | `fig10` | map microbenchmark size sweep (§6.3) |
//! | `fig11` | run-time distributions across 99 runs (§6.4) |
//! | `compile_speed` | compilation-speed comparison (§6.7) |
//! | `robustness` | mock-tcfree memory-corruption check (§6.8) |
//! | `ablation` | design-choice ablations from DESIGN.md |
//! | `audit` | free-safety audit + sanitizer sweep (DESIGN.md §8) |
//! | `collectors` | tables 7–9 + heap curves per collection backend (DESIGN.md §11) |
//!
//! Criterion benches under `benches/` time the analyses and the runtime
//! primitives themselves.

use gofree::{Compiled, RunConfig, Setting};

/// Common command-line options for the experiment binaries.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Runs per setting (the paper uses 99).
    pub runs: u64,
    /// Use the quick test scale instead of the full evaluation scale.
    pub quick: bool,
    /// Which VM engine executes the workloads. Results are identical
    /// either way (differential-tested); the engines only differ in host
    /// wall-clock speed.
    pub engine: gofree::VmEngine,
    /// Which bytecode instruction stream runs (`full` = the optimizer
    /// tier, the default; `off` = the baseline lowering). Like
    /// `engine`, results are identical either way.
    pub opt: gofree::OptLevel,
    /// Worker threads fanning (workload × setting × run-index) cells
    /// across cores. Reported numbers are identical for any value
    /// (tests/parallel.rs); only host wall-clock changes.
    pub jobs: usize,
    /// Which collection backend paces and runs GC cycles: `go` (the
    /// paper's mark-sweep, the default) or `gen` (the generational
    /// nursery). Unlike `engine`/`jobs` this changes the reported
    /// numbers — that difference is the point of the collector study.
    pub collector: gofree::CollectorKind,
    /// When set, runs record the runtime event trace and the binary
    /// exports run 0's stream as Chrome `trace_event` JSON to this path
    /// (see [`HarnessOptions::write_trace`]). Tracing never changes the
    /// reported numbers — it only observes.
    pub trace: Option<String>,
    /// When set, the binary writes the call-stack-attributed allocation
    /// profile of its designated run to this path (plus `PATH.folded`
    /// for `flamegraph.pl`), reconciled exactly against the run's
    /// metrics first. Observational only, like `trace`.
    pub profile: Option<String>,
    /// Print a `GODEBUG=gctrace=1`-style pacing line per GC cycle of the
    /// designated run to stderr.
    pub gctrace: bool,
    /// When set, the binary writes its designated run's report as JSON
    /// (stable field names, `gofree-report/1` schema) to this path.
    pub report_json: Option<String>,
    /// Where GoFree-compiled workloads place their inserted frees:
    /// `scope` (§4.5 scope exit, the default) or `lastuse`
    /// (liveness-driven advancement plus partial frees). The `liveness`
    /// binary compares both regardless of this setting.
    pub free_placement: gofree::FreePlacement,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            runs: 99,
            quick: false,
            engine: gofree::VmEngine::default(),
            opt: gofree::OptLevel::default(),
            jobs: gofree::default_jobs(),
            collector: gofree::CollectorKind::default(),
            trace: None,
            profile: None,
            gctrace: false,
            report_json: None,
            free_placement: gofree::FreePlacement::Scope,
        }
    }
}

impl HarnessOptions {
    /// Parses `--runs N` and `--quick` from `std::env::args`.
    pub fn from_args() -> Self {
        let mut opts = HarnessOptions::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--runs" | "-r" => {
                    if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                        opts.runs = n;
                    }
                }
                "--quick" | "-q" => {
                    opts.quick = true;
                    if opts.runs == 99 {
                        opts.runs = 9;
                    }
                }
                "--engine" | "-e" => {
                    if let Some(e) = args.next().and_then(|v| v.parse().ok()) {
                        opts.engine = e;
                    }
                }
                "--jobs" | "-j" => {
                    if let Some(n) = args.next().and_then(|v| v.parse().ok()).filter(|&n| n >= 1) {
                        opts.jobs = n;
                    }
                }
                "--collector" => {
                    if let Some(c) = args.next().and_then(|v| v.parse().ok()) {
                        opts.collector = c;
                    }
                }
                "--opt" => {
                    if let Some(o) = args.next().and_then(|v| v.parse().ok()) {
                        opts.opt = o;
                    }
                }
                "--trace" | "-t" => {
                    if let Some(path) = args.next() {
                        opts.trace = Some(path);
                    }
                }
                "--profile" | "-p" => {
                    if let Some(path) = args.next() {
                        opts.profile = Some(path);
                    }
                }
                "--gctrace" => opts.gctrace = true,
                "--free-placement" => {
                    if let Some(p) = args
                        .next()
                        .as_deref()
                        .and_then(gofree::FreePlacement::parse)
                    {
                        opts.free_placement = p;
                    }
                }
                "--report-json" => {
                    if let Some(path) = args.next() {
                        opts.report_json = Some(path);
                    }
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --runs N (default 99), --quick, \
                         --engine tree-walk|bytecode (default bytecode), \
                         --opt off|full (default full), \
                         --jobs N (default GOFREE_JOBS or 1), \
                         --collector go|gen (default go), \
                         --trace PATH (export a run's event trace as Chrome JSON), \
                         --profile PATH (stack-attributed allocation profile + PATH.folded), \
                         --gctrace (per-GC-cycle pacing log on stderr), \
                         --free-placement scope|lastuse (default scope), \
                         --report-json PATH (run report as JSON)"
                    );
                    std::process::exit(0);
                }
                other => eprintln!("ignoring unknown option {other}"),
            }
        }
        opts
    }

    /// The workload scale matching `quick`.
    pub fn scale(&self) -> gofree_workloads::Scale {
        if self.quick {
            gofree_workloads::Scale::Test
        } else {
            gofree_workloads::Scale::Full
        }
    }

    /// The evaluation [`RunConfig`] carrying this harness's engine and
    /// worker-count selections.
    pub fn run_config(&self) -> RunConfig {
        RunConfig {
            engine: self.engine,
            opt: self.opt,
            jobs: self.jobs,
            collector: self.collector,
            trace: self.observing(),
            ..eval_run_config()
        }
    }

    /// True when any observability flag needs the runtime event trace.
    pub fn observing(&self) -> bool {
        self.trace.is_some() || self.profile.is_some() || self.gctrace
    }

    /// The compiler options for `setting`, carrying this harness's
    /// `--free-placement` selection (plain-Go settings ignore it).
    pub fn compile_options(&self, setting: Setting) -> gofree::CompileOptions {
        gofree::CompileOptions {
            free_placement: self.free_placement,
            ..setting.compile_options()
        }
    }

    /// Exports a traced report's event stream to the `--trace` path as
    /// Chrome `trace_event` JSON (no-op without `--trace`). Reconciles
    /// the folded trace against the report's metrics first, so a trace
    /// that disagrees with the published numbers can never be exported.
    ///
    /// # Panics
    ///
    /// Panics if the report carries no trace (the harness misconfigured
    /// [`RunConfig::trace`]), if reconciliation fails, or if the file
    /// cannot be written.
    pub fn write_trace(&self, report: &gofree::Report, phases: &[gofree::PhaseTime]) {
        let Some(path) = &self.trace else { return };
        let trace = report.trace.as_ref().expect("traced run carries a trace");
        trace
            .reconcile(&report.metrics)
            .expect("trace reconciles with metrics");
        let json = gofree::chrome_trace_json(trace, phases);
        std::fs::write(path, json).expect("trace file written");
        eprintln!("[trace] wrote {} events to {path}", trace.events.len());
    }

    /// Emits every requested observability artifact for a binary's
    /// designated run: the Chrome trace (`--trace`), the stack-attributed
    /// allocation profile and its folded-stack companion (`--profile`),
    /// the per-cycle pacing log (`--gctrace`), and the JSON report
    /// (`--report-json`). A no-op for artifacts not asked for, so every
    /// experiment binary can call it unconditionally after its run.
    ///
    /// # Panics
    ///
    /// Panics if an observability flag is set but the report carries no
    /// trace, if trace or profile reconciliation fails, or if an output
    /// file cannot be written.
    pub fn emit_observability(&self, report: &gofree::Report, phases: &[gofree::PhaseTime]) {
        self.write_trace(report, phases);
        if let Some(path) = &self.profile {
            let trace = report.trace.as_ref().expect("profiled run carries a trace");
            let profile = gofree::Profile::build(trace);
            profile
                .reconcile(&report.metrics)
                .expect("profile reconciles with metrics");
            // Bench binaries have no source text in hand, so drag sites
            // keep their numeric labels (`minigo --profile` resolves
            // them to line:col).
            let labels = std::collections::HashMap::new();
            let text = gofree::profile_report(&profile, trace, &labels);
            std::fs::write(path, text).expect("profile file written");
            let folded =
                gofree::folded_stacks(&profile, &trace.stacks, gofree::FoldedMetric::AllocBytes);
            let folded_path = format!("{path}.folded");
            std::fs::write(&folded_path, folded).expect("folded profile written");
            eprintln!(
                "[profile] {} stacks reconciled; wrote {path} and {folded_path}",
                trace.stacks.len()
            );
        }
        if self.gctrace {
            let trace = report.trace.as_ref().expect("traced run carries a trace");
            for line in gofree::gctrace_lines(trace) {
                eprintln!("{line}");
            }
        }
        if let Some(path) = &self.report_json {
            std::fs::write(path, gofree::report_json(report)).expect("report JSON written");
            eprintln!("[report] wrote {path}");
        }
    }

    /// Designated observability run for binaries whose measurement loop
    /// yields no reusable [`gofree::Report`] (VM-level toggles,
    /// fingerprint-only sweeps): compile the named workload at the
    /// harness scale, run it once under GoFree with the harness
    /// configuration, and emit the requested artifacts. A no-op when no
    /// observability flag is set.
    ///
    /// # Panics
    ///
    /// Panics if the workload is unknown, fails to compile or run, or
    /// [`HarnessOptions::emit_observability`] fails.
    pub fn observe_workload(&self, name: &str) {
        if !self.observing() && self.report_json.is_none() {
            return;
        }
        let w = gofree_workloads::by_name(name, self.scale()).expect("workload exists");
        let compiled = gofree::compile(&w.source, &self.compile_options(Setting::GoFree))
            .expect("workload compiles");
        let report =
            gofree::execute(&compiled, Setting::GoFree, &self.run_config()).expect("workload runs");
        self.emit_observability(&report, &compiled.phase_times);
    }
}

/// The run configuration the evaluation uses (tighter GC trigger than the
/// library default so every workload exercises the collector).
pub fn eval_run_config() -> RunConfig {
    RunConfig {
        min_heap: 128 * 1024,
        ..RunConfig::default()
    }
}

/// Formats a fraction as a percentage like the paper's tables ("93%").
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// Formats a p-value the way table 7 prints them.
pub fn fmt_p(p: f64) -> String {
    if p < 0.001 {
        "<0.001".to_string()
    } else {
        format!("{p:.3}")
    }
}

/// Runs all three settings of one workload and returns
/// (go, gofree, gcoff) report vectors.
///
/// # Panics
///
/// Panics if compilation or any run fails — experiment inputs are fixed
/// and must work.
pub fn run_three_settings(
    source: &str,
    runs: u64,
    base: &RunConfig,
) -> (
    Vec<gofree::Report>,
    Vec<gofree::Report>,
    Vec<gofree::Report>,
) {
    run_three_settings_placed(source, runs, base, gofree::FreePlacement::Scope)
}

/// [`run_three_settings`] with an explicit free-placement mode for the
/// GoFree setting (the plain-Go settings have no frees to place).
///
/// # Panics
///
/// Panics if compilation or any run fails.
pub fn run_three_settings_placed(
    source: &str,
    runs: u64,
    base: &RunConfig,
    placement: gofree::FreePlacement,
) -> (
    Vec<gofree::Report>,
    Vec<gofree::Report>,
    Vec<gofree::Report>,
) {
    let compiled: Vec<(Compiled, Setting)> = Setting::all()
        .into_iter()
        .map(|setting| {
            let opts = gofree::CompileOptions {
                free_placement: placement,
                ..setting.compile_options()
            };
            let c = gofree::compile(source, &opts).expect("workload compiles");
            (c, setting)
        })
        .collect();
    // One matrix call fans all (setting × run-index) cells across the
    // worker pool instead of draining one setting at a time.
    let cells: Vec<(&Compiled, Setting)> = compiled.iter().map(|(c, s)| (c, *s)).collect();
    let mut out = gofree::run_matrix(&cells, base, runs).expect("workload runs");
    let gcoff = out.pop().expect("three settings");
    let gofree = out.pop().expect("three settings");
    let go = out.pop().expect("three settings");
    (go, gofree, gcoff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_and_p_formatting() {
        assert_eq!(pct(0.934), "93%");
        assert_eq!(pct(1.0), "100%");
        assert_eq!(fmt_p(0.0004), "<0.001");
        assert_eq!(fmt_p(0.253), "0.253");
    }

    #[test]
    fn run_three_settings_produces_consistent_outputs() {
        let w = gofree_workloads::by_name("json", gofree_workloads::Scale::Test).unwrap();
        let (go, gofree, gcoff) = run_three_settings(&w.source, 3, &eval_run_config());
        assert_eq!(go.len(), 3);
        assert_eq!(go[0].output, gofree[0].output);
        assert_eq!(go[0].output, gcoff[0].output);
    }
}
