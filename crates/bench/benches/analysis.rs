//! Criterion benches for the static analyses: the §6.7 compilation-speed
//! claim (GoFree's analysis adds no observable cost to Go's) and the
//! complexity comparison of §2.1.2 (fast O(N) / escape graph O(N²) /
//! connection graph O(N³)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gofree::{compile, CompileOptions};
use gofree_workloads::corpus;
use minigo_escape::baseline::{conn, fast};
use minigo_syntax::frontend;

/// Go-vs-GoFree compile time across corpus sizes.
fn bench_compile_speed(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_speed");
    group.sample_size(12);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for n in [40usize, 160] {
        let src = corpus::generate(n);
        group.bench_with_input(BenchmarkId::new("go", n), &src, |b, src| {
            b.iter(|| compile(src, &CompileOptions::go()).expect("compiles"));
        });
        group.bench_with_input(BenchmarkId::new("gofree", n), &src, |b, src| {
            b.iter(|| compile(src, &CompileOptions::default()).expect("compiles"));
        });
    }
    group.finish();
}

/// Generates one function whose points-to sets are O(k) wide: a hub
/// pointer that may reference every variable, plus k indirect stores
/// through it. Each store makes the connection graph propagate into O(k)
/// pointees — the O(N³) behaviour §2.1.2 describes — while the escape
/// graph replaces all of it with a single `heapLoc` edge.
fn big_function(k: usize) -> String {
    let mut body = String::from("func big(n int) int {\n");
    for i in 0..k {
        body.push_str(&format!("    x{i} := n + {i}\n"));
    }
    body.push_str("    hub := &x0\n");
    for i in 1..k {
        body.push_str(&format!("    hub = &x{i}\n"));
    }
    for i in 0..k {
        body.push_str(&format!("    *hub = x{i}\n"));
    }
    body.push_str("    d := *hub\n    return d\n}\nfunc main() { print(big(1)) }\n");
    body
}

/// The three analyses on one function of growing size.
fn bench_analysis_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for k in [50usize, 200] {
        let src = big_function(k);
        let (program, res, types) = frontend(&src).expect("compiles");
        let func = program.func("big").expect("big").clone();
        group.bench_with_input(BenchmarkId::new("fast", k), &(), |b, ()| {
            b.iter(|| fast::analyze_func(&program, &res, &types, &func));
        });
        let src2 = src.clone();
        group.bench_with_input(BenchmarkId::new("escape_graph", k), &src2, |b, src| {
            b.iter(|| compile(src, &CompileOptions::default()).expect("compiles"));
        });
        group.bench_with_input(BenchmarkId::new("conn_graph", k), &(), |b, ()| {
            b.iter(|| conn::analyze_func(&program, &res, &types, &func));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile_speed, bench_analysis_scaling);
criterion_main!(benches);
