//! Criterion benches for the runtime primitives: allocation fast path,
//! the `tcfree` small-object revert, the large-object two-step free, and
//! a mark-sweep cycle.

use std::collections::HashSet;

use criterion::{criterion_group, criterion_main, Criterion};
use minigo_runtime::{Category, FreeSource, Runtime, RuntimeConfig};

fn quiet() -> RuntimeConfig {
    RuntimeConfig {
        migrate_prob: 0.0,
        jitter: 0.0,
        gc_enabled: false,
        ..RuntimeConfig::default()
    }
}

fn bench_alloc(c: &mut Criterion) {
    c.bench_function("alloc_small_fast_path", |b| {
        let mut rt = Runtime::new(quiet());
        b.iter(|| std::hint::black_box(rt.alloc(64, Category::Slice)));
    });
    c.bench_function("alloc_large", |b| {
        let mut rt = Runtime::new(quiet());
        b.iter(|| {
            let a = rt.alloc(100_000, Category::Slice);
            rt.tcfree(a, FreeSource::SliceLifetime)
        });
    });
}

fn bench_tcfree(c: &mut Criterion) {
    c.bench_function("tcfree_small_revert", |b| {
        let mut rt = Runtime::new(quiet());
        b.iter(|| {
            let a = rt.alloc(64, Category::Slice);
            rt.tcfree(a, FreeSource::SliceLifetime)
        });
    });
    c.bench_function("tcfree_bail_already_free", |b| {
        let mut rt = Runtime::new(quiet());
        let a = rt.alloc(64, Category::Slice);
        rt.tcfree(a, FreeSource::SliceLifetime);
        let b2 = rt.alloc(64, Category::Slice); // occupy the slot again
        rt.tcfree(b2, FreeSource::SliceLifetime);
        b.iter(|| rt.tcfree(a, FreeSource::SliceLifetime));
    });
}

fn bench_gc_cycle(c: &mut Criterion) {
    c.bench_function("gc_mark_sweep_1000_objects", |b| {
        b.iter_with_setup(
            || {
                let mut rt = Runtime::new(quiet());
                let addrs: Vec<_> = (0..1000)
                    .map(|i| rt.alloc(64 + (i % 7) * 100, Category::Other))
                    .collect();
                let marked: HashSet<_> = addrs.iter().step_by(2).copied().collect();
                (rt, marked)
            },
            |(mut rt, marked)| {
                std::hint::black_box(rt.collect(&marked));
            },
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_alloc, bench_tcfree, bench_gc_cycle
}
criterion_main!(benches);
