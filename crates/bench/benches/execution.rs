//! Criterion benches for end-to-end workload execution under the three
//! settings — the wall-clock cousin of the virtual-time table 7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gofree::{compile, execute, RunConfig, Setting};
use gofree_workloads::Scale;

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_execution");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let cfg = RunConfig {
        min_heap: 64 * 1024,
        ..RunConfig::default()
    };
    for name in ["json", "scheck"] {
        let w = gofree_workloads::by_name(name, Scale::Test).expect("workload");
        for setting in [Setting::Go, Setting::GoFree] {
            let compiled = compile(&w.source, &setting.compile_options()).expect("compiles");
            group.bench_with_input(
                BenchmarkId::new(format!("{setting}"), name),
                &compiled,
                |b, compiled| {
                    b.iter(|| execute(compiled, setting, &cfg).expect("runs"));
                },
            );
        }
    }
    group.finish();
}

fn bench_microbenchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_micro");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let cfg = RunConfig::deterministic(1);
    for &cval in &[1u64, 16] {
        let src = gofree_workloads::micro::source(cval, 64);
        let compiled = compile(&src, &Setting::GoFree.compile_options()).expect("compiles");
        group.bench_with_input(
            BenchmarkId::new("gofree", cval),
            &compiled,
            |b, compiled| {
                b.iter(|| execute(compiled, Setting::GoFree, &cfg).expect("runs"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_workloads, bench_microbenchmark);
criterion_main!(benches);
