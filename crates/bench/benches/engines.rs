//! Criterion benches comparing the two execution engines on the same
//! compiled workloads. Virtual-time results are identical by
//! construction (see `tests/engines.rs`); this measures the host
//! wall-clock cost of tree-walking the AST versus dispatching the
//! lowered bytecode. `--bin engines` prints the same comparison as a
//! table with a geomean.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gofree::{compile, execute, RunConfig, Setting, VmEngine};
use gofree_workloads::Scale;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm_engines");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for name in ["json", "scheck"] {
        let w = gofree_workloads::by_name(name, Scale::Test).expect("workload");
        let compiled = compile(&w.source, &Setting::GoFree.compile_options()).expect("compiles");
        for engine in [VmEngine::TreeWalk, VmEngine::Bytecode] {
            let cfg = RunConfig {
                min_heap: 64 * 1024,
                engine,
                ..RunConfig::default()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("{engine}"), name),
                &compiled,
                |b, compiled| {
                    b.iter(|| execute(compiled, Setting::GoFree, &cfg).expect("runs"));
                },
            );
        }
    }
    group.finish();
}

fn bench_lowering(c: &mut Criterion) {
    let mut group = c.benchmark_group("lowering");
    group.sample_size(10);
    let w = gofree_workloads::by_name("json", Scale::Test).expect("workload");
    let compiled = compile(&w.source, &Setting::GoFree.compile_options()).expect("compiles");
    group.bench_function("lower_json", |b| {
        b.iter(|| {
            minigo_vm::lower(
                &compiled.program,
                &compiled.resolution,
                &compiled.types,
                &compiled.analysis,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_engines, bench_lowering);
criterion_main!(benches);
