//! Trace exporters: render a run's [`Trace`] (and the compiler's
//! [`PhaseTime`] measurements) into shareable artifacts.
//!
//! Two formats are produced:
//!
//! * [`chrome_trace_json`] — the Chrome `trace_event` JSON format
//!   (load it at `chrome://tracing` or in Perfetto). Runtime events are
//!   placed on one track using their **virtual** timestamps as
//!   microseconds; compile phases go on a second track using host
//!   wall-clock durations. The two tracks share a file but not a
//!   clock — the runtime track is deterministic, the compile track is
//!   not.
//! * [`timeline_table`] — a compact fixed-width per-allocation-site
//!   table with an ASCII activity sparkline, designed to be stable
//!   across hosts so golden tests can snapshot it byte-for-byte.

use std::collections::HashMap;
use std::fmt::Write as _;

use minigo_runtime::{FreeStep, Trace, TraceEvent};

use crate::pipeline::PhaseTime;

/// Escapes a string for embedding in a JSON string literal (shared with
/// the `--report-json` writer).
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a trace as Chrome `trace_event` JSON (the "JSON array
/// format" wrapped in a `traceEvents` object).
///
/// Track layout: `tid 0` holds the compile phases as complete (`"X"`)
/// events laid end to end in wall-clock microseconds; `tid 1` holds the
/// runtime event stream — instants for allocs/frees/bails/flushes,
/// complete events for GC cycles, and a `heap` counter track sampling
/// live bytes. Runtime timestamps are virtual ticks written as
/// microseconds, so the runtime track is bit-identical across hosts,
/// engines, and `--jobs` settings.
pub fn chrome_trace_json(trace: &Trace, phases: &[PhaseTime]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, ev: String| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&ev);
    };

    // Compile phases: host wall-clock, laid end to end from ts 0.
    let mut ts = 0.0f64;
    for p in phases {
        let dur = p.nanos as f64 / 1000.0;
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"compile\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\
                 \"ts\":{ts:.3},\"dur\":{dur:.3}}}",
                esc(p.phase)
            ),
        );
        ts += dur;
    }

    // Runtime events: virtual ticks as microseconds.
    for ev in &trace.events {
        let rendered = match *ev {
            TraceEvent::Alloc {
                at,
                addr,
                site,
                stack,
                cat,
                bytes,
                large,
                heap_live,
                footprint,
            } => format!(
                "{{\"name\":\"alloc\",\"cat\":\"runtime\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\
                 \"tid\":1,\"ts\":{at},\"args\":{{\"addr\":\"{}\",\"site\":{},\
                 \"stack\":\"{}\",\"kind\":\"{cat:?}\",\"bytes\":{bytes},\"large\":{large}}}}},\n\
                 {{\"name\":\"heap\",\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":{at},\
                 \"args\":{{\"live\":{heap_live},\"footprint\":{footprint}}}}}",
                fmt_addr(addr),
                fmt_site(site),
                esc(&trace.stacks.folded(stack)),
            ),
            TraceEvent::StackAlloc { at, cat, stack } => format!(
                "{{\"name\":\"stack-alloc\",\"cat\":\"runtime\",\"ph\":\"i\",\"s\":\"t\",\
                 \"pid\":1,\"tid\":1,\"ts\":{at},\"args\":{{\"kind\":\"{cat:?}\",\
                 \"stack\":\"{}\"}}}}",
                esc(&trace.stacks.folded(stack)),
            ),
            TraceEvent::Free {
                at,
                addr,
                site,
                stack,
                cat,
                source,
                bytes,
                step,
                heap_live,
            } => format!(
                "{{\"name\":\"free\",\"cat\":\"runtime\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\
                 \"tid\":1,\"ts\":{at},\"args\":{{\"addr\":\"{}\",\"site\":{},\
                 \"stack\":\"{}\",\"kind\":\"{cat:?}\",\"source\":\"{source:?}\",\
                 \"bytes\":{bytes},\"step\":\"{}\"}}}},\n\
                 {{\"name\":\"heap\",\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":{at},\
                 \"args\":{{\"live\":{heap_live}}}}}",
                fmt_addr(addr),
                fmt_site(site),
                esc(&trace.stacks.folded(stack)),
                fmt_step(step),
            ),
            TraceEvent::FreeBail { at, reason, stack } => format!(
                "{{\"name\":\"free-bail\",\"cat\":\"runtime\",\"ph\":\"i\",\"s\":\"t\",\
                 \"pid\":1,\"tid\":1,\"ts\":{at},\"args\":{{\"reason\":\"{reason:?}\",\
                 \"stack\":\"{}\"}}}}",
                esc(&trace.stacks.folded(stack)),
            ),
            TraceEvent::FreePoison { at, addr, stack } => format!(
                "{{\"name\":\"free-poison\",\"cat\":\"runtime\",\"ph\":\"i\",\"s\":\"t\",\
                 \"pid\":1,\"tid\":1,\"ts\":{at},\"args\":{{\"addr\":\"{}\",\
                 \"stack\":\"{}\"}}}}",
                fmt_addr(addr),
                esc(&trace.stacks.folded(stack)),
            ),
            TraceEvent::Sweep {
                at,
                addr,
                cat,
                bytes,
            } => format!(
                "{{\"name\":\"sweep\",\"cat\":\"runtime\",\"ph\":\"i\",\"s\":\"t\",\
                 \"pid\":1,\"tid\":1,\"ts\":{at},\"args\":{{\"addr\":\"{}\",\
                 \"kind\":\"{cat:?}\",\"bytes\":{bytes}}}}}",
                fmt_addr(addr),
            ),
            TraceEvent::McacheFlush { at, thread } => format!(
                "{{\"name\":\"mcache-flush\",\"cat\":\"runtime\",\"ph\":\"i\",\"s\":\"t\",\
                 \"pid\":1,\"tid\":1,\"ts\":{at},\"args\":{{\"thread\":{thread}}}}}"
            ),
            TraceEvent::GcStart {
                at,
                heap_live,
                heap_goal,
                window,
                kind,
            } => format!(
                "{{\"name\":\"gc-trigger\",\"cat\":\"runtime\",\"ph\":\"i\",\"s\":\"t\",\
                 \"pid\":1,\"tid\":1,\"ts\":{at},\"args\":{{\"live\":{heap_live},\
                 \"goal\":{heap_goal},\"window\":{window},\"kind\":\"{kind}\"}}}}"
            ),
            TraceEvent::GcEnd {
                at,
                heap_live,
                next_goal,
                swept,
                swept_bytes,
                dangling_retired,
                ticks,
                kind,
            } => format!(
                "{{\"name\":\"gc\",\"cat\":\"runtime\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
                 \"ts\":{},\"dur\":{ticks},\"args\":{{\"swept\":{:?},\
                 \"swept_bytes\":{swept_bytes},\"dangling_retired\":{dangling_retired},\
                 \"next_goal\":{next_goal},\"kind\":\"{kind}\",\"collector\":\"{}\"}}}},\n\
                 {{\"name\":\"heap\",\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":{at},\
                 \"args\":{{\"live\":{heap_live}}}}}",
                at.saturating_sub(ticks),
                swept,
                trace.collector.name(),
            ),
            TraceEvent::Finalize {
                at,
                leftover,
                footprint,
            } => format!(
                "{{\"name\":\"finalize\",\"cat\":\"runtime\",\"ph\":\"i\",\"s\":\"t\",\
                 \"pid\":1,\"tid\":1,\"ts\":{at},\"args\":{{\"leftover\":{leftover:?},\
                 \"footprint\":{footprint}}}}}"
            ),
            TraceEvent::Request {
                at,
                id,
                arrival,
                start,
            } => format!(
                "{{\"name\":\"request {id}\",\"cat\":\"service\",\"ph\":\"X\",\"pid\":1,\
                 \"tid\":2,\"ts\":{start},\"dur\":{},\"args\":{{\"id\":{id},\
                 \"arrival\":{arrival},\"queue\":{}}}}}",
                at.saturating_sub(start),
                start.saturating_sub(arrival),
            ),
        };
        push(&mut out, &mut first, rendered);
    }
    out.push_str("\n]}\n");
    out
}

fn fmt_addr(addr: minigo_runtime::ObjAddr) -> String {
    format!("s{}.{}", addr.span.0, addr.slot)
}

fn fmt_site(site: Option<u32>) -> String {
    match site {
        Some(s) => s.to_string(),
        None => "null".to_string(),
    }
}

fn fmt_step(step: FreeStep) -> String {
    match step {
        FreeStep::SlotClear => "slot-clear".to_string(),
        FreeStep::Revert { cascade } => format!("revert+{cascade}"),
        FreeStep::LargeStep1 => "large-step1".to_string(),
    }
}

/// Sparkline width (time buckets) in the timeline table.
const TIMELINE_BUCKETS: usize = 24;

/// Density ramp for the sparkline, lightest to darkest. ASCII only, so
/// golden snapshots render identically everywhere.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders the compact per-site timeline table.
///
/// One row per allocation site that allocated on the heap (plus a
/// `<runtime>` row for unattributed internal allocations, when any):
/// allocation count, accounted bytes, explicit frees attributed back to
/// the site, the resulting free percentage, and an ASCII sparkline of
/// allocation activity over virtual time, bucketed into
/// [`TIMELINE_BUCKETS`] columns. Rows are sorted by bytes descending,
/// then site id, so the table is deterministic. `labels` maps site ids
/// (raw `ExprId` numbers) to human-readable descriptions, e.g. from
/// `minigo`'s span table; unlabeled sites print as `site <id>`.
pub fn timeline_table(trace: &Trace, labels: &HashMap<u32, String>) -> String {
    struct Row {
        allocs: u64,
        bytes: u64,
        freed: u64,
        buckets: [u64; TIMELINE_BUCKETS],
    }
    let (t0, t1) = match (trace.events.first(), trace.events.last()) {
        (Some(a), Some(b)) => (a.at(), b.at()),
        _ => return "(no events)\n".to_string(),
    };
    let span = (t1 - t0).max(1);
    let bucket_of = |at: u64| {
        (((at - t0) as u128 * TIMELINE_BUCKETS as u128 / (span as u128 + 1)) as usize)
            .min(TIMELINE_BUCKETS - 1)
    };

    let mut rows: HashMap<Option<u32>, Row> = HashMap::new();
    for ev in &trace.events {
        match *ev {
            TraceEvent::Alloc {
                at, site, bytes, ..
            } => {
                let row = rows.entry(site).or_insert_with(|| Row {
                    allocs: 0,
                    bytes: 0,
                    freed: 0,
                    buckets: [0; TIMELINE_BUCKETS],
                });
                row.allocs += 1;
                row.bytes += bytes;
                row.buckets[bucket_of(at)] += 1;
            }
            TraceEvent::Free { site, .. } => {
                let row = rows.entry(site).or_insert_with(|| Row {
                    allocs: 0,
                    bytes: 0,
                    freed: 0,
                    buckets: [0; TIMELINE_BUCKETS],
                });
                row.freed += 1;
            }
            _ => {}
        }
    }

    let mut keys: Vec<Option<u32>> = rows.keys().copied().collect();
    keys.sort_by(|a, b| {
        let (ra, rb) = (&rows[a], &rows[b]);
        rb.bytes
            .cmp(&ra.bytes)
            .then(a.unwrap_or(u32::MAX).cmp(&b.unwrap_or(u32::MAX)))
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>7} {:>12} {:>7} {:>6}  {:<w$}  site",
        "allocs",
        "bytes",
        "freed",
        "free%",
        "timeline",
        w = TIMELINE_BUCKETS + 2
    );
    for key in keys {
        let row = &rows[&key];
        let rowmax = row.buckets.iter().copied().max().unwrap_or(0).max(1);
        let mut spark = String::with_capacity(TIMELINE_BUCKETS + 2);
        spark.push('|');
        for &n in &row.buckets {
            let idx = if n == 0 {
                0
            } else {
                ((n as usize * (RAMP.len() - 1)).div_ceil(rowmax as usize)).min(RAMP.len() - 1)
            };
            spark.push(RAMP[idx] as char);
        }
        spark.push('|');
        let pct = (row.freed * 100).checked_div(row.allocs).unwrap_or(0);
        let label = match key {
            Some(id) => labels
                .get(&id)
                .cloned()
                .unwrap_or_else(|| format!("site {id}")),
            None => "<runtime>".to_string(),
        };
        let _ = writeln!(
            out,
            "{:>7} {:>12} {:>7} {:>5}%  {}  {}",
            row.allocs, row.bytes, row.freed, pct, spark, label
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minigo_runtime::{Category, FreeSource, ObjAddr, SpanId};

    fn sample() -> Trace {
        let mut stacks = minigo_runtime::StackTable::new();
        let main = stacks.push(minigo_runtime::ROOT_STACK, "main");
        Trace {
            events: vec![
                TraceEvent::Alloc {
                    at: 0,
                    addr: ObjAddr {
                        span: SpanId(0),
                        slot: 0,
                    },
                    site: Some(3),
                    stack: main,
                    cat: Category::Slice,
                    bytes: 112,
                    large: false,
                    heap_live: 112,
                    footprint: 8192,
                },
                TraceEvent::Free {
                    at: 50,
                    addr: ObjAddr {
                        span: SpanId(0),
                        slot: 0,
                    },
                    site: Some(3),
                    stack: main,
                    cat: Category::Slice,
                    source: FreeSource::SliceLifetime,
                    bytes: 112,
                    step: FreeStep::Revert { cascade: 0 },
                    heap_live: 0,
                },
                TraceEvent::Sweep {
                    at: 100,
                    addr: ObjAddr {
                        span: SpanId(1),
                        slot: 0,
                    },
                    cat: Category::Other,
                    bytes: 64,
                },
                TraceEvent::GcEnd {
                    at: 100,
                    heap_live: 0,
                    next_goal: 512 * 1024,
                    swept: [0, 0, 1],
                    swept_bytes: 64,
                    dangling_retired: 0,
                    ticks: 40,
                    kind: minigo_runtime::CycleKind::Major,
                },
            ],
            stacks,
            ..Trace::default()
        }
    }

    #[test]
    fn chrome_json_is_balanced_and_tagged() {
        let phases = [
            PhaseTime {
                phase: "parse",
                nanos: 1500,
            },
            PhaseTime {
                phase: "lower",
                nanos: 500,
            },
        ];
        let json = chrome_trace_json(&sample(), &phases);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
        for needle in [
            "\"name\":\"parse\"",
            "\"name\":\"alloc\"",
            "\"name\":\"free\"",
            "\"name\":\"sweep\"",
            "\"name\":\"gc\"",
            "\"name\":\"heap\"",
            "\"step\":\"revert+0\"",
            "\"stack\":\"main\"",
            "\"ts\":60", // gc X event starts at end - ticks
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn timeline_table_is_deterministic() {
        let mut labels = HashMap::new();
        labels.insert(3u32, "make (in main)".to_string());
        let a = timeline_table(&sample(), &labels);
        let b = timeline_table(&sample(), &labels);
        assert_eq!(a, b);
        assert!(a.contains("make (in main)"), "{a}");
        assert!(a.contains("100%"), "{a}");
        let spark_line = a.lines().nth(1).unwrap();
        assert!(spark_line.contains('|'), "{spark_line}");
        assert_eq!(a.lines().count(), 2, "{a}");
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let t = Trace::default();
        assert_eq!(timeline_table(&t, &HashMap::new()), "(no events)\n");
        let json = chrome_trace_json(&t, &[]);
        assert!(json.contains("traceEvents"));
    }
}
