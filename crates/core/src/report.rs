//! Machine-readable report export (`--report-json PATH`).
//!
//! A hand-rolled JSON writer — the workspace deliberately has no
//! serialization dependency — emitting every [`Report`] field under
//! **stable names** (the `schema` tag is bumped if they ever change), so
//! CI and external tooling can consume run results without scraping the
//! text tables. Violations and the trace are summarized by count, not
//! inlined: the trace has its own exporters (`--trace`, `--profile`).

use std::fmt::Write as _;

use crate::engine::Report;
use crate::trace::esc;
use minigo_runtime::Metrics;

/// The schema tag stamped into every export; bump when field names or
/// meanings change.
///
/// `gofree-report/2` is `gofree-report/1` plus the collector backend:
/// a top-level `"collector"` name and `gcs_minor`/`gcs_major` cycle
/// counts inside `"metrics"`. `gofree-report/3` is v2 plus the
/// optimizer tier: top-level `"ic_hits"`/`"ic_misses"` counters and an
/// `"opt"` object with the per-pass rewrite counters (`null` when the
/// run executed an unoptimized stream). Every v2 field is unchanged.
/// `gofree-report/4` is v3 plus liveness-driven free placement: a
/// top-level `"placement"` object (`{"mode","lastuse_advanced",
/// "partial_frees","suppressed"}`, `null` unless the program was
/// compiled with `--free-placement lastuse`). Every v3 field is
/// unchanged. `gofree-report/5` is v4 plus the service-mode traffic
/// harness: a top-level `"service"` object (`null` for batch runs) with
/// request counts, exact latency/queue quantiles, log₂ latency and
/// minor/major GC-pause histogram buckets, and the heap high-water
/// marks. Every v4 field is unchanged.
pub const REPORT_SCHEMA: &str = "gofree-report/5";

fn u64_array(values: &[u64]) -> String {
    let items: Vec<String> = values.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

fn metrics_json(m: &Metrics) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"alloced_bytes\":{},\"alloced_objects\":{},\"freed_bytes\":{},\
         \"freed_bytes_by_source\":{},\"freed_objects_by_source\":{},\
         \"tcfree_attempts\":{},\"tcfree_bails\":{},\"gcs\":{},\"gcs_minor\":{},\
         \"gcs_major\":{},\"gc_ticks\":{},\
         \"maxheap\":{},\"stack_allocs\":{},\"heap_allocs\":{},\"heap_tcfreed\":{},\
         \"heap_gced\":{},\"frees_suppressed\":{}",
        m.alloced_bytes,
        m.alloced_objects,
        m.freed_bytes,
        u64_array(&m.freed_bytes_by_source),
        u64_array(&m.freed_objects_by_source),
        m.tcfree_attempts,
        u64_array(&m.tcfree_bails),
        m.gcs,
        m.gcs_minor,
        m.gcs_major,
        m.gc_ticks,
        m.maxheap,
        u64_array(&m.stack_allocs),
        u64_array(&m.heap_allocs),
        u64_array(&m.heap_tcfreed),
        u64_array(&m.heap_gced),
        m.frees_suppressed,
    );
    out.push('}');
    out
}

fn quantiles_json(q: &crate::service::Quantiles) -> String {
    format!(
        "{{\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"max\":{}}}",
        q.p50, q.p90, q.p99, q.p999, q.max
    )
}

/// Trims trailing zero buckets so the arrays stay short; the schema
/// documents buckets as log₂ lower edges from index 0.
fn hist_json(h: &minigo_runtime::Histogram<{ crate::service::SERVICE_BUCKETS }>) -> String {
    let buckets = h.buckets();
    let last = buckets.iter().rposition(|&n| n > 0).map_or(0, |i| i + 1);
    u64_array(&buckets[..last])
}

fn service_json(s: &crate::service::ServiceStats) -> String {
    format!(
        "{{\"requests\":{},\"checksum\":{},\"total_time\":{},\
         \"latency\":{},\"queue\":{},\
         \"latency_buckets\":{},\"service_time_buckets\":{},\"queue_buckets\":{},\
         \"pause_minor_buckets\":{},\"pause_major_buckets\":{},\
         \"gcs_minor\":{},\"gcs_major\":{},\"pause_max\":{},\"pause_ticks\":{},\
         \"heap_hwm\":{},\"footprint_hwm\":{}}}",
        s.requests,
        s.checksum,
        s.total_time,
        quantiles_json(&s.latency_q),
        quantiles_json(&s.queue_q),
        hist_json(&s.latency),
        hist_json(&s.service_time),
        hist_json(&s.queue),
        hist_json(&s.pause_minor),
        hist_json(&s.pause_major),
        s.pause_minor.count(),
        s.pause_major.count(),
        s.pause_max(),
        s.pause_ticks(),
        s.heap_hwm,
        s.footprint_hwm,
    )
}

/// Renders one run report as a JSON object (batch mode: the `"service"`
/// section is `null`).
pub fn report_json(report: &Report) -> String {
    service_report_json(report, None)
}

/// Renders one run report as a JSON object, with the service-mode
/// traffic stats inlined when the run came from the traffic harness.
pub fn service_report_json(
    report: &Report,
    service: Option<&crate::service::ServiceStats>,
) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"schema\":\"{REPORT_SCHEMA}\",\"collector\":\"{}\",\"output\":\"{}\",\
         \"time\":{},\"steps\":{},\"metrics\":{},",
        report.collector.name(),
        esc(&report.output),
        report.time,
        report.steps,
        metrics_json(&report.metrics),
    );
    out.push_str("\"site_profile\":[");
    for (i, s) in report.site_profile.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"site\":{},\"count\":{},\"bytes\":{}}}",
            s.site.0, s.count, s.bytes
        );
    }
    out.push_str("],");
    let (trace_events, events_dropped) = match &report.trace {
        Some(t) => (t.events.len() as u64, t.events_dropped),
        None => (0, 0),
    };
    let opt = match &report.opt {
        Some(o) => format!(
            "{{\"instrs_before\":{},\"instrs_after\":{},\"consts_folded\":{},\
             \"branches_folded\":{},\"pushpops_elided\":{},\"ticks_merged\":{},\
             \"jumps_threaded\":{},\"ic_sites\":{},\"fusions\":{}}}",
            o.instrs_before,
            o.instrs_after,
            o.consts_folded,
            o.branches_folded,
            o.pushpops_elided,
            o.ticks_merged,
            o.jumps_threaded,
            o.ic_sites,
            o.fusions,
        ),
        None => "null".to_string(),
    };
    let placement = match &report.placement {
        Some(p) => format!(
            "{{\"mode\":\"{}\",\"lastuse_advanced\":{},\"partial_frees\":{},\
             \"suppressed\":{}}}",
            p.mode.name(),
            p.lastuse_advanced,
            p.partial_frees,
            p.suppressed,
        ),
        None => "null".to_string(),
    };
    let service = match service {
        Some(s) => service_json(s),
        None => "null".to_string(),
    };
    let _ = write!(
        out,
        "\"violations\":{},\"trace_events\":{trace_events},\"events_dropped\":{events_dropped},\
         \"ic_hits\":{},\"ic_misses\":{},\"opt\":{opt},\"placement\":{placement},\
         \"service\":{service}}}",
        report.violations.len(),
        report.ic_hits,
        report.ic_misses,
    );
    out.push('\n');
    out
}

/// Renders a batch of run reports (e.g. a `--runs N` distribution) as a
/// JSON array, in run order.
pub fn reports_json(reports: &[Report]) -> String {
    let mut out = String::from("[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(report_json(r).trim_end());
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_balanced_and_stable() {
        let report = Report {
            output: "hi \"there\"\n".to_string(),
            time: 123,
            steps: 45,
            metrics: Metrics {
                alloced_bytes: 1024,
                alloced_objects: 3,
                ..Metrics::default()
            },
            site_profile: vec![crate::SiteProfile {
                site: minigo_syntax::ExprId(7),
                count: 3,
                bytes: 1024,
            }],
            violations: Vec::new(),
            trace: None,
            collector: minigo_runtime::CollectorKind::Go,
            ic_hits: 9,
            ic_misses: 2,
            opt: Some(minigo_vm::OptStats {
                instrs_before: 100,
                instrs_after: 80,
                fusions: 6,
                ..minigo_vm::OptStats::default()
            }),
            placement: Some(minigo_escape::PlacementStats {
                mode: minigo_escape::FreePlacement::LastUse,
                lastuse_advanced: 5,
                partial_frees: 2,
                suppressed: 1,
            }),
        };
        let json = report_json(&report);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for needle in [
            "\"schema\":\"gofree-report/5\"",
            "\"service\":null",
            "\"collector\":\"go\"",
            "\"output\":\"hi \\\"there\\\"\\n\"",
            "\"alloced_bytes\":1024",
            "\"gcs_minor\":0",
            "\"gcs_major\":0",
            "\"site\":7",
            "\"trace_events\":0",
            "\"events_dropped\":0",
            "\"ic_hits\":9",
            "\"ic_misses\":2",
            "\"opt\":{\"instrs_before\":100,\"instrs_after\":80",
            "\"fusions\":6",
            "\"placement\":{\"mode\":\"lastuse\",\"lastuse_advanced\":5,\"partial_frees\":2,\"suppressed\":1}",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        let arr = reports_json(&[report.clone(), report]);
        assert!(arr.starts_with('[') && arr.trim_end().ends_with(']'));
        assert_eq!(arr.matches("\"schema\"").count(), 2);
    }
}
