//! The compile pipeline: front end → escape analysis → instrumentation.

use minigo_escape::{
    analyze, audit, inline_program, instrument, instrument_with_plan, plan_placement,
    strip_unproven, Analysis, AnalyzeOptions, AuditMode, AuditReport, FreePlacement, FreeTargets,
    InlineOptions, Mode, PlacementStats,
};
use minigo_syntax::{
    parse, print_program, resolve, typecheck, Diagnostic, Program, Resolution, TypeInfo,
};

/// Compiler options — a thin, user-facing wrapper over
/// [`AnalyzeOptions`].
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Compile as plain Go or with GoFree.
    pub mode: Mode,
    /// Free slices+maps (paper default) or also raw pointers.
    pub free_targets: FreeTargets,
    /// §4.4 content tags (ablation toggle).
    pub content_tags: bool,
    /// Fig. 5 back-propagation (ablation toggle).
    pub back_propagation: bool,
    /// Run the §4.6.4 inlining pass before analysis. Off by default —
    /// GoFree does not depend on inlining; the `inlining` experiment
    /// binary compares both compilers with and without it.
    pub inline: bool,
    /// Free-safety auditing: re-derive a proof obligation for every
    /// inserted free with an independent dataflow pass. `Warn` keeps
    /// unproven frees (report only); `Deny` strips them from the program
    /// before lowering.
    pub audit: AuditMode,
    /// Where inserted frees land: `Scope` (§4.5 scope exit, bit-exact
    /// historical behavior) or `LastUse` (liveness-driven advancement
    /// plus partial frees for abandoned struct locals).
    pub free_placement: FreePlacement,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            mode: Mode::GoFree,
            free_targets: FreeTargets::SlicesAndMaps,
            content_tags: true,
            back_propagation: true,
            inline: false,
            audit: AuditMode::Off,
            free_placement: FreePlacement::Scope,
        }
    }
}

impl CompileOptions {
    /// Options modeling the unmodified Go compiler.
    pub fn go() -> Self {
        CompileOptions {
            mode: Mode::Go,
            ..CompileOptions::default()
        }
    }

    fn to_analyze_options(&self) -> AnalyzeOptions {
        AnalyzeOptions {
            mode: self.mode,
            free_targets: self.free_targets,
            content_tags: self.content_tags,
            back_propagation: self.back_propagation,
            ..AnalyzeOptions::default()
        }
    }
}

/// Wall-clock timing of one compiler phase, for the `--trace` compile
/// timeline. Unlike run-time trace events (virtual-time-stamped and
/// deterministic), these are host measurements: they vary run to run and
/// are never part of trace/metrics reconciliation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTime {
    /// Phase name (`parse`, `resolve`, `typecheck`, `escape-solve`,
    /// `free-select`, `instrument`, `audit`, `lower`, ...).
    pub phase: &'static str,
    /// Wall-clock nanoseconds spent in the phase.
    pub nanos: u128,
}

/// A compiled (and, in GoFree mode, instrumented) program ready to run.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The (instrumented) AST.
    pub program: Program,
    /// Name resolution, including the synthesized `tcfree` uses.
    pub resolution: Resolution,
    /// Types.
    pub types: TypeInfo,
    /// The escape analysis results (allocation decisions, free choices).
    pub analysis: Analysis,
    /// The program lowered to the slot-indexed bytecode IR — the
    /// baseline instruction stream, kept for the tree-walk-independent
    /// `--opt off` debugging path.
    pub lowered: minigo_vm::Module,
    /// The optimizer tier's rewrite of `lowered` (peephole/const-fold,
    /// jump threading, inline caches, superinstructions) — what the
    /// bytecode engine runs by default. Observationally identical to
    /// `lowered`; only host wall-clock differs.
    pub optimized: minigo_vm::Module,
    /// Per-pass rewrite counters from producing `optimized`.
    pub opt_stats: minigo_vm::OptStats,
    /// The free-safety audit report, when auditing was requested.
    pub audit: Option<AuditReport>,
    /// Free sites stripped under [`AuditMode::Deny`] (copied into every
    /// run's [`minigo_runtime::Metrics::frees_suppressed`]).
    pub frees_suppressed: u64,
    /// Liveness placement counters, present when the program was
    /// compiled under [`FreePlacement::LastUse`]; `suppressed` counts
    /// the auditor's unproven verdicts over the planned program.
    pub placement: Option<PlacementStats>,
    /// Per-phase wall-clock compile timings, in pipeline order (the
    /// escape analysis contributes its `escape-solve` and `free-select`
    /// sub-phases).
    pub phase_times: Vec<PhaseTime>,
}

impl Compiled {
    /// The instrumented program rendered back to MiniGo source — shows
    /// exactly where the compiler put the `tcfree` calls.
    pub fn instrumented_source(&self) -> String {
        print_program(&self.program)
    }

    /// Number of `tcfree` insertions across the program.
    pub fn free_count(&self) -> usize {
        self.analysis.stats.to_free
    }
}

/// Compiles MiniGo source.
///
/// # Errors
///
/// Returns the first front-end [`Diagnostic`].
pub fn compile(src: &str, opts: &CompileOptions) -> Result<Compiled, Diagnostic> {
    let mut phase_times = Vec::new();
    let mut timed = |phase: &'static str, nanos: u128| phase_times.push(PhaseTime { phase, nanos });
    let t = std::time::Instant::now();
    let mut program = parse(src)?;
    timed("parse", t.elapsed().as_nanos());
    if opts.inline {
        let t = std::time::Instant::now();
        program = inline_program(&program, &InlineOptions::default()).0;
        timed("inline", t.elapsed().as_nanos());
    }
    let t = std::time::Instant::now();
    let mut resolution = resolve(&program)?;
    timed("resolve", t.elapsed().as_nanos());
    let t = std::time::Instant::now();
    let mut types = typecheck(&program, &resolution)?;
    timed("typecheck", t.elapsed().as_nanos());
    let analysis = analyze(&program, &resolution, &types, &opts.to_analyze_options());
    // The analysis times its own sub-phases: the escape solve proper and
    // the completeness/lifetime free-variable selection.
    timed("escape-solve", analysis.stats.solve_nanos);
    timed("free-select", analysis.stats.select_nanos);
    // Liveness-driven placement plans *before* instrumentation; scope
    // mode never builds a plan, preserving bit-exact historical output.
    let mut placement: Option<PlacementStats> = None;
    let mut program = if opts.mode == Mode::GoFree {
        if opts.free_placement == FreePlacement::LastUse {
            let t = std::time::Instant::now();
            let plan = plan_placement(&program, &resolution, &types, &analysis);
            timed("liveness", t.elapsed().as_nanos());
            placement = Some(plan.stats);
            let t = std::time::Instant::now();
            let p = instrument_with_plan(&program, &mut resolution, &mut types, &analysis, &plan);
            timed("instrument", t.elapsed().as_nanos());
            p
        } else {
            let t = std::time::Instant::now();
            let p = instrument(&program, &mut resolution, &analysis);
            timed("instrument", t.elapsed().as_nanos());
            p
        }
    } else {
        let t = std::time::Instant::now();
        timed("instrument", t.elapsed().as_nanos());
        program
    };
    // The audit is an independent second pass: it sees only the
    // instrumented AST, never the escape graph that justified the frees.
    let mut report = None;
    let mut frees_suppressed = 0;
    if opts.mode == Mode::GoFree && opts.audit != AuditMode::Off {
        let t = std::time::Instant::now();
        let r = audit(&program, &resolution, &types);
        if opts.audit == AuditMode::Deny {
            let (stripped, removed) = strip_unproven(&program, &r);
            program = stripped;
            frees_suppressed = removed;
        }
        if let Some(p) = placement.as_mut() {
            // Placements the independent prover refused — stripped under
            // deny, kept-but-flagged under warn.
            p.suppressed = r.unproven().count() as u64;
        }
        report = Some(r);
        timed("audit", t.elapsed().as_nanos());
    }
    let t = std::time::Instant::now();
    let lowered = minigo_vm::lower(&program, &resolution, &types, &analysis);
    timed("lower", t.elapsed().as_nanos());
    let t = std::time::Instant::now();
    let (optimized, opt_stats) = minigo_vm::optimize(&lowered);
    timed("optimize", t.elapsed().as_nanos());
    Ok(Compiled {
        program,
        resolution,
        types,
        analysis,
        lowered,
        optimized,
        opt_stats,
        audit: report,
        frees_suppressed,
        placement,
        phase_times,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "func work(n int) int { s := make([]int, n)\n s[0] = n\n x := s[0]\n return x }\nfunc main() { print(work(64)) }\n";

    #[test]
    fn gofree_compile_inserts_frees() {
        let c = compile(SRC, &CompileOptions::default()).unwrap();
        assert!(c.free_count() >= 1);
        assert!(c.instrumented_source().contains("tcfree(s)"));
    }

    #[test]
    fn go_compile_is_clean() {
        let c = compile(SRC, &CompileOptions::go()).unwrap();
        assert_eq!(c.free_count(), 0);
        assert!(!c.instrumented_source().contains("tcfree"));
    }

    #[test]
    fn compile_errors_propagate() {
        assert!(compile("func f( {", &CompileOptions::default()).is_err());
    }

    #[test]
    fn audit_warn_proves_compiler_frees() {
        let opts = CompileOptions {
            audit: AuditMode::Warn,
            ..CompileOptions::default()
        };
        let c = compile(SRC, &opts).unwrap();
        let report = c.audit.as_ref().expect("audit ran");
        assert!(report.proved() >= 1);
        assert_eq!(report.unproven().count(), 0);
        assert_eq!(c.frees_suppressed, 0);
        assert!(c.instrumented_source().contains("tcfree(s)"));
    }

    #[test]
    fn audit_deny_strips_unproven_hand_written_free() {
        // A premature hand-written free the auditor must reject: `s` is
        // read after `tcfree(s)`.
        let buggy =
            "func main() { n := 100\n s := make([]int, n)\n s[0] = 7\n tcfree(s)\n print(s[0]) }\n";
        let opts = CompileOptions {
            audit: AuditMode::Deny,
            ..CompileOptions::default()
        };
        let c = compile(buggy, &opts).unwrap();
        let report = c.audit.as_ref().expect("audit ran");
        assert!(report.unproven().count() >= 1);
        assert_eq!(c.frees_suppressed as usize, report.unproven().count());
        // Only the proved sites survive (here: the compiler's own
        // scope-end free, a tolerated double free after the hand-written
        // one was stripped).
        assert_eq!(
            c.instrumented_source().matches("tcfree(s)").count(),
            report.proved()
        );
    }

    #[test]
    fn audit_off_reports_nothing() {
        let c = compile(SRC, &CompileOptions::default()).unwrap();
        assert!(c.audit.is_none());
        assert_eq!(c.frees_suppressed, 0);
    }
}
