//! # gofree
//!
//! The public facade of the GoFree reproduction (CGO 2025): compile MiniGo
//! programs with either the plain Go pipeline or GoFree's explicit-
//! deallocation pipeline, execute them on the simulated managed runtime,
//! and reduce run reports into the paper's tables and figures.
//!
//! ```
//! use gofree::{compile, execute, CompileOptions, RunConfig, Setting};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "func main() { n := 100\n s := make([]int, n)\n s[0] = 41\n print(s[0] + 1) }\n";
//! let compiled = compile(src, &CompileOptions::default())?;
//! assert!(compiled.instrumented_source().contains("tcfree(s)"));
//! let report = execute(&compiled, Setting::GoFree, &RunConfig::deterministic(0))?;
//! assert_eq!(report.output, "42\n");
//! assert!(report.metrics.freed_bytes > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod experiment;
pub mod pipeline;
pub mod profile;
pub mod report;
pub mod service;
pub mod stats;
pub mod trace;

pub use engine::{
    compile_and_run, default_jobs, execute, run_distribution, run_matrix, run_seed, OptLevel,
    Report, RunConfig, Setting, VmEngine,
};
pub use experiment::{
    distribution, fig10_point, table7_row, table8_row, table9_row, Distribution, Fig10Point,
    MetricComparison, Table7Row, Table8Row, Table9Row,
};
pub use pipeline::{compile, CompileOptions, Compiled, PhaseTime};
pub use profile::{
    drag_table, folded_stacks, gctrace_lines, heap_snapshot_table, profile_report, FoldedMetric,
};
pub use report::{report_json, reports_json, service_report_json, REPORT_SCHEMA};
pub use service::{
    run_service, service_gctrace_lines, service_summary, Arrival, Quantiles, ServiceConfig,
    ServiceReport, ServiceStats, SERVICE_BUCKETS, TICKS_PER_SEC,
};
pub use stats::{mean, stdev, welch_t_test, Welch};
pub use trace::{chrome_trace_json, timeline_table};

// Re-export the pieces callers commonly need alongside the facade.
pub use minigo_escape::{
    AuditMode, AuditReport, AuditSite, AuditVerdict, FreePlacement, FreeTargets, Mode,
    PlacementStats,
};
pub use minigo_runtime::{
    percentile_sorted, Category, CollectorKind, ConfigError, CycleKind, FreeSource, HeapSnapshot,
    Histogram, Pause, PoisonMode, Profile, ShadowViolation, StackStat, StackTable, Trace,
    TraceEvent, ViolationKind,
};
pub use minigo_vm::{ExecError, OptStats, SiteProfile};
