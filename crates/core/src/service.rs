//! Service-mode traffic harness: open-loop load over the virtual clock.
//!
//! Batch runs (`execute`) measure one `main` end to end; this module
//! instead drives a **long-running service**: `setup()` builds the
//! retained state once, then an open-loop arrival schedule fires
//! `handle(state, req)` per request. Arrivals are generated up front
//! from the run seed — fixed-rate, Poisson (integer-only inverse-CDF
//! sampling, so schedules are bit-identical across hosts), or a burst
//! profile with a 4× spike through the middle third — and requests that
//! arrive while the previous one is still executing queue, exactly like
//! an open-loop closed-system benchmark (latency includes queueing
//! delay, which is where GC pauses turn into tail latency).
//!
//! Observables, all deterministic in virtual ticks:
//!
//! * per-request **latency / service-time / queueing** histograms
//!   ([`Histogram`]) plus exact order-statistic percentiles
//!   (p50/p90/p99/p999/max via [`percentile_sorted`]);
//! * **GC pause** histograms split minor/major, from the runtime's
//!   always-on [`Pause`](minigo_runtime::Pause) log;
//! * steady-state **heap high-water marks** (live bytes and page
//!   footprint, sampled at request boundaries);
//! * the usual end-of-run [`Report`] (metrics, optional trace with
//!   per-request spans for `chrome://tracing`).
//!
//! Everything is bit-identical across the two VM engines, both opt
//! levels, and `--jobs`, because both engines drive requests through
//! their ordinary call protocol (`tests/service.rs` pins this down).

use std::str::FromStr;

use minigo_runtime::{percentile_sorted, CycleKind, Histogram, RuntimeConfig, SimRng};
use minigo_vm::{BSession, ExecError, Session, Value, VmConfig};

use crate::engine::{OptLevel, Report, RunConfig, Setting, VmEngine};
use crate::pipeline::Compiled;

/// Virtual ticks per simulated second. The chrome-trace exporter writes
/// ticks as microseconds, so this keeps `--rps` and the trace timeline
/// consistent: at 1000 rps the mean inter-arrival gap is 1000 ticks.
pub const TICKS_PER_SEC: u64 = 1_000_000;

/// Latency/pause histogram resolution (log₂ buckets). 64 covers the
/// whole u64 tick range, so no service run ever saturates the top
/// bucket.
pub const SERVICE_BUCKETS: usize = 64;

/// The arrival-process shape of the open-loop schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Arrival {
    /// Evenly spaced arrivals at exactly the configured rate.
    #[default]
    Fixed,
    /// Exponential inter-arrival gaps (a Poisson process) sampled from
    /// the run seed with integer-only arithmetic.
    Poisson,
    /// Fixed-rate baseline with a 4× traffic spike through the middle
    /// third of the run — the phase-change scenario where compiler-
    /// inserted freeing beats GOGC pacing on p999.
    Burst,
}

impl Arrival {
    /// Report/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Arrival::Fixed => "fixed",
            Arrival::Poisson => "poisson",
            Arrival::Burst => "burst",
        }
    }

    /// All arrival shapes, in display order.
    pub fn all() -> [Arrival; 3] {
        [Arrival::Fixed, Arrival::Poisson, Arrival::Burst]
    }
}

impl std::fmt::Display for Arrival {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Arrival {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fixed" => Ok(Arrival::Fixed),
            "poisson" => Ok(Arrival::Poisson),
            "burst" | "spike" => Ok(Arrival::Burst),
            other => Err(format!(
                "unknown arrival {other:?} (expected \"fixed\", \"poisson\", or \"burst\")"
            )),
        }
    }
}

/// Service-mode knobs (on top of the per-run [`RunConfig`]).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of requests to drive.
    pub requests: usize,
    /// Offered load in requests per simulated second
    /// ([`TICKS_PER_SEC`] ticks).
    pub rps: u64,
    /// Arrival-process shape.
    pub arrival: Arrival,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            requests: 2_000,
            rps: 1_000,
            arrival: Arrival::Fixed,
        }
    }
}

impl ServiceConfig {
    /// Mean inter-arrival gap in virtual ticks (at least 1).
    pub fn mean_gap(&self) -> u64 {
        (TICKS_PER_SEC / self.rps.max(1)).max(1)
    }

    /// Generates the full arrival schedule (absolute virtual ticks,
    /// non-decreasing) from `seed`. Pure function of `(self, seed)` —
    /// the same schedule on every host, engine, and job count.
    pub fn schedule(&self, seed: u64) -> Vec<u64> {
        let gap = self.mean_gap();
        let mut rng = SimRng::seed_from_u64(seed ^ 0x5EE7_1CE5_EED5_EED5);
        let mut at = 0u64;
        let n = self.requests;
        let (spike_lo, spike_hi) = (n / 3, 2 * n / 3);
        (0..n)
            .map(|i| {
                let arrival = at;
                let mean = match self.arrival {
                    Arrival::Burst if (spike_lo..spike_hi).contains(&i) => (gap / 4).max(1),
                    _ => gap,
                };
                at += match self.arrival {
                    Arrival::Poisson => exp_gap(&mut rng, mean),
                    _ => mean,
                };
                arrival
            })
            .collect()
    }
}

/// An exponential inter-arrival gap with the given mean, computed with
/// integer arithmetic only (no `ln`, no floats) so schedules are
/// bit-identical across hosts.
///
/// For `u` uniform in (0,1], `-ln(u) = ln2 · (-log₂ u)`; with
/// `u = v / 2⁶⁴`, `-log₂ u = lz(v) + 1 - log₂ m` for the normalized
/// mantissa `m ∈ [1,2)`, and `log₂ m` is approximated linearly by the
/// mantissa's top 16 fraction bits (max error ≈ 0.086 bits — noise next
/// to the exponential's own variance). `45426 = round(ln2 · 2¹⁶)`.
fn exp_gap(rng: &mut SimRng, mean: u64) -> u64 {
    let v = rng.next_u64() | 1; // never 0: keeps lz ≤ 63 and u > 0
    let lz = v.leading_zeros() as u64;
    let frac = ((v << lz) >> 47) & 0xFFFF;
    let units = (lz + 1) * 65536 - frac; // -log₂(u) in 1/65536ths
    ((mean as u128 * 45426 * units as u128) >> 32) as u64
}

/// Exact order-statistic percentiles over the per-request latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Quantiles {
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Worst observed value.
    pub max: u64,
}

impl Quantiles {
    /// Computes nearest-rank percentiles from a **sorted** sample set.
    pub fn from_sorted(sorted: &[u64]) -> Quantiles {
        Quantiles {
            p50: percentile_sorted(sorted, 50, 100),
            p90: percentile_sorted(sorted, 90, 100),
            p99: percentile_sorted(sorted, 99, 100),
            p999: percentile_sorted(sorted, 999, 1000),
            max: sorted.last().copied().unwrap_or(0),
        }
    }
}

/// Everything the traffic harness observed, all in virtual ticks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests completed.
    pub requests: u64,
    /// Wrapping sum of every `handle` call's integer results — the
    /// cross-engine output-equivalence check.
    pub checksum: i64,
    /// Virtual time when the last request completed.
    pub total_time: u64,
    /// Arrival→completion latency per request (queueing included).
    pub latency: Histogram<SERVICE_BUCKETS>,
    /// Start→completion execution time per request.
    pub service_time: Histogram<SERVICE_BUCKETS>,
    /// Arrival→start queueing delay per request.
    pub queue: Histogram<SERVICE_BUCKETS>,
    /// Exact latency percentiles (nearest-rank over all requests).
    pub latency_q: Quantiles,
    /// Exact queueing-delay percentiles.
    pub queue_q: Quantiles,
    /// Nursery-only GC pause durations (generational backend).
    pub pause_minor: Histogram<SERVICE_BUCKETS>,
    /// Full-heap GC pause durations.
    pub pause_major: Histogram<SERVICE_BUCKETS>,
    /// Peak live heap bytes observed at request boundaries.
    pub heap_hwm: u64,
    /// Peak page-level footprint observed at request boundaries.
    pub footprint_hwm: u64,
}

impl ServiceStats {
    /// Total GC cycles observed (minor + major).
    pub fn gcs(&self) -> u64 {
        self.pause_minor.count() + self.pause_major.count()
    }

    /// Worst single GC pause in ticks.
    pub fn pause_max(&self) -> u64 {
        self.pause_minor.max().max(self.pause_major.max())
    }

    /// Total ticks spent paused for GC.
    pub fn pause_ticks(&self) -> u64 {
        self.pause_minor.sum() + self.pause_major.sum()
    }
}

/// A service run's result: the traffic stats plus the ordinary
/// end-of-run [`Report`].
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Traffic-harness observables.
    pub stats: ServiceStats,
    /// The end-of-run report (metrics, optional trace with request
    /// spans) — same shape as a batch [`execute`](crate::execute).
    pub report: Report,
}

/// One persistent VM session on either engine; mirrors the engine
/// dispatch of [`execute`](crate::execute) so service runs see exactly
/// the configuration batch runs do.
enum EngineSession<'c> {
    Tree(Session<'c>),
    Byte(BSession<'c>),
}

impl<'c> EngineSession<'c> {
    fn new(compiled: &'c Compiled, setting: Setting, cfg: &RunConfig) -> Result<Self, ExecError> {
        let runtime = RuntimeConfig {
            gc_enabled: setting.gc_enabled(),
            gogc: cfg.gogc,
            min_heap: cfg.min_heap,
            migrate_prob: cfg.migrate_prob,
            seed: cfg.seed,
            jitter: cfg.jitter,
            poison: cfg.poison,
            trace: cfg.trace,
            trace_cap: cfg.trace_cap,
            collector: cfg.collector,
            nursery_size: cfg.nursery_size,
            ..RuntimeConfig::default()
        };
        let vm_cfg = VmConfig {
            runtime,
            step_limit: cfg.step_limit,
            grow_map_free_old: compiled.analysis.options.mode == minigo_escape::Mode::GoFree,
            sanitize: cfg.sanitize,
            ..VmConfig::default()
        };
        Ok(match (cfg.engine, cfg.opt) {
            (VmEngine::TreeWalk, _) => EngineSession::Tree(Session::new(
                &compiled.program,
                &compiled.resolution,
                &compiled.types,
                &compiled.analysis,
                vm_cfg,
            )?),
            (VmEngine::Bytecode, OptLevel::Off) => {
                EngineSession::Byte(BSession::new(&compiled.lowered, vm_cfg)?)
            }
            (VmEngine::Bytecode, OptLevel::Full) => {
                EngineSession::Byte(BSession::new(&compiled.optimized, vm_cfg)?)
            }
        })
    }

    fn call(&mut self, name: &str, args: Vec<Value>) -> Result<Vec<Value>, ExecError> {
        match self {
            EngineSession::Tree(s) => s.call(name, args),
            EngineSession::Byte(s) => s.call(name, args),
        }
    }

    fn hold(&mut self, values: Vec<Value>) {
        match self {
            EngineSession::Tree(s) => s.hold(values),
            EngineSession::Byte(s) => s.hold(values),
        }
    }

    fn now(&self) -> u64 {
        match self {
            EngineSession::Tree(s) => s.now(),
            EngineSession::Byte(s) => s.now(),
        }
    }

    fn idle_until(&mut self, t: u64) {
        match self {
            EngineSession::Tree(s) => s.idle_until(t),
            EngineSession::Byte(s) => s.idle_until(t),
        }
    }

    fn heap_live(&self) -> u64 {
        match self {
            EngineSession::Tree(s) => s.heap_live(),
            EngineSession::Byte(s) => s.heap_live(),
        }
    }

    fn footprint(&self) -> u64 {
        match self {
            EngineSession::Tree(s) => s.footprint(),
            EngineSession::Byte(s) => s.footprint(),
        }
    }

    fn pauses(&self) -> &[minigo_runtime::Pause] {
        match self {
            EngineSession::Tree(s) => s.pauses(),
            EngineSession::Byte(s) => s.pauses(),
        }
    }

    fn note_request(&mut self, id: u64, arrival: u64, start: u64) {
        match self {
            EngineSession::Tree(s) => s.note_request(id, arrival, start),
            EngineSession::Byte(s) => s.note_request(id, arrival, start),
        }
    }

    fn finish(self) -> Report {
        match self {
            EngineSession::Tree(s) => s.finish(),
            EngineSession::Byte(s) => s.finish(),
        }
    }
}

/// Drives `svc.requests` open-loop requests through a compiled service
/// program.
///
/// The program must define `func setup() ...` (any results; they become
/// the retained service state, rooted for the whole run) and
/// `func handle(<state params>, req int) ...` taking the state values
/// plus the request index. Integer results are folded into
/// [`ServiceStats::checksum`].
///
/// # Errors
///
/// [`ExecError::NoFunc`] when the contract functions are missing;
/// otherwise whatever the calls raise (panics, limits, poisoned reads).
pub fn run_service(
    compiled: &Compiled,
    setting: Setting,
    cfg: &RunConfig,
    svc: &ServiceConfig,
) -> Result<ServiceReport, ExecError> {
    let arrivals = svc.schedule(cfg.seed);
    let mut sess = EngineSession::new(compiled, setting, cfg)?;

    let state = sess.call("setup", Vec::new())?;
    sess.hold(state.clone());

    let mut stats = ServiceStats {
        requests: 0,
        checksum: 0,
        total_time: 0,
        latency: Histogram::new(),
        service_time: Histogram::new(),
        queue: Histogram::new(),
        latency_q: Quantiles::default(),
        queue_q: Quantiles::default(),
        pause_minor: Histogram::new(),
        pause_major: Histogram::new(),
        heap_hwm: 0,
        footprint_hwm: 0,
    };
    let mut latencies = Vec::with_capacity(arrivals.len());
    let mut queues = Vec::with_capacity(arrivals.len());
    let mut pauses_seen = 0usize;

    for (i, &arrival) in arrivals.iter().enumerate() {
        // Open loop: idle until the request arrives, or start late if
        // the previous request overran (queueing).
        sess.idle_until(arrival);
        let start = sess.now();
        let mut args = state.clone();
        args.push(Value::Int(i as i64));
        let results = sess.call("handle", args)?;
        let done = sess.now();
        sess.note_request(i as u64, arrival, start);

        for v in &results {
            if let Value::Int(n) = v {
                stats.checksum = stats.checksum.wrapping_add(*n);
            }
        }
        let latency = done - arrival;
        let queued = start - arrival;
        stats.latency.record(latency);
        stats.service_time.record(done - start);
        stats.queue.record(queued);
        latencies.push(latency);
        queues.push(queued);

        stats.heap_hwm = stats.heap_hwm.max(sess.heap_live());
        stats.footprint_hwm = stats.footprint_hwm.max(sess.footprint());
        for p in &sess.pauses()[pauses_seen..] {
            match p.kind {
                CycleKind::Minor => stats.pause_minor.record(p.ticks),
                CycleKind::Major => stats.pause_major.record(p.ticks),
            }
        }
        pauses_seen = sess.pauses().len();
        stats.requests += 1;
    }

    stats.total_time = sess.now();
    latencies.sort_unstable();
    queues.sort_unstable();
    stats.latency_q = Quantiles::from_sorted(&latencies);
    stats.queue_q = Quantiles::from_sorted(&queues);

    let mut report = sess.finish();
    if (cfg.engine, cfg.opt) == (VmEngine::Bytecode, OptLevel::Full) {
        report.opt = Some(compiled.opt_stats.clone());
    }
    report.metrics.frees_suppressed = compiled.frees_suppressed;
    report.placement = compiled.placement;
    Ok(ServiceReport { stats, report })
}

/// Renders the human-readable service summary (the `--service` CLI
/// output and the per-cell detail in `results/service.txt`).
pub fn service_summary(stats: &ServiceStats) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let q = &stats.latency_q;
    let _ = writeln!(
        out,
        "requests {}  checksum {}  total {} ticks",
        stats.requests, stats.checksum, stats.total_time
    );
    let _ = writeln!(
        out,
        "latency  p50 {}  p90 {}  p99 {}  p999 {}  max {} ticks",
        q.p50, q.p90, q.p99, q.p999, q.max
    );
    let _ = writeln!(
        out,
        "queueing p50 {}  p99 {}  p999 {}  max {} ticks",
        stats.queue_q.p50, stats.queue_q.p99, stats.queue_q.p999, stats.queue_q.max
    );
    let _ = writeln!(
        out,
        "gc pauses {} ({} minor / {} major)  worst {}  total {} ticks",
        stats.gcs(),
        stats.pause_minor.count(),
        stats.pause_major.count(),
        stats.pause_max(),
        stats.pause_ticks(),
    );
    let _ = writeln!(
        out,
        "heap hwm {} B  footprint hwm {} B",
        stats.heap_hwm, stats.footprint_hwm
    );
    let _ = writeln!(out, "latency histogram (ticks):");
    out.push_str(&stats.latency.render(""));
    if !stats.pause_major.is_empty() || !stats.pause_minor.is_empty() {
        let _ = writeln!(out, "gc pause histogram (ticks):");
        let mut pauses = stats.pause_major;
        pauses.merge(&stats.pause_minor);
        out.push_str(&pauses.render(""));
    }
    out
}

/// Renders `GODEBUG=gctrace=1`-style pause/latency rows for a service
/// run: one `service:` header line, one `pause ...` line per bucketed
/// pause kind, and one `latency ...` quantile row — appended after the
/// per-cycle gctrace lines when `--gctrace` is used in service mode.
pub fn service_gctrace_lines(stats: &ServiceStats) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "service: {} reqs in {} ticks, heap hwm {} B",
        stats.requests, stats.total_time, stats.heap_hwm
    );
    for (kind, h) in [("minor", &stats.pause_minor), ("major", &stats.pause_major)] {
        if h.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "pause {kind}: {} cycles, mean {} max {} ticks, hist {}",
            h.count(),
            h.mean().unwrap_or(0),
            h.max(),
            h.spark(),
        );
    }
    let q = &stats.latency_q;
    let _ = writeln!(
        out,
        "latency: p50 {} p90 {} p99 {} p999 {} max {} ticks, hist {}",
        q.p50,
        q.p90,
        q.p99,
        q.p999,
        q.max,
        stats.latency.spark(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_shaped() {
        let cfg = ServiceConfig {
            requests: 300,
            rps: 1_000,
            arrival: Arrival::Poisson,
        };
        let a = cfg.schedule(7);
        let b = cfg.schedule(7);
        let c = cfg.schedule(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");

        // Poisson mean gap lands near the configured mean.
        let span = *a.last().unwrap() - a[0];
        let mean = span / (a.len() as u64 - 1);
        assert!(
            (500..=2_000).contains(&mean),
            "poisson mean gap {mean} far from 1000"
        );

        // Fixed is exactly even.
        let fixed = ServiceConfig {
            arrival: Arrival::Fixed,
            ..cfg.clone()
        }
        .schedule(7);
        assert!(fixed.windows(2).all(|w| w[1] - w[0] == 1_000));

        // Burst compresses the middle third by 4×.
        let burst = ServiceConfig {
            arrival: Arrival::Burst,
            ..cfg
        }
        .schedule(7);
        assert_eq!(burst[101] - burst[100], 1_000);
        assert_eq!(burst[151] - burst[150], 250);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let sorted: Vec<u64> = (1..=1000).collect();
        let q = Quantiles::from_sorted(&sorted);
        assert_eq!(q.p50, 500);
        assert_eq!(q.p99, 990);
        assert_eq!(q.p999, 999);
        assert_eq!(q.max, 1000);
    }

    #[test]
    fn arrival_parses() {
        assert_eq!("fixed".parse::<Arrival>().unwrap(), Arrival::Fixed);
        assert_eq!("spike".parse::<Arrival>().unwrap(), Arrival::Burst);
        assert!("bogus".parse::<Arrival>().is_err());
    }
}
