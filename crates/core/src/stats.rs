//! Statistics for the evaluation: means, standard deviations, and Welch's
//! two-sample t-test (the paper reports two-sided p-values at α = 0.01 in
//! table 7).

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1). Returns 0 for fewer than two samples.
pub fn stdev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Result of Welch's unequal-variance t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Welch {
    /// The t statistic.
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-sided p-value.
    pub p: f64,
}

/// Welch's t-test for the difference of means of `a` and `b`.
///
/// Returns `p = 1` when either sample is degenerate (fewer than two
/// points, or both variances zero with equal means).
///
/// ```
/// use gofree::welch_t_test;
///
/// let fast = [95.0, 96.0, 94.5, 95.5, 95.2];
/// let slow = [99.0, 100.0, 98.5, 99.5, 99.2];
/// let w = welch_t_test(&fast, &slow);
/// assert!(w.p < 0.01, "clearly separated samples are significant");
/// ```
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Welch {
    if a.len() < 2 || b.len() < 2 {
        return Welch {
            t: 0.0,
            df: 1.0,
            p: 1.0,
        };
    }
    let (ma, mb) = (mean(a), mean(b));
    let (sa, sb) = (stdev(a), stdev(b));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let va = sa * sa / na;
    let vb = sb * sb / nb;
    if va + vb == 0.0 {
        return Welch {
            t: 0.0,
            df: na + nb - 2.0,
            p: if ma == mb { 1.0 } else { 0.0 },
        };
    }
    let t = (ma - mb) / (va + vb).sqrt();
    let df = (va + vb) * (va + vb) / (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
    let p = 2.0 * student_t_sf(t.abs(), df);
    Welch {
        t,
        df,
        p: p.clamp(0.0, 1.0),
    }
}

/// Survival function of Student's t distribution: P(T > t) for t ≥ 0.
fn student_t_sf(t: f64, df: f64) -> f64 {
    // P(T > t) = I_{df/(df+t²)}(df/2, 1/2) / 2 for t >= 0.
    let x = df / (df + t * t);
    0.5 * incomplete_beta(0.5 * df, 0.5, x)
}

/// Regularized incomplete beta function I_x(a, b) via the continued
/// fraction expansion (Lentz's method; Numerical Recipes §6.4).
fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Natural log of the gamma function (Lanczos approximation).
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 7] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_7e-2,
        -0.539_523_938_495_3e-5,
        2.506_628_274_631_000_5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for g in &G[..6] {
        y += 1.0;
        ser += g / y;
    }
    -tmp + (G[6] * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stdev_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stdev(&xs) - 2.138_089_935).abs() < 1e-6);
        assert_eq!(stdev(&[1.0]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        assert!((ln_gamma(5.0) - (24.0f64).ln()).abs() < 1e-9);
        assert!((ln_gamma(1.0)).abs() < 1e-9);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn incomplete_beta_endpoints_and_symmetry() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        let x = 0.37;
        let lhs = incomplete_beta(2.5, 1.5, x);
        let rhs = 1.0 - incomplete_beta(1.5, 2.5, 1.0 - x);
        assert!((lhs - rhs).abs() < 1e-10);
        // I_x(1,1) = x (uniform).
        assert!((incomplete_beta(1.0, 1.0, 0.42) - 0.42).abs() < 1e-10);
    }

    #[test]
    fn t_distribution_tail_known_values() {
        // For df=10, P(T > 2.228) ≈ 0.025 (classic t-table value).
        let p = student_t_sf(2.228, 10.0);
        assert!((p - 0.025).abs() < 5e-4, "got {p}");
        // For df=1 (Cauchy), P(T > 1) = 0.25.
        let p = student_t_sf(1.0, 1.0);
        assert!((p - 0.25).abs() < 1e-6, "got {p}");
    }

    #[test]
    fn welch_identical_samples_insignificant() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let w = welch_t_test(&a, &a);
        assert!(w.p > 0.99, "identical samples: p = {}", w.p);
    }

    #[test]
    fn welch_separated_samples_significant() {
        let a: Vec<f64> = (0..30).map(|i| 10.0 + (i % 3) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..30).map(|i| 11.0 + (i % 3) as f64 * 0.1).collect();
        let w = welch_t_test(&a, &b);
        assert!(w.p < 0.001, "separated means: p = {}", w.p);
        assert!(w.t < 0.0, "a < b gives negative t");
    }

    #[test]
    fn welch_small_overlap_moderate_p() {
        let a = [10.0, 11.0, 12.0, 13.0, 14.0];
        let b = [11.0, 12.0, 13.0, 14.0, 15.0];
        let w = welch_t_test(&a, &b);
        assert!(w.p > 0.1 && w.p < 0.9, "overlapping samples: p = {}", w.p);
    }

    #[test]
    fn welch_degenerate_inputs() {
        assert_eq!(welch_t_test(&[1.0], &[2.0, 3.0]).p, 1.0);
        let w = welch_t_test(&[5.0, 5.0], &[5.0, 5.0]);
        assert_eq!(w.p, 1.0);
        let w = welch_t_test(&[5.0, 5.0], &[6.0, 6.0]);
        assert_eq!(w.p, 0.0, "zero variance, different means");
    }
}
