//! Experiment drivers: turn raw run reports into the rows of the paper's
//! tables and figures.

use minigo_runtime::Category;

use crate::engine::Report;
use crate::stats::{mean, stdev, welch_t_test};

/// A GoFree/Go comparison of one metric: the ratio of means, the relative
/// standard deviation, and Welch's two-sided p-value (table 7's column
/// triplets).
#[derive(Debug, Clone, Copy)]
pub struct MetricComparison {
    /// mean(GoFree) / mean(Go); < 1 means GoFree is better.
    pub ratio: f64,
    /// stdev(GoFree) / mean(Go) — the spread relative to the baseline.
    pub stdev: f64,
    /// Two-sided p-value of the difference.
    pub p_value: f64,
}

impl MetricComparison {
    fn of(gofree: &[f64], go: &[f64]) -> MetricComparison {
        let base = mean(go);
        let (ratio, sd) = if base == 0.0 {
            (1.0, 0.0)
        } else {
            (mean(gofree) / base, stdev(gofree) / base)
        };
        MetricComparison {
            ratio,
            stdev: sd,
            p_value: welch_t_test(gofree, go).p,
        }
    }

    /// Whether the difference is significant at the paper's α = 0.01.
    pub fn significant(&self) -> bool {
        self.p_value < 0.01
    }
}

/// One row of table 7.
#[derive(Debug, Clone)]
pub struct Table7Row {
    /// Project name.
    pub project: String,
    /// Wall-clock time comparison.
    pub time: MetricComparison,
    /// GC-time ratio: (GoFree − GCOff) / (Go − GCOff).
    pub gc_time_ratio: f64,
    /// GC cycle count comparison.
    pub gcs: MetricComparison,
    /// Mean free ratio of the GoFree runs (freed / alloced).
    pub free_ratio: f64,
    /// Peak heap comparison.
    pub maxheap: MetricComparison,
}

/// Builds a table 7 row from the three settings' run samples.
pub fn table7_row(
    project: impl Into<String>,
    go: &[Report],
    gofree: &[Report],
    gcoff: &[Report],
) -> Table7Row {
    let times = |rs: &[Report]| rs.iter().map(|r| r.time as f64).collect::<Vec<_>>();
    let gcs = |rs: &[Report]| rs.iter().map(|r| r.metrics.gcs as f64).collect::<Vec<_>>();
    let heaps = |rs: &[Report]| {
        rs.iter()
            .map(|r| r.metrics.maxheap as f64)
            .collect::<Vec<_>>()
    };
    let go_t = times(go);
    let gofree_t = times(gofree);
    let gcoff_t = times(gcoff);
    let gc_time_go = mean(&go_t) - mean(&gcoff_t);
    let gc_time_gofree = mean(&gofree_t) - mean(&gcoff_t);
    let gc_time_ratio = if gc_time_go > 0.0 {
        (gc_time_gofree / gc_time_go).max(0.0)
    } else {
        1.0
    };
    Table7Row {
        project: project.into(),
        time: MetricComparison::of(&gofree_t, &go_t),
        gc_time_ratio,
        gcs: MetricComparison::of(&gcs(gofree), &gcs(go)),
        free_ratio: mean(
            &gofree
                .iter()
                .map(|r| r.metrics.free_ratio())
                .collect::<Vec<_>>(),
        ),
        maxheap: MetricComparison::of(&heaps(gofree), &heaps(go)),
    }
}

/// One row of table 8: allocation decisions and reclamation shares per
/// category.
#[derive(Debug, Clone)]
pub struct Table8Row {
    /// Project name.
    pub project: String,
    /// Stack allocations of non-slice/map objects.
    pub stack_others: u64,
    /// Heap "others" reclaimed by GC.
    pub heap_gc_others: u64,
    /// Stack-allocated slices.
    pub stack_slices: u64,
    /// Slices freed by `tcfree`.
    pub heap_tcfree_slices: u64,
    /// Slices reclaimed by GC.
    pub heap_gc_slices: u64,
    /// Stack-allocated maps.
    pub stack_maps: u64,
    /// Maps freed by `tcfree`.
    pub heap_tcfree_maps: u64,
    /// Maps reclaimed by GC.
    pub heap_gc_maps: u64,
}

impl Table8Row {
    /// `tcfree / (tcfree + GC)` for slices.
    pub fn slice_share(&self) -> f64 {
        ratio(self.heap_tcfree_slices, self.heap_gc_slices)
    }

    /// `tcfree / (tcfree + GC)` for maps.
    pub fn map_share(&self) -> f64 {
        ratio(self.heap_tcfree_maps, self.heap_gc_maps)
    }
}

fn ratio(t: u64, g: u64) -> f64 {
    if t + g == 0 {
        0.0
    } else {
        t as f64 / (t + g) as f64
    }
}

/// Builds a table 8 row from one GoFree run.
pub fn table8_row(project: impl Into<String>, report: &Report) -> Table8Row {
    let m = &report.metrics;
    let s = Category::Slice.index();
    let mp = Category::Map.index();
    let o = Category::Other.index();
    Table8Row {
        project: project.into(),
        stack_others: m.stack_allocs[o],
        heap_gc_others: m.heap_gced[o],
        stack_slices: m.stack_allocs[s],
        heap_tcfree_slices: m.heap_tcfreed[s],
        heap_gc_slices: m.heap_gced[s],
        stack_maps: m.stack_allocs[mp],
        heap_tcfree_maps: m.heap_tcfreed[mp],
        heap_gc_maps: m.heap_gced[mp],
    }
}

/// One row of table 9: where the reclaimed bytes came from.
#[derive(Debug, Clone)]
pub struct Table9Row {
    /// Project name.
    pub project: String,
    /// Share reclaimed by `FreeSlice()`.
    pub free_slice: f64,
    /// Share reclaimed by `FreeMap()`.
    pub free_map: f64,
    /// Share reclaimed by `GrowMapAndFreeOld()`.
    pub grow_map: f64,
}

/// Builds a table 9 row from one GoFree run.
pub fn table9_row(project: impl Into<String>, report: &Report) -> Table9Row {
    let [s, m, g] = report.metrics.source_shares();
    Table9Row {
        project: project.into(),
        free_slice: s,
        free_map: m,
        grow_map: g,
    }
}

/// A fig. 10 microbenchmark point: the effect of the deallocated-object
/// size parameter `c`.
#[derive(Debug, Clone)]
pub struct Fig10Point {
    /// The size parameter (bigger c = bigger deallocated objects).
    pub c: u64,
    /// Free ratio under GoFree.
    pub free_ratio: f64,
    /// GC-count ratio GoFree/Go.
    pub gc_ratio: f64,
    /// Time ratio GoFree/Go.
    pub time_ratio: f64,
    /// Maxheap ratio GoFree/Go.
    pub heap_ratio: f64,
}

/// Builds a fig. 10 point from paired runs.
pub fn fig10_point(c: u64, go: &Report, gofree: &Report) -> Fig10Point {
    let r = |a: u64, b: u64| {
        if b == 0 {
            1.0
        } else {
            a as f64 / b as f64
        }
    };
    Fig10Point {
        c,
        free_ratio: gofree.metrics.free_ratio(),
        gc_ratio: r(gofree.metrics.gcs, go.metrics.gcs),
        time_ratio: r(gofree.time, go.time),
        heap_ratio: r(gofree.metrics.maxheap, go.metrics.maxheap),
    }
}

/// Summary of a fig. 11 run-time distribution.
#[derive(Debug, Clone)]
pub struct Distribution {
    /// Label (setting name).
    pub label: String,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stdev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// The raw samples.
    pub samples: Vec<f64>,
}

/// Summarizes the run times of a setting's reports.
pub fn distribution(label: impl Into<String>, reports: &[Report]) -> Distribution {
    let samples: Vec<f64> = reports.iter().map(|r| r.time as f64).collect();
    Distribution {
        label: label.into(),
        mean: mean(&samples),
        stdev: stdev(&samples),
        min: samples.iter().copied().fold(f64::INFINITY, f64::min),
        max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{compile_and_run, run_distribution, RunConfig, Setting};
    use crate::pipeline::compile;

    const SRC: &str = "func work(n int) int { s := make([]int, n)\n s[0] = n\n x := s[0]\n return x }\nfunc main() { total := 0\n m := make(map[int]int)\n for i := 0; i < 300; i += 1 { total += work(300)\n m[i] = total }\n print(total) }\n";

    fn reports(setting: Setting, n: u64) -> Vec<Report> {
        let compiled = compile(SRC, &setting.compile_options()).unwrap();
        let base = RunConfig {
            min_heap: 64 * 1024,
            ..RunConfig::default()
        };
        run_distribution(&compiled, setting, &base, n).unwrap()
    }

    #[test]
    fn table7_row_shape() {
        let go = reports(Setting::Go, 8);
        let gofree = reports(Setting::GoFree, 8);
        let gcoff = reports(Setting::GoGcOff, 8);
        let row = table7_row("toy", &go, &gofree, &gcoff);
        assert!(row.free_ratio > 0.1, "free ratio {}", row.free_ratio);
        assert!(row.gcs.ratio <= 1.0, "GoFree never adds GCs");
        assert!(row.time.ratio < 1.05, "time ratio {}", row.time.ratio);
        assert!(row.gc_time_ratio < 1.0, "gc time must shrink");
    }

    #[test]
    fn table8_and_9_rows() {
        let cfg = RunConfig::deterministic(7);
        let r = compile_and_run(SRC, Setting::GoFree, &cfg).unwrap();
        let t8 = table8_row("toy", &r);
        assert!(t8.heap_tcfree_slices > 0);
        assert!(t8.slice_share() > 0.0 && t8.slice_share() <= 1.0);
        let t9 = table9_row("toy", &r);
        let total = t9.free_slice + t9.free_map + t9.grow_map;
        assert!((total - 1.0).abs() < 1e-9, "shares sum to 1, got {total}");
        assert!(t9.free_slice > 0.0);
        assert!(t9.grow_map > 0.0, "map growth contributes");
    }

    #[test]
    fn fig10_point_fields() {
        let cfg = RunConfig::deterministic(9);
        let go = compile_and_run(SRC, Setting::Go, &cfg).unwrap();
        let gofree = compile_and_run(SRC, Setting::GoFree, &cfg).unwrap();
        let p = fig10_point(4, &go, &gofree);
        assert_eq!(p.c, 4);
        assert!(p.free_ratio > 0.0);
        assert!(p.gc_ratio <= 1.0);
    }

    #[test]
    fn distribution_summary() {
        let rs = reports(Setting::Go, 6);
        let d = distribution("Go", &rs);
        assert_eq!(d.samples.len(), 6);
        assert!(d.min <= d.mean && d.mean <= d.max);
    }

    #[test]
    fn metric_comparison_significance() {
        let a: Vec<f64> = (0..50).map(|i| 100.0 + (i % 5) as f64).collect();
        let b: Vec<f64> = (0..50).map(|i| 90.0 + (i % 5) as f64).collect();
        let c = MetricComparison::of(&b, &a);
        assert!(c.ratio < 1.0);
        assert!(c.significant());
        let same = MetricComparison::of(&a, &a);
        assert!(!same.significant());
        assert!((same.ratio - 1.0).abs() < 1e-12);
    }
}
