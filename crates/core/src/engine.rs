//! The execution engine: runs compiled programs under the paper's three
//! experimental settings and collects reports.

use minigo_escape::Mode;
use minigo_runtime::{PoisonMode, RuntimeConfig};
use minigo_vm::{run, ExecError, RunOutcome, VmConfig};

use crate::pipeline::{compile, CompileOptions, Compiled};

/// The three settings of §6.4: Go, GoFree, and Go with GC disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Setting {
    /// Compiled with plain Go, GC on.
    Go,
    /// Compiled with GoFree, GC on.
    GoFree,
    /// Compiled with plain Go, GC off (the `GC time` baseline).
    GoGcOff,
}

impl Setting {
    /// All settings in presentation order.
    pub fn all() -> [Setting; 3] {
        [Setting::Go, Setting::GoFree, Setting::GoGcOff]
    }

    /// The compiler options for this setting.
    pub fn compile_options(self) -> CompileOptions {
        match self {
            Setting::GoFree => CompileOptions::default(),
            Setting::Go | Setting::GoGcOff => CompileOptions::go(),
        }
    }

    /// Whether GC is enabled at run time.
    pub fn gc_enabled(self) -> bool {
        !matches!(self, Setting::GoGcOff)
    }
}

impl std::fmt::Display for Setting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Setting::Go => write!(f, "Go"),
            Setting::GoFree => write!(f, "GoFree"),
            Setting::GoGcOff => write!(f, "Go-GCOff"),
        }
    }
}

/// Which execution engine runs the compiled program.
///
/// Both engines are observationally identical — same output, free
/// counts, heap/GC metrics, and virtual time (the workspace's
/// differential tests enforce this) — so the choice only affects host
/// wall-clock speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VmEngine {
    /// The tree-walking interpreter (the original engine; simplest, and
    /// the reference for differential testing).
    TreeWalk,
    /// The slot-indexed bytecode VM (the default: same observable
    /// behaviour, faster dispatch).
    #[default]
    Bytecode,
}

impl std::fmt::Display for VmEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmEngine::TreeWalk => write!(f, "tree-walk"),
            VmEngine::Bytecode => write!(f, "bytecode"),
        }
    }
}

impl std::str::FromStr for VmEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tree-walk" | "treewalk" | "ast" => Ok(VmEngine::TreeWalk),
            "bytecode" | "bc" => Ok(VmEngine::Bytecode),
            other => Err(format!(
                "unknown engine {other:?} (expected \"tree-walk\" or \"bytecode\")"
            )),
        }
    }
}

/// Which instruction stream the bytecode engine executes.
///
/// Both streams are observationally identical — the optimizer tier
/// preserves every tick charge, so outputs, virtual times, metrics,
/// traces, and profiles are bit-identical (the differential tests
/// enforce this across the corpus). `Off` keeps the baseline lowering
/// for debugging and differential checks. Ignored by the tree-walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptLevel {
    /// Run the baseline lowered stream, bypassing the optimizer tier.
    Off,
    /// Run the optimized stream (peephole/const-fold, jump threading,
    /// inline caches, superinstructions) — the default.
    #[default]
    Full,
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptLevel::Off => write!(f, "off"),
            OptLevel::Full => write!(f, "full"),
        }
    }
}

impl std::str::FromStr for OptLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" | "0" | "none" => Ok(OptLevel::Off),
            "full" | "on" => Ok(OptLevel::Full),
            other => Err(format!(
                "unknown opt level {other:?} (expected \"off\" or \"full\")"
            )),
        }
    }
}

/// Per-run knobs.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// RNG seed: distinct seeds yield the fig. 11 distribution.
    pub seed: u64,
    /// GOGC (heap growth percentage).
    pub gogc: u64,
    /// GC trigger floor in bytes.
    pub min_heap: u64,
    /// Scheduler-migration probability per allocation.
    pub migrate_prob: f64,
    /// Clock jitter fraction.
    pub jitter: f64,
    /// §6.8 mock tcfree.
    pub poison: PoisonMode,
    /// Statement budget.
    pub step_limit: u64,
    /// Which VM engine executes the program.
    pub engine: VmEngine,
    /// Which instruction stream the bytecode engine runs ([`OptLevel`]);
    /// observables are bit-identical either way.
    pub opt: OptLevel,
    /// Run the shadow-heap sanitizer: every load, store, and free is
    /// checked against an out-of-band shadow of the heap and violations
    /// are reported in [`Report::violations`]. The rest of the report
    /// (output, time, metrics, steps, site profile) is bit-identical with
    /// the sanitizer on or off.
    pub sanitize: bool,
    /// Record the typed runtime event stream in
    /// [`Report::trace`](minigo_vm::RunOutcome). Like `sanitize`, tracing
    /// is carried out-of-band: the rest of the report is bit-identical
    /// with tracing on or off, the stream folds back to the run's
    /// [`minigo_runtime::Metrics`] exactly
    /// ([`minigo_runtime::Trace::reconcile`]), and it is bit-identical
    /// across the two VM engines and invariant under `jobs`.
    pub trace: bool,
    /// Hard cap on the tracer's event buffer (`None` = unbounded, the
    /// default). A capped run's trace counts what it dropped and then
    /// refuses to reconcile — truncation is always loud.
    pub trace_cap: Option<usize>,
    /// Worker threads for [`run_distribution`]/[`run_matrix`] fan-out
    /// (1 = sequential). Every observable — outputs, virtual times,
    /// metrics, site profiles — is invariant under `jobs`: per-run seeds
    /// are derived from the run index ([`run_seed`]) and reports merge
    /// back in run-index order, so parallel reports are bit-identical to
    /// sequential ones (tests/parallel.rs enforces this).
    pub jobs: usize,
    /// Which collection backend paces and runs GC cycles
    /// ([`minigo_runtime::RuntimeConfig::collector`]). The default `Go`
    /// backend reproduces the paper's mark-sweep bit-identically;
    /// `Generational` adds a nursery with minor/major cycles.
    pub collector: minigo_runtime::CollectorKind,
    /// Nursery budget in bytes for the generational backend (ignored by
    /// the default mark-sweep backend).
    pub nursery_size: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 0,
            gogc: 100,
            min_heap: 512 * 1024,
            migrate_prob: 0.0005,
            jitter: 0.02,
            poison: PoisonMode::Off,
            step_limit: 500_000_000,
            engine: VmEngine::default(),
            opt: OptLevel::default(),
            sanitize: false,
            trace: false,
            trace_cap: None,
            jobs: default_jobs(),
            collector: minigo_runtime::CollectorKind::default(),
            nursery_size: RuntimeConfig::default().nursery_size,
        }
    }
}

impl RunConfig {
    /// A fully deterministic configuration (no jitter, no migrations) for
    /// tests.
    pub fn deterministic(seed: u64) -> Self {
        RunConfig {
            seed,
            migrate_prob: 0.0,
            jitter: 0.0,
            ..RunConfig::default()
        }
    }
}

/// The default worker count: `GOFREE_JOBS` when set to a positive
/// integer, else 1 (sequential). CLI `--jobs` flags override this.
pub fn default_jobs() -> usize {
    std::env::var("GOFREE_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Derives run `index`'s RNG seed from a distribution's base seed.
///
/// The golden-ratio stride decorrelates consecutive runs' RNG streams
/// while keeping the derivation a pure function of `(base, index)` —
/// the property that lets the parallel harness execute runs on any
/// worker in any order and still produce bit-identical reports.
pub fn run_seed(base: u64, index: u64) -> u64 {
    base.wrapping_add(index.wrapping_mul(0x9E37_79B9))
}

/// A single run's report (table 5's metrics).
pub type Report = RunOutcome;

/// Executes a compiled program.
///
/// # Errors
///
/// Propagates VM errors (panics, poisoned reads, limits).
pub fn execute(
    compiled: &Compiled,
    setting: Setting,
    cfg: &RunConfig,
) -> Result<Report, ExecError> {
    let runtime = RuntimeConfig {
        gc_enabled: setting.gc_enabled(),
        gogc: cfg.gogc,
        min_heap: cfg.min_heap,
        migrate_prob: cfg.migrate_prob,
        seed: cfg.seed,
        jitter: cfg.jitter,
        poison: cfg.poison,
        trace: cfg.trace,
        trace_cap: cfg.trace_cap,
        collector: cfg.collector,
        nursery_size: cfg.nursery_size,
        ..RuntimeConfig::default()
    };
    let vm_cfg = VmConfig {
        runtime,
        step_limit: cfg.step_limit,
        grow_map_free_old: compiled.analysis.options.mode == Mode::GoFree,
        sanitize: cfg.sanitize,
        ..VmConfig::default()
    };
    let mut report = match (cfg.engine, cfg.opt) {
        (VmEngine::TreeWalk, _) => run(
            &compiled.program,
            &compiled.resolution,
            &compiled.types,
            &compiled.analysis,
            vm_cfg,
        )?,
        (VmEngine::Bytecode, OptLevel::Off) => minigo_vm::run_module(&compiled.lowered, vm_cfg)?,
        (VmEngine::Bytecode, OptLevel::Full) => {
            let mut r = minigo_vm::run_module(&compiled.optimized, vm_cfg)?;
            r.opt = Some(compiled.opt_stats.clone());
            r
        }
    };
    // Compile-time facts, copied into every run's report so audited
    // builds report how much reclamation `--audit deny` gave up and
    // liveness builds report their placement counters.
    report.metrics.frees_suppressed = compiled.frees_suppressed;
    report.placement = compiled.placement;
    Ok(report)
}

/// Compiles and runs `src` under `setting` in one step.
///
/// # Errors
///
/// Returns compile diagnostics (stringified) or VM errors.
pub fn compile_and_run(
    src: &str,
    setting: Setting,
    cfg: &RunConfig,
) -> Result<Report, Box<dyn std::error::Error>> {
    let compiled = compile(src, &setting.compile_options())?;
    Ok(execute(&compiled, setting, cfg)?)
}

/// Runs `n` seeded executions of a compiled program (fig. 11's
/// distributions and table 7's 99-run samples), fanning runs across
/// `base.jobs` worker threads.
///
/// # Errors
///
/// Propagates the first VM error (by run index, matching the sequential
/// path).
pub fn run_distribution(
    compiled: &Compiled,
    setting: Setting,
    base: &RunConfig,
    n: u64,
) -> Result<Vec<Report>, ExecError> {
    let mut rows = run_matrix(&[(compiled, setting)], base, n)?;
    Ok(rows.pop().expect("one cell row"))
}

// The parallel harness shares compiled programs and run configurations
// across worker threads by reference; keep them free of thread-bound
// state (enforced here at compile time).
const _: fn() = || {
    fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<Compiled>();
    assert_sync_send::<RunConfig>();
    assert_sync_send::<Report>();
    assert_sync_send::<ExecError>();
};

/// Runs every `(cell, run-index)` combination of an experiment matrix —
/// `cells` are (compiled workload, setting) pairs — and returns one
/// report vector per cell, in cell order, each in run-index order.
///
/// With `base.jobs > 1` the cells' runs are fanned across a scoped
/// worker pool (plain `std::thread`, no external crates). Each run owns
/// its virtual clock, RNG stream, and simulated heap, and its seed is a
/// pure function of the run index ([`run_seed`]), so the merged result
/// is bit-identical to sequential execution regardless of worker count
/// or scheduling order.
///
/// # Errors
///
/// Propagates the first VM error in (cell, run-index) order — the same
/// error the sequential path would return.
pub fn run_matrix(
    cells: &[(&Compiled, Setting)],
    base: &RunConfig,
    runs: u64,
) -> Result<Vec<Vec<Report>>, ExecError> {
    let total = cells.len() as u64 * runs;
    let jobs = base.jobs.clamp(1, total.max(1) as usize);
    let run_one = |cell: usize, run: u64| {
        let (compiled, setting) = cells[cell];
        let cfg = RunConfig {
            seed: run_seed(base.seed, run),
            ..base.clone()
        };
        execute(compiled, setting, &cfg)
    };
    if jobs <= 1 {
        return cells
            .iter()
            .enumerate()
            .map(|(c, _)| (0..runs).map(|i| run_one(c, i)).collect())
            .collect();
    }

    // Work-stealing fan-out: a shared atomic cursor hands out global
    // (cell-major) run indices; workers stash `(cell, run, result)`
    // triples and the merge scatters them back into run-index order.
    let next = std::sync::atomic::AtomicU64::new(0);
    let mut slots: Vec<Vec<Option<Result<Report, ExecError>>>> = cells
        .iter()
        .map(|_| (0..runs).map(|_| None).collect())
        .collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                let next = &next;
                let run_one = &run_one;
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let g = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if g >= total {
                            break;
                        }
                        let (cell, run) = ((g / runs) as usize, g % runs);
                        done.push((cell, run as usize, run_one(cell, run)));
                    }
                    done
                })
            })
            .collect();
        for worker in workers {
            for (cell, run, report) in worker.join().expect("worker thread panicked") {
                slots[cell][run] = Some(report);
            }
        }
    });
    slots
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|r| r.expect("all runs executed"))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "func work(n int) int { s := make([]int, n)\n s[0] = n\n x := s[0]\n return x }\nfunc main() { total := 0\n for i := 0; i < 200; i += 1 { total += work(200) }\n print(total) }\n";

    #[test]
    fn three_settings_agree_on_output() {
        let cfg = RunConfig::deterministic(1);
        let go = compile_and_run(SRC, Setting::Go, &cfg).unwrap();
        let gofree = compile_and_run(SRC, Setting::GoFree, &cfg).unwrap();
        let gcoff = compile_and_run(SRC, Setting::GoGcOff, &cfg).unwrap();
        assert_eq!(go.output, gofree.output);
        assert_eq!(go.output, gcoff.output);
        assert_eq!(gcoff.metrics.gcs, 0);
        assert!(gofree.metrics.freed_bytes > 0);
        assert_eq!(go.metrics.freed_bytes, 0);
    }

    #[test]
    fn gc_off_is_fastest_baseline() {
        let cfg = RunConfig {
            min_heap: 32 * 1024,
            ..RunConfig::deterministic(3)
        };
        let go = compile_and_run(SRC, Setting::Go, &cfg).unwrap();
        let gcoff = compile_and_run(SRC, Setting::GoGcOff, &cfg).unwrap();
        assert!(go.metrics.gcs > 0, "GC must actually run for the baseline");
        assert!(gcoff.time < go.time, "GC time is the difference");
    }

    #[test]
    fn distribution_varies_with_seeds() {
        let compiled = compile(SRC, &CompileOptions::go()).unwrap();
        let base = RunConfig {
            jitter: 0.05,
            ..RunConfig::default()
        };
        let reports = run_distribution(&compiled, Setting::Go, &base, 10).unwrap();
        assert_eq!(reports.len(), 10);
        let times: std::collections::HashSet<u64> = reports.iter().map(|r| r.time).collect();
        assert!(times.len() > 1, "jitter should spread run times");
        // All runs compute the same answer regardless of jitter.
        let outputs: std::collections::HashSet<&str> =
            reports.iter().map(|r| r.output.as_str()).collect();
        assert_eq!(outputs.len(), 1);
    }

    #[test]
    fn parallel_distribution_matches_sequential() {
        let compiled = compile(SRC, &CompileOptions::default()).unwrap();
        let base = RunConfig {
            jitter: 0.05,
            jobs: 1,
            ..RunConfig::default()
        };
        let seq = run_distribution(&compiled, Setting::GoFree, &base, 8).unwrap();
        let par = run_distribution(
            &compiled,
            Setting::GoFree,
            &RunConfig { jobs: 4, ..base },
            8,
        )
        .unwrap();
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.output, p.output);
            assert_eq!(s.time, p.time);
            assert_eq!(s.steps, p.steps);
            assert_eq!(format!("{:?}", s.metrics), format!("{:?}", p.metrics));
            assert_eq!(s.site_profile, p.site_profile);
        }
    }

    #[test]
    fn run_matrix_matches_per_cell_distributions() {
        let go = compile(SRC, &CompileOptions::go()).unwrap();
        let gofree = compile(SRC, &CompileOptions::default()).unwrap();
        let base = RunConfig {
            jobs: 3,
            ..RunConfig::default()
        };
        let rows = run_matrix(&[(&go, Setting::Go), (&gofree, Setting::GoFree)], &base, 4).unwrap();
        assert_eq!(rows.len(), 2);
        let solo = run_distribution(&gofree, Setting::GoFree, &base, 4).unwrap();
        for (a, b) in rows[1].iter().zip(&solo) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.output, b.output);
        }
    }

    #[test]
    fn run_seed_is_pure_and_strided() {
        assert_eq!(run_seed(7, 0), 7);
        assert_eq!(run_seed(7, 3), run_seed(7, 3));
        assert_ne!(run_seed(7, 1), run_seed(7, 2));
    }

    #[test]
    fn setting_display_and_options() {
        assert_eq!(Setting::Go.to_string(), "Go");
        assert_eq!(Setting::GoFree.to_string(), "GoFree");
        assert_eq!(Setting::GoGcOff.to_string(), "Go-GCOff");
        assert!(!Setting::GoGcOff.gc_enabled());
        assert_eq!(Setting::all().len(), 3);
    }
}
