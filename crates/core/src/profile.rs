//! Profile exporters: render a run's stack-attributed [`Profile`] (built
//! by [`minigo_runtime::profile`]) into shareable artifacts.
//!
//! Four renderers:
//!
//! * [`folded_stacks`] — Brendan Gregg folded-stack text, one
//!   `frame;frame;frame value` line per stack, ready for
//!   `flamegraph.pl` (a classic allocation flamegraph).
//! * [`profile_report`] — the human-readable report behind
//!   `--profile PATH`: totals, top stacks by allocation and by garbage
//!   produced, bail-out attribution, per-site lifetime drag, and the
//!   heap snapshots.
//! * [`heap_snapshot_table`] — the per-size-class occupancy /
//!   fragmentation table for every GC-safepoint snapshot.
//! * [`gctrace_lines`] — a `GODEBUG=gctrace=1`-style pacing log, one
//!   line per GC cycle, derived entirely from `GcStart`/`GcEnd` events.
//!
//! Everything here is integer arithmetic over virtual ticks and byte
//! counters, so output is bit-identical across hosts, engines, and
//! `--jobs` settings — the property the golden snapshots pin down.

use std::collections::HashMap;
use std::fmt::Write as _;

use minigo_runtime::{Profile, SiteDrag, StackStat, StackTable, Trace, TraceEvent};

/// Which per-stack figure a folded-stack export weights lines by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldedMetric {
    /// Bytes allocated by the stack (the classic alloc flamegraph).
    AllocBytes,
    /// Objects allocated by the stack.
    AllocCount,
    /// Bytes `tcfree` reclaimed from the stack's objects.
    FreedBytes,
    /// Bytes the stack left for the GC (swept + leftover).
    GarbageBytes,
}

impl FoldedMetric {
    fn value(self, s: &StackStat) -> u64 {
        match self {
            FoldedMetric::AllocBytes => s.alloc_bytes,
            FoldedMetric::AllocCount => s.allocs,
            FoldedMetric::FreedBytes => s.free_bytes,
            FoldedMetric::GarbageBytes => s.garbage_bytes(),
        }
    }
}

/// Renders the profile as Brendan Gregg folded-stack lines
/// (`outer;inner value`), weighted by `metric`, zero-valued stacks
/// omitted. Feed the result straight to `flamegraph.pl`.
pub fn folded_stacks(profile: &Profile, stacks: &StackTable, metric: FoldedMetric) -> String {
    let mut out = String::new();
    for (id, stat) in &profile.stacks {
        let value = metric.value(stat);
        if value > 0 {
            let _ = writeln!(out, "{} {}", stacks.folded(*id), value);
        }
    }
    out
}

/// Integer percentage with a `checked_div` guard (0 when `den` is 0).
fn pct(num: u64, den: u64) -> u64 {
    (num * 100).checked_div(den).unwrap_or(0)
}

/// One stack-table section: `(title, column header)` + top-`limit` rows
/// by `key`.
fn stack_section<F: Fn(&StackStat) -> u64>(
    out: &mut String,
    profile: &Profile,
    stacks: &StackTable,
    (title, header): (&str, &str),
    limit: usize,
    key: F,
    row: impl Fn(&StackStat) -> String,
) {
    let ranked = profile.ranked_by(&key);
    let shown: Vec<_> = ranked
        .iter()
        .filter(|(_, s)| key(s) > 0)
        .take(limit)
        .collect();
    if shown.is_empty() {
        return;
    }
    let _ = writeln!(out, "-- {title} --");
    let _ = writeln!(out, "{header}");
    for (id, stat) in shown {
        let _ = writeln!(out, "{}  {}", row(stat), stacks.folded(*id));
    }
    out.push('\n');
}

/// Mean drag in ticks rendered as a number or `-` when no samples.
fn mean(ticks: u64, count: u64) -> String {
    match count {
        0 => "-".to_string(),
        n => (ticks / n).to_string(),
    }
}

/// Renders the per-site lifetime-drag table: for each allocation site,
/// how long its objects lived from allocation to `tcfree` versus from
/// allocation to GC sweep (virtual ticks, mean + log₂ histogram — the
/// drag gap GoFree closes is exactly `sweep` mean minus `tcfree` mean).
pub fn drag_table(sites: &[SiteDrag], labels: &HashMap<u32, String>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:<16} {:>8} {:>10} {:<16}  site",
        "tcfreed", "mean-drag", "log2-hist", "swept", "mean-drag", "log2-hist"
    );
    for d in sites {
        let label = match d.site {
            Some(id) => labels
                .get(&id)
                .cloned()
                .unwrap_or_else(|| format!("site {id}")),
            None => "<runtime>".to_string(),
        };
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:<16} {:>8} {:>10} {:<16}  {}",
            d.tcfree.count(),
            mean(d.tcfree.sum(), d.tcfree.count()),
            d.tcfree.spark(),
            d.sweep.count(),
            mean(d.sweep.sum(), d.sweep.count()),
            d.sweep.spark(),
            label
        );
    }
    out
}

/// Renders every heap snapshot in the trace as a per-size-class
/// occupancy table: slots live vs carved, live bytes vs backing-page
/// bytes (the fragmentation ratio), the large-object spans, and the
/// fig. 9 dangling-span count awaiting step 2.
pub fn heap_snapshot_table(trace: &Trace) -> String {
    let mut out = String::new();
    if trace.snapshots.is_empty() {
        out.push_str("(no snapshots)\n");
        return out;
    }
    for snap in &trace.snapshots {
        let when = match snap.cycle {
            Some(c) => format!("gc {c}"),
            None => "end of run".to_string(),
        };
        let _ = writeln!(
            out,
            "snapshot [{when}] at {}t: live {} B / footprint {} B ({}% occupied), {} dangling span(s)",
            snap.at,
            snap.heap_live,
            snap.footprint,
            pct(snap.heap_live, snap.footprint.max(1)),
            snap.dangling_spans
        );
        if !snap.classes.is_empty() || snap.large_spans > 0 {
            let _ = writeln!(
                out,
                "  {:>5} {:>9} {:>6} {:>7} {:>7} {:>11} {:>11} {:>5}",
                "class", "slot B", "spans", "slots", "live", "live B", "span B", "occ%"
            );
        }
        for c in &snap.classes {
            let _ = writeln!(
                out,
                "  {:>5} {:>9} {:>6} {:>7} {:>7} {:>11} {:>11} {:>4}%",
                c.class,
                c.slot_size,
                c.spans,
                c.slots,
                c.live_slots,
                c.live_bytes,
                c.span_bytes,
                pct(c.live_bytes, c.span_bytes)
            );
        }
        if snap.large_spans > 0 {
            let _ = writeln!(
                out,
                "  {:>5} {:>9} {:>6} {:>7} {:>7} {:>11} {:>11} {:>4}%",
                "large",
                "-",
                snap.large_spans,
                "-",
                "-",
                snap.large_bytes,
                snap.large_span_bytes,
                pct(snap.large_bytes, snap.large_span_bytes)
            );
        }
    }
    out
}

/// Renders a `GODEBUG=gctrace=1`-style pacing log: one line per GC
/// cycle, pairing each `GcStart` (trigger live bytes, crossed goal,
/// mark-window length) with its `GcEnd` (marked bytes, next goal, sweep
/// counts, fig. 9 dangling retirements, cycle cost). Each line is tagged
/// with the collector backend and the cycle kind (`major`, or `minor`
/// under the generational backend). The percentage is cumulative GC
/// ticks over elapsed virtual time, Go's "time in GC" figure.
pub fn gctrace_lines(trace: &Trace) -> Vec<String> {
    let mut lines = Vec::new();
    let mut cycle = 0u64;
    let mut gc_ticks_total = 0u64;
    let mut pending: Option<(u64, u64, u64)> = None;
    for ev in &trace.events {
        match *ev {
            TraceEvent::GcStart {
                heap_live,
                heap_goal,
                window,
                ..
            } => pending = Some((heap_live, heap_goal, window)),
            TraceEvent::GcEnd {
                at,
                heap_live,
                next_goal,
                swept,
                swept_bytes,
                dangling_retired,
                ticks,
                kind,
            } => {
                cycle += 1;
                gc_ticks_total += ticks;
                let (trigger, goal, window) = pending.take().unwrap_or((0, 0, 0));
                lines.push(format!(
                    "gc {cycle} [{}/{kind}] @{at}t {}%: {trigger}->{heap_live} B \
                     (goal {goal} B, window {window}), \
                     next {next_goal} B, swept {} objs / {swept_bytes} B, \
                     {dangling_retired} dangling retired, {ticks} ticks",
                    trace.collector.name(),
                    pct(gc_ticks_total, at.max(1)),
                    swept.iter().sum::<u64>(),
                ));
            }
            _ => {}
        }
    }
    lines
}

/// Renders the full human-readable profile report behind
/// `--profile PATH`: totals reconciled against [`Metrics`]-style sums,
/// top stacks by allocation and by garbage produced, bail attribution,
/// the per-site drag table, and every heap snapshot.
pub fn profile_report(profile: &Profile, trace: &Trace, labels: &HashMap<u32, String>) -> String {
    let stacks = &trace.stacks;
    let t = profile.totals();
    let mut out = String::new();
    let _ = writeln!(out, "== GoFree allocation profile ==");
    let _ = writeln!(
        out,
        "events: {} ({} dropped)   stacks: {}   gc cycles: {}\n",
        trace.events.len(),
        trace.events_dropped,
        stacks.len(),
        trace.gc_count()
    );
    let _ = writeln!(out, "-- totals --");
    let _ = writeln!(
        out,
        "heap allocs:  {} objs / {} B   stack allocs: {}",
        t.allocs, t.alloc_bytes, t.stack_allocs
    );
    let _ = writeln!(
        out,
        "tcfreed:      {} objs / {} B ({}% of allocated bytes)",
        t.frees,
        t.free_bytes,
        pct(t.free_bytes, t.alloc_bytes)
    );
    let _ = writeln!(
        out,
        "gc-swept:     {} objs / {} B   leftover: {} objs / {} B",
        t.swept, t.swept_bytes, t.leftover, t.leftover_bytes
    );
    let _ = writeln!(
        out,
        "tcfree ops:   {}   bails: {}   poisons: {}\n",
        t.free_ops, t.bails, t.poisons
    );

    stack_section(
        &mut out,
        profile,
        stacks,
        (
            "top stacks by allocated bytes",
            &format!(
                "{:>8} {:>12} {:>12} {:>12}  stack",
                "allocs", "bytes", "tcfreed B", "garbage B"
            ),
        ),
        10,
        |s| s.alloc_bytes,
        |s| {
            format!(
                "{:>8} {:>12} {:>12} {:>12}",
                s.allocs,
                s.alloc_bytes,
                s.free_bytes,
                s.garbage_bytes()
            )
        },
    );
    stack_section(
        &mut out,
        profile,
        stacks,
        (
            "top garbage-producing stacks (gc-swept + leftover bytes)",
            &format!(
                "{:>12} {:>12} {:>12} {:>6}  stack",
                "garbage B", "swept B", "leftover B", "freed%"
            ),
        ),
        10,
        StackStat::garbage_bytes,
        |s| {
            format!(
                "{:>12} {:>12} {:>12} {:>5}%",
                s.garbage_bytes(),
                s.swept_bytes,
                s.leftover_bytes,
                pct(s.free_bytes, s.alloc_bytes)
            )
        },
    );
    stack_section(
        &mut out,
        profile,
        stacks,
        (
            "tcfree bail-outs by attempting stack",
            &format!("{:>8}  stack", "bails"),
        ),
        10,
        |s| s.bails,
        |s| format!("{:>8}", s.bails),
    );

    if !profile.sites.is_empty() {
        let _ = writeln!(
            out,
            "-- lifetime drag by allocation site (virtual ticks) --"
        );
        out.push_str(&drag_table(&profile.sites, labels));
        out.push('\n');
    }

    let _ = writeln!(out, "-- heap snapshots --");
    out.push_str(&heap_snapshot_table(trace));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minigo_runtime::{Category, FreeSource, FreeStep, ObjAddr, SpanId, StackTable, ROOT_STACK};

    fn addr(n: u32) -> ObjAddr {
        ObjAddr {
            span: SpanId(n),
            slot: 0,
        }
    }

    fn sample() -> Trace {
        let mut stacks = StackTable::new();
        let main = stacks.push(ROOT_STACK, "main");
        let leaf = stacks.push(main, "grow");
        Trace {
            events: vec![
                TraceEvent::Alloc {
                    at: 0,
                    addr: addr(0),
                    site: Some(3),
                    stack: leaf,
                    cat: Category::Slice,
                    bytes: 112,
                    large: false,
                    heap_live: 112,
                    footprint: 8192,
                },
                TraceEvent::Alloc {
                    at: 5,
                    addr: addr(1),
                    site: Some(4),
                    stack: main,
                    cat: Category::Map,
                    bytes: 64,
                    large: false,
                    heap_live: 176,
                    footprint: 8192,
                },
                TraceEvent::Free {
                    at: 50,
                    addr: addr(0),
                    site: Some(3),
                    stack: main,
                    cat: Category::Slice,
                    source: FreeSource::SliceLifetime,
                    bytes: 112,
                    step: FreeStep::Revert { cascade: 0 },
                    heap_live: 64,
                },
                TraceEvent::GcStart {
                    at: 90,
                    heap_live: 64,
                    heap_goal: 64,
                    window: 16,
                    kind: minigo_runtime::CycleKind::Major,
                },
                TraceEvent::Sweep {
                    at: 100,
                    addr: addr(1),
                    cat: Category::Map,
                    bytes: 64,
                },
                TraceEvent::GcEnd {
                    at: 100,
                    heap_live: 0,
                    next_goal: 1024,
                    swept: [0, 1, 0],
                    swept_bytes: 64,
                    dangling_retired: 0,
                    ticks: 40,
                    kind: minigo_runtime::CycleKind::Major,
                },
                TraceEvent::Finalize {
                    at: 110,
                    leftover: [0, 0, 0],
                    footprint: 8192,
                },
            ],
            stacks,
            ..Trace::default()
        }
    }

    #[test]
    fn folded_lines_weight_by_metric_and_skip_zeroes() {
        let trace = sample();
        let p = Profile::build(&trace);
        let folded = folded_stacks(&p, &trace.stacks, FoldedMetric::AllocBytes);
        assert!(folded.contains("main;grow 112"), "{folded}");
        assert!(folded.contains("main 64"), "{folded}");
        let garbage = folded_stacks(&p, &trace.stacks, FoldedMetric::GarbageBytes);
        assert!(garbage.contains("main 64"), "{garbage}");
        assert!(
            !garbage.contains("main;grow"),
            "grow's object was tcfreed, not garbage: {garbage}"
        );
    }

    #[test]
    fn report_is_deterministic_and_reconciled() {
        let trace = sample();
        let p = Profile::build(&trace);
        let labels = HashMap::from([(3u32, "append growth (in grow)".to_string())]);
        let a = profile_report(&p, &trace, &labels);
        let b = profile_report(&p, &trace, &labels);
        assert_eq!(a, b);
        for needle in [
            "top stacks by allocated bytes",
            "top garbage-producing stacks",
            "main;grow",
            "append growth (in grow)",
            "lifetime drag",
            "heap snapshots",
        ] {
            assert!(a.contains(needle), "missing {needle} in:\n{a}");
        }
    }

    #[test]
    fn gctrace_pairs_start_with_end() {
        let lines = gctrace_lines(&sample());
        assert_eq!(lines.len(), 1);
        let l = &lines[0];
        for needle in [
            "gc 1 [go/major] @100t",
            "64->0 B",
            "goal 64 B",
            "window 16",
            "next 1024 B",
            "swept 1 objs / 64 B",
            "0 dangling retired",
            "40 ticks",
        ] {
            assert!(l.contains(needle), "missing {needle} in: {l}");
        }
    }

    #[test]
    fn snapshot_table_handles_empty() {
        assert_eq!(heap_snapshot_table(&Trace::default()), "(no snapshots)\n");
    }
}
