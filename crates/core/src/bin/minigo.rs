//! The `minigo` command-line tool: compile and run MiniGo programs with
//! the Go or GoFree pipeline, inspect the instrumented output, dump the
//! escape analysis and its graph, and profile allocation sites.
//!
//! ```text
//! minigo run [--go] [--gcoff] [--seed N] [--jobs N] [--collector go|gen]
//!            [--opt off|full] [--audit MODE] [--free-placement MODE]
//!            [--sanitize] [--explain] [--trace PATH] [--profile PATH]
//!            [--gctrace] [--report-json PATH] [--trace-cap N]
//!            [--service [--requests N] [--rps N] [--arrival SHAPE]] <file>
//! minigo build [--go] [--audit MODE] [--free-placement MODE] [--explain] <file>
//! minigo analyze [--func NAME] <file>   # escape properties + decisions
//! minigo dot --func NAME <file>         # escape graph as Graphviz DOT
//! minigo profile <file>                 # top allocation sites
//! ```
//!
//! `--audit {off,warn,deny}` runs the independent free-safety auditor
//! over the instrumented program; `deny` strips unproven frees before
//! execution. `--free-placement {scope,lastuse}` selects where inserted
//! frees land: `scope` (the default) frees at scope exit (§4.5,
//! bit-exact historical behavior), `lastuse` advances each free to just
//! after the variable's last use and adds partial frees (`tcfree(x.f)`)
//! for abandoned struct locals. `--sanitize` runs the shadow-heap oracle and fails the
//! command on any violation. `--explain` prints Go `-m`-style per-site
//! allocation and free decisions. `--trace PATH` records the runtime
//! event stream, writes it as Chrome `trace_event` JSON to PATH, prints
//! the per-site timeline table to stderr, and fails the command if the
//! folded trace does not reconcile exactly with the run's metrics.
//! `--profile PATH` writes the call-stack-attributed allocation profile
//! (plus `PATH.folded` for `flamegraph.pl`) and fails the command if the
//! profile does not reconcile exactly with the run's metrics.
//! `--collector {go,gen}` selects the collection backend: `go` (the
//! default) is the paper's mark-sweep, `gen` adds a generational nursery
//! with minor/major cycles. `--opt {off,full}` selects the bytecode
//! instruction stream: `full` (the default) runs the optimizer tier
//! (peephole/const-fold, jump threading, inline caches,
//! superinstructions), `off` runs the baseline lowering; observables
//! are bit-identical either way. `--gctrace` prints a Go
//! `GODEBUG=gctrace=1`-style pacing line per GC cycle to stderr, tagged
//! with the backend and cycle kind, plus a final minor/major summary. `--report-json PATH` writes the run report as JSON
//! with stable field names. `--trace-cap N` bounds the in-memory event
//! buffer; a truncated trace fails reconciliation loudly. `--service`
//! switches `run` to the open-loop traffic harness: instead of calling
//! `main`, the file's `setup()` builds persistent state and
//! `handle(state, req)` executes `--requests N` requests arriving at
//! `--rps N` with the `--arrival {fixed,poisson,burst}` shape; the
//! summary reports exact latency percentiles, minor/major GC pause
//! histograms, and heap high-water marks.

use std::collections::HashMap;
use std::process::ExitCode;

use gofree::{compile, execute, AuditMode, CompileOptions, FreePlacement, RunConfig, Setting};
use minigo_syntax::{Block, Expr, ExprId, ExprKind, Span, Stmt, StmtKind};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("minigo: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct Cli {
    go_mode: bool,
    gcoff: bool,
    seed: u64,
    jobs: usize,
    runs: u64,
    audit: AuditMode,
    free_placement: FreePlacement,
    collector: gofree::CollectorKind,
    engine: gofree::VmEngine,
    opt: gofree::OptLevel,
    sanitize: bool,
    explain: bool,
    trace: Option<String>,
    profile: Option<String>,
    gctrace: bool,
    report_json: Option<String>,
    trace_cap: Option<usize>,
    func: Option<String>,
    service: bool,
    requests: usize,
    rps: u64,
    arrival: gofree::Arrival,
    file: Option<String>,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        go_mode: false,
        gcoff: false,
        seed: 0,
        jobs: gofree::default_jobs(),
        runs: 1,
        audit: AuditMode::Off,
        free_placement: FreePlacement::Scope,
        collector: gofree::CollectorKind::default(),
        engine: gofree::VmEngine::default(),
        opt: gofree::OptLevel::default(),
        sanitize: false,
        explain: false,
        trace: None,
        profile: None,
        gctrace: false,
        report_json: None,
        trace_cap: None,
        func: None,
        service: false,
        requests: gofree::ServiceConfig::default().requests,
        rps: gofree::ServiceConfig::default().rps,
        arrival: gofree::Arrival::Fixed,
        file: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--go" => cli.go_mode = true,
            "--gofree" => cli.go_mode = false,
            "--gcoff" => cli.gcoff = true,
            "--seed" => {
                cli.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a number")?;
            }
            "--jobs" => {
                cli.jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--jobs needs a positive number")?;
            }
            "--runs" => {
                cli.runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--runs needs a positive number")?;
            }
            "--audit" => {
                cli.audit = it
                    .next()
                    .ok_or("--audit needs off, warn, or deny")?
                    .parse()?;
            }
            "--free-placement" => {
                cli.free_placement = FreePlacement::parse(
                    it.next().ok_or("--free-placement needs scope or lastuse")?,
                )
                .ok_or("--free-placement needs scope or lastuse")?;
            }
            "--collector" => {
                cli.collector = it.next().ok_or("--collector needs go or gen")?.parse()?;
            }
            "--engine" => {
                cli.engine = it
                    .next()
                    .ok_or("--engine needs tree-walk or bytecode")?
                    .parse()?;
            }
            "--opt" => {
                cli.opt = it.next().ok_or("--opt needs off or full")?.parse()?;
            }
            "--sanitize" => cli.sanitize = true,
            "--explain" => cli.explain = true,
            "--trace" => {
                cli.trace = Some(it.next().ok_or("--trace needs an output path")?.clone());
            }
            "--profile" => {
                cli.profile = Some(it.next().ok_or("--profile needs an output path")?.clone());
            }
            "--gctrace" => cli.gctrace = true,
            "--report-json" => {
                cli.report_json = Some(
                    it.next()
                        .ok_or("--report-json needs an output path")?
                        .clone(),
                );
            }
            "--trace-cap" => {
                cli.trace_cap = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--trace-cap needs a number")?,
                );
            }
            "--func" => {
                cli.func = Some(it.next().ok_or("--func needs a name")?.clone());
            }
            "--service" => cli.service = true,
            "--requests" => {
                cli.requests = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--requests needs a positive number")?;
            }
            "--rps" => {
                cli.rps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--rps needs a positive number")?;
            }
            "--arrival" => {
                cli.arrival = it
                    .next()
                    .ok_or("--arrival needs fixed, poisson, or burst")?
                    .parse()?;
            }
            other if !other.starts_with('-') => {
                if cli.file.is_some() {
                    return Err(format!("unexpected argument {other}"));
                }
                cli.file = Some(other.to_string());
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(cli)
}

fn run_cli(args: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage());
    };
    let cli = parse_cli(rest)?;
    let read = |cli: &Cli| -> Result<String, String> {
        let file = cli.file.as_ref().ok_or("missing input file")?;
        std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))
    };
    let options = |cli: &Cli| {
        let base = if cli.go_mode {
            CompileOptions::go()
        } else {
            CompileOptions::default()
        };
        CompileOptions {
            audit: cli.audit,
            free_placement: cli.free_placement,
            ..base
        }
    };

    match cmd.as_str() {
        "run" => {
            let src = read(&cli)?;
            let compiled = compile(&src, &options(&cli)).map_err(|e| e.render(&src))?;
            if cli.explain {
                explain_sites(&compiled, &src);
            }
            report_audit(&compiled, &src);
            report_placement(&compiled);
            let setting = match (cli.go_mode, cli.gcoff) {
                (_, true) => Setting::GoGcOff,
                (true, false) => Setting::Go,
                (false, false) => Setting::GoFree,
            };
            let cfg = RunConfig {
                seed: cli.seed,
                jobs: cli.jobs,
                collector: cli.collector,
                engine: cli.engine,
                opt: cli.opt,
                sanitize: cli.sanitize,
                trace: cli.trace.is_some() || cli.profile.is_some() || cli.gctrace,
                trace_cap: cli.trace_cap,
                ..RunConfig::default()
            };
            if cli.service {
                return run_service_mode(&cli, &compiled, setting, &cfg, &src);
            }
            // `--runs N` executes a seeded distribution (fanned across
            // `--jobs`/GOFREE_JOBS workers); the report of run 0 is
            // printed either way, so output is runs/jobs-invariant.
            let reports = gofree::run_distribution(&compiled, setting, &cfg, cli.runs)
                .map_err(|e| e.to_string())?;
            let report = &reports[0];
            print!("{}", report.output);
            eprintln!(
                "[{setting}] time={} GCs={} alloced={}B freed={}B ({:.0}%) maxheap={}B",
                report.time,
                report.metrics.gcs,
                report.metrics.alloced_bytes,
                report.metrics.freed_bytes,
                report.metrics.free_ratio() * 100.0,
                report.metrics.maxheap,
            );
            if cli.runs > 1 {
                let times: Vec<u64> = reports.iter().map(|r| r.time).collect();
                eprintln!(
                    "[{setting}] {} runs (jobs={}): time min={} max={}",
                    cli.runs,
                    cli.jobs,
                    times.iter().min().unwrap(),
                    times.iter().max().unwrap(),
                );
            }
            if cfg.trace {
                let trace = report
                    .trace
                    .as_ref()
                    .ok_or("internal error: traced run produced no trace")?;
                trace
                    .reconcile(&report.metrics)
                    .map_err(|e| format!("[trace] {e}"))?;
                let spans = collect_spans(&compiled.program);
                let labels: HashMap<u32, String> = spans
                    .iter()
                    .map(|(id, (span, what))| {
                        let (line, col) = span.line_col(&src);
                        (id.0, format!("{line}:{col} {what}"))
                    })
                    .collect();
                if let Some(path) = &cli.trace {
                    let json = gofree::chrome_trace_json(trace, &compiled.phase_times);
                    std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
                    eprint!("{}", gofree::timeline_table(trace, &labels));
                    eprintln!(
                        "[trace] {} events reconciled with metrics; wrote {path}",
                        trace.events.len()
                    );
                }
                if let Some(path) = &cli.profile {
                    let profile = gofree::Profile::build(trace);
                    profile
                        .reconcile(&report.metrics)
                        .map_err(|e| format!("[profile] {e}"))?;
                    let text = gofree::profile_report(&profile, trace, &labels);
                    std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
                    let folded = gofree::folded_stacks(
                        &profile,
                        &trace.stacks,
                        gofree::FoldedMetric::AllocBytes,
                    );
                    let folded_path = format!("{path}.folded");
                    std::fs::write(&folded_path, folded)
                        .map_err(|e| format!("{folded_path}: {e}"))?;
                    eprintln!(
                        "[profile] {} stacks reconciled with metrics; wrote {path} and {folded_path}",
                        trace.stacks.len()
                    );
                }
                if cli.gctrace {
                    for line in gofree::gctrace_lines(trace) {
                        eprintln!("{line}");
                    }
                    eprintln!(
                        "[gctrace] collector={} cycles={} (minor={} major={})",
                        trace.collector.name(),
                        report.metrics.gcs,
                        report.metrics.gcs_minor,
                        report.metrics.gcs_major,
                    );
                }
            }
            if let Some(path) = &cli.report_json {
                let json = if cli.runs > 1 {
                    gofree::reports_json(&reports)
                } else {
                    gofree::report_json(report)
                };
                std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
                eprintln!("[report] wrote {path}");
            }
            if cli.sanitize {
                let total: usize = reports.iter().map(|r| r.violations.len()).sum();
                if total > 0 {
                    for v in reports.iter().flat_map(|r| &r.violations) {
                        eprintln!("[sanitize] {v}");
                    }
                    return Err(format!(
                        "sanitizer reported {total} violation(s) across {} run(s)",
                        reports.len()
                    ));
                }
                eprintln!("[sanitize] clean: no violations");
            }
            Ok(())
        }
        "build" => {
            let src = read(&cli)?;
            let compiled = compile(&src, &options(&cli)).map_err(|e| e.render(&src))?;
            if cli.explain {
                explain_sites(&compiled, &src);
            }
            report_audit(&compiled, &src);
            report_placement(&compiled);
            print!("{}", compiled.instrumented_source());
            Ok(())
        }
        "analyze" => {
            let src = read(&cli)?;
            let compiled = compile(&src, &options(&cli)).map_err(|e| e.render(&src))?;
            print_analysis(&compiled, cli.func.as_deref());
            Ok(())
        }
        "dot" => {
            let src = read(&cli)?;
            let name = cli.func.as_deref().ok_or("dot requires --func NAME")?;
            let compiled = compile(&src, &options(&cli)).map_err(|e| e.render(&src))?;
            let fid = compiled
                .program
                .func(name)
                .ok_or_else(|| format!("no function `{name}`"))?
                .id;
            let fg = compiled
                .analysis
                .funcs
                .get(&fid)
                .ok_or("function not analyzed")?;
            print!("{}", fg.graph.to_dot(name));
            Ok(())
        }
        "explain" => {
            let src = read(&cli)?;
            let compiled = compile(&src, &options(&cli)).map_err(|e| e.render(&src))?;
            explain(&compiled, cli.func.as_deref());
            Ok(())
        }
        "profile" => {
            let src = read(&cli)?;
            let compiled = compile(&src, &options(&cli)).map_err(|e| e.render(&src))?;
            let cfg = RunConfig {
                seed: cli.seed,
                ..RunConfig::default()
            };
            let report = execute(&compiled, Setting::GoFree, &cfg).map_err(|e| e.to_string())?;
            let spans = collect_spans(&compiled.program);
            println!("{:>6} {:>12} {:>10}  site", "count", "bytes", "location");
            for p in report.site_profile.iter().take(20) {
                let (loc, what) = spans
                    .get(&p.site)
                    .map(|(span, what)| {
                        let (line, col) = span.line_col(&src);
                        (format!("{line}:{col}"), what.clone())
                    })
                    .unwrap_or_else(|| ("?".into(), "?".into()));
                println!("{:>6} {:>12} {:>10}  {}", p.count, p.bytes, loc, what);
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            eprintln!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: minigo <run|build|analyze|dot|explain|profile> [--go] [--gcoff] [--seed N] \
     [--runs N] [--jobs N] [--collector go|gen] [--engine tree-walk|bytecode] \
     [--opt off|full] [--audit off|warn|deny] \
     [--free-placement scope|lastuse] [--sanitize] [--explain] [--trace PATH] \
     [--profile PATH] [--gctrace] [--report-json PATH] [--trace-cap N] [--func NAME] \
     [--service [--requests N] [--rps N] [--arrival fixed|poisson|burst]] <file>"
        .to_string()
}

/// `minigo run --service`: drives the file's `setup`/`handle` contract
/// through the open-loop traffic harness instead of calling `main`.
/// Prints the latency/pause summary to stdout; `--trace`, `--gctrace`,
/// and `--report-json` observe the service run (request spans in the
/// chrome export, pause/latency rows after the pacing log, a
/// `"service"` section in the JSON report).
fn run_service_mode(
    cli: &Cli,
    compiled: &gofree::Compiled,
    setting: Setting,
    cfg: &RunConfig,
    _src: &str,
) -> Result<(), String> {
    let svc = gofree::ServiceConfig {
        requests: cli.requests,
        rps: cli.rps,
        arrival: cli.arrival,
    };
    let r = gofree::run_service(compiled, setting, cfg, &svc).map_err(|e| e.to_string())?;
    print!("{}", r.report.output);
    println!(
        "[{setting}] service: {} arrivals at {} rps over {} requests",
        svc.arrival, svc.rps, svc.requests
    );
    print!("{}", gofree::service_summary(&r.stats));
    if cfg.trace {
        let trace = r
            .report
            .trace
            .as_ref()
            .ok_or("internal error: traced run produced no trace")?;
        trace
            .reconcile(&r.report.metrics)
            .map_err(|e| format!("[trace] {e}"))?;
        if let Some(path) = &cli.trace {
            let json = gofree::chrome_trace_json(trace, &compiled.phase_times);
            std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
            eprintln!(
                "[trace] {} events (incl. request spans) reconciled with metrics; wrote {path}",
                trace.events.len()
            );
        }
        if cli.gctrace {
            for line in gofree::gctrace_lines(trace) {
                eprintln!("{line}");
            }
            eprint!("{}", gofree::service_gctrace_lines(&r.stats));
        }
    }
    if let Some(path) = &cli.report_json {
        let json = gofree::service_report_json(&r.report, Some(&r.stats));
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("[report] wrote {path}");
    }
    if cli.sanitize {
        if !r.report.violations.is_empty() {
            for v in &r.report.violations {
                eprintln!("[sanitize] {v}");
            }
            return Err(format!(
                "sanitizer reported {} violation(s)",
                r.report.violations.len()
            ));
        }
        eprintln!("[sanitize] clean: no violations");
    }
    Ok(())
}

/// Prints the liveness placement counters (when the program was compiled
/// with `--free-placement lastuse`) to stderr.
fn report_placement(compiled: &gofree::Compiled) {
    let Some(p) = &compiled.placement else {
        return;
    };
    eprintln!(
        "[placement] mode={} advanced={} partial={} suppressed={}",
        p.mode.name(),
        p.lastuse_advanced,
        p.partial_frees,
        p.suppressed,
    );
}

/// Prints the free-safety audit report (when auditing ran) to stderr:
/// the proof rate, and one line per unproven site with the auditor's
/// reason.
fn report_audit(compiled: &gofree::Compiled, src: &str) {
    let Some(report) = &compiled.audit else {
        return;
    };
    eprintln!(
        "[audit] {}/{} free sites proved ({:.1}%){}",
        report.proved(),
        report.sites.len(),
        report.proof_rate() * 100.0,
        if compiled.frees_suppressed > 0 {
            format!(", {} stripped under deny", compiled.frees_suppressed)
        } else {
            String::new()
        }
    );
    for s in report.unproven() {
        let loc = if s.span.is_empty() {
            "<inserted>".to_string()
        } else {
            let (line, col) = s.span.line_col(src);
            format!("{line}:{col}")
        };
        eprintln!(
            "[audit] {loc}: {}({}) in {}: {}",
            s.kind, s.target, s.func, s.verdict
        );
    }
}

/// Go `-m`-style per-site diagnostics: every allocation's stack-or-heap
/// decision with the rule that fired, then every free site's audit
/// verdict (the auditor's reason strings verbatim).
fn explain_sites(compiled: &gofree::Compiled, src: &str) {
    let spans = collect_spans(&compiled.program);
    let max_stack = compiled.analysis.options.build.max_stack_bytes;
    let mut lines: Vec<(u32, String)> = Vec::new();
    for fg in compiled.analysis.funcs.values() {
        for (expr, site) in &fg.alloc_sites {
            let Some((span, what)) = spans.get(expr) else {
                continue;
            };
            let (line, col) = span.line_col(src);
            let rule = match (compiled.analysis.place_of(*expr), site.const_size) {
                (minigo_escape::AllocPlace::Stack, _) => {
                    "does not escape and has a constant size: stack allocated".to_string()
                }
                (_, None) => "non-constant size: heap allocated".to_string(),
                (_, Some(sz)) if sz > max_stack => {
                    format!(
                        "constant size {sz}B exceeds the {max_stack}B stack cap: heap allocated"
                    )
                }
                _ => "escapes: heap allocated".to_string(),
            };
            lines.push((span.start, format!("{line}:{col}: {what}: {rule}")));
        }
    }
    // Free sites carry the independent auditor's verdicts; run it here if
    // the pipeline did not (`--audit off`).
    let fallback;
    let report = match &compiled.audit {
        Some(r) => r,
        None => {
            fallback =
                minigo_escape::audit(&compiled.program, &compiled.resolution, &compiled.types);
            &fallback
        }
    };
    for s in &report.sites {
        let (key, loc) = if s.span.is_empty() {
            (u32::MAX, "<inserted>".to_string())
        } else {
            let (line, col) = s.span.line_col(src);
            (s.span.start, format!("{line}:{col}"))
        };
        lines.push((
            key,
            format!(
                "{loc}: {}({}) in {}: {}",
                s.kind, s.target, s.func, s.verdict
            ),
        ));
    }
    lines.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    for (_, l) in lines {
        eprintln!("{l}");
    }
}

/// Explains, for every local of a freeable reference type, which of
/// definition 4.17's conjuncts hold and which witnesses block freeing.
fn explain(compiled: &gofree::Compiled, only: Option<&str>) {
    use minigo_escape::{points_to, LocKind};
    for func in &compiled.program.funcs {
        if let Some(name) = only {
            if func.name != name {
                continue;
            }
        }
        let Some(fg) = compiled.analysis.funcs.get(&func.id) else {
            continue;
        };
        let selected: std::collections::HashSet<minigo_syntax::VarId> = compiled
            .analysis
            .free_vars
            .get(&func.id)
            .map(|v| v.iter().map(|(vid, _)| *vid).collect())
            .unwrap_or_default();
        let mut printed_header = false;
        for id in fg.graph.ids() {
            let l = fg.graph.loc(id);
            let LocKind::Var(vid) = l.kind else { continue };
            let info = compiled.resolution.var(vid);
            let is_local = info.kind == minigo_syntax::VarKind::Local;
            let freeable_ty = compiled
                .types
                .var(vid)
                .map(|t| t.is_freeable_reference())
                .unwrap_or(false);
            if !is_local || !freeable_ty {
                continue;
            }
            if !printed_header {
                println!("func {}:", func.name);
                printed_header = true;
            }
            let pts = points_to(&fg.graph, id);
            if selected.contains(&vid) {
                println!(
                    "  {:<14} FREED   (complete, not outlived, points to heap)",
                    l.name
                );
                continue;
            }
            if l.to_free() {
                println!(
                    "  {:<14} KEPT    qualified, but excluded by the free-target selection (§6.5)",
                    l.name
                );
                continue;
            }
            let mut reasons = Vec::new();
            if l.incomplete {
                reasons.push(
                    "points-to set incomplete (untracked indirect-store dataflow)".to_string(),
                );
            }
            if l.outlived {
                let witnesses: Vec<String> = pts
                    .iter()
                    .filter(|&&p| fg.graph.loc(p).outermost_ref < l.decl_depth)
                    .map(|&p| {
                        let pl = fg.graph.loc(p);
                        format!(
                            "{} (referenced from scope depth {} < {})",
                            pl.name, pl.outermost_ref, l.decl_depth
                        )
                    })
                    .collect();
                reasons.push(format!("outlived by {}", witnesses.join(", ")));
            }
            if !l.points_to_heap {
                reasons.push("all referents are stack-allocated".to_string());
            }
            if l.pinned {
                reasons.push("passed to defer/panic (§5)".to_string());
            }
            if reasons.is_empty() {
                reasons.push("not selected (mode or target restriction)".to_string());
            }
            println!("  {:<14} KEPT    {}", l.name, reasons.join("; "));
        }
        if printed_header {
            println!();
        }
    }
}

fn print_analysis(compiled: &gofree::Compiled, only: Option<&str>) {
    for func in &compiled.program.funcs {
        if let Some(name) = only {
            if func.name != name {
                continue;
            }
        }
        let Some(fg) = compiled.analysis.funcs.get(&func.id) else {
            continue;
        };
        println!("func {}:", func.name);
        for id in fg.graph.ids() {
            let l = fg.graph.loc(id);
            if !matches!(l.kind, minigo_escape::LocKind::Var(_)) {
                continue;
            }
            println!(
                "  {:<16} heap={:<5} exposes={:<5} incomplete={:<5} outlived={:<5} tofree={}",
                l.name,
                l.heap_alloc,
                l.exposes,
                l.incomplete,
                l.outlived,
                l.to_free()
            );
        }
        if let Some(frees) = compiled.analysis.free_vars.get(&func.id) {
            for (vid, kind) in frees {
                println!("  -> {} {}", kind, compiled.resolution.var(*vid).name);
            }
        }
        println!();
    }
}

/// Maps allocation-relevant expression ids to spans and descriptions.
fn collect_spans(program: &minigo_syntax::Program) -> HashMap<ExprId, (Span, String)> {
    let mut out = HashMap::new();
    for func in &program.funcs {
        collect_block(&func.body, &func.name, &mut out);
    }
    out
}

fn collect_block(block: &Block, fname: &str, out: &mut HashMap<ExprId, (Span, String)>) {
    for stmt in &block.stmts {
        collect_stmt(stmt, fname, out);
    }
}

fn collect_stmt(stmt: &Stmt, fname: &str, out: &mut HashMap<ExprId, (Span, String)>) {
    let mut visit = |e: &Expr| collect_expr(e, fname, out);
    match &stmt.kind {
        StmtKind::VarDecl { init, .. } | StmtKind::ShortDecl { init, .. } => {
            init.iter().for_each(&mut visit)
        }
        StmtKind::Assign { lhs, rhs, .. } => {
            lhs.iter().for_each(&mut visit);
            rhs.iter().for_each(&mut visit);
        }
        StmtKind::If { cond, then, els } => {
            visit(cond);
            collect_block(then, fname, out);
            if let Some(els) = els {
                collect_stmt(els, fname, out);
            }
        }
        StmtKind::For {
            init,
            cond,
            post,
            body,
        } => {
            if let Some(init) = init {
                collect_stmt(init, fname, out);
            }
            if let Some(cond) = cond {
                collect_expr(cond, fname, out);
            }
            if let Some(post) = post {
                collect_stmt(post, fname, out);
            }
            collect_block(body, fname, out);
        }
        StmtKind::Return { exprs } => exprs.iter().for_each(&mut visit),
        StmtKind::Expr { expr } => visit(expr),
        StmtKind::BlockStmt { block } => collect_block(block, fname, out),
        StmtKind::Defer { call } => visit(call),
        StmtKind::Switch {
            subject,
            cases,
            default,
        } => {
            collect_expr(subject, fname, out);
            for case in cases {
                case.values.iter().for_each(|v| collect_expr(v, fname, out));
                collect_block(&case.body, fname, out);
            }
            if let Some(default) = default {
                collect_block(default, fname, out);
            }
        }
        StmtKind::Break | StmtKind::Continue => {}
        StmtKind::Free { target, .. } => visit(target),
    }
}

fn collect_expr(e: &Expr, fname: &str, out: &mut HashMap<ExprId, (Span, String)>) {
    match &e.kind {
        ExprKind::Builtin { kind, args, .. } => {
            let what = match kind {
                minigo_syntax::Builtin::Make => Some(format!("make (in {fname})")),
                minigo_syntax::Builtin::New => Some(format!("new (in {fname})")),
                minigo_syntax::Builtin::Append => Some(format!("append growth (in {fname})")),
                _ => None,
            };
            if let Some(what) = what {
                out.insert(e.id, (e.span, what));
            }
            args.iter().for_each(|a| collect_expr(a, fname, out));
        }
        ExprKind::StructLit { name, fields } => {
            out.insert(e.id, (e.span, format!("&{name}{{}} (in {fname})")));
            fields.iter().for_each(|f| collect_expr(f, fname, out));
        }
        ExprKind::Unary { operand, .. } => collect_expr(operand, fname, out),
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_expr(lhs, fname, out);
            collect_expr(rhs, fname, out);
        }
        ExprKind::Field { base, .. } => collect_expr(base, fname, out),
        ExprKind::Index { base, index } => {
            collect_expr(base, fname, out);
            collect_expr(index, fname, out);
        }
        ExprKind::SliceExpr { base, lo, hi } => {
            collect_expr(base, fname, out);
            for bound in [lo, hi].into_iter().flatten() {
                collect_expr(bound, fname, out);
            }
        }
        ExprKind::Call { args, .. } => args.iter().for_each(|a| collect_expr(a, fname, out)),
        _ => {}
    }
}
