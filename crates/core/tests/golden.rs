//! Golden snapshot tests for the user-facing CLI surfaces: the
//! `--explain` per-site diagnostics, the `--trace` timeline table, the
//! `--profile` report + folded stacks, the `--gctrace` pacing log, and
//! the `--report-json` export.
//! Expected outputs live under `tests/golden/`; update them after an
//! intentional change with
//!
//! ```text
//! GOFREE_BLESS=1 cargo test -p gofree --test golden
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_file(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

/// Compares `actual` against `tests/golden/<name>.txt`, or rewrites the
/// snapshot when `GOFREE_BLESS=1` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"));
    if std::env::var("GOFREE_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden {}; bless with GOFREE_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "golden mismatch for {name}; if the change is intentional, re-bless with \
         GOFREE_BLESS=1 cargo test -p gofree --test golden"
    );
}

/// Runs the `minigo` binary and captures both streams with markers, so a
/// snapshot pins stdout and stderr at once.
fn run_minigo(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_minigo"))
        .args(args)
        .output()
        .expect("minigo runs");
    assert!(
        out.status.success(),
        "minigo {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    format!(
        "# stdout\n{}# stderr\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    )
}

#[test]
fn explain_demo_snapshot() {
    let file = repo_file("examples/programs/demo.mgo");
    assert_golden(
        "explain_demo",
        &run_minigo(&["build", "--explain", file.to_str().unwrap()]),
    );
}

#[test]
fn explain_linkedlist_snapshot() {
    let file = repo_file("examples/programs/linkedlist.mgo");
    assert_golden(
        "explain_linkedlist",
        &run_minigo(&["build", "--explain", file.to_str().unwrap()]),
    );
}

#[test]
fn trace_timeline_snapshot() {
    // `minigo run --trace` prints the per-site timeline table (plus the
    // run report) to stderr; the seed pins the virtual-time stream. The
    // JSON output path varies per run, so it is normalised out.
    let file = repo_file("examples/programs/sieve.mgo");
    let json = std::env::temp_dir().join("gofree-golden-trace.json");
    let json_str = json.to_str().unwrap().to_string();
    let out = run_minigo(&[
        "run",
        "--seed",
        "7",
        "--trace",
        &json_str,
        file.to_str().unwrap(),
    ]);
    let normalised = out.replace(&json_str, "<trace.json>");
    assert_golden("trace_timeline_sieve", &normalised);

    // The exported Chrome JSON must be well-formed enough to pin a few
    // structural invariants (it is timestamp-heavy, so no full snapshot).
    let json_text = std::fs::read_to_string(&json).expect("trace json written");
    assert!(json_text.starts_with("{\"traceEvents\":["));
    assert!(json_text.contains("\"escape-solve\""));
    assert!(json_text.contains("\"alloc\""));
    assert!(json_text.contains("\"free\""));
    assert!(json_text.contains("\"stack\""));
    let _ = std::fs::remove_file(&json);
}

#[test]
fn profile_report_snapshot() {
    // `minigo run --profile` writes the stack-attributed allocation
    // report (totals, top stacks, drag table, heap snapshots) plus the
    // folded-stack companion; seeded, so both are bit-stable.
    let file = repo_file("examples/programs/sieve.mgo");
    let out_path = std::env::temp_dir().join("gofree-golden-profile.txt");
    let out_str = out_path.to_str().unwrap().to_string();
    let cli = run_minigo(&[
        "run",
        "--seed",
        "7",
        "--profile",
        &out_str,
        file.to_str().unwrap(),
    ]);
    let normalised = cli.replace(&out_str, "<profile.txt>");
    assert_golden("profile_cli_sieve", &normalised);

    let report = std::fs::read_to_string(&out_path).expect("profile written");
    assert_golden("profile_report_sieve", &report);
    let folded =
        std::fs::read_to_string(format!("{out_str}.folded")).expect("folded profile written");
    assert_golden("profile_folded_sieve", &folded);
    let _ = std::fs::remove_file(&out_path);
    let _ = std::fs::remove_file(format!("{out_str}.folded"));
}

#[test]
fn gctrace_snapshot() {
    // `--gctrace` under the plain Go pipeline on wordcount crosses the
    // pacing goal, so the log has at least one cycle line; the seed pins
    // the stream exactly.
    let file = repo_file("examples/programs/wordcount.mgo");
    let out = run_minigo(&[
        "run",
        "--go",
        "--seed",
        "7",
        "--gctrace",
        file.to_str().unwrap(),
    ]);
    assert!(
        out.contains("gc 1 [go/major] @"),
        "no pacing line in:\n{out}"
    );
    assert!(
        out.contains("[gctrace] collector=go"),
        "no collector summary in:\n{out}"
    );
    assert_golden("gctrace_wordcount", &out);
}

#[test]
fn report_json_snapshot() {
    let file = repo_file("examples/programs/sieve.mgo");
    let out_path = std::env::temp_dir().join("gofree-golden-report.json");
    let out_str = out_path.to_str().unwrap().to_string();
    let cli = run_minigo(&[
        "run",
        "--seed",
        "7",
        "--report-json",
        &out_str,
        file.to_str().unwrap(),
    ]);
    assert!(cli.contains("[report] wrote"));
    let json = std::fs::read_to_string(&out_path).expect("report json written");
    assert_golden("report_json_sieve", &json);
    let _ = std::fs::remove_file(&out_path);
}
