//! Integration tests for the `minigo` command-line tool.

use std::io::Write as _;
use std::process::Command;

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("minigo-cli-{name}-{}.mgo", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(content.as_bytes()).expect("write");
    path
}

const PROGRAM: &str = "func work(n int) int { s := make([]int, n)\n s[0] = n\n x := s[0]\n return x }\nfunc main() { print(work(64)) }\n";

fn minigo(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_minigo"))
        .args(args)
        .output()
        .expect("run minigo")
}

#[test]
fn run_prints_output_and_metrics() {
    let path = write_temp("run", PROGRAM);
    let out = minigo(&["run", path.to_str().unwrap()]);
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), "64\n");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("[GoFree]"), "{err}");
    assert!(err.contains("freed="), "{err}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn run_go_mode_frees_nothing() {
    let path = write_temp("go", PROGRAM);
    let out = minigo(&["run", "--go", path.to_str().unwrap()]);
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("freed=0B"), "{err}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn build_shows_instrumentation() {
    let path = write_temp("build", PROGRAM);
    let out = minigo(&["build", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("tcfree(s)"), "{text}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn analyze_lists_properties_and_frees() {
    let path = write_temp("analyze", PROGRAM);
    let out = minigo(&["analyze", "--func", "work", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("func work:"), "{text}");
    assert!(text.contains("TcfreeSlice s"), "{text}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn dot_emits_graphviz() {
    let path = write_temp("dot", PROGRAM);
    let out = minigo(&["dot", "--func", "work", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("digraph"), "{text}");
    assert!(text.contains("heapLoc"), "{text}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn profile_lists_sites() {
    let path = write_temp("profile", PROGRAM);
    let out = minigo(&["profile", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("make (in work)"), "{text}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn errors_are_reported() {
    let out = minigo(&["run", "/nonexistent/file.mgo"]);
    assert!(!out.status.success());
    let bad = write_temp("bad", "func main() { undefined() }\n");
    let out = minigo(&["run", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("undefined"));
    let _ = std::fs::remove_file(bad);
    let out = minigo(&["frobnicate"]);
    assert!(!out.status.success());
}

#[test]
fn explain_reports_decisions_with_reasons() {
    let src = "func main() { n := 30\n kept := make([]int, n)\n { temp := make([]int, n)\n temp[0] = 1\n alias := kept[0:5]\n alias[0] = temp[0] }\n defer print(len(kept))\n print(kept[0]) }\n";
    let path = write_temp("explain", src);
    let out = minigo(&["explain", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("temp") && text.contains("FREED"), "{text}");
    assert!(text.contains("defer/panic"), "{text}");
    assert!(text.contains("outlived by"), "{text}");
    let _ = std::fs::remove_file(path);
}
