//! Pretty-printer for MiniGo ASTs.
//!
//! Used to display instrumented programs (with the inserted `tcfree` calls)
//! and by round-trip tests: `parse(print(parse(src)))` must equal
//! `parse(src)` up to ids.

use std::fmt::Write as _;

use crate::ast::*;

/// Renders a whole program as MiniGo source.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for s in &program.structs {
        let _ = writeln!(out, "type {} struct {{", s.name);
        for (name, ty) in &s.fields {
            let _ = writeln!(out, "\t{name} {ty}");
        }
        let _ = writeln!(out, "}}");
        out.push('\n');
    }
    for f in &program.funcs {
        print_func(&mut out, f);
        out.push('\n');
    }
    out
}

/// Renders one function as MiniGo source.
pub fn print_func(out: &mut String, f: &Func) {
    let _ = write!(out, "func {}(", f.name);
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} {}", p.name, p.ty);
    }
    out.push(')');
    if !f.results.is_empty() {
        out.push(' ');
        if f.results.len() == 1 && f.results[0].name.is_empty() {
            let _ = write!(out, "{}", f.results[0].ty);
        } else {
            out.push('(');
            for (i, r) in f.results.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                if r.name.is_empty() {
                    let _ = write!(out, "{}", r.ty);
                } else {
                    let _ = write!(out, "{} {}", r.name, r.ty);
                }
            }
            out.push(')');
        }
    }
    out.push(' ');
    print_block(out, &f.body, 0);
    out.push('\n');
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push('\t');
    }
}

fn print_block(out: &mut String, block: &Block, level: usize) {
    out.push_str("{\n");
    for stmt in &block.stmts {
        indent(out, level + 1);
        print_stmt(out, stmt, level + 1);
        out.push('\n');
    }
    indent(out, level);
    out.push('}');
}

fn print_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    match &stmt.kind {
        StmtKind::VarDecl { names, ty, init } => {
            let _ = write!(out, "var {} {ty}", names.join(", "));
            if !init.is_empty() {
                out.push_str(" = ");
                print_exprs(out, init);
            }
        }
        StmtKind::ShortDecl { names, init } => {
            let _ = write!(out, "{} := ", names.join(", "));
            print_exprs(out, init);
        }
        StmtKind::Assign { lhs, op, rhs } => {
            print_exprs(out, lhs);
            match op {
                Some(op) => {
                    let _ = write!(out, " {op}= ");
                }
                None => out.push_str(" = "),
            }
            print_exprs(out, rhs);
        }
        StmtKind::If { cond, then, els } => {
            out.push_str("if ");
            print_expr(out, cond);
            out.push(' ');
            print_block(out, then, level);
            if let Some(els) = els {
                out.push_str(" else ");
                match &els.kind {
                    StmtKind::BlockStmt { block } => print_block(out, block, level),
                    _ => print_stmt(out, els, level),
                }
            }
        }
        StmtKind::For {
            init,
            cond,
            post,
            body,
        } => {
            out.push_str("for ");
            if init.is_some() || post.is_some() {
                if let Some(init) = init {
                    print_stmt(out, init, level);
                }
                out.push_str("; ");
                if let Some(cond) = cond {
                    print_expr(out, cond);
                }
                out.push_str("; ");
                if let Some(post) = post {
                    print_stmt(out, post, level);
                }
                out.push(' ');
            } else if let Some(cond) = cond {
                print_expr(out, cond);
                out.push(' ');
            }
            print_block(out, body, level);
        }
        StmtKind::Return { exprs } => {
            out.push_str("return");
            if !exprs.is_empty() {
                out.push(' ');
                print_exprs(out, exprs);
            }
        }
        StmtKind::Expr { expr } => print_expr(out, expr),
        StmtKind::BlockStmt { block } => print_block(out, block, level),
        StmtKind::Defer { call } => {
            out.push_str("defer ");
            print_expr(out, call);
        }
        StmtKind::Switch {
            subject,
            cases,
            default,
        } => {
            out.push_str("switch ");
            print_expr(out, subject);
            out.push_str(" {\n");
            for case in cases {
                indent(out, level);
                out.push_str("case ");
                print_exprs(out, &case.values);
                out.push_str(":\n");
                for stmt in &case.body.stmts {
                    indent(out, level + 1);
                    print_stmt(out, stmt, level + 1);
                    out.push('\n');
                }
            }
            if let Some(default) = default {
                indent(out, level);
                out.push_str("default:\n");
                for stmt in &default.stmts {
                    indent(out, level + 1);
                    print_stmt(out, stmt, level + 1);
                    out.push('\n');
                }
            }
            indent(out, level);
            out.push('}');
        }
        StmtKind::Break => out.push_str("break"),
        StmtKind::Continue => out.push_str("continue"),
        StmtKind::Free { target, .. } => {
            out.push_str("tcfree(");
            print_expr(out, target);
            out.push(')');
        }
    }
}

fn print_exprs(out: &mut String, exprs: &[Expr]) {
    for (i, e) in exprs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        print_expr(out, e);
    }
}

/// Renders one expression as MiniGo source (fully parenthesized for nested
/// binaries, so precedence never changes on re-parse).
pub fn print_expr(out: &mut String, expr: &Expr) {
    match &expr.kind {
        ExprKind::IntLit(v) => {
            let _ = write!(out, "{v}");
        }
        ExprKind::BoolLit(b) => {
            let _ = write!(out, "{b}");
        }
        ExprKind::StrLit(s) => {
            let _ = write!(out, "{s:?}");
        }
        ExprKind::Nil => out.push_str("nil"),
        ExprKind::Ident(name) => out.push_str(name),
        ExprKind::Unary { op, operand } => {
            let _ = write!(out, "{op}");
            let needs_parens = matches!(operand.kind, ExprKind::Binary { .. });
            if needs_parens {
                out.push('(');
            }
            print_expr(out, operand);
            if needs_parens {
                out.push(')');
            }
        }
        ExprKind::Binary { op, lhs, rhs } => {
            out.push('(');
            print_expr(out, lhs);
            let _ = write!(out, " {op} ");
            print_expr(out, rhs);
            out.push(')');
        }
        ExprKind::Field { base, name } => {
            print_expr(out, base);
            let _ = write!(out, ".{name}");
        }
        ExprKind::Index { base, index } => {
            print_expr(out, base);
            out.push('[');
            print_expr(out, index);
            out.push(']');
        }
        ExprKind::SliceExpr { base, lo, hi } => {
            print_expr(out, base);
            out.push('[');
            if let Some(lo) = lo {
                print_expr(out, lo);
            }
            out.push(':');
            if let Some(hi) = hi {
                print_expr(out, hi);
            }
            out.push(']');
        }
        ExprKind::Call { callee, args } => {
            out.push_str(callee);
            out.push('(');
            print_exprs(out, args);
            out.push(')');
        }
        ExprKind::Builtin {
            kind,
            ty_args,
            args,
        } => {
            out.push_str(kind.name());
            out.push('(');
            let mut first = true;
            for t in ty_args {
                if !first {
                    out.push_str(", ");
                }
                let _ = write!(out, "{t}");
                first = false;
            }
            for a in args {
                if !first {
                    out.push_str(", ");
                }
                print_expr(out, a);
                first = false;
            }
            out.push(')');
        }
        ExprKind::StructLit { name, fields } => {
            out.push_str(name);
            out.push('{');
            print_exprs(out, fields);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Strips ids and spans by comparing pretty-printed forms.
    fn normalize(src: &str) -> String {
        print_program(&parse(src).expect("parse"))
    }

    #[test]
    fn round_trips_representative_program() {
        let src = "type P struct { x int\n next *P }\nfunc fib(n int) int { if n < 2 { return n }\n return fib(n-1) + fib(n-2) }\nfunc main() { s := make([]int, 4)\n for i := 0; i < len(s); i += 1 { s[i] = fib(i) }\n m := make(map[string]int)\n m[\"a\"] = s[0]\n delete(m, \"a\")\n tcfree(s) }\n";
        let once = normalize(src);
        let twice = normalize(&once);
        assert_eq!(once, twice, "printer must be a fixpoint under re-parse");
    }

    #[test]
    fn prints_nested_control_flow() {
        let src = "func f(n int) int { x := 0\n for n > 0 { if n % 2 == 0 { x += 1 } else { x -= 1 }\n n -= 1 }\n return x }\n";
        let once = normalize(src);
        assert_eq!(once, normalize(&once));
        assert!(once.contains("for "));
        assert!(once.contains("else"));
    }

    #[test]
    fn prints_struct_literals_and_pointers() {
        let src = "type V struct { a int }\nfunc f() int { v := &V{3}\n return v.a }\n";
        let once = normalize(src);
        assert_eq!(once, normalize(&once));
        assert!(once.contains("&V{3}"));
    }

    #[test]
    fn prints_defer_and_multi_returns() {
        let src = "func g() (a int, b int) { defer print(1)\n return 1, 2 }\n";
        let once = normalize(src);
        assert_eq!(once, normalize(&once));
        assert!(once.contains("defer print(1)"));
        assert!(once.contains("(a int, b int)"));
    }
}
