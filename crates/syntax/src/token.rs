//! Token definitions for the MiniGo lexer.

use std::fmt;

use crate::span::Span;

/// A lexical token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// The half-open byte range the token occupies in the source.
    pub span: Span,
}

/// The kind of a lexical token.
///
/// Literal payloads are stored inline; keywords are distinguished from
/// identifiers during lexing. Keyword and punctuation variants are named
/// after their spelling (see [`TokenKind::describe`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // keyword/punctuation variants are their spelling
pub enum TokenKind {
    /// An integer literal, e.g. `42`.
    Int(i64),
    /// A string literal with escapes already resolved, e.g. `"ab\n"`.
    Str(String),
    /// An identifier, e.g. `foo`.
    Ident(String),

    // Keywords.
    Func,
    Var,
    Type,
    Struct,
    Map,
    If,
    Else,
    For,
    Return,
    Break,
    Continue,
    Defer,
    Switch,
    Case,
    Default,
    True,
    False,
    Nil,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Dot,
    Assign,      // =
    Define,      // :=
    Plus,        // +
    Minus,       // -
    Star,        // *
    Slash,       // /
    Percent,     // %
    Amp,         // &
    Not,         // !
    Eq,          // ==
    Ne,          // !=
    Lt,          // <
    Le,          // <=
    Gt,          // >
    Ge,          // >=
    AndAnd,      // &&
    OrOr,        // ||
    PlusAssign,  // +=
    MinusAssign, // -=
    StarAssign,  // *=
    SlashAssign, // /=

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword kind for `ident`, if `ident` is a keyword.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        Some(match ident {
            "func" => TokenKind::Func,
            "var" => TokenKind::Var,
            "type" => TokenKind::Type,
            "struct" => TokenKind::Struct,
            "map" => TokenKind::Map,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "for" => TokenKind::For,
            "return" => TokenKind::Return,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "defer" => TokenKind::Defer,
            "switch" => TokenKind::Switch,
            "case" => TokenKind::Case,
            "default" => TokenKind::Default,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "nil" => TokenKind::Nil,
            _ => return None,
        })
    }

    /// A short human-readable description used in diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Str(_) => "string literal".to_string(),
            TokenKind::Ident(name) => format!("identifier `{name}`"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.literal()),
        }
    }

    /// The literal spelling of a fixed token, or a placeholder for
    /// payload-carrying tokens.
    fn literal(&self) -> &'static str {
        match self {
            TokenKind::Func => "func",
            TokenKind::Var => "var",
            TokenKind::Type => "type",
            TokenKind::Struct => "struct",
            TokenKind::Map => "map",
            TokenKind::If => "if",
            TokenKind::Else => "else",
            TokenKind::For => "for",
            TokenKind::Return => "return",
            TokenKind::Break => "break",
            TokenKind::Continue => "continue",
            TokenKind::Defer => "defer",
            TokenKind::Switch => "switch",
            TokenKind::Case => "case",
            TokenKind::Default => "default",
            TokenKind::True => "true",
            TokenKind::False => "false",
            TokenKind::Nil => "nil",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Comma => ",",
            TokenKind::Semi => ";",
            TokenKind::Colon => ":",
            TokenKind::Dot => ".",
            TokenKind::Assign => "=",
            TokenKind::Define => ":=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Amp => "&",
            TokenKind::Not => "!",
            TokenKind::Eq => "==",
            TokenKind::Ne => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::PlusAssign => "+=",
            TokenKind::MinusAssign => "-=",
            TokenKind::StarAssign => "*=",
            TokenKind::SlashAssign => "/=",
            TokenKind::Int(_) | TokenKind::Str(_) | TokenKind::Ident(_) => "<lit>",
            TokenKind::Eof => "<eof>",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "{s:?}"),
            TokenKind::Ident(name) => write!(f, "{name}"),
            other => write!(f, "{}", other.literal()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_hits() {
        assert_eq!(TokenKind::keyword("func"), Some(TokenKind::Func));
        assert_eq!(TokenKind::keyword("map"), Some(TokenKind::Map));
        assert_eq!(TokenKind::keyword("nil"), Some(TokenKind::Nil));
    }

    #[test]
    fn keyword_lookup_misses_identifiers() {
        assert_eq!(TokenKind::keyword("funcs"), None);
        assert_eq!(TokenKind::keyword(""), None);
        assert_eq!(TokenKind::keyword("Func"), None);
    }

    #[test]
    fn describe_is_nonempty() {
        for kind in [
            TokenKind::Int(3),
            TokenKind::Str("x".into()),
            TokenKind::Ident("y".into()),
            TokenKind::Define,
            TokenKind::Eof,
        ] {
            assert!(!kind.describe().is_empty());
        }
    }

    #[test]
    fn display_round_trips_fixed_tokens() {
        assert_eq!(TokenKind::Define.to_string(), ":=");
        assert_eq!(TokenKind::AndAnd.to_string(), "&&");
        assert_eq!(TokenKind::Int(7).to_string(), "7");
    }
}
