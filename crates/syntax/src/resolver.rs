//! Name resolution for MiniGo.
//!
//! Resolves every identifier use to a variable id, records each variable's
//! declaration scope depth (`DeclDepth`, definition 4.13 of the paper) and
//! loop depth (`LoopDepth`, definition 4.3), and indexes functions by name.
//! The escape analysis consumes these side tables directly.

use std::collections::HashMap;

use crate::ast::*;
use crate::diag::{Diagnostic, Result};
use crate::types::Type;

/// Identifies a resolved variable (parameter, named result, or local).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The id as a plain index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What kind of binding a variable is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// A formal parameter.
    Param,
    /// A named (or synthesized) result variable.
    Result,
    /// A local declared with `var` or `:=`.
    Local,
}

/// Everything the later passes need to know about one variable.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// Source name (possibly synthesized for unnamed results).
    pub name: String,
    /// Binding kind.
    pub kind: VarKind,
    /// The function the variable belongs to.
    pub func: FuncId,
    /// The block in which the variable is declared. Parameters and results
    /// use the function body block.
    pub block: BlockId,
    /// Scope nesting depth at the declaration (function body = 1).
    pub decl_depth: i32,
    /// Loop nesting depth at the declaration (outside any loop = 0).
    pub loop_depth: i32,
    /// Declared type, if syntactically present (params, results, `var`).
    /// `:=` locals get their types from the type checker.
    pub declared_ty: Option<Type>,
}

/// The result of name resolution for a whole program.
#[derive(Debug, Clone, Default)]
pub struct Resolution {
    vars: Vec<VarInfo>,
    use_def: HashMap<ExprId, VarId>,
    decl_def: HashMap<(StmtId, usize), VarId>,
    params: HashMap<FuncId, Vec<VarId>>,
    results: HashMap<FuncId, Vec<VarId>>,
    funcs_by_name: HashMap<String, FuncId>,
    block_depth: HashMap<BlockId, i32>,
}

impl Resolution {
    /// Info for a variable id.
    pub fn var(&self, id: VarId) -> &VarInfo {
        &self.vars[id.index()]
    }

    /// All variables, indexable by [`VarId::index`].
    pub fn vars(&self) -> &[VarInfo] {
        &self.vars
    }

    /// The variable a use-site identifier refers to, if the expression is a
    /// resolved identifier.
    pub fn def_of(&self, expr: ExprId) -> Option<VarId> {
        self.use_def.get(&expr).copied()
    }

    /// The variable declared by name index `idx` of a declaration statement.
    pub fn decl_of(&self, stmt: StmtId, idx: usize) -> Option<VarId> {
        self.decl_def.get(&(stmt, idx)).copied()
    }

    /// The parameter variables of a function, in order.
    pub fn params_of(&self, func: FuncId) -> &[VarId] {
        self.params.get(&func).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The result variables of a function, in order.
    pub fn results_of(&self, func: FuncId) -> &[VarId] {
        self.results.get(&func).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Finds a function id by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs_by_name.get(name).copied()
    }

    /// Scope depth of a block (function body = 1).
    pub fn depth_of_block(&self, block: BlockId) -> i32 {
        self.block_depth.get(&block).copied().unwrap_or(0)
    }

    /// The statement that declares `var`, if it was declared by a `var` or
    /// `:=` statement (parameters and results have none).
    pub fn decl_stmt_of(&self, var: VarId) -> Option<StmtId> {
        self.decl_def
            .iter()
            .find_map(|(&(stmt, _), &v)| (v == var).then_some(stmt))
    }

    /// Registers a use of `var` at a synthesized identifier expression.
    /// GoFree's instrumentation pass calls this for the `tcfree(x)`
    /// statements it inserts, so the VM can resolve their targets.
    pub fn record_use(&mut self, expr: ExprId, var: VarId) {
        self.use_def.insert(expr, var);
    }
}

/// Resolves `program`, producing the [`Resolution`] side tables.
///
/// # Errors
///
/// Returns a [`Diagnostic`] for undefined variables, undefined callees,
/// duplicate function names, or arity mismatches in declarations.
pub fn resolve(program: &Program) -> Result<Resolution> {
    let mut r = Resolver {
        res: Resolution::default(),
        scopes: Vec::new(),
        func: FuncId(0),
        depth: 0,
        loop_depth: 0,
        body_block: BlockId(0),
    };
    for func in &program.funcs {
        if r.res
            .funcs_by_name
            .insert(func.name.clone(), func.id)
            .is_some()
        {
            return Err(Diagnostic::new(
                format!("function `{}` redeclared", func.name),
                func.span,
            ));
        }
    }
    for func in &program.funcs {
        r.func_decl(func)?;
    }
    Ok(r.res)
}

struct Resolver {
    res: Resolution,
    /// Stack of lexical scopes mapping names to variables.
    scopes: Vec<HashMap<String, VarId>>,
    func: FuncId,
    depth: i32,
    loop_depth: i32,
    body_block: BlockId,
}

impl Resolver {
    fn declare(&mut self, name: &str, kind: VarKind, block: BlockId, ty: Option<Type>) -> VarId {
        let id = VarId(self.res.vars.len() as u32);
        self.res.vars.push(VarInfo {
            name: name.to_string(),
            kind,
            func: self.func,
            block,
            decl_depth: self.depth,
            loop_depth: self.loop_depth,
            declared_ty: ty,
        });
        if !name.is_empty() {
            self.scopes
                .last_mut()
                .expect("scope stack is never empty while resolving")
                .insert(name.to_string(), id);
        }
        id
    }

    fn lookup(&self, name: &str) -> Option<VarId> {
        self.scopes
            .iter()
            .rev()
            .find_map(|scope| scope.get(name).copied())
    }

    fn func_decl(&mut self, func: &Func) -> Result<()> {
        self.func = func.id;
        self.depth = 1;
        self.loop_depth = 0;
        self.body_block = func.body.id;
        self.scopes.push(HashMap::new());
        self.res.block_depth.insert(func.body.id, 1);

        let mut params = Vec::new();
        for p in &func.params {
            params.push(self.declare(&p.name, VarKind::Param, func.body.id, Some(p.ty.clone())));
        }
        self.res.params.insert(func.id, params);

        let mut results = Vec::new();
        for (i, p) in func.results.iter().enumerate() {
            let name = if p.name.is_empty() {
                // Unnamed results still need identities for the analysis.
                format!("$ret{i}")
            } else {
                p.name.clone()
            };
            results.push(self.declare(&name, VarKind::Result, func.body.id, Some(p.ty.clone())));
        }
        self.res.results.insert(func.id, results);

        // The body block reuses the scope that already holds params/results,
        // mirroring Go where they share the function scope.
        for stmt in &func.body.stmts {
            self.stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn block(&mut self, block: &Block) -> Result<()> {
        self.depth += 1;
        self.res.block_depth.insert(block.id, self.depth);
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.stmt(stmt)?;
        }
        self.scopes.pop();
        self.depth -= 1;
        Ok(())
    }

    fn current_block_of_depth(&self) -> BlockId {
        // The innermost block id at the current depth. We track it lazily:
        // declarations record the block they appear in via `stmt` context.
        self.body_block
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<()> {
        match &stmt.kind {
            StmtKind::VarDecl { names, ty, init } => {
                for e in init {
                    self.expr(e)?;
                }
                if !init.is_empty() && init.len() != names.len() && init.len() != 1 {
                    return Err(Diagnostic::new(
                        "initializer count must match declared names or be one call",
                        stmt.span,
                    ));
                }
                for (i, name) in names.iter().enumerate() {
                    let block = self.enclosing_block();
                    let id = self.declare(name, VarKind::Local, block, Some(ty.clone()));
                    self.res.decl_def.insert((stmt.id, i), id);
                }
                Ok(())
            }
            StmtKind::ShortDecl { names, init } => {
                for e in init {
                    self.expr(e)?;
                }
                if init.len() != names.len() && init.len() != 1 {
                    return Err(Diagnostic::new(
                        "assignment mismatch in short declaration",
                        stmt.span,
                    ));
                }
                for (i, name) in names.iter().enumerate() {
                    let block = self.enclosing_block();
                    let id = self.declare(name, VarKind::Local, block, None);
                    self.res.decl_def.insert((stmt.id, i), id);
                }
                Ok(())
            }
            StmtKind::Assign { lhs, rhs, .. } => {
                for e in lhs {
                    self.expr(e)?;
                }
                for e in rhs {
                    self.expr(e)?;
                }
                Ok(())
            }
            StmtKind::If { cond, then, els } => {
                self.expr(cond)?;
                self.with_block(then)?;
                if let Some(els) = els {
                    self.stmt(els)?;
                }
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                post,
                body,
            } => {
                // The init clause lives in an implicit scope wrapping the
                // body, as in Go.
                self.depth += 1;
                self.scopes.push(HashMap::new());
                let saved_block = self.body_block;
                self.body_block = body.id;
                if let Some(init) = init {
                    self.stmt(init)?;
                }
                if let Some(cond) = cond {
                    self.expr(cond)?;
                }
                if let Some(post) = post {
                    self.stmt(post)?;
                }
                self.loop_depth += 1;
                self.with_block(body)?;
                self.loop_depth -= 1;
                self.body_block = saved_block;
                self.scopes.pop();
                self.depth -= 1;
                Ok(())
            }
            StmtKind::Return { exprs } => {
                for e in exprs {
                    self.expr(e)?;
                }
                Ok(())
            }
            StmtKind::Expr { expr } => self.expr(expr),
            StmtKind::BlockStmt { block } => self.with_block(block),
            StmtKind::Defer { call } => self.expr(call),
            StmtKind::Switch {
                subject,
                cases,
                default,
            } => {
                self.expr(subject)?;
                for case in cases {
                    for v in &case.values {
                        self.expr(v)?;
                    }
                    self.with_block(&case.body)?;
                }
                if let Some(default) = default {
                    self.with_block(default)?;
                }
                Ok(())
            }
            StmtKind::Break | StmtKind::Continue => Ok(()),
            StmtKind::Free { target, .. } => self.expr(target),
        }
    }

    fn with_block(&mut self, block: &Block) -> Result<()> {
        let saved = self.body_block;
        self.body_block = block.id;
        let out = self.block(block);
        self.body_block = saved;
        out
    }

    fn enclosing_block(&self) -> BlockId {
        self.current_block_of_depth()
    }

    fn expr(&mut self, expr: &Expr) -> Result<()> {
        match &expr.kind {
            ExprKind::Ident(name) => {
                let id = self.lookup(name).ok_or_else(|| {
                    Diagnostic::new(format!("undefined variable `{name}`"), expr.span)
                })?;
                self.res.use_def.insert(expr.id, id);
                Ok(())
            }
            ExprKind::IntLit(_) | ExprKind::BoolLit(_) | ExprKind::StrLit(_) | ExprKind::Nil => {
                Ok(())
            }
            ExprKind::Unary { operand, .. } => self.expr(operand),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.expr(lhs)?;
                self.expr(rhs)
            }
            ExprKind::Field { base, .. } => self.expr(base),
            ExprKind::Index { base, index } => {
                self.expr(base)?;
                self.expr(index)
            }
            ExprKind::SliceExpr { base, lo, hi } => {
                self.expr(base)?;
                if let Some(lo) = lo {
                    self.expr(lo)?;
                }
                if let Some(hi) = hi {
                    self.expr(hi)?;
                }
                Ok(())
            }
            ExprKind::Call { callee, args } => {
                if self.res.func_by_name(callee).is_none() {
                    return Err(Diagnostic::new(
                        format!("undefined function `{callee}`"),
                        expr.span,
                    ));
                }
                for a in args {
                    self.expr(a)?;
                }
                Ok(())
            }
            ExprKind::Builtin { args, .. } => {
                for a in args {
                    self.expr(a)?;
                }
                Ok(())
            }
            ExprKind::StructLit { fields, .. } => {
                for f in fields {
                    self.expr(f)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn resolve_src(src: &str) -> (Program, Resolution) {
        let p = parse(src).expect("parse");
        let r = resolve(&p).expect("resolve");
        (p, r)
    }

    fn find_var<'r>(r: &'r Resolution, name: &str) -> &'r VarInfo {
        r.vars()
            .iter()
            .find(|v| v.name == name)
            .unwrap_or_else(|| panic!("no var {name}"))
    }

    #[test]
    fn params_results_and_locals_have_kinds() {
        let (_, r) = resolve_src("func f(a int) (out int) { b := a\n out = b\n return }\n");
        assert_eq!(find_var(&r, "a").kind, VarKind::Param);
        assert_eq!(find_var(&r, "out").kind, VarKind::Result);
        assert_eq!(find_var(&r, "b").kind, VarKind::Local);
    }

    #[test]
    fn unnamed_results_are_synthesized() {
        let (p, r) = resolve_src("func f() (int, int) { return 1, 2 }\n");
        let results = r.results_of(p.funcs[0].id);
        assert_eq!(results.len(), 2);
        assert_eq!(r.var(results[0]).name, "$ret0");
        assert_eq!(r.var(results[1]).name, "$ret1");
    }

    #[test]
    fn decl_depth_tracks_nesting() {
        let (_, r) = resolve_src("func f() { a := 1\n { b := 2\n { c := 3\n c = b + a } } }\n");
        assert_eq!(find_var(&r, "a").decl_depth, 1);
        assert_eq!(find_var(&r, "b").decl_depth, 2);
        assert_eq!(find_var(&r, "c").decl_depth, 3);
    }

    #[test]
    fn loop_depth_tracks_for_nesting() {
        let (_, r) = resolve_src(
            "func f(n int) { a := 0\n for i := 0; i < n; i += 1 { b := i\n for j := 0; j < n; j += 1 { c := j\n c = b + a } } }\n",
        );
        assert_eq!(find_var(&r, "a").loop_depth, 0);
        // Loop variables are declared outside the iterated body.
        assert_eq!(find_var(&r, "i").loop_depth, 0);
        assert_eq!(find_var(&r, "b").loop_depth, 1);
        assert_eq!(find_var(&r, "j").loop_depth, 1);
        assert_eq!(find_var(&r, "c").loop_depth, 2);
    }

    #[test]
    fn shadowing_resolves_to_innermost() {
        let (p, r) = resolve_src("func f() { x := 1\n { x := 2\n x = 3 }\n x = 4 }\n");
        // Find the two `x = ...` assignments and compare their targets.
        let body = &p.funcs[0].body;
        let inner_assign = match &body.stmts[1].kind {
            StmtKind::BlockStmt { block } => match &block.stmts[1].kind {
                StmtKind::Assign { lhs, .. } => lhs[0].id,
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        };
        let outer_assign = match &body.stmts[2].kind {
            StmtKind::Assign { lhs, .. } => lhs[0].id,
            other => panic!("unexpected {other:?}"),
        };
        let inner_var = r.def_of(inner_assign).unwrap();
        let outer_var = r.def_of(outer_assign).unwrap();
        assert_ne!(inner_var, outer_var);
        assert_eq!(r.var(inner_var).decl_depth, 2);
        assert_eq!(r.var(outer_var).decl_depth, 1);
    }

    #[test]
    fn undefined_variable_is_an_error() {
        let p = parse("func f() { x = 1 }\n").unwrap();
        assert!(resolve(&p).is_err());
    }

    #[test]
    fn undefined_function_is_an_error() {
        let p = parse("func f() { g() }\n").unwrap();
        assert!(resolve(&p).is_err());
    }

    #[test]
    fn duplicate_function_is_an_error() {
        let p = parse("func f() {}\nfunc f() {}\n").unwrap();
        assert!(resolve(&p).is_err());
    }

    #[test]
    fn for_init_variable_visible_in_body_and_post() {
        let (_, r) =
            resolve_src("func f(n int) { for i := 0; i < n; i += 1 { x := i\n x = x } }\n");
        assert_eq!(find_var(&r, "i").kind, VarKind::Local);
    }

    #[test]
    fn var_decl_multiple_names() {
        let (p, r) = resolve_src("func f() { var a, b int = 1, 2\n a = b }\n");
        let stmt_id = p.funcs[0].body.stmts[0].id;
        assert!(r.decl_of(stmt_id, 0).is_some());
        assert!(r.decl_of(stmt_id, 1).is_some());
        assert_ne!(r.decl_of(stmt_id, 0), r.decl_of(stmt_id, 1));
    }

    #[test]
    fn block_depths_recorded() {
        let (p, r) = resolve_src("func f() { { } }\n");
        let body = &p.funcs[0].body;
        assert_eq!(r.depth_of_block(body.id), 1);
        if let StmtKind::BlockStmt { block } = &body.stmts[0].kind {
            assert_eq!(r.depth_of_block(block.id), 2);
        } else {
            panic!("expected block");
        }
    }

    #[test]
    fn multi_value_mismatch_is_error() {
        let p = parse("func f() { a, b := 1, 2, 3\n a = b }\n").unwrap();
        assert!(resolve(&p).is_err());
    }
}
