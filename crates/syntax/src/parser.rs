//! Recursive-descent parser for MiniGo.
//!
//! The grammar is a Go subset: struct type declarations and functions with
//! multiple (optionally named) return values; statements `var`, `:=`,
//! assignment (including parallel and compound), `if`/`else`, three-clause
//! `for`, `return`, `defer`, `break`/`continue`, nested blocks, and
//! `tcfree(x)`; expressions with Go operator precedence, `&`/`*` pointers,
//! slice/map indexing, field selection, struct literals, and the builtins
//! `make`, `new`, `append`, `len`, `cap`, `delete`, `panic`, `print`, `itoa`.

use crate::ast::*;
use crate::diag::{Diagnostic, Result};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};
use crate::types::Type;

/// Parses a complete MiniGo program.
///
/// # Errors
///
/// Returns the first lexical or syntactic [`Diagnostic`] encountered.
pub fn parse(src: &str) -> Result<Program> {
    let tokens = lex(src)?;
    Parser::new(tokens).program()
}

/// Parses a single expression (used by tests and the REPL-style examples).
///
/// # Errors
///
/// Returns a [`Diagnostic`] if `src` is not exactly one expression.
pub fn parse_expr(src: &str) -> Result<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    p.eat_semis();
    p.expect(&TokenKind::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_expr: u32,
    next_stmt: u32,
    next_block: u32,
    /// When true, an identifier followed by `{` is *not* a struct literal
    /// (inside `if`/`for` headers, as in Go).
    no_struct_lit: bool,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            next_expr: 0,
            next_stmt: 0,
            next_block: 0,
            no_struct_lit: false,
        }
    }

    // ---- token helpers ----

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, off: usize) -> &TokenKind {
        let idx = (self.pos + off).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Span> {
        if self.at(kind) {
            let sp = self.span();
            self.bump();
            Ok(sp)
        } else {
            Err(Diagnostic::new(
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek().describe()
                ),
                self.span(),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span)> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let sp = self.span();
                self.bump();
                Ok((name, sp))
            }
            other => Err(Diagnostic::new(
                format!("expected identifier, found {}", other.describe()),
                self.span(),
            )),
        }
    }

    fn eat_semis(&mut self) {
        while self.eat(&TokenKind::Semi) {}
    }

    // ---- id allocation ----

    fn expr_id(&mut self) -> ExprId {
        let id = ExprId(self.next_expr);
        self.next_expr += 1;
        id
    }

    fn stmt_id(&mut self) -> StmtId {
        let id = StmtId(self.next_stmt);
        self.next_stmt += 1;
        id
    }

    fn block_id(&mut self) -> BlockId {
        let id = BlockId(self.next_block);
        self.next_block += 1;
        id
    }

    fn mk_expr(&mut self, kind: ExprKind, span: Span) -> Expr {
        Expr {
            id: self.expr_id(),
            kind,
            span,
        }
    }

    fn mk_stmt(&mut self, kind: StmtKind, span: Span) -> Stmt {
        Stmt {
            id: self.stmt_id(),
            kind,
            span,
        }
    }

    // ---- declarations ----

    fn program(mut self) -> Result<Program> {
        let mut structs = Vec::new();
        let mut funcs = Vec::new();
        self.eat_semis();
        while !self.at(&TokenKind::Eof) {
            match self.peek() {
                TokenKind::Type => structs.push(self.struct_def()?),
                TokenKind::Func => {
                    let id = FuncId(funcs.len() as u32);
                    funcs.push(self.func(id)?);
                }
                other => {
                    return Err(Diagnostic::new(
                        format!("expected `func` or `type`, found {}", other.describe()),
                        self.span(),
                    ));
                }
            }
            self.eat_semis();
        }
        Ok(Program {
            structs,
            funcs,
            expr_count: self.next_expr,
            stmt_count: self.next_stmt,
            block_count: self.next_block,
        })
    }

    fn struct_def(&mut self) -> Result<StructDef> {
        let start = self.expect(&TokenKind::Type)?;
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::Struct)?;
        self.expect(&TokenKind::LBrace)?;
        self.eat_semis();
        let mut fields = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            let (fname, _) = self.expect_ident()?;
            let fty = self.ty()?;
            fields.push((fname, fty));
            self.eat_semis();
        }
        let end = self.expect(&TokenKind::RBrace)?;
        Ok(StructDef {
            name,
            fields,
            span: start.merge(end),
        })
    }

    fn func(&mut self, id: FuncId) -> Result<Func> {
        let start = self.expect(&TokenKind::Func)?;
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        while !self.at(&TokenKind::RParen) {
            let (pname, psp) = self.expect_ident()?;
            let pty = self.ty()?;
            params.push(Param {
                name: pname,
                ty: pty,
                span: psp,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        let results = self.results()?;
        let body = self.block()?;
        let span = start.merge(body.span);
        Ok(Func {
            id,
            name,
            params,
            results,
            body,
            span,
        })
    }

    fn results(&mut self) -> Result<Vec<Param>> {
        if self.at(&TokenKind::LBrace) {
            return Ok(Vec::new());
        }
        if self.eat(&TokenKind::LParen) {
            let mut out = Vec::new();
            while !self.at(&TokenKind::RParen) {
                // Named result if we see `ident <type-start>`; otherwise a
                // bare type (which may itself start with an identifier).
                let named = matches!(self.peek(), TokenKind::Ident(_))
                    && matches!(
                        self.peek_at(1),
                        TokenKind::Ident(_)
                            | TokenKind::Star
                            | TokenKind::LBracket
                            | TokenKind::Map
                    );
                let (name, span) = if named {
                    let (n, s) = self.expect_ident()?;
                    (n, s)
                } else {
                    (String::new(), self.span())
                };
                let ty = self.ty()?;
                out.push(Param { name, ty, span });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            Ok(out)
        } else {
            let span = self.span();
            let ty = self.ty()?;
            Ok(vec![Param {
                name: String::new(),
                ty,
                span,
            }])
        }
    }

    // ---- types ----

    fn ty(&mut self) -> Result<Type> {
        match self.peek().clone() {
            TokenKind::Star => {
                self.bump();
                Ok(Type::ptr(self.ty()?))
            }
            TokenKind::LBracket => {
                self.bump();
                self.expect(&TokenKind::RBracket)?;
                Ok(Type::slice(self.ty()?))
            }
            TokenKind::Map => {
                self.bump();
                self.expect(&TokenKind::LBracket)?;
                let key = self.ty()?;
                self.expect(&TokenKind::RBracket)?;
                let value = self.ty()?;
                Ok(Type::map(key, value))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(match name.as_str() {
                    "int" => Type::Int,
                    "bool" => Type::Bool,
                    "string" => Type::Str,
                    _ => Type::Named(name),
                })
            }
            other => Err(Diagnostic::new(
                format!("expected type, found {}", other.describe()),
                self.span(),
            )),
        }
    }

    // ---- statements ----

    fn block(&mut self) -> Result<Block> {
        let id = self.block_id();
        let start = self.expect(&TokenKind::LBrace)?;
        self.eat_semis();
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            stmts.push(self.stmt()?);
            self.eat_semis();
        }
        let end = self.expect(&TokenKind::RBrace)?;
        Ok(Block {
            id,
            stmts,
            span: start.merge(end),
        })
    }

    fn stmt(&mut self) -> Result<Stmt> {
        match self.peek().clone() {
            TokenKind::Var => self.var_decl(),
            TokenKind::If => self.if_stmt(),
            TokenKind::For => self.for_stmt(),
            TokenKind::Switch => self.switch_stmt(),
            TokenKind::Return => self.return_stmt(),
            TokenKind::Defer => self.defer_stmt(),
            TokenKind::Break => {
                let sp = self.span();
                self.bump();
                Ok(self.mk_stmt(StmtKind::Break, sp))
            }
            TokenKind::Continue => {
                let sp = self.span();
                self.bump();
                Ok(self.mk_stmt(StmtKind::Continue, sp))
            }
            TokenKind::LBrace => {
                let block = self.block()?;
                let sp = block.span;
                Ok(self.mk_stmt(StmtKind::BlockStmt { block }, sp))
            }
            TokenKind::Ident(name) if name == "tcfree" && self.peek_at(1) == &TokenKind::LParen => {
                let start = self.span();
                self.bump(); // tcfree
                self.bump(); // (
                let target = self.expr()?;
                let end = self.expect(&TokenKind::RParen)?;
                Ok(self.mk_stmt(
                    StmtKind::Free {
                        target,
                        kind: FreeKind::Pointer,
                    },
                    start.merge(end),
                ))
            }
            _ => self.simple_stmt(),
        }
    }

    /// A "simple statement": short declaration, assignment, compound
    /// assignment, or expression statement. Used directly in statement
    /// position and in `if`/`for` headers.
    fn simple_stmt(&mut self) -> Result<Stmt> {
        let start = self.span();
        let first = self.expr()?;
        let mut lhs = vec![first];
        while self.eat(&TokenKind::Comma) {
            lhs.push(self.expr()?);
        }
        let compound = match self.peek() {
            TokenKind::PlusAssign => Some(BinOp::Add),
            TokenKind::MinusAssign => Some(BinOp::Sub),
            TokenKind::StarAssign => Some(BinOp::Mul),
            TokenKind::SlashAssign => Some(BinOp::Div),
            _ => None,
        };
        if let Some(op) = compound {
            self.bump();
            let rhs = self.expr()?;
            let span = start.merge(rhs.span);
            if lhs.len() != 1 {
                return Err(Diagnostic::new(
                    "compound assignment takes exactly one target",
                    span,
                ));
            }
            return Ok(self.mk_stmt(
                StmtKind::Assign {
                    lhs,
                    op: Some(op),
                    rhs: vec![rhs],
                },
                span,
            ));
        }
        if self.eat(&TokenKind::Define) {
            let names = lhs
                .iter()
                .map(|e| match &e.kind {
                    ExprKind::Ident(name) => Ok(name.clone()),
                    _ => Err(Diagnostic::new(
                        "left side of `:=` must be identifiers",
                        e.span,
                    )),
                })
                .collect::<Result<Vec<_>>>()?;
            let init = self.expr_list()?;
            let span = start.merge(self.prev_span());
            return Ok(self.mk_stmt(StmtKind::ShortDecl { names, init }, span));
        }
        if self.eat(&TokenKind::Assign) {
            let rhs = self.expr_list()?;
            let span = start.merge(self.prev_span());
            return Ok(self.mk_stmt(StmtKind::Assign { lhs, op: None, rhs }, span));
        }
        if lhs.len() != 1 {
            return Err(Diagnostic::new(
                "expression list is not a statement",
                start.merge(self.prev_span()),
            ));
        }
        let expr = lhs.pop().expect("len checked");
        let span = expr.span;
        Ok(self.mk_stmt(StmtKind::Expr { expr }, span))
    }

    fn expr_list(&mut self) -> Result<Vec<Expr>> {
        let mut out = vec![self.expr()?];
        while self.eat(&TokenKind::Comma) {
            out.push(self.expr()?);
        }
        Ok(out)
    }

    fn var_decl(&mut self) -> Result<Stmt> {
        let start = self.expect(&TokenKind::Var)?;
        let mut names = Vec::new();
        loop {
            let (name, _) = self.expect_ident()?;
            names.push(name);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let ty = self.ty()?;
        let init = if self.eat(&TokenKind::Assign) {
            self.expr_list()?
        } else {
            Vec::new()
        };
        let span = start.merge(self.prev_span());
        Ok(self.mk_stmt(StmtKind::VarDecl { names, ty, init }, span))
    }

    fn if_stmt(&mut self) -> Result<Stmt> {
        let start = self.expect(&TokenKind::If)?;
        let cond = self.header_expr()?;
        let then = self.block()?;
        let els = if self.eat(&TokenKind::Else) {
            if self.at(&TokenKind::If) {
                Some(Box::new(self.if_stmt()?))
            } else {
                let block = self.block()?;
                let sp = block.span;
                Some(Box::new(self.mk_stmt(StmtKind::BlockStmt { block }, sp)))
            }
        } else {
            None
        };
        let span = start.merge(self.prev_span());
        Ok(self.mk_stmt(StmtKind::If { cond, then, els }, span))
    }

    fn for_stmt(&mut self) -> Result<Stmt> {
        let start = self.expect(&TokenKind::For)?;
        // `for { .. }`
        if self.at(&TokenKind::LBrace) {
            let body = self.block()?;
            let span = start.merge(body.span);
            return Ok(self.mk_stmt(
                StmtKind::For {
                    init: None,
                    cond: None,
                    post: None,
                    body,
                },
                span,
            ));
        }
        let saved = self.no_struct_lit;
        self.no_struct_lit = true;
        // Either `for cond { .. }` or `for init; cond; post { .. }`.
        let first = if self.at(&TokenKind::Semi) {
            None
        } else {
            Some(self.simple_stmt()?)
        };
        let (init, cond, post) = if self.eat(&TokenKind::Semi) {
            let cond = if self.at(&TokenKind::Semi) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(&TokenKind::Semi)?;
            let post = if self.at(&TokenKind::LBrace) {
                None
            } else {
                Some(Box::new(self.simple_stmt()?))
            };
            (first.map(Box::new), cond, post)
        } else {
            // Single-condition form: `first` must be an expression statement.
            match first {
                Some(Stmt {
                    kind: StmtKind::Expr { expr },
                    ..
                }) => (None, Some(expr), None),
                _ => {
                    self.no_struct_lit = saved;
                    return Err(Diagnostic::new(
                        "for-loop condition must be an expression",
                        self.span(),
                    ));
                }
            }
        };
        self.no_struct_lit = saved;
        let body = self.block()?;
        let span = start.merge(body.span);
        Ok(self.mk_stmt(
            StmtKind::For {
                init,
                cond,
                post,
                body,
            },
            span,
        ))
    }

    fn switch_stmt(&mut self) -> Result<Stmt> {
        let start = self.expect(&TokenKind::Switch)?;
        let subject = self.header_expr()?;
        self.expect(&TokenKind::LBrace)?;
        self.eat_semis();
        let mut cases = Vec::new();
        let mut default = None;
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            if self.eat(&TokenKind::Case) {
                let values = self.expr_list()?;
                self.expect(&TokenKind::Colon)?;
                let body = self.case_body()?;
                cases.push(SwitchCase { values, body });
            } else if self.eat(&TokenKind::Default) {
                self.expect(&TokenKind::Colon)?;
                if default.is_some() {
                    return Err(Diagnostic::new("duplicate default case", self.prev_span()));
                }
                default = Some(self.case_body()?);
            } else {
                return Err(Diagnostic::new(
                    format!(
                        "expected `case` or `default`, found {}",
                        self.peek().describe()
                    ),
                    self.span(),
                ));
            }
            self.eat_semis();
        }
        let end = self.expect(&TokenKind::RBrace)?;
        Ok(self.mk_stmt(
            StmtKind::Switch {
                subject,
                cases,
                default,
            },
            start.merge(end),
        ))
    }

    /// The statements of a `case` arm: everything until the next `case`,
    /// `default`, or the closing brace. Synthesizes a block (each arm is
    /// its own scope, as in Go).
    fn case_body(&mut self) -> Result<Block> {
        let id = self.block_id();
        let start = self.span();
        self.eat_semis();
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::Case)
            && !self.at(&TokenKind::Default)
            && !self.at(&TokenKind::RBrace)
            && !self.at(&TokenKind::Eof)
        {
            stmts.push(self.stmt()?);
            self.eat_semis();
        }
        Ok(Block {
            id,
            stmts,
            span: start.merge(self.prev_span()),
        })
    }

    fn return_stmt(&mut self) -> Result<Stmt> {
        let start = self.expect(&TokenKind::Return)?;
        let exprs =
            if self.at(&TokenKind::Semi) || self.at(&TokenKind::RBrace) || self.at(&TokenKind::Eof)
            {
                Vec::new()
            } else {
                self.expr_list()?
            };
        let span = start.merge(self.prev_span());
        Ok(self.mk_stmt(StmtKind::Return { exprs }, span))
    }

    fn defer_stmt(&mut self) -> Result<Stmt> {
        let start = self.expect(&TokenKind::Defer)?;
        let call = self.expr()?;
        match call.kind {
            ExprKind::Call { .. } | ExprKind::Builtin { .. } => {}
            _ => {
                return Err(Diagnostic::new(
                    "defer requires a call expression",
                    call.span,
                ));
            }
        }
        let span = start.merge(call.span);
        Ok(self.mk_stmt(StmtKind::Defer { call }, span))
    }

    /// Parses an `if`/`for` header expression where `{` must not begin a
    /// struct literal.
    fn header_expr(&mut self) -> Result<Expr> {
        let saved = self.no_struct_lit;
        self.no_struct_lit = true;
        let out = self.expr();
        self.no_struct_lit = saved;
        out
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr> {
        self.binary_expr(0)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, prec) = match self.peek() {
                TokenKind::OrOr => (BinOp::Or, 1),
                TokenKind::AndAnd => (BinOp::And, 2),
                TokenKind::Eq => (BinOp::Eq, 3),
                TokenKind::Ne => (BinOp::Ne, 3),
                TokenKind::Lt => (BinOp::Lt, 3),
                TokenKind::Le => (BinOp::Le, 3),
                TokenKind::Gt => (BinOp::Gt, 3),
                TokenKind::Ge => (BinOp::Ge, 3),
                TokenKind::Plus => (BinOp::Add, 4),
                TokenKind::Minus => (BinOp::Sub, 4),
                TokenKind::Star => (BinOp::Mul, 5),
                TokenKind::Slash => (BinOp::Div, 5),
                TokenKind::Percent => (BinOp::Rem, 5),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            let span = lhs.span.merge(rhs.span);
            lhs = self.mk_expr(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        let op = match self.peek() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Not => Some(UnOp::Not),
            TokenKind::Amp => Some(UnOp::Addr),
            TokenKind::Star => Some(UnOp::Deref),
            _ => None,
        };
        if let Some(op) = op {
            let start = self.span();
            self.bump();
            let operand = self.unary_expr()?;
            let span = start.merge(operand.span);
            return Ok(self.mk_expr(
                ExprKind::Unary {
                    op,
                    operand: Box::new(operand),
                },
                span,
            ));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek() {
                TokenKind::Dot => {
                    self.bump();
                    let (name, nsp) = self.expect_ident()?;
                    let span = e.span.merge(nsp);
                    e = self.mk_expr(
                        ExprKind::Field {
                            base: Box::new(e),
                            name,
                        },
                        span,
                    );
                }
                TokenKind::LBracket => {
                    self.bump();
                    // Index/slice bounds allow struct literals even in
                    // headers.
                    let saved = self.no_struct_lit;
                    self.no_struct_lit = false;
                    let lo = if self.at(&TokenKind::Colon) {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    if self.eat(&TokenKind::Colon) {
                        // Reslice: base[lo:hi].
                        let hi = if self.at(&TokenKind::RBracket) {
                            None
                        } else {
                            Some(Box::new(self.expr()?))
                        };
                        self.no_struct_lit = saved;
                        let end = self.expect(&TokenKind::RBracket)?;
                        let span = e.span.merge(end);
                        e = self.mk_expr(
                            ExprKind::SliceExpr {
                                base: Box::new(e),
                                lo: lo.map(Box::new),
                                hi,
                            },
                            span,
                        );
                    } else {
                        self.no_struct_lit = saved;
                        let index = lo.ok_or_else(|| {
                            Diagnostic::new("missing index expression", self.span())
                        })?;
                        let end = self.expect(&TokenKind::RBracket)?;
                        let span = e.span.merge(end);
                        e = self.mk_expr(
                            ExprKind::Index {
                                base: Box::new(e),
                                index: Box::new(index),
                            },
                            span,
                        );
                    }
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(self.mk_expr(ExprKind::IntLit(v), start))
            }
            TokenKind::True => {
                self.bump();
                Ok(self.mk_expr(ExprKind::BoolLit(true), start))
            }
            TokenKind::False => {
                self.bump();
                Ok(self.mk_expr(ExprKind::BoolLit(false), start))
            }
            TokenKind::Nil => {
                self.bump();
                Ok(self.mk_expr(ExprKind::Nil, start))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(self.mk_expr(ExprKind::StrLit(s), start))
            }
            TokenKind::LParen => {
                self.bump();
                let saved = self.no_struct_lit;
                self.no_struct_lit = false;
                let e = self.expr()?;
                self.no_struct_lit = saved;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at(&TokenKind::LParen) {
                    return self.call_or_builtin(name, start);
                }
                if self.at(&TokenKind::LBrace) && !self.no_struct_lit {
                    return self.struct_lit(name, start);
                }
                Ok(self.mk_expr(ExprKind::Ident(name), start))
            }
            other => Err(Diagnostic::new(
                format!("expected expression, found {}", other.describe()),
                start,
            )),
        }
    }

    fn struct_lit(&mut self, name: String, start: Span) -> Result<Expr> {
        self.expect(&TokenKind::LBrace)?;
        self.eat_semis();
        let mut fields = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            fields.push(self.expr()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
            self.eat_semis();
        }
        self.eat_semis();
        let end = self.expect(&TokenKind::RBrace)?;
        Ok(self.mk_expr(ExprKind::StructLit { name, fields }, start.merge(end)))
    }

    fn call_or_builtin(&mut self, name: String, start: Span) -> Result<Expr> {
        self.expect(&TokenKind::LParen)?;
        let saved = self.no_struct_lit;
        self.no_struct_lit = false;
        let result = self.call_args(&name, start);
        self.no_struct_lit = saved;
        result
    }

    fn call_args(&mut self, name: &str, start: Span) -> Result<Expr> {
        if let Some(builtin) = Builtin::from_name(name) {
            let mut ty_args = Vec::new();
            if matches!(builtin, Builtin::Make | Builtin::New) {
                ty_args.push(self.ty()?);
                if matches!(builtin, Builtin::Make) && !self.at(&TokenKind::RParen) {
                    self.expect(&TokenKind::Comma)?;
                }
            }
            let mut args = Vec::new();
            while !self.at(&TokenKind::RParen) {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            let end = self.expect(&TokenKind::RParen)?;
            return Ok(self.mk_expr(
                ExprKind::Builtin {
                    kind: builtin,
                    ty_args,
                    args,
                },
                start.merge(end),
            ));
        }
        let mut args = Vec::new();
        while !self.at(&TokenKind::RParen) {
            args.push(self.expr()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let end = self.expect(&TokenKind::RParen)?;
        Ok(self.mk_expr(
            ExprKind::Call {
                callee: name.to_string(),
                args,
            },
            start.merge(end),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        match parse(src) {
            Ok(p) => p,
            Err(e) => panic!("parse failed: {}\nsource:\n{src}", e.render(src)),
        }
    }

    #[test]
    fn parses_empty_function() {
        let p = parse_ok("func main() {}\n");
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "main");
        assert!(p.funcs[0].body.stmts.is_empty());
    }

    #[test]
    fn parses_params_and_results() {
        let p = parse_ok("func f(a int, b []int) (r0 []int, r1 int) { return b, a }\n");
        let f = &p.funcs[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[1].ty, Type::slice(Type::Int));
        assert_eq!(f.results.len(), 2);
        assert_eq!(f.results[0].name, "r0");
        assert_eq!(f.results[0].ty, Type::slice(Type::Int));
    }

    #[test]
    fn parses_unnamed_results() {
        let p = parse_ok("func f() (int, string) { return 1, \"x\" }\n");
        let f = &p.funcs[0];
        assert_eq!(f.results.len(), 2);
        assert_eq!(f.results[0].name, "");
        assert_eq!(f.results[1].ty, Type::Str);
    }

    #[test]
    fn parses_single_result_without_parens() {
        let p = parse_ok("func f() int { return 3 }\n");
        assert_eq!(p.funcs[0].results.len(), 1);
        assert_eq!(p.funcs[0].results[0].ty, Type::Int);
    }

    #[test]
    fn parses_struct_declarations() {
        let p = parse_ok("type Big struct { fat [] int\n p *int }\nfunc main() {}\n");
        let s = &p.structs[0];
        assert_eq!(s.name, "Big");
        assert_eq!(s.fields[0].1, Type::slice(Type::Int));
        assert_eq!(s.fields[1].1, Type::ptr(Type::Int));
        assert_eq!(s.field_index("p"), Some(1));
        assert_eq!(s.field_index("q"), None);
    }

    #[test]
    fn parses_short_decl_and_assign() {
        let p = parse_ok("func f() { x := 1\n x = x + 2\n x += 3 }\n");
        let b = &p.funcs[0].body;
        assert!(matches!(b.stmts[0].kind, StmtKind::ShortDecl { .. }));
        assert!(matches!(b.stmts[1].kind, StmtKind::Assign { op: None, .. }));
        assert!(matches!(
            b.stmts[2].kind,
            StmtKind::Assign {
                op: Some(BinOp::Add),
                ..
            }
        ));
    }

    #[test]
    fn parses_parallel_assignment() {
        let p = parse_ok("func f() { x, y := 1, 2\n x, y = y, x }\n");
        match &p.funcs[0].body.stmts[1].kind {
            StmtKind::Assign { lhs, rhs, .. } => {
                assert_eq!(lhs.len(), 2);
                assert_eq!(rhs.len(), 2);
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn parses_multi_value_call_destructuring() {
        let p = parse_ok("func g() (int, int) { return 1, 2 }\nfunc f() { a, b := g()\n a = b }\n");
        match &p.funcs[1].body.stmts[0].kind {
            StmtKind::ShortDecl { names, init } => {
                assert_eq!(names, &vec!["a".to_string(), "b".to_string()]);
                assert_eq!(init.len(), 1);
            }
            other => panic!("expected short decl, got {other:?}"),
        }
    }

    #[test]
    fn parses_if_else_chain() {
        let p = parse_ok("func f(x int) int { if x > 1 { return 1 } else if x > 0 { return 2 } else { return 3 } }\n");
        match &p.funcs[0].body.stmts[0].kind {
            StmtKind::If { els: Some(els), .. } => {
                assert!(matches!(els.kind, StmtKind::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_three_clause_for() {
        let p = parse_ok("func f(n int) { for i := 0; i < n; i += 1 { } }\n");
        match &p.funcs[0].body.stmts[0].kind {
            StmtKind::For {
                init: Some(_),
                cond: Some(_),
                post: Some(_),
                ..
            } => {}
            other => panic!("expected full for, got {other:?}"),
        }
    }

    #[test]
    fn parses_cond_only_and_infinite_for() {
        let p = parse_ok("func f(n int) { for n > 0 { n -= 1 }\n for { break } }\n");
        match &p.funcs[0].body.stmts[0].kind {
            StmtKind::For {
                init: None,
                cond: Some(_),
                post: None,
                ..
            } => {}
            other => panic!("expected cond-only for, got {other:?}"),
        }
        match &p.funcs[0].body.stmts[1].kind {
            StmtKind::For {
                cond: None, body, ..
            } => assert!(matches!(body.stmts[0].kind, StmtKind::Break)),
            other => panic!("expected infinite for, got {other:?}"),
        }
    }

    #[test]
    fn parses_make_and_builtins() {
        let p = parse_ok(
            "func f(n int) { s := make([]int, n, n*2)\n m := make(map[string]int)\n s = append(s, 1)\n delete(m, \"k\")\n print(len(s), cap(s)) }\n",
        );
        let stmts = &p.funcs[0].body.stmts;
        match &stmts[0].kind {
            StmtKind::ShortDecl { init, .. } => match &init[0].kind {
                ExprKind::Builtin {
                    kind,
                    ty_args,
                    args,
                } => {
                    assert_eq!(*kind, Builtin::Make);
                    assert_eq!(ty_args[0], Type::slice(Type::Int));
                    assert_eq!(args.len(), 2);
                }
                other => panic!("expected make, got {other:?}"),
            },
            other => panic!("expected decl, got {other:?}"),
        }
        match &stmts[1].kind {
            StmtKind::ShortDecl { init, .. } => match &init[0].kind {
                ExprKind::Builtin {
                    kind,
                    ty_args,
                    args,
                } => {
                    assert_eq!(*kind, Builtin::Make);
                    assert_eq!(ty_args[0], Type::map(Type::Str, Type::Int));
                    assert!(args.is_empty());
                }
                other => panic!("expected make(map), got {other:?}"),
            },
            other => panic!("expected decl, got {other:?}"),
        }
    }

    #[test]
    fn parses_pointer_expressions() {
        let p = parse_ok("func f() { x := 1\n p := &x\n y := *p\n *p = y }\n");
        let stmts = &p.funcs[0].body.stmts;
        match &stmts[1].kind {
            StmtKind::ShortDecl { init, .. } => {
                assert!(matches!(
                    init[0].kind,
                    ExprKind::Unary { op: UnOp::Addr, .. }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &stmts[3].kind {
            StmtKind::Assign { lhs, .. } => {
                assert!(matches!(
                    lhs[0].kind,
                    ExprKind::Unary {
                        op: UnOp::Deref,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deref_binds_tighter_than_multiply() {
        let e = parse_expr("*p * *q").unwrap();
        match e.kind {
            ExprKind::Binary {
                op: BinOp::Mul,
                lhs,
                rhs,
            } => {
                assert!(matches!(
                    lhs.kind,
                    ExprKind::Unary {
                        op: UnOp::Deref,
                        ..
                    }
                ));
                assert!(matches!(
                    rhs.kind,
                    ExprKind::Unary {
                        op: UnOp::Deref,
                        ..
                    }
                ));
            }
            other => panic!("expected multiply, got {other:?}"),
        }
    }

    #[test]
    fn precedence_or_lower_than_and() {
        let e = parse_expr("a || b && c").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e.kind {
            ExprKind::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. })),
            other => panic!("expected add at top, got {other:?}"),
        }
    }

    #[test]
    fn parses_struct_literal_and_field_access() {
        let p = parse_ok(
            "type P struct { x int\n y int }\nfunc f() int { p := P{1, 2}\n return p.x + p.y }\n",
        );
        match &p.funcs[0].body.stmts[0].kind {
            StmtKind::ShortDecl { init, .. } => {
                assert!(matches!(init[0].kind, ExprKind::StructLit { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn struct_literal_not_parsed_in_if_header() {
        // `if x { }` must treat `{` as the block, not a literal.
        let p = parse_ok("func f(x bool) { if x { return } }\n");
        assert!(matches!(p.funcs[0].body.stmts[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn struct_literal_allowed_inside_header_parens() {
        let p = parse_ok(
            "type P struct { x int }\nfunc g(p P) bool { return true }\nfunc f() { if g(P{1}) { return } }\n",
        );
        assert!(matches!(p.funcs[1].body.stmts[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn parses_defer_and_panic() {
        let p = parse_ok("func f() { defer print(1)\n panic(\"boom\") }\n");
        let stmts = &p.funcs[0].body.stmts;
        assert!(matches!(stmts[0].kind, StmtKind::Defer { .. }));
        match &stmts[1].kind {
            StmtKind::Expr { expr } => assert!(matches!(
                expr.kind,
                ExprKind::Builtin {
                    kind: Builtin::Panic,
                    ..
                }
            )),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_defer_of_non_call() {
        assert!(parse("func f() { defer 1 }\n").is_err());
    }

    #[test]
    fn parses_tcfree_statement() {
        let p = parse_ok("func f() { s := make([]int, 3)\n tcfree(s) }\n");
        assert!(matches!(
            p.funcs[0].body.stmts[1].kind,
            StmtKind::Free { .. }
        ));
    }

    #[test]
    fn parses_nested_blocks() {
        let p = parse_ok("func f() { { x := 1\n x = x } }\n");
        assert!(matches!(
            p.funcs[0].body.stmts[0].kind,
            StmtKind::BlockStmt { .. }
        ));
    }

    #[test]
    fn parses_index_chains() {
        let e = parse_expr("m[\"k\"][0]").unwrap();
        assert!(matches!(e.kind, ExprKind::Index { .. }));
    }

    #[test]
    fn parses_field_through_pointer() {
        let e = parse_expr("p.next.value").unwrap();
        match e.kind {
            ExprKind::Field { base, name } => {
                assert_eq!(name, "value");
                assert!(matches!(base.kind, ExprKind::Field { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_top_level() {
        assert!(parse("x := 1\n").is_err());
    }

    #[test]
    fn rejects_define_of_non_ident() {
        assert!(parse("func f(s []int) { s[0] := 1 }\n").is_err());
    }

    #[test]
    fn expr_ids_are_unique() {
        let p = parse_ok("func f(n int) int { return n + n * n }\n");
        let mut ids = Vec::new();
        fn walk(e: &Expr, ids: &mut Vec<ExprId>) {
            ids.push(e.id);
            match &e.kind {
                ExprKind::Binary { lhs, rhs, .. } => {
                    walk(lhs, ids);
                    walk(rhs, ids);
                }
                ExprKind::Unary { operand, .. } => walk(operand, ids),
                _ => {}
            }
        }
        if let StmtKind::Return { exprs } = &p.funcs[0].body.stmts[0].kind {
            for e in exprs {
                walk(e, &mut ids);
            }
        }
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len());
        assert!(p.expr_count as usize >= ids.len());
    }

    #[test]
    fn var_decl_with_and_without_init() {
        let p = parse_ok(
            "func f() { var x int\n var y int = 3\n var a, b int = 1, 2\n x = y + a + b }\n",
        );
        match &p.funcs[0].body.stmts[2].kind {
            StmtKind::VarDecl { names, init, .. } => {
                assert_eq!(names.len(), 2);
                assert_eq!(init.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
