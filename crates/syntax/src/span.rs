//! Source positions and spans.

use std::fmt;

/// A half-open byte range `[start, end)` into a source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// A zero-width span at offset 0, used for synthesized nodes.
    pub fn synthetic() -> Self {
        Span { start: 0, end: 0 }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the span is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Computes the 1-based line and column of `self.start` within `src`.
    pub fn line_col(&self, src: &str) -> (u32, u32) {
        let mut line = 1;
        let mut col = 1;
        for (idx, ch) in src.char_indices() {
            if idx as u32 >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(4, 8);
        let b = Span::new(2, 6);
        assert_eq!(a.merge(b), Span::new(2, 8));
        assert_eq!(b.merge(a), Span::new(2, 8));
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(3, 4).line_col(src), (2, 1));
        assert_eq!(Span::new(7, 8).line_col(src), (3, 2));
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(Span::new(3, 7).len(), 4);
        assert!(Span::synthetic().is_empty());
        assert!(!Span::new(1, 2).is_empty());
    }
}
