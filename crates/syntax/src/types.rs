//! MiniGo's type representation and layout rules.
//!
//! Sizes follow Go's 64-bit layout closely enough for the allocator's size
//! classes to behave like the paper's: words are 8 bytes, slice headers are
//! 3 words, and struct fields are 8-byte aligned.

use std::fmt;

/// A MiniGo type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// Boolean.
    Bool,
    /// Immutable string.
    Str,
    /// A named struct type.
    Named(String),
    /// Pointer to `T`.
    Ptr(Box<Type>),
    /// Slice of `T` (fat pointer to a heap or stack array).
    Slice(Box<Type>),
    /// Map from `K` to `V` (reference to a runtime-managed hash table).
    Map(Box<Type>, Box<Type>),
}

impl Type {
    /// Convenience constructor for `*T`.
    pub fn ptr(inner: Type) -> Type {
        Type::Ptr(Box::new(inner))
    }

    /// Convenience constructor for `[]T`.
    pub fn slice(elem: Type) -> Type {
        Type::Slice(Box::new(elem))
    }

    /// Convenience constructor for `map[K]V`.
    pub fn map(key: Type, value: Type) -> Type {
        Type::Map(Box::new(key), Box::new(value))
    }

    /// Whether values of this type can transitively reach pointers.
    ///
    /// The paper's §4.2 notes that `Exposes`/`Incomplete` "need not be
    /// computed for data types not containing pointers"; this is the
    /// predicate that decides it. `resolve_fields` maps a struct name to its
    /// field types.
    pub fn contains_pointers(&self, resolve_fields: &dyn Fn(&str) -> Vec<Type>) -> bool {
        match self {
            Type::Int | Type::Bool | Type::Str => false,
            Type::Ptr(_) | Type::Slice(_) | Type::Map(_, _) => true,
            Type::Named(name) => resolve_fields(name)
                .iter()
                .any(|t| t.contains_pointers(resolve_fields)),
        }
    }

    /// Whether this type is a reference kind GoFree can free directly
    /// (slice, map, or pointer — see table 4).
    pub fn is_freeable_reference(&self) -> bool {
        matches!(self, Type::Ptr(_) | Type::Slice(_) | Type::Map(_, _))
    }

    /// The size in bytes of a value of this type when stored inline
    /// (in a variable, field, or array element).
    pub fn inline_size(&self, resolve_fields: &dyn Fn(&str) -> Vec<Type>) -> u64 {
        match self {
            Type::Int => 8,
            Type::Bool => 8, // padded to a word, as in Go structs
            Type::Str => 16, // pointer + length
            Type::Ptr(_) => 8,
            Type::Slice(_) => 24, // pointer + len + cap
            Type::Map(_, _) => 8, // pointer to the runtime hmap
            Type::Named(name) => resolve_fields(name)
                .iter()
                .map(|t| t.inline_size(resolve_fields))
                .sum::<u64>()
                .max(8),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Bool => write!(f, "bool"),
            Type::Str => write!(f, "string"),
            Type::Named(name) => write!(f, "{name}"),
            Type::Ptr(t) => write!(f, "*{t}"),
            Type::Slice(t) => write!(f, "[]{t}"),
            Type::Map(k, v) => write!(f, "map[{k}]{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_structs(_: &str) -> Vec<Type> {
        Vec::new()
    }

    #[test]
    fn display_round_trips_shapes() {
        assert_eq!(Type::slice(Type::Int).to_string(), "[]int");
        assert_eq!(Type::ptr(Type::slice(Type::Int)).to_string(), "*[]int");
        assert_eq!(
            Type::map(Type::Str, Type::Int).to_string(),
            "map[string]int"
        );
    }

    #[test]
    fn pointer_content_detection() {
        assert!(!Type::Int.contains_pointers(&no_structs));
        assert!(!Type::Str.contains_pointers(&no_structs));
        assert!(Type::ptr(Type::Int).contains_pointers(&no_structs));
        assert!(Type::slice(Type::Int).contains_pointers(&no_structs));
        assert!(Type::map(Type::Int, Type::Int).contains_pointers(&no_structs));
    }

    #[test]
    fn struct_pointer_content_is_transitive() {
        let fields = |name: &str| -> Vec<Type> {
            match name {
                "Flat" => vec![Type::Int, Type::Bool],
                "Deep" => vec![Type::Named("Flat".into()), Type::slice(Type::Int)],
                _ => vec![],
            }
        };
        assert!(!Type::Named("Flat".into()).contains_pointers(&fields));
        assert!(Type::Named("Deep".into()).contains_pointers(&fields));
    }

    #[test]
    fn sizes_match_go_layout() {
        assert_eq!(Type::Int.inline_size(&no_structs), 8);
        assert_eq!(Type::slice(Type::Int).inline_size(&no_structs), 24);
        assert_eq!(Type::map(Type::Int, Type::Int).inline_size(&no_structs), 8);
        let fields = |_: &str| vec![Type::Int, Type::slice(Type::Int)];
        assert_eq!(Type::Named("S".into()).inline_size(&fields), 32);
    }

    #[test]
    fn freeable_reference_kinds() {
        assert!(Type::slice(Type::Int).is_freeable_reference());
        assert!(Type::map(Type::Int, Type::Int).is_freeable_reference());
        assert!(Type::ptr(Type::Int).is_freeable_reference());
        assert!(!Type::Int.is_freeable_reference());
        assert!(!Type::Named("S".into()).is_freeable_reference());
    }
}
