//! The MiniGo abstract syntax tree.
//!
//! Every expression, statement, and block carries a unique id assigned by the
//! parser. Later passes (resolver, type checker, escape analysis) attach
//! information to those ids in side tables rather than mutating the tree, so
//! the AST stays a plain value type. The only pass that rewrites the AST is
//! GoFree's instrumentation, which inserts [`StmtKind::Free`] statements.

use std::fmt;

use crate::span::Span;
use crate::types::Type;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The id as a plain index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", stringify!($name), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies an expression node.
    ExprId
);
id_type!(
    /// Identifies a statement node.
    StmtId
);
id_type!(
    /// Identifies a block (brace pair).
    BlockId
);
id_type!(
    /// Identifies a function declaration.
    FuncId
);

/// A complete MiniGo source file: struct types plus functions.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Struct type declarations, in source order.
    pub structs: Vec<StructDef>,
    /// Function declarations, in source order.
    pub funcs: Vec<Func>,
    /// Total number of expression ids allocated by the parser.
    pub expr_count: u32,
    /// Total number of statement ids allocated by the parser.
    pub stmt_count: u32,
    /// Total number of block ids allocated by the parser.
    pub block_count: u32,
}

impl Program {
    /// Looks up a function by name.
    pub fn func(&self, name: &str) -> Option<&Func> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Looks up a struct definition by name.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs.iter().find(|s| s.name == name)
    }
}

/// A `type Name struct { ... }` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// The struct's type name.
    pub name: String,
    /// Field names and types, in declaration order.
    pub fields: Vec<(String, Type)>,
    /// Source location of the declaration.
    pub span: Span,
}

impl StructDef {
    /// Index of the field called `name`, if present.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|(f, _)| f == name)
    }
}

/// A function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    /// The function's id.
    pub id: FuncId,
    /// The function's name.
    pub name: String,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Result declarations. Unnamed results have empty names.
    pub results: Vec<Param>,
    /// The function body.
    pub body: Block,
    /// Source location of the declaration header.
    pub span: Span,
}

/// A parameter or named result.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Name; empty for unnamed results.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Source location.
    pub span: Span,
}

/// A brace-delimited statement list.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The block's id; used by lifetime analysis for scope identity.
    pub id: BlockId,
    /// The statements in order.
    pub stmts: Vec<Stmt>,
    /// Source location of the braces.
    pub span: Span,
}

/// A statement with its id and location.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The statement's id.
    pub id: StmtId,
    /// The statement's kind and payload.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `var a, b T = e1, e2` — explicit declaration. `init` may be empty
    /// (zero values), a matching list, or a single multi-value call.
    VarDecl {
        /// Declared names.
        names: Vec<String>,
        /// The declared type.
        ty: Type,
        /// Initializer expressions.
        init: Vec<Expr>,
    },
    /// `a, b := e1, e2` — short declaration with inferred types.
    ShortDecl {
        /// Declared names.
        names: Vec<String>,
        /// Initializer expressions (non-empty).
        init: Vec<Expr>,
    },
    /// `lhs = rhs`, `lhs op= rhs`, or a parallel assignment.
    Assign {
        /// Assignment targets (identifiers, derefs, fields, indexes).
        lhs: Vec<Expr>,
        /// Compound operator, e.g. `+` for `+=`. `None` for plain `=`.
        op: Option<BinOp>,
        /// Right-hand sides: matching list or a single multi-value call.
        rhs: Vec<Expr>,
    },
    /// `if cond { .. } else ..`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then: Block,
        /// Optional else-branch: either a block statement or another `if`.
        els: Option<Box<Stmt>>,
    },
    /// `for init; cond; post { .. }` — any of the three parts may be absent.
    For {
        /// Loop initializer.
        init: Option<Box<Stmt>>,
        /// Loop condition; `None` means an infinite loop.
        cond: Option<Expr>,
        /// Post statement executed after each iteration.
        post: Option<Box<Stmt>>,
        /// Loop body.
        body: Block,
    },
    /// `return e1, e2, ...`.
    Return {
        /// Returned expressions; may be empty when all results are named.
        exprs: Vec<Expr>,
    },
    /// An expression evaluated for effect (a call).
    Expr {
        /// The expression.
        expr: Expr,
    },
    /// A nested block used purely for scoping.
    BlockStmt {
        /// The block.
        block: Block,
    },
    /// `defer f(args)` — run the call at function exit.
    Defer {
        /// The deferred call expression.
        call: Expr,
    },
    /// `switch expr { case e1, e2: ... default: ... }` — no fallthrough,
    /// like Go's default behaviour.
    Switch {
        /// The scrutinee.
        subject: Expr,
        /// The cases, in source order.
        cases: Vec<SwitchCase>,
        /// The default body, if present.
        default: Option<Block>,
    },
    /// `break` out of the innermost loop.
    Break,
    /// `continue` the innermost loop.
    Continue,
    /// A `tcfree(x)` statement. Inserted by GoFree instrumentation (§4.5 of
    /// the paper); also parseable directly for runtime tests.
    Free {
        /// The variable whose referent should be explicitly deallocated.
        target: Expr,
        /// Which `tcfree` family member to call.
        kind: FreeKind,
    },
}

/// One `case` arm of a [`StmtKind::Switch`].
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCase {
    /// The values compared against the subject (any matches).
    pub values: Vec<Expr>,
    /// The arm's body.
    pub body: Block,
}

/// Which member of the `tcfree` family a [`StmtKind::Free`] statement calls
/// (table 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FreeKind {
    /// `TcfreeSlice` — unwrap a slice's underlying array.
    Slice,
    /// `TcfreeMap` — unwrap a map's underlying buckets.
    Map,
    /// `Tcfree` — a raw pointer's referent.
    Pointer,
}

impl fmt::Display for FreeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FreeKind::Slice => write!(f, "TcfreeSlice"),
            FreeKind::Map => write!(f, "TcfreeMap"),
            FreeKind::Pointer => write!(f, "Tcfree"),
        }
    }
}

/// An expression with its id and location.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression's id.
    pub id: ExprId,
    /// The expression's kind and payload.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Boolean literal.
    BoolLit(bool),
    /// String literal.
    StrLit(String),
    /// The nil literal (pointers, slices, maps).
    Nil,
    /// A variable reference.
    Ident(String),
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        operand: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Field selection `base.name`. If `base` is a pointer it is implicitly
    /// dereferenced, as in Go.
    Field {
        /// The struct (or pointer-to-struct) operand.
        base: Box<Expr>,
        /// Field name.
        name: String,
    },
    /// Indexing `base[index]` into a slice or map.
    Index {
        /// The slice or map operand.
        base: Box<Expr>,
        /// The index or key.
        index: Box<Expr>,
    },
    /// Reslicing `base[lo:hi]`; either bound may be absent. The result
    /// shares the base's backing array, as in Go.
    SliceExpr {
        /// The slice operand.
        base: Box<Expr>,
        /// Lower bound (defaults to 0).
        lo: Option<Box<Expr>>,
        /// Upper bound (defaults to `len(base)`).
        hi: Option<Box<Expr>>,
    },
    /// A direct call `f(args)` to a named function.
    Call {
        /// Callee name.
        callee: String,
        /// Actual arguments.
        args: Vec<Expr>,
    },
    /// A builtin operation.
    Builtin {
        /// Which builtin.
        kind: Builtin,
        /// Type arguments, e.g. the `[]int` in `make([]int, n)`.
        ty_args: Vec<Type>,
        /// Value arguments.
        args: Vec<Expr>,
    },
    /// A positional struct literal `Name{e1, e2}`.
    StructLit {
        /// The struct type's name.
        name: String,
        /// Field values in declaration order; must cover all fields.
        fields: Vec<Expr>,
    },
}

/// Builtin functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `make([]T, len[, cap])` or `make(map[K]V)`.
    Make,
    /// `new(T)` — pointer to a zeroed T.
    New,
    /// `append(s, v)` — returns the extended slice.
    Append,
    /// `len(x)` for slices, maps, strings.
    Len,
    /// `cap(s)` for slices.
    Cap,
    /// `delete(m, k)` — removes a key from a map.
    Delete,
    /// `panic(v)` — begin unwinding.
    Panic,
    /// `print(args...)` — append to the run's output buffer.
    Print,
    /// `itoa(n)` — integer to string (stand-in for strconv).
    Itoa,
}

impl Builtin {
    /// The builtin for the identifier `name`, if any.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "make" => Builtin::Make,
            "new" => Builtin::New,
            "append" => Builtin::Append,
            "len" => Builtin::Len,
            "cap" => Builtin::Cap,
            "delete" => Builtin::Delete,
            "panic" => Builtin::Panic,
            "print" => Builtin::Print,
            "itoa" => Builtin::Itoa,
            _ => return None,
        })
    }

    /// The builtin's source-level name.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Make => "make",
            Builtin::New => "new",
            Builtin::Append => "append",
            Builtin::Len => "len",
            Builtin::Cap => "cap",
            Builtin::Delete => "delete",
            Builtin::Panic => "panic",
            Builtin::Print => "print",
            Builtin::Itoa => "itoa",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical not `!x`.
    Not,
    /// Address-of `&x`.
    Addr,
    /// Dereference `*p`.
    Deref,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` (ints and strings).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Rem,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&` (short-circuit).
    And,
    /// `||` (short-circuit).
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::Addr => "&",
            UnOp::Deref => "*",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_round_trips_names() {
        for b in [
            Builtin::Make,
            Builtin::New,
            Builtin::Append,
            Builtin::Len,
            Builtin::Cap,
            Builtin::Delete,
            Builtin::Panic,
            Builtin::Print,
            Builtin::Itoa,
        ] {
            assert_eq!(Builtin::from_name(b.name()), Some(b));
        }
        assert_eq!(Builtin::from_name("frob"), None);
    }

    #[test]
    fn ids_order_and_display() {
        assert!(ExprId(1) < ExprId(2));
        assert_eq!(ExprId(3).to_string(), "ExprId3");
        assert_eq!(BlockId(0).index(), 0);
    }

    #[test]
    fn free_kind_displays_runtime_names() {
        assert_eq!(FreeKind::Slice.to_string(), "TcfreeSlice");
        assert_eq!(FreeKind::Map.to_string(), "TcfreeMap");
        assert_eq!(FreeKind::Pointer.to_string(), "Tcfree");
    }
}
