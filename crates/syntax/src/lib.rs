//! # minigo-syntax
//!
//! The front end of the MiniGo language used by the GoFree reproduction:
//! a Go subset with functions (multiple return values), structs, pointers,
//! slices, maps, `defer`, and a `tcfree` statement that the GoFree
//! instrumentation pass inserts.
//!
//! The pipeline is:
//!
//! ```
//! use minigo_syntax::{parse, resolve, typecheck};
//!
//! # fn main() -> Result<(), minigo_syntax::Diagnostic> {
//! let src = "func add(a int, b int) int { return a + b }\n";
//! let program = parse(src)?;
//! let resolution = resolve(&program)?;
//! let types = typecheck(&program, &resolution)?;
//! assert!(types.var(resolution.params_of(program.funcs[0].id)[0]).is_some());
//! # Ok(())
//! # }
//! ```
//!
//! Every expression, statement, and block carries a stable id; the resolver
//! and type checker return side tables keyed by those ids, which the escape
//! analysis in `minigo-escape` consumes.

#![warn(missing_docs)]

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod resolver;
pub mod span;
pub mod token;
pub mod typecheck;
pub mod types;

pub use ast::{
    BinOp, Block, BlockId, Builtin, Expr, ExprId, ExprKind, FreeKind, Func, FuncId, Param, Program,
    Stmt, StmtId, StmtKind, StructDef, SwitchCase, UnOp,
};
pub use diag::{Diagnostic, Result};
pub use lexer::lex;
pub use parser::{parse, parse_expr};
pub use printer::print_program;
pub use resolver::{resolve, Resolution, VarId, VarInfo, VarKind};
pub use span::Span;
pub use typecheck::{typecheck, TypeInfo};
pub use types::Type;

/// Parses, resolves, and type-checks `src` in one step.
///
/// # Errors
///
/// Returns the first diagnostic from any stage.
pub fn frontend(src: &str) -> Result<(Program, Resolution, TypeInfo)> {
    let program = parse(src)?;
    let resolution = resolve(&program)?;
    let types = typecheck(&program, &resolution)?;
    Ok((program, resolution, types))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontend_accepts_fig1_program() {
        // The paper's fig. 1 example, adapted to MiniGo syntax.
        let src = r#"
type Big struct {
    fat []int
    p *int
}

func fig1(c int, d int) *int {
    s := make([]int, 10)
    bigObj := Big{s, &c}
    pc := &c
    pd := &d
    ppd := &pd
    *ppd = pc
    pd2 := *ppd
    return pd2
}
"#;
        let (program, resolution, types) = frontend(src).expect("fig1 must compile");
        let f = program.func("fig1").expect("fig1 exists");
        assert_eq!(f.params.len(), 2);
        let params = resolution.params_of(f.id);
        assert_eq!(types.var(params[0]), Some(&Type::Int));
    }

    #[test]
    fn frontend_accepts_fig3_program() {
        let src = r#"
func analyses(n int) {
    s1 := make([]int, 335)
    s1[0] = 1
    for i := 1; i < n; i += 1 {
        s2 := make([]int, i)
        s2[0] = i
    }
}
"#;
        assert!(frontend(src).is_ok());
    }

    #[test]
    fn frontend_accepts_fig7_program() {
        let src = r#"
func partialNew(ps *[]int) (r0 []int, r1 []int) {
    pps := &ps
    *pps = ps
    made := make([]int, 3)
    return made, **pps
}

func caller() {
    s := make([]int, 3)
    fresh, old := partialNew(&s)
    fresh[0] = old[0]
}
"#;
        assert!(frontend(src).is_ok());
    }

    #[test]
    fn frontend_reports_errors_with_spans() {
        let err = frontend("func f() { undefined() }\n").unwrap_err();
        assert!(err.message().contains("undefined"));
        assert!(!err.span().is_empty());
    }
}
