//! Type checking for MiniGo.
//!
//! Walks each function in source order, infers types for `:=` declarations,
//! and records a type for every expression. Multi-value calls get their full
//! result list recorded separately. The checker is deliberately strict: it
//! rejects anything whose semantics the VM or the escape analysis would have
//! to guess at.

use std::collections::HashMap;

use crate::ast::*;
use crate::diag::{Diagnostic, Result};
use crate::resolver::{Resolution, VarId};
use crate::types::Type;

/// Types computed for a program.
#[derive(Debug, Clone, Default)]
pub struct TypeInfo {
    expr_ty: HashMap<ExprId, Type>,
    call_results: HashMap<ExprId, Vec<Type>>,
    var_ty: HashMap<VarId, Type>,
    struct_fields: HashMap<String, Vec<(String, Type)>>,
}

impl TypeInfo {
    /// The type of an expression. Multi-value calls record their first
    /// result here (and the full list in [`TypeInfo::call_result_types`]).
    pub fn expr(&self, id: ExprId) -> Option<&Type> {
        self.expr_ty.get(&id)
    }

    /// All result types of a call expression.
    pub fn call_result_types(&self, id: ExprId) -> Option<&[Type]> {
        self.call_results.get(&id).map(Vec::as_slice)
    }

    /// The type of a variable.
    pub fn var(&self, id: VarId) -> Option<&Type> {
        self.var_ty.get(&id)
    }

    /// Field list of a struct type.
    pub fn fields_of(&self, name: &str) -> Option<&[(String, Type)]> {
        self.struct_fields.get(name).map(Vec::as_slice)
    }

    /// Whether `ty` can transitively reach pointers (see
    /// [`Type::contains_pointers`]); resolves struct names via this table.
    pub fn contains_pointers(&self, ty: &Type) -> bool {
        let resolve = |name: &str| {
            self.struct_fields
                .get(name)
                .map(|fs| fs.iter().map(|(_, t)| t.clone()).collect())
                .unwrap_or_default()
        };
        ty.contains_pointers(&resolve)
    }

    /// Records a type for a synthesized expression. GoFree's partial-free
    /// instrumentation calls this for the `tcfree(x.f)` field projections
    /// it inserts, so both VM engines can resolve the field's struct.
    pub fn record_expr_type(&mut self, id: ExprId, ty: Type) {
        self.expr_ty.insert(id, ty);
    }

    /// Inline size of `ty` in bytes; resolves struct names via this table.
    pub fn inline_size(&self, ty: &Type) -> u64 {
        let resolve = |name: &str| {
            self.struct_fields
                .get(name)
                .map(|fs| fs.iter().map(|(_, t)| t.clone()).collect())
                .unwrap_or_default()
        };
        ty.inline_size(&resolve)
    }
}

/// Type-checks `program` under `res`.
///
/// # Errors
///
/// Returns the first type error found.
pub fn typecheck(program: &Program, res: &Resolution) -> Result<TypeInfo> {
    let mut info = TypeInfo::default();
    for s in &program.structs {
        if info
            .struct_fields
            .insert(s.name.clone(), s.fields.clone())
            .is_some()
        {
            return Err(Diagnostic::new(
                format!("struct `{}` redeclared", s.name),
                s.span,
            ));
        }
    }
    // Validate that struct fields refer to known structs (no recursion by
    // value: a struct may contain itself only behind a pointer/slice/map).
    for s in &program.structs {
        for (fname, fty) in &s.fields {
            check_type_wf(fty, &info, s.span)?;
            if let Type::Named(n) = fty {
                if n == &s.name {
                    return Err(Diagnostic::new(
                        format!("field `{fname}` embeds `{}` by value recursively", s.name),
                        s.span,
                    ));
                }
            }
        }
    }

    let mut ck = Checker {
        program,
        res,
        info,
        func: None,
    };
    // Pre-record parameter/result variable types for all functions so calls
    // can be checked in any order.
    for func in &program.funcs {
        for (&vid, p) in res.params_of(func.id).iter().zip(&func.params) {
            check_type_wf(&p.ty, &ck.info, p.span)?;
            ck.info.var_ty.insert(vid, p.ty.clone());
        }
        for (&vid, p) in res.results_of(func.id).iter().zip(&func.results) {
            check_type_wf(&p.ty, &ck.info, p.span)?;
            ck.info.var_ty.insert(vid, p.ty.clone());
        }
    }
    for func in &program.funcs {
        ck.func = Some(func);
        ck.block(&func.body)?;
    }
    Ok(ck.info)
}

fn check_type_wf(ty: &Type, info: &TypeInfo, span: crate::span::Span) -> Result<()> {
    match ty {
        Type::Int | Type::Bool | Type::Str => Ok(()),
        Type::Named(name) => {
            if info.struct_fields.contains_key(name) {
                Ok(())
            } else {
                Err(Diagnostic::new(format!("unknown type `{name}`"), span))
            }
        }
        Type::Ptr(t) | Type::Slice(t) => check_type_wf(t, info, span),
        Type::Map(k, v) => {
            match **k {
                Type::Int | Type::Str | Type::Bool => {}
                _ => {
                    return Err(Diagnostic::new(
                        "map keys must be int, string, or bool",
                        span,
                    ));
                }
            }
            check_type_wf(v, info, span)
        }
    }
}

struct Checker<'p> {
    program: &'p Program,
    res: &'p Resolution,
    info: TypeInfo,
    func: Option<&'p Func>,
}

impl<'p> Checker<'p> {
    fn block(&mut self, block: &Block) -> Result<()> {
        for stmt in &block.stmts {
            self.stmt(stmt)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<()> {
        match &stmt.kind {
            StmtKind::VarDecl { names, ty, init } => {
                check_type_wf(ty, &self.info, stmt.span)?;
                let tys = self.rhs_types(init, names.len(), stmt.span, Some(ty))?;
                for got in &tys {
                    self.require_assignable(ty, got, stmt.span)?;
                }
                for i in 0..names.len() {
                    let vid = self
                        .res
                        .decl_of(stmt.id, i)
                        .ok_or_else(|| Diagnostic::new("unresolved declaration", stmt.span))?;
                    self.info.var_ty.insert(vid, ty.clone());
                }
                Ok(())
            }
            StmtKind::ShortDecl { names, init } => {
                let tys = self.rhs_types(init, names.len(), stmt.span, None)?;
                for (i, got) in tys.iter().enumerate() {
                    let vid = self
                        .res
                        .decl_of(stmt.id, i)
                        .ok_or_else(|| Diagnostic::new("unresolved declaration", stmt.span))?;
                    self.info.var_ty.insert(vid, got.clone());
                }
                Ok(())
            }
            StmtKind::Assign { lhs, op, rhs } => {
                let mut lhs_tys = Vec::new();
                for l in lhs {
                    self.check_lvalue(l)?;
                    lhs_tys.push(self.expr(l, None)?);
                }
                if let Some(op) = op {
                    let rt = self.expr(&rhs[0], Some(&lhs_tys[0]))?;
                    let out = self.binop_type(*op, &lhs_tys[0], &rt, stmt.span)?;
                    self.require_assignable(&lhs_tys[0], &out, stmt.span)?;
                    return Ok(());
                }
                if rhs.len() == 1 && lhs.len() > 1 {
                    let tys = self.multi_call_types(&rhs[0], lhs.len(), stmt.span)?;
                    for (want, got) in lhs_tys.iter().zip(&tys) {
                        self.require_assignable(want, got, stmt.span)?;
                    }
                    return Ok(());
                }
                if lhs.len() != rhs.len() {
                    return Err(Diagnostic::new("assignment count mismatch", stmt.span));
                }
                for (l, r) in lhs_tys.iter().zip(rhs) {
                    let rt = self.expr(r, Some(l))?;
                    self.require_assignable(l, &rt, stmt.span)?;
                }
                Ok(())
            }
            StmtKind::If { cond, then, els } => {
                let ct = self.expr(cond, Some(&Type::Bool))?;
                self.require_assignable(&Type::Bool, &ct, cond.span)?;
                self.block(then)?;
                if let Some(els) = els {
                    self.stmt(els)?;
                }
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                post,
                body,
            } => {
                if let Some(init) = init {
                    self.stmt(init)?;
                }
                if let Some(cond) = cond {
                    let ct = self.expr(cond, Some(&Type::Bool))?;
                    self.require_assignable(&Type::Bool, &ct, cond.span)?;
                }
                if let Some(post) = post {
                    self.stmt(post)?;
                }
                self.block(body)
            }
            StmtKind::Return { exprs } => {
                let func = self.func.expect("inside a function");
                let results = self.res.results_of(func.id).to_vec();
                if exprs.is_empty() {
                    // Bare return: legal when there are no results or when
                    // all results are named (their current values are used).
                    if !results.is_empty() && func.results.iter().any(|r| r.name.is_empty()) {
                        return Err(Diagnostic::new(
                            "bare return with unnamed results",
                            stmt.span,
                        ));
                    }
                    return Ok(());
                }
                if exprs.len() == 1 && results.len() > 1 {
                    let tys = self.multi_call_types(&exprs[0], results.len(), stmt.span)?;
                    for (rid, got) in results.iter().zip(&tys) {
                        let want = self.info.var_ty[rid].clone();
                        self.require_assignable(&want, got, stmt.span)?;
                    }
                    return Ok(());
                }
                if exprs.len() != results.len() {
                    return Err(Diagnostic::new(
                        format!(
                            "return gives {} values, function has {} results",
                            exprs.len(),
                            results.len()
                        ),
                        stmt.span,
                    ));
                }
                for (rid, e) in results.iter().zip(exprs) {
                    let want = self.info.var_ty[rid].clone();
                    let got = self.expr(e, Some(&want))?;
                    self.require_assignable(&want, &got, e.span)?;
                }
                Ok(())
            }
            StmtKind::Expr { expr } => {
                // Expression statements are calls or builtins with effects.
                match &expr.kind {
                    ExprKind::Call { .. } => {
                        self.call_types(expr)?;
                        Ok(())
                    }
                    ExprKind::Builtin { .. } => {
                        self.expr(expr, None)?;
                        Ok(())
                    }
                    _ => Err(Diagnostic::new(
                        "expression statement must be a call",
                        expr.span,
                    )),
                }
            }
            StmtKind::BlockStmt { block } => self.block(block),
            StmtKind::Defer { call } => {
                match &call.kind {
                    ExprKind::Call { .. } => {
                        self.call_types(call)?;
                    }
                    ExprKind::Builtin { .. } => {
                        self.expr(call, None)?;
                    }
                    _ => unreachable!("parser enforces defer of a call"),
                }
                Ok(())
            }
            StmtKind::Switch {
                subject,
                cases,
                default,
            } => {
                let st = self.expr(subject, None)?;
                match st {
                    Type::Int | Type::Bool | Type::Str => {}
                    other => {
                        return Err(Diagnostic::new(
                            format!("cannot switch on {other}"),
                            stmt.span,
                        ));
                    }
                }
                for case in cases {
                    for v in &case.values {
                        let vt = self.expr(v, Some(&st))?;
                        self.require_assignable(&st, &vt, v.span)?;
                    }
                    self.block(&case.body)?;
                }
                if let Some(default) = default {
                    self.block(default)?;
                }
                Ok(())
            }
            StmtKind::Break | StmtKind::Continue => Ok(()),
            StmtKind::Free { target, .. } => {
                let ty = self.expr(target, None)?;
                if ty.is_freeable_reference() {
                    Ok(())
                } else {
                    Err(Diagnostic::new(
                        format!("tcfree target must be slice, map, or pointer, not {ty}"),
                        target.span,
                    ))
                }
            }
        }
    }

    /// Types of a declaration right-hand side: a matching list, one
    /// multi-value call, or (for `var`) nothing.
    fn rhs_types(
        &mut self,
        init: &[Expr],
        want: usize,
        span: crate::span::Span,
        expected: Option<&Type>,
    ) -> Result<Vec<Type>> {
        if init.is_empty() {
            return Ok(vec![
                expected.cloned().ok_or_else(|| Diagnostic::new(
                    "missing initializer",
                    span
                ))?;
                want
            ]);
        }
        if init.len() == 1 && want > 1 {
            return self.multi_call_types(&init[0], want, span);
        }
        if init.len() != want {
            return Err(Diagnostic::new("initializer count mismatch", span));
        }
        init.iter()
            .map(|e| self.expr(e, expected))
            .collect::<Result<Vec<_>>>()
    }

    fn multi_call_types(
        &mut self,
        expr: &Expr,
        want: usize,
        span: crate::span::Span,
    ) -> Result<Vec<Type>> {
        match &expr.kind {
            ExprKind::Call { .. } => {
                let tys = self.call_types(expr)?;
                if tys.len() != want {
                    return Err(Diagnostic::new(
                        format!("call yields {} values, need {want}", tys.len()),
                        span,
                    ));
                }
                Ok(tys)
            }
            _ => Err(Diagnostic::new(
                "multiple-value context requires a call",
                span,
            )),
        }
    }

    /// Checks a call and records its full result list; returns it.
    fn call_types(&mut self, expr: &Expr) -> Result<Vec<Type>> {
        let (callee, args) = match &expr.kind {
            ExprKind::Call { callee, args } => (callee, args),
            _ => unreachable!("call_types on non-call"),
        };
        let fid = self
            .res
            .func_by_name(callee)
            .ok_or_else(|| Diagnostic::new(format!("undefined function `{callee}`"), expr.span))?;
        let func = &self.program.funcs[fid.index()];
        if args.len() != func.params.len() {
            return Err(Diagnostic::new(
                format!(
                    "`{callee}` takes {} arguments, got {}",
                    func.params.len(),
                    args.len()
                ),
                expr.span,
            ));
        }
        for (p, a) in func.params.clone().iter().zip(args) {
            let got = self.expr(a, Some(&p.ty))?;
            self.require_assignable(&p.ty, &got, a.span)?;
        }
        let tys: Vec<Type> = func.results.iter().map(|r| r.ty.clone()).collect();
        self.info.call_results.insert(expr.id, tys.clone());
        if let Some(first) = tys.first() {
            self.info.expr_ty.insert(expr.id, first.clone());
        }
        Ok(tys)
    }

    fn check_lvalue(&self, expr: &Expr) -> Result<()> {
        match &expr.kind {
            ExprKind::Ident(_) => Ok(()),
            ExprKind::Unary {
                op: UnOp::Deref, ..
            } => Ok(()),
            ExprKind::Field { base, .. } => self.check_lvalue_base(base),
            ExprKind::Index { base, .. } => self.check_lvalue_base(base),
            _ => Err(Diagnostic::new(
                "cannot assign to this expression",
                expr.span,
            )),
        }
    }

    fn check_lvalue_base(&self, base: &Expr) -> Result<()> {
        match &base.kind {
            ExprKind::Ident(_)
            | ExprKind::Unary {
                op: UnOp::Deref, ..
            }
            | ExprKind::Field { .. }
            | ExprKind::Index { .. } => Ok(()),
            // Calls returning slices/maps can be indexed for writing too;
            // keep it simple and allow them.
            ExprKind::Call { .. } | ExprKind::Builtin { .. } => Ok(()),
            _ => Err(Diagnostic::new(
                "cannot assign through this expression",
                base.span,
            )),
        }
    }

    fn require_assignable(&self, want: &Type, got: &Type, span: crate::span::Span) -> Result<()> {
        if want == got {
            return Ok(());
        }
        Err(Diagnostic::new(
            format!("type mismatch: expected {want}, found {got}"),
            span,
        ))
    }

    fn binop_type(&self, op: BinOp, lt: &Type, rt: &Type, span: crate::span::Span) -> Result<Type> {
        use BinOp::*;
        match op {
            Add => match (lt, rt) {
                (Type::Int, Type::Int) => Ok(Type::Int),
                (Type::Str, Type::Str) => Ok(Type::Str),
                _ => Err(Diagnostic::new(
                    format!("invalid operands {lt} + {rt}"),
                    span,
                )),
            },
            Sub | Mul | Div | Rem => {
                if lt == &Type::Int && rt == &Type::Int {
                    Ok(Type::Int)
                } else {
                    Err(Diagnostic::new(
                        format!("invalid operands {lt} {op} {rt}"),
                        span,
                    ))
                }
            }
            Lt | Le | Gt | Ge => match (lt, rt) {
                (Type::Int, Type::Int) | (Type::Str, Type::Str) => Ok(Type::Bool),
                _ => Err(Diagnostic::new(
                    format!("invalid comparison {lt} {op} {rt}"),
                    span,
                )),
            },
            Eq | Ne => {
                if lt == rt {
                    Ok(Type::Bool)
                } else {
                    Err(Diagnostic::new(
                        format!("cannot compare {lt} and {rt}"),
                        span,
                    ))
                }
            }
            And | Or => {
                if lt == &Type::Bool && rt == &Type::Bool {
                    Ok(Type::Bool)
                } else {
                    Err(Diagnostic::new(
                        format!("invalid operands {lt} {op} {rt}"),
                        span,
                    ))
                }
            }
        }
    }

    fn expr(&mut self, expr: &Expr, expected: Option<&Type>) -> Result<Type> {
        let ty = self.expr_inner(expr, expected)?;
        self.info.expr_ty.insert(expr.id, ty.clone());
        Ok(ty)
    }

    fn expr_inner(&mut self, expr: &Expr, expected: Option<&Type>) -> Result<Type> {
        match &expr.kind {
            ExprKind::IntLit(_) => Ok(Type::Int),
            ExprKind::BoolLit(_) => Ok(Type::Bool),
            ExprKind::StrLit(_) => Ok(Type::Str),
            ExprKind::Nil => match expected {
                Some(t @ (Type::Ptr(_) | Type::Slice(_) | Type::Map(_, _))) => Ok(t.clone()),
                Some(other) => Err(Diagnostic::new(
                    format!("nil is not a valid {other}"),
                    expr.span,
                )),
                None => Err(Diagnostic::new(
                    "untyped nil needs an expected type",
                    expr.span,
                )),
            },
            ExprKind::Ident(_) => {
                let vid = self
                    .res
                    .def_of(expr.id)
                    .ok_or_else(|| Diagnostic::new("unresolved identifier", expr.span))?;
                self.info.var_ty.get(&vid).cloned().ok_or_else(|| {
                    Diagnostic::new("variable used before its type is known", expr.span)
                })
            }
            ExprKind::Unary { op, operand } => match op {
                UnOp::Neg => {
                    let t = self.expr(operand, Some(&Type::Int))?;
                    self.require_assignable(&Type::Int, &t, expr.span)?;
                    Ok(Type::Int)
                }
                UnOp::Not => {
                    let t = self.expr(operand, Some(&Type::Bool))?;
                    self.require_assignable(&Type::Bool, &t, expr.span)?;
                    Ok(Type::Bool)
                }
                UnOp::Addr => {
                    let t = self.expr(operand, None)?;
                    // Addressable: variables, fields, derefs, struct literals.
                    match &operand.kind {
                        ExprKind::Ident(_)
                        | ExprKind::Field { .. }
                        | ExprKind::Index { .. }
                        | ExprKind::StructLit { .. }
                        | ExprKind::Unary {
                            op: UnOp::Deref, ..
                        } => Ok(Type::ptr(t)),
                        _ => Err(Diagnostic::new("cannot take address", expr.span)),
                    }
                }
                UnOp::Deref => {
                    let t = self.expr(operand, None)?;
                    match t {
                        Type::Ptr(inner) => Ok(*inner),
                        other => Err(Diagnostic::new(
                            format!("cannot dereference {other}"),
                            expr.span,
                        )),
                    }
                }
            },
            ExprKind::Binary { op, lhs, rhs } => {
                // `nil == x` needs x's type to give nil one: type the
                // non-nil side first.
                let (lt, rt) = if matches!(lhs.kind, ExprKind::Nil) {
                    let rt = self.expr(rhs, None)?;
                    let lt = self.expr(lhs, Some(&rt))?;
                    (lt, rt)
                } else {
                    let lt = self.expr(lhs, None)?;
                    let rt = self.expr(rhs, Some(&lt))?;
                    (lt, rt)
                };
                // Go: slices and maps are only comparable to nil.
                if matches!(op, BinOp::Eq | BinOp::Ne)
                    && matches!(lt, Type::Slice(_) | Type::Map(_, _))
                    && !matches!(lhs.kind, ExprKind::Nil)
                    && !matches!(rhs.kind, ExprKind::Nil)
                {
                    return Err(Diagnostic::new(
                        format!("{lt} values are only comparable to nil"),
                        expr.span,
                    ));
                }
                self.binop_type(*op, &lt, &rt, expr.span)
            }
            ExprKind::Field { base, name } => {
                let bt = self.expr(base, None)?;
                let sname = match &bt {
                    Type::Named(n) => n.clone(),
                    Type::Ptr(inner) => match &**inner {
                        Type::Named(n) => n.clone(),
                        other => {
                            return Err(Diagnostic::new(
                                format!("{other} has no fields"),
                                expr.span,
                            ));
                        }
                    },
                    other => {
                        return Err(Diagnostic::new(format!("{other} has no fields"), expr.span));
                    }
                };
                let fields = self.info.fields_of(&sname).ok_or_else(|| {
                    Diagnostic::new(format!("unknown struct `{sname}`"), expr.span)
                })?;
                fields
                    .iter()
                    .find(|(f, _)| f == name)
                    .map(|(_, t)| t.clone())
                    .ok_or_else(|| {
                        Diagnostic::new(
                            format!("struct `{sname}` has no field `{name}`"),
                            expr.span,
                        )
                    })
            }
            ExprKind::Index { base, index } => {
                let bt = self.expr(base, None)?;
                match bt {
                    Type::Slice(elem) => {
                        let it = self.expr(index, Some(&Type::Int))?;
                        self.require_assignable(&Type::Int, &it, index.span)?;
                        Ok(*elem)
                    }
                    Type::Map(k, v) => {
                        let it = self.expr(index, Some(&k))?;
                        self.require_assignable(&k, &it, index.span)?;
                        Ok(*v)
                    }
                    other => Err(Diagnostic::new(format!("cannot index {other}"), expr.span)),
                }
            }
            ExprKind::SliceExpr { base, lo, hi } => {
                let bt = self.expr(base, None)?;
                for bound in [lo, hi].into_iter().flatten() {
                    let t = self.expr(bound, Some(&Type::Int))?;
                    self.require_assignable(&Type::Int, &t, bound.span)?;
                }
                match bt {
                    Type::Slice(_) => Ok(bt),
                    other => Err(Diagnostic::new(
                        format!("cannot reslice {other}"),
                        expr.span,
                    )),
                }
            }
            ExprKind::Call { .. } => {
                let tys = self.call_types(expr)?;
                match tys.len() {
                    1 => Ok(tys.into_iter().next().expect("len checked")),
                    0 => Err(Diagnostic::new(
                        "call of void function used as a value",
                        expr.span,
                    )),
                    _ => Err(Diagnostic::new(
                        "multi-value call in single-value context",
                        expr.span,
                    )),
                }
            }
            ExprKind::Builtin {
                kind,
                ty_args,
                args,
            } => self.builtin(expr, *kind, ty_args, args),
            ExprKind::StructLit { name, fields } => {
                let decl = self
                    .info
                    .fields_of(name)
                    .ok_or_else(|| Diagnostic::new(format!("unknown struct `{name}`"), expr.span))?
                    .to_vec();
                if decl.len() != fields.len() {
                    return Err(Diagnostic::new(
                        format!(
                            "`{name}` has {} fields, literal gives {}",
                            decl.len(),
                            fields.len()
                        ),
                        expr.span,
                    ));
                }
                for ((_, want), e) in decl.iter().zip(fields) {
                    let got = self.expr(e, Some(want))?;
                    self.require_assignable(want, &got, e.span)?;
                }
                Ok(Type::Named(name.clone()))
            }
        }
    }

    fn builtin(
        &mut self,
        expr: &Expr,
        kind: Builtin,
        ty_args: &[Type],
        args: &[Expr],
    ) -> Result<Type> {
        let span = expr.span;
        match kind {
            Builtin::Make => {
                let ty = ty_args
                    .first()
                    .ok_or_else(|| Diagnostic::new("make needs a type argument", span))?;
                check_type_wf(ty, &self.info, span)?;
                match ty {
                    Type::Slice(_) => {
                        if args.is_empty() || args.len() > 2 {
                            return Err(Diagnostic::new(
                                "make([]T, len[, cap]) takes 1 or 2 sizes",
                                span,
                            ));
                        }
                        for a in args {
                            let t = self.expr(a, Some(&Type::Int))?;
                            self.require_assignable(&Type::Int, &t, a.span)?;
                        }
                        Ok(ty.clone())
                    }
                    Type::Map(_, _) => {
                        if !args.is_empty() {
                            return Err(Diagnostic::new("make(map[K]V) takes no sizes", span));
                        }
                        Ok(ty.clone())
                    }
                    other => Err(Diagnostic::new(format!("cannot make {other}"), span)),
                }
            }
            Builtin::New => {
                let ty = ty_args
                    .first()
                    .ok_or_else(|| Diagnostic::new("new needs a type argument", span))?;
                check_type_wf(ty, &self.info, span)?;
                if !args.is_empty() {
                    return Err(Diagnostic::new("new takes no value arguments", span));
                }
                Ok(Type::ptr(ty.clone()))
            }
            Builtin::Append => {
                if args.len() != 2 {
                    return Err(Diagnostic::new("append(s, v) takes two arguments", span));
                }
                let st = self.expr(&args[0], None)?;
                match st.clone() {
                    Type::Slice(elem) => {
                        let vt = self.expr(&args[1], Some(&elem))?;
                        self.require_assignable(&elem, &vt, args[1].span)?;
                        Ok(st)
                    }
                    other => Err(Diagnostic::new(
                        format!("append needs a slice, got {other}"),
                        span,
                    )),
                }
            }
            Builtin::Len => {
                if args.len() != 1 {
                    return Err(Diagnostic::new("len takes one argument", span));
                }
                let t = self.expr(&args[0], None)?;
                match t {
                    Type::Slice(_) | Type::Map(_, _) | Type::Str => Ok(Type::Int),
                    other => Err(Diagnostic::new(format!("len of {other}"), span)),
                }
            }
            Builtin::Cap => {
                if args.len() != 1 {
                    return Err(Diagnostic::new("cap takes one argument", span));
                }
                let t = self.expr(&args[0], None)?;
                match t {
                    Type::Slice(_) => Ok(Type::Int),
                    other => Err(Diagnostic::new(format!("cap of {other}"), span)),
                }
            }
            Builtin::Delete => {
                if args.len() != 2 {
                    return Err(Diagnostic::new("delete(m, k) takes two arguments", span));
                }
                let mt = self.expr(&args[0], None)?;
                match mt {
                    Type::Map(k, _) => {
                        let kt = self.expr(&args[1], Some(&k))?;
                        self.require_assignable(&k, &kt, args[1].span)?;
                        // delete has no value; give it Int so the table has
                        // an entry, statement context ignores it.
                        Ok(Type::Int)
                    }
                    other => Err(Diagnostic::new(
                        format!("delete needs a map, got {other}"),
                        span,
                    )),
                }
            }
            Builtin::Panic => {
                if args.len() != 1 {
                    return Err(Diagnostic::new("panic takes one argument", span));
                }
                self.expr(&args[0], Some(&Type::Str))?;
                Ok(Type::Int)
            }
            Builtin::Print => {
                for a in args {
                    self.expr(a, None)?;
                }
                Ok(Type::Int)
            }
            Builtin::Itoa => {
                if args.len() != 1 {
                    return Err(Diagnostic::new("itoa takes one argument", span));
                }
                let t = self.expr(&args[0], Some(&Type::Int))?;
                self.require_assignable(&Type::Int, &t, span)?;
                Ok(Type::Str)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::resolver::resolve;

    fn check(src: &str) -> Result<(Program, Resolution, TypeInfo)> {
        let p = parse(src)?;
        let r = resolve(&p)?;
        let t = typecheck(&p, &r)?;
        Ok((p, r, t))
    }

    fn check_ok(src: &str) -> (Program, Resolution, TypeInfo) {
        match check(src) {
            Ok(x) => x,
            Err(e) => panic!("typecheck failed: {}\nsource:\n{src}", e.render(src)),
        }
    }

    #[test]
    fn infers_short_decl_types() {
        let (p, r, t) = check_ok("func f() { x := 1\n s := make([]int, 3)\n x = len(s) }\n");
        let stmt = &p.funcs[0].body.stmts[1];
        let vid = r.decl_of(stmt.id, 0).unwrap();
        assert_eq!(t.var(vid), Some(&Type::slice(Type::Int)));
    }

    #[test]
    fn checks_function_calls() {
        assert!(check("func g(x int) int { return x }\nfunc f() { y := g(1)\n y = y }\n").is_ok());
        assert!(check("func g(x int) int { return x }\nfunc f() { g(true) }\n").is_err());
        assert!(check("func g(x int) int { return x }\nfunc f() { g(1, 2) }\n").is_err());
    }

    #[test]
    fn multi_value_destructuring_types() {
        let (p, r, t) = check_ok(
            "func g() (int, []int) { return 1, make([]int, 2) }\nfunc f() { a, b := g()\n a = len(b) }\n",
        );
        let stmt = &p.funcs[1].body.stmts[0];
        assert_eq!(t.var(r.decl_of(stmt.id, 0).unwrap()), Some(&Type::Int));
        assert_eq!(
            t.var(r.decl_of(stmt.id, 1).unwrap()),
            Some(&Type::slice(Type::Int))
        );
    }

    #[test]
    fn rejects_multi_value_in_single_context() {
        assert!(
            check("func g() (int, int) { return 1, 2 }\nfunc f() { x := g()\n x = x }\n").is_err()
        );
    }

    #[test]
    fn nil_needs_context() {
        assert!(check("func f() { var p *int = nil\n p = p }\n").is_ok());
        assert!(check("func f() { x := nil\n x = x }\n").is_err());
    }

    #[test]
    fn pointer_types() {
        let (p, r, t) = check_ok("func f() { x := 1\n p := &x\n y := *p\n y = y }\n");
        let stmts = &p.funcs[0].body.stmts;
        let pv = r.decl_of(stmts[1].id, 0).unwrap();
        assert_eq!(t.var(pv), Some(&Type::ptr(Type::Int)));
        let yv = r.decl_of(stmts[2].id, 0).unwrap();
        assert_eq!(t.var(yv), Some(&Type::Int));
    }

    #[test]
    fn rejects_deref_of_non_pointer() {
        assert!(check("func f() { x := 1\n y := *x\n y = y }\n").is_err());
    }

    #[test]
    fn struct_fields_and_literals() {
        let src = "type P struct { x int\n next *P }\nfunc f() { p := P{1, nil}\n q := &p\n y := q.x\n y = y }\n";
        let (p, r, t) = check_ok(src);
        let stmts = &p.funcs[0].body.stmts;
        let qv = r.decl_of(stmts[1].id, 0).unwrap();
        assert_eq!(t.var(qv), Some(&Type::ptr(Type::Named("P".into()))));
        let yv = r.decl_of(stmts[2].id, 0).unwrap();
        assert_eq!(t.var(yv), Some(&Type::Int));
    }

    #[test]
    fn rejects_unknown_field() {
        assert!(check("type P struct { x int }\nfunc f(p P) int { return p.y }\n").is_err());
    }

    #[test]
    fn rejects_recursive_struct_by_value() {
        assert!(check("type P struct { p P }\nfunc f() {}\n").is_err());
        assert!(check("type P struct { p *P }\nfunc f() {}\n").is_ok());
    }

    #[test]
    fn slice_and_map_indexing() {
        assert!(
            check("func f(s []int, m map[string]int) int { return s[0] + m[\"k\"] }\n").is_ok()
        );
        assert!(check("func f(s []int) int { return s[\"k\"] }\n").is_err());
        assert!(check("func f(m map[string]int) int { return m[1] }\n").is_err());
    }

    #[test]
    fn append_types() {
        assert!(check("func f(s []int) []int { return append(s, 1) }\n").is_ok());
        assert!(check("func f(s []int) []int { return append(s, true) }\n").is_err());
        assert!(check("func f(x int) int { return len(append(make([]int, x), 1)) }\n").is_ok());
    }

    #[test]
    fn make_checks() {
        assert!(check("func f(n int) { s := make([]int, n)\n s = s }\n").is_ok());
        assert!(check("func f() { m := make(map[string]int)\n m = m }\n").is_ok());
        assert!(check("func f() { x := make(int, 1)\n x = x }\n").is_err());
        assert!(check("func f() { m := make(map[string]int, 1)\n m = m }\n").is_err());
    }

    #[test]
    fn map_key_restriction() {
        assert!(check("func f() { m := make(map[[]int]int)\n m = m }\n").is_err());
    }

    #[test]
    fn slices_and_maps_only_comparable_to_nil() {
        assert!(check("func f(s []int) bool { return s == nil }\n").is_ok());
        assert!(check("func f(m map[int]int) bool { return nil != m }\n").is_ok());
        assert!(check("func f(a []int, b []int) bool { return a == b }\n").is_err());
        assert!(check("func f(a map[int]int, b map[int]int) bool { return a == b }\n").is_err());
    }

    #[test]
    fn string_concat_and_compare() {
        assert!(check("func f(a string, b string) bool { return a + b < \"z\" }\n").is_ok());
        assert!(check("func f(a string) string { return a - a }\n").is_err());
    }

    #[test]
    fn bare_return_with_named_results() {
        assert!(check("func f() (out int) { out = 3\n return }\n").is_ok());
        assert!(check("func f() (int) { return }\n").is_err());
    }

    #[test]
    fn return_arity() {
        assert!(check("func f() (int, int) { return 1 }\n").is_err());
        assert!(check("func f() int { return 1, 2 }\n").is_err());
    }

    #[test]
    fn assign_through_pointer_and_index() {
        assert!(check(
            "func f(p *int, s []int, m map[string]int) { *p = 1\n s[0] = 2\n m[\"k\"] = 3 }\n"
        )
        .is_ok());
        assert!(check("func f() { 1 = 2 }\n").is_err());
    }

    #[test]
    fn expr_statement_must_be_call() {
        assert!(check("func f(x int) { x + 1 }\n").is_err());
        assert!(check("func g() {}\nfunc f() { g() }\n").is_ok());
    }

    #[test]
    fn tcfree_target_type_checked() {
        assert!(check("func f(s []int) { tcfree(s) }\n").is_ok());
        assert!(check("func f(m map[int]int) { tcfree(m) }\n").is_ok());
        assert!(check("func f(x int) { tcfree(x) }\n").is_err());
    }

    #[test]
    fn itoa_and_print() {
        assert!(check("func f(n int) { print(itoa(n), n, \"x\") }\n").is_ok());
        assert!(check("func f(s string) { s = itoa(s) }\n").is_err());
    }

    #[test]
    fn records_expr_types() {
        let (p, _, t) = check_ok("func f(n int) int { return n * 2 }\n");
        if let StmtKind::Return { exprs } = &p.funcs[0].body.stmts[0].kind {
            assert_eq!(t.expr(exprs[0].id), Some(&Type::Int));
        } else {
            panic!("expected return");
        }
    }

    #[test]
    fn records_call_result_types() {
        let (p, _, t) =
            check_ok("func g() (int, int) { return 1, 2 }\nfunc f() { a, b := g()\n a = b }\n");
        if let StmtKind::ShortDecl { init, .. } = &p.funcs[1].body.stmts[0].kind {
            assert_eq!(
                t.call_result_types(init[0].id),
                Some(&[Type::Int, Type::Int][..])
            );
        } else {
            panic!("expected short decl");
        }
    }
}
