//! Diagnostics shared by the lexer, parser, resolver, and type checker.

use std::error::Error;
use std::fmt;

use crate::span::Span;

/// The result type used throughout the front end.
pub type Result<T> = std::result::Result<T, Diagnostic>;

/// A compile-time error message anchored at a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    message: String,
    span: Span,
}

impl Diagnostic {
    /// Creates a diagnostic with `message` at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            message: message.into(),
            span,
        }
    }

    /// The error message without location information.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The span the diagnostic refers to.
    pub fn span(&self) -> Span {
        self.span
    }

    /// Renders the diagnostic with a `line:col` prefix computed from `src`.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        format!("{line}:{col}: error: {}", self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error at {}: {}", self.span, self.message)
    }
}

impl Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_line_and_column() {
        let src = "ab\ncdef";
        let d = Diagnostic::new("bad thing", Span::new(5, 6));
        assert_eq!(d.render(src), "2:3: error: bad thing");
    }

    #[test]
    fn display_includes_message() {
        let d = Diagnostic::new("oops", Span::new(1, 2));
        assert!(d.to_string().contains("oops"));
    }
}
