//! The MiniGo lexer.
//!
//! Converts source text into a [`Token`] stream. Like Go, MiniGo uses
//! semicolons as statement terminators, but the lexer performs Go-style
//! automatic semicolon insertion at newlines so that programs read naturally.

use crate::diag::{Diagnostic, Result};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Lexes `src` into a token vector ending with a single [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`Diagnostic`] on malformed input: unterminated strings or
/// comments, integer overflow, or characters outside the language.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                }
                b'\n' => {
                    self.insert_semicolon_if_needed(start);
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment(start)?;
                }
                b'0'..=b'9' => self.number(start)?,
                b'"' => self.string(start)?,
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.ident(start),
                _ => self.punct(start)?,
            }
        }
        // A final automatic semicolon keeps `parse` simple for files that do
        // not end in a newline.
        self.insert_semicolon_if_needed(self.pos);
        let end = self.src.len() as u32;
        self.tokens.push(Token {
            kind: TokenKind::Eof,
            span: Span::new(end, end),
        });
        Ok(self.tokens)
    }

    fn peek(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    /// Go-style automatic semicolon insertion: a newline terminates a
    /// statement when the previous token could end one.
    fn insert_semicolon_if_needed(&mut self, at: usize) {
        let insert = matches!(
            self.tokens.last().map(|t| &t.kind),
            Some(
                TokenKind::Int(_)
                    | TokenKind::Str(_)
                    | TokenKind::Ident(_)
                    | TokenKind::True
                    | TokenKind::False
                    | TokenKind::Nil
                    | TokenKind::Return
                    | TokenKind::Break
                    | TokenKind::Continue
                    | TokenKind::RParen
                    | TokenKind::RBrace
                    | TokenKind::RBracket,
            )
        );
        if insert {
            self.tokens.push(Token {
                kind: TokenKind::Semi,
                span: Span::new(at as u32, at as u32),
            });
        }
    }

    fn block_comment(&mut self, start: usize) -> Result<()> {
        self.pos += 2;
        while self.pos + 1 < self.bytes.len() {
            if self.bytes[self.pos] == b'*' && self.bytes[self.pos + 1] == b'/' {
                self.pos += 2;
                return Ok(());
            }
            self.pos += 1;
        }
        Err(Diagnostic::new(
            "unterminated block comment",
            Span::new(start as u32, self.src.len() as u32),
        ))
    }

    fn number(&mut self, start: usize) -> Result<()> {
        while matches!(self.peek(0), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        let span = Span::new(start as u32, self.pos as u32);
        let value: i64 = text.parse().map_err(|_| {
            Diagnostic::new(format!("integer literal `{text}` overflows i64"), span)
        })?;
        self.tokens.push(Token {
            kind: TokenKind::Int(value),
            span,
        });
        Ok(())
    }

    fn string(&mut self, start: usize) -> Result<()> {
        self.pos += 1; // opening quote
        let mut value = String::new();
        loop {
            match self.peek(0) {
                None | Some(b'\n') => {
                    return Err(Diagnostic::new(
                        "unterminated string literal",
                        Span::new(start as u32, self.pos as u32),
                    ));
                }
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek(0).ok_or_else(|| {
                        Diagnostic::new(
                            "unterminated escape sequence",
                            Span::new(start as u32, self.pos as u32),
                        )
                    })?;
                    let ch = match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        b'\\' => '\\',
                        b'"' => '"',
                        other => {
                            return Err(Diagnostic::new(
                                format!("unknown escape `\\{}`", other as char),
                                Span::new(self.pos as u32 - 1, self.pos as u32 + 1),
                            ));
                        }
                    };
                    value.push(ch);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences are copied verbatim.
                    let ch = self.src[self.pos..].chars().next().expect("in-bounds char");
                    value.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
        self.tokens.push(Token {
            kind: TokenKind::Str(value),
            span: Span::new(start as u32, self.pos as u32),
        });
        Ok(())
    }

    fn ident(&mut self, start: usize) {
        while matches!(
            self.peek(0),
            Some(b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_')
        ) {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        let kind = TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()));
        self.tokens.push(Token {
            kind,
            span: Span::new(start as u32, self.pos as u32),
        });
    }

    fn punct(&mut self, start: usize) -> Result<()> {
        use TokenKind::*;
        let two = |a: u8, b: u8, this: &Self| this.bytes[start] == a && this.peek(1) == Some(b);
        let (kind, len) = if two(b':', b'=', self) {
            (Define, 2)
        } else if two(b'=', b'=', self) {
            (Eq, 2)
        } else if two(b'!', b'=', self) {
            (Ne, 2)
        } else if two(b'<', b'=', self) {
            (Le, 2)
        } else if two(b'>', b'=', self) {
            (Ge, 2)
        } else if two(b'&', b'&', self) {
            (AndAnd, 2)
        } else if two(b'|', b'|', self) {
            (OrOr, 2)
        } else if two(b'+', b'=', self) {
            (PlusAssign, 2)
        } else if two(b'-', b'=', self) {
            (MinusAssign, 2)
        } else if two(b'*', b'=', self) {
            (StarAssign, 2)
        } else if two(b'/', b'=', self) {
            (SlashAssign, 2)
        } else {
            let kind = match self.bytes[start] {
                b'(' => LParen,
                b')' => RParen,
                b'{' => LBrace,
                b'}' => RBrace,
                b'[' => LBracket,
                b']' => RBracket,
                b',' => Comma,
                b';' => Semi,
                b':' => Colon,
                b'.' => Dot,
                b'=' => Assign,
                b'+' => Plus,
                b'-' => Minus,
                b'*' => Star,
                b'/' => Slash,
                b'%' => Percent,
                b'&' => Amp,
                b'!' => Not,
                b'<' => Lt,
                b'>' => Gt,
                other => {
                    return Err(Diagnostic::new(
                        format!("unexpected character `{}`", other as char),
                        Span::new(start as u32, start as u32 + 1),
                    ));
                }
            };
            (kind, 1)
        };
        self.pos = start + len;
        self.tokens.push(Token {
            kind,
            span: Span::new(start as u32, self.pos as u32),
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_function() {
        use TokenKind::*;
        let got = kinds("func f() { return }");
        assert_eq!(
            got,
            vec![
                Func,
                Ident("f".into()),
                LParen,
                RParen,
                LBrace,
                Return,
                // No newline before `}`, so no automatic semicolon there;
                // the parser accepts `return }` directly.
                RBrace,
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn inserts_semicolons_at_newlines() {
        use TokenKind::*;
        let got = kinds("x := 1\ny := 2\n");
        assert_eq!(
            got,
            vec![
                Ident("x".into()),
                Define,
                Int(1),
                Semi,
                Ident("y".into()),
                Define,
                Int(2),
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn no_semicolon_after_operators() {
        use TokenKind::*;
        let got = kinds("x := 1 +\n2\n");
        assert_eq!(
            got,
            vec![Ident("x".into()), Define, Int(1), Plus, Int(2), Semi, Eof]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("a == b != c <= d >= e && f || g"),
            vec![
                Ident("a".into()),
                Eq,
                Ident("b".into()),
                Ne,
                Ident("c".into()),
                Le,
                Ident("d".into()),
                Ge,
                Ident("e".into()),
                AndAnd,
                Ident("f".into()),
                OrOr,
                Ident("g".into()),
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_string_escapes() {
        let toks = lex(r#""a\nb\"c""#).unwrap();
        assert_eq!(toks[0].kind, TokenKind::Str("a\nb\"c".into()));
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"abc").is_err());
        assert!(lex("\"abc\ndef\"").is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(lex("@").is_err());
        assert!(lex("x := #").is_err());
    }

    #[test]
    fn skips_comments() {
        use TokenKind::*;
        assert_eq!(
            kinds("x // line\n/* block\nstill */ y\n"),
            vec![Ident("x".into()), Semi, Ident("y".into()), Semi, Eof]
        );
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        assert!(lex("/* never ends").is_err());
    }

    #[test]
    fn rejects_overflowing_integer() {
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn spans_cover_tokens() {
        let toks = lex("abc 12").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 3));
        assert_eq!(toks[1].span, Span::new(4, 6));
    }
}
