//! The fuzz-regression corpus: minimized MiniGo programs that once
//! exposed (or guard against) behavioural divergences between the
//! pipeline's configurations — Go vs GoFree output, poisoned-free
//! divergence, or engine-disagreeing event traces.
//!
//! Programs live as `.mgo` files under `tests/regressions/` at the repo
//! root; `tests/fuzz_regressions.rs` replays every one of them through
//! the full differential property set on each test run. When a fuzzing
//! campaign finds a new divergence, [`minimize`] shrinks the program and
//! [`save`] adds it to the corpus.

use std::path::PathBuf;

/// The corpus directory (`tests/regressions/` at the repository root).
pub fn dir() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/regressions"
    ))
}

/// Loads the whole corpus as `(name, source)` pairs, sorted by name so
/// replay order is deterministic.
pub fn load() -> Vec<(String, String)> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir()) {
        Ok(entries) => entries,
        Err(_) => return out,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("mgo") {
            continue;
        }
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("unnamed")
            .to_string();
        let src = std::fs::read_to_string(&path).expect("readable regression program");
        out.push((name, src));
    }
    out.sort();
    out
}

/// Greedy line-based minimization (a light `ddmin`): repeatedly deletes
/// single lines while `interesting` keeps returning `true` for the
/// shrunk candidate, until a fixpoint. The predicate must return `false`
/// for candidates that no longer compile or no longer diverge, so the
/// result is the smallest line-subset that still reproduces.
pub fn minimize(src: &str, interesting: impl Fn(&str) -> bool) -> String {
    assert!(interesting(src), "seed program must reproduce");
    let mut lines: Vec<&str> = src.lines().collect();
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < lines.len() {
            let mut candidate = lines.clone();
            candidate.remove(i);
            let text = candidate.join("\n") + "\n";
            if interesting(&text) {
                lines = candidate;
                shrunk = true;
                // Stay at the same index: the next line slid into place.
            } else {
                i += 1;
            }
        }
        if !shrunk {
            break;
        }
    }
    lines.join("\n") + "\n"
}

/// Writes a minimized reproduction into the corpus and returns its path.
/// The caller picks a stable name (convention: `fuzz_seed_<n>` for
/// campaign finds, a short slug for hand-reduced cases).
pub fn save(name: &str, src: &str) -> PathBuf {
    let dir = dir();
    std::fs::create_dir_all(&dir).expect("create regressions dir");
    let path = dir.join(format!("{name}.mgo"));
    std::fs::write(&path, src).expect("write regression program");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimize_drops_irrelevant_lines() {
        let src = "keep\nnoise a\nnoise b\nkeep tail\nnoise c\n";
        let min = minimize(src, |s| s.contains("keep") && s.contains("keep tail"));
        assert_eq!(min, "keep tail\n");
    }

    #[test]
    fn corpus_is_seeded() {
        let corpus = load();
        assert!(
            corpus.len() >= 5,
            "expected a seeded regression corpus, found {}",
            corpus.len()
        );
    }
}
