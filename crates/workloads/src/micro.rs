//! The fig. 10 microbenchmark: a map workload where the parameter `c`
//! scales the average size of explicitly deallocated objects while the
//! total allocation volume stays roughly constant.
//!
//! Each round builds (and abandons) a map of `64·c` entries; the number of
//! rounds is divided by `c`, so a bigger `c` means fewer, bigger bucket
//! arrays get freed — shifting the benefit from GC-frequency reduction
//! toward heap-size reduction, exactly the trade fig. 10 plots.

/// The values of `c` swept by the paper's figure.
pub const C_VALUES: &[u64] = &[1, 2, 4, 8, 16, 32];

/// Generates the microbenchmark program for one `c`.
///
/// `budget` controls total work (rounds × entries stays ≈ constant across
/// `c`). Each round also retains a fixed-size digest in a rolling window,
/// so the garbage collector has steady work in both settings and the
/// GC-frequency trend of fig. 10 is visible.
pub fn source(c: u64, budget: u64) -> String {
    let entries = 64 * c;
    let rounds = (budget / c).max(1);
    let digest = 48 * c; // retained churn per round scales with c so the
                         // total retained churn stays constant across the sweep
    format!(
        r#"
func round(n int) (int, []int) {{
    m := make(map[int]int)
    for i := 0; i < n; i += 1 {{
        m[i] = i * 3
    }}
    digest := make([]int, {digest})
    for i := 0; i < len(digest); i += 8 {{
        digest[i] = m[i%n]
    }}
    x := len(m)
    return x, digest
}}

func main() {{
    window := make([][]int, 48)
    total := 0
    for r := 0; r < {rounds}; r += 1 {{
        x, digest := round({entries})
        window[r%48] = digest
        total += x + len(window)
    }}
    print(total)
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gofree::{compile_and_run, RunConfig, Setting};

    #[test]
    fn microbenchmark_runs_for_every_c() {
        for &c in C_VALUES {
            let src = source(c, 64);
            let cfg = RunConfig::deterministic(c);
            let go = compile_and_run(&src, Setting::Go, &cfg).unwrap();
            let gofree = compile_and_run(&src, Setting::GoFree, &cfg).unwrap();
            assert_eq!(go.output, gofree.output, "c={c}");
            assert!(gofree.metrics.freed_bytes > 0, "c={c} freed nothing");
        }
    }

    #[test]
    fn bigger_c_means_bigger_freed_objects() {
        let mean_freed = |c: u64| {
            let src = source(c, 128);
            let cfg = RunConfig::deterministic(1);
            let r = compile_and_run(&src, Setting::GoFree, &cfg).unwrap();
            let objs: u64 = r.metrics.freed_objects_by_source.iter().sum();
            if objs == 0 {
                0.0
            } else {
                r.metrics.freed_bytes as f64 / objs as f64
            }
        };
        let small = mean_freed(1);
        let big = mean_freed(16);
        assert!(
            big > small * 2.0,
            "mean freed object size must grow with c: {small} vs {big}"
        );
    }

    #[test]
    fn free_ratio_roughly_constant_across_c() {
        let ratio = |c: u64| {
            let src = source(c, 128);
            let cfg = RunConfig::deterministic(2);
            compile_and_run(&src, Setting::GoFree, &cfg)
                .unwrap()
                .metrics
                .free_ratio()
        };
        let r1 = ratio(1);
        let r16 = ratio(16);
        assert!(r1 > 0.3 && r16 > 0.3, "both substantial: {r1} {r16}");
        assert!(
            (r1 - r16).abs() < 0.4,
            "comparable free ratios (fig. 10's blue bars): {r1} vs {r16}"
        );
    }
}
