//! Service workloads: MiniGo programs obeying the traffic-harness
//! contract — `func setup() *Svc` builds the retained state once, and
//! `func handle(s *Svc, req int) int` executes one request.
//!
//! Per-request allocation churn mirrors the table 8/9 batch mixes:
//!
//! * `kv` — badger-style store: per-request scratch value buffers that
//!   die at the end of the request (tcfree's bread and butter) behind a
//!   long-lived map + value log.
//! * `jsonsvc` — json-style parse per request: every request builds an
//!   object map and a raw buffer, retains them in a rolling window, and
//!   the rest is garbage (the paper's highest-benefit profile).
//! * `rotate` — the phase-change scenario: a KV request mix whose
//!   working set **rotates** every 256 requests, re-allocating the
//!   retained slab so the old generation floats. Paired with the burst
//!   arrival shape, this is where GOGC pacing (goal set in the calm
//!   phase) falls behind and compiler-inserted freeing wins on p999.
//!
//! Each program also carries a small standalone `main` so the same
//! source compiles, runs, and differentials like any batch workload.

use crate::programs::{Scale, Workload};

/// All service scenarios at the given scale. `scale` sizes the
/// standalone `main` loop only; the harness drives `handle` directly
/// and decides its own request count.
pub fn scenarios(scale: Scale) -> Vec<Workload> {
    vec![kv(scale), jsonsvc(scale), rotate(scale)]
}

/// Looks up one scenario by name.
pub fn scenario(name: &str, scale: Scale) -> Option<Workload> {
    scenarios(scale).into_iter().find(|w| w.name == name)
}

fn standalone_main(requests: u64) -> String {
    format!(
        r#"
func main() {{
    s := setup()
    checksum := 0
    for req := 0; req < {requests}; req += 1 {{
        checksum += handle(s, req)
    }}
    print(checksum)
}}
"#
    )
}

/// Badger-style KV service: long-lived maps + value log, short-lived
/// per-request encode/decode scratch.
pub fn kv(scale: Scale) -> Workload {
    let n = match scale {
        Scale::Test => 60,
        Scale::Full => 2000,
    };
    let source = format!(
        r#"
type Svc struct {{
    data map[int]int
    idx map[int]int
    vlog [][]int
}}

func setup() *Svc {{
    s := &Svc{{make(map[int]int), make(map[int]int), make([][]int, 32)}}
    for i := 0; i < 32; i += 1 {{
        s.vlog[i] = make([]int, 16)
    }}
    return s
}}

func encode(req int) []int {{
    v := make([]int, 48+req%32)
    for i := 0; i < len(v); i += 4 {{
        v[i] = req*31 + i
    }}
    return v
}}

func digest(v []int) int {{
    h := 0
    for i := 0; i < len(v); i += 4 {{
        h += v[i]
    }}
    return h % 65536
}}

func handle(s *Svc, req int) int {{
    body := encode(req)
    h := digest(body)
    k := req % 512
    if req%2 == 0 {{
        s.data[k] = h
    }} else {{
        s.idx[k] = h
    }}
    stored := make([]int, 16)
    for i := 0; i < 16; i += 1 {{
        stored[i] = body[i*2]
    }}
    s.vlog[req%32] = stored
    return h + s.data[k%256] + s.idx[k%256]
}}
{main}"#,
        main = standalone_main(n)
    );
    Workload { name: "kv", source }
}

/// Json-style parse service: per-request object map + raw buffer kept
/// in a rolling window; everything older is garbage.
pub fn jsonsvc(scale: Scale) -> Workload {
    let n = match scale {
        Scale::Test => 40,
        Scale::Full => 1200,
    };
    let source = format!(
        r#"
type Svc struct {{
    window []map[int]int
    texts [][]int
    served int
}}

func setup() *Svc {{
    return &Svc{{make([]map[int]int, 16), make([][]int, 16), 0}}
}}

func parse(req int) (map[int]int, []int) {{
    fields := 40 + req%24
    obj := make(map[int]int)
    for f := 0; f < fields; f += 1 {{
        obj[f] = req*31 + f
    }}
    raw := make([]int, fields*4)
    for i := 0; i < len(raw); i += 4 {{
        raw[i] = req + i
    }}
    return obj, raw
}}

func handle(s *Svc, req int) int {{
    obj, raw := parse(req)
    s.window[req%16] = obj
    s.texts[req%16] = raw
    s.served += 1
    return obj[3] + raw[4] + len(obj)
}}
{main}"#,
        main = standalone_main(n)
    );
    Workload {
        name: "jsonsvc",
        source,
    }
}

/// Phase-change service: KV request mix whose retained slab rotates
/// every 256 requests, floating the old working set until a full GC.
pub fn rotate(scale: Scale) -> Workload {
    let n = match scale {
        Scale::Test => 70,
        Scale::Full => 1600,
    };
    let source = format!(
        r#"
type Svc struct {{
    slab [][]int
    hot map[int]int
    epoch int
}}

func freshSlab(epoch int) [][]int {{
    slab := make([][]int, 24)
    for i := 0; i < 24; i += 1 {{
        row := make([]int, 96)
        for j := 0; j < 96; j += 8 {{
            row[j] = epoch*17 + i + j
        }}
        slab[i] = row
    }}
    return slab
}}

func setup() *Svc {{
    return &Svc{{freshSlab(0), make(map[int]int), 0}}
}}

func scratch(req int) []int {{
    v := make([]int, 40+req%24)
    for i := 0; i < len(v); i += 4 {{
        v[i] = req * 13
    }}
    return v
}}

func handle(s *Svc, req int) int {{
    if req%256 == 0 {{
        s.epoch += 1
        s.slab = freshSlab(s.epoch)
        s.hot = make(map[int]int)
    }}
    v := scratch(req)
    h := 0
    for i := 0; i < len(v); i += 4 {{
        h += v[i]
    }}
    s.hot[req%384] = h
    row := s.slab[req%24]
    return h%4096 + row[req%96] + s.hot[req%128]
}}
{main}"#,
        main = standalone_main(n)
    );
    Workload {
        name: "rotate",
        source,
    }
}
