//! The six subject-program analogues (table 6 of the paper).
//!
//! The real subjects are large Go applications; what matters for the
//! evaluation is each one's *allocation shape* — the mix of short-lived
//! slice/map temporaries (GoFree's targets), long-lived churn (GC's job),
//! and map growth that tables 7–9 report. Each analogue follows the same
//! skeleton: a hot loop produces retained allocations into a fixed-size
//! ring (steady-state live set + garbage churn for the GC) alongside
//! scope-local temporaries (explicitly freeable by GoFree), tuned per
//! workload to land near the paper's free-ratio and contribution rows:
//!
//! | analogue | models | target free ratio | reclamation split |
//! |---|---|---|---|
//! | `gocompile` | the Go compiler | ~12% | slices dominate |
//! | `hugo` | hugo site generator | ~6% | slices + some maps |
//! | `badger` | badger KV store | ~4% | growth only |
//! | `json` | Go/json | ~23% | growth only |
//! | `scheck` | staticcheck | ~15% | maps ≈ growth |
//! | `slayout` | structlayout | ~25% | growth dominates |

/// A named workload with generated MiniGo source.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name (matches the paper's table rows).
    pub name: &'static str,
    /// The MiniGo program.
    pub source: String,
}

/// Workload sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny: fast enough for unit tests.
    Test,
    /// The evaluation size used by the bench harness.
    Full,
}

impl Scale {
    fn n(self, test: u64, full: u64) -> u64 {
        match self {
            Scale::Test => test,
            Scale::Full => full,
        }
    }
}

/// All six workloads at the given scale.
///
/// ```
/// use gofree_workloads::{all, Scale};
///
/// let names: Vec<&str> = all(Scale::Test).iter().map(|w| w.name).collect();
/// assert_eq!(names, ["gocompile", "hugo", "badger", "json", "scheck", "slayout"]);
/// ```
pub fn all(scale: Scale) -> Vec<Workload> {
    vec![
        gocompile(scale),
        hugo(scale),
        badger(scale),
        json(scale),
        scheck(scale),
        slayout(scale),
    ]
}

/// The paper also briefly tested programs with free ratio < 5% —
/// protobuf-go, fastjson, fzf, gods, and the Sweet suite — and assumed
/// "GoFree will not have a significant effect" (§6.4). This analogue has
/// almost no short-lived slice/map temporaries: nearly everything it
/// allocates is retained.
pub fn lowfree(scale: Scale) -> Workload {
    let nops = scale.n(40, 900);
    let source = format!(
        r#"
type Entry struct {{
    id int
    payload []int
}}

func build(id int) Entry {{
    p := make([]int, 128+id%128)
    for i := 0; i < len(p); i += 16 {{
        p[i] = id * i % 257
    }}
    q := p[0]
    if id%8 == 0 {{
        tmp := make([]int, id%4+2)
        tmp[0] = p[0] % 11
        q = p[0] + tmp[0]
    }}
    p[0] = q
    return Entry{{id, p}}
}}

func main() {{
    store := make([]Entry, 0, {nops})
    total := 0
    for op := 0; op < {nops}; op += 1 {{
        e := build(op)
        store = append(store, e)
        total += e.payload[0] + e.id
    }}
    print(total, len(store))
}}
"#
    );
    Workload {
        name: "lowfree",
        source,
    }
}

/// The workload with the given name, if any.
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    all(scale).into_iter().find(|w| w.name == name)
}

/// The Go-compiler analogue: lexing builds big retained token arrays (the
/// live IR), parsing churns through short-lived basic-block slices (the
/// paper notes the compiler "uses a lot of slices to hold basic blocks
/// temporarily"), and each function keeps a small symbol map.
pub fn gocompile(scale: Scale) -> Workload {
    let nfuncs = scale.n(30, 900);
    let source = format!(
        r#"
type Node struct {{
    op int
    lhs int
    rhs int
}}

func lex(size int) []int {{
    toks := make([]int, size*64)
    for i := 0; i < len(toks); i += 8 {{
        toks[i] = i * 31 % 97
    }}
    return toks
}}

func parse(toks []int) int {{
    sum := 0
    nblocks := len(toks)/96 + 1
    for b := 0; b < nblocks; b += 1 {{
        blk := make([]int, 8+b%5)
        for i := 0; i < len(blk); i += 1 {{
            blk[i] = toks[(b*96+i)%len(toks)]
        }}
        nd := &Node{{blk[0], b, b + 1}}
        for i := 0; i < len(blk); i += 2 {{
            sum += blk[i] + nd.op%2
        }}
    }}
    x := sum
    return x
}}

func compileFunc(size int) (int, []int, map[int]int) {{
    toks := lex(size)
    deps := make(map[int]int)
    for i := 0; i < size+4; i += 1 {{
        deps[i*7] = i
    }}
    r := parse(toks) + len(deps)
    return r, toks, deps
}}

func main() {{
    cache := make([][]int, 12)
    depcache := make([]map[int]int, 12)
    total := 0
    for f := 0; f < {nfuncs}; f += 1 {{
        r, ir, deps := compileFunc(8 + f%12)
        cache[f%12] = ir
        depcache[f%12] = deps
        total += r + len(cache) + len(depcache)
        if f%4 == 0 {{
            syms := make(map[string]int)
            for i := 0; i < 14; i += 1 {{
                syms[itoa(i)] = f + i
            }}
            total += len(syms)
        }}
    }}
    print(total)
}}
"#
    );
    Workload {
        name: "gocompile",
        source,
    }
}

/// The hugo analogue: rendered page bodies are retained (the site), while
/// tables of contents (slices) and word-count maps are per-page
/// temporaries. The retained share is large, so the free ratio is small.
pub fn hugo(scale: Scale) -> Workload {
    let npages = scale.n(20, 620);
    let source = format!(
        r#"
func render(words int) (int, []int) {{
    body := make([]int, words*70)
    for i := 0; i < len(body); i += 35 {{
        body[i] = i * 7 % 251
    }}
    toc := make([]int, words*2)
    for i := 0; i < len(toc); i += 1 {{
        toc[i] = body[(i*20)%len(body)]
    }}
    counts := make(map[int]int)
    for i := 0; i < words/3; i += 1 {{
        counts[i%20] += 1
    }}
    h := toc[0] + len(counts)
    return h, body
}}

func main() {{
    site := make([][]int, 16)
    total := 0
    for p := 0; p < {npages}; p += 1 {{
        h, body := render(24 + p%20)
        site[p%16] = body
        total += h + len(site)
    }}
    print(total)
}}
"#
    );
    Workload {
        name: "hugo",
        source,
    }
}

/// The badger analogue: a long-lived store (map + value log) behind a
/// pointer. Values are retained; only the store's bucket growth reclaims
/// anything, and the free ratio is the lowest of the six.
pub fn badger(scale: Scale) -> Workload {
    let nops = scale.n(80, 4000);
    let source = format!(
        r#"
type DB struct {{
    data map[int]int
    idx map[int]int
    vlog [][]int
}}

func open() *DB {{
    d := &DB{{make(map[int]int), make(map[int]int), make([][]int, 24)}}
    return d
}}

func value(op int) []int {{
    v := make([]int, 32+op%32)
    for i := 0; i < len(v); i += 8 {{
        v[i] = op * i % 1009
    }}
    return v
}}

func put(db *DB, k int, op int) {{
    if k%2 == 0 {{
        db.data[k] = op
    }} else {{
        db.idx[k] = op
    }}
    db.vlog[op%24] = value(op)
}}

func get(db *DB, k int) int {{
    if k%2 == 0 {{
        return db.data[k]
    }}
    return db.idx[k]
}}

func main() {{
    db := open()
    checksum := 0
    for op := 0; op < {nops}; op += 1 {{
        put(db, op, op)
        checksum += get(db, op*7%(op+1))
    }}
    print(checksum, len(db.data)+len(db.idx))
}}
"#
    );
    Workload {
        name: "badger",
        source,
    }
}

/// The Go/json analogue: every parsed document becomes an object map that
/// is retained in a rolling result window; reclamation is pure bucket
/// growth, and there is a great deal of it (the paper's highest-benefit
/// subject).
pub fn json(scale: Scale) -> Workload {
    let ndocs = scale.n(24, 800);
    let source = format!(
        r#"
func parseDoc(id int, fields int) (map[int]int, []int) {{
    obj := make(map[int]int)
    for f := 0; f < fields; f += 1 {{
        obj[f] = id*31 + f
    }}
    raw := make([]int, fields*6)
    for i := 0; i < len(raw); i += 6 {{
        raw[i] = id + i
    }}
    return obj, raw
}}

func main() {{
    window := make([]map[int]int, 20)
    texts := make([][]int, 20)
    total := 0
    for d := 0; d < {ndocs}; d += 1 {{
        obj, raw := parseDoc(d, 72 + d%56)
        window[d%20] = obj
        texts[d%20] = raw
        total += obj[3]
    }}
    print(total, len(window), len(texts))
}}
"#
    );
    Workload {
        name: "json",
        source,
    }
}

/// The staticcheck analogue: per-function fact maps die at scope end
/// (FreeMap) after growing (GrowMapAndFreeOld), diagnostics are retained,
/// and a sliver of slice temporaries rounds out table 9's 2/50/48 split.
pub fn scheck(scale: Scale) -> Workload {
    let nfuncs = scale.n(20, 560);
    let source = format!(
        r#"
func checkFunc(id int, size int) (int, []int) {{
    facts := make(map[int]int)
    for i := 0; i < size*2/3; i += 1 {{
        facts[i] = id + i*3
    }}
    viol := 0
    for i := 0; i < size*2/3; i += 2 {{
        if facts[i]%7 == 0 {{
            viol += 1
        }}
    }}
    diags := make([]int, size*12)
    for i := 0; i < len(diags); i += 10 {{
        diags[i] = facts[i%(size*2/3)]
    }}
    if id%16 == 0 {{
        scratch := make([]int, size)
        scratch[0] = viol
        viol += scratch[0] % 2
    }}
    x := viol
    return x, diags
}}

func main() {{
    reports := make([][]int, 10)
    total := 0
    for f := 0; f < {nfuncs}; f += 1 {{
        v, diags := checkFunc(f, 40 + f%36)
        reports[f%10] = diags
        total += v
    }}
    print(total, len(reports))
}}
"#
    );
    Workload {
        name: "scheck",
        source,
    }
}

/// The structlayout analogue: many offset maps escape into a rolling
/// report window; bucket growth is essentially the only reclaimer
/// (table 9's 1/0/99) and the savings show up mostly as heap-size
/// reduction.
pub fn slayout(scale: Scale) -> Workload {
    let nstructs = scale.n(24, 760);
    let source = format!(
        r#"
func layout(id int, nfields int) map[int]int {{
    offsets := make(map[int]int)
    off := 0
    for i := 0; i < nfields; i += 1 {{
        offsets[i] = off
        off += 8 + id%3*4
    }}
    return offsets
}}

func main() {{
    report := make([]map[int]int, 14)
    doc := make([][]int, 14)
    total := 0
    for s := 0; s < {nstructs}; s += 1 {{
        o := layout(s, 30 + s%26)
        report[s%14] = o
        total += o[1]
        notes := make([]int, 90+s%40)
        notes[0] = total
        doc[s%14] = notes
        total += notes[0] % 2
    }}
    print(total, len(report)+len(doc))
}}
"#
    );
    Workload {
        name: "slayout",
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gofree::{compile_and_run, RunConfig, Setting};

    #[test]
    fn all_workloads_compile_and_run_identically_across_settings() {
        for w in all(Scale::Test) {
            let cfg = RunConfig::deterministic(5);
            let go = compile_and_run(&w.source, Setting::Go, &cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let gofree = compile_and_run(&w.source, Setting::GoFree, &cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let gcoff = compile_and_run(&w.source, Setting::GoGcOff, &cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert_eq!(go.output, gofree.output, "{} output differs", w.name);
            assert_eq!(go.output, gcoff.output, "{} output differs", w.name);
            assert!(!go.output.is_empty());
        }
    }

    #[test]
    fn gofree_reclaims_on_every_workload() {
        for w in all(Scale::Test) {
            let cfg = RunConfig::deterministic(6);
            let r = compile_and_run(&w.source, Setting::GoFree, &cfg).unwrap();
            assert!(
                r.metrics.freed_bytes > 0,
                "{} freed nothing: {:?}",
                w.name,
                r.metrics
            );
        }
    }

    #[test]
    fn free_ratios_are_partial_not_total() {
        // The point of the retained-churn structure: GoFree frees a
        // fraction, never everything.
        for w in all(Scale::Test) {
            let cfg = RunConfig::deterministic(8);
            let r = compile_and_run(&w.source, Setting::GoFree, &cfg).unwrap();
            let fr = r.metrics.free_ratio();
            assert!(
                fr > 0.005 && fr < 0.7,
                "{}: free ratio {fr} out of band",
                w.name
            );
        }
    }

    #[test]
    fn lowfree_has_negligible_free_ratio() {
        let w = lowfree(Scale::Test);
        let cfg = RunConfig::deterministic(9);
        let go = compile_and_run(&w.source, Setting::Go, &cfg).unwrap();
        let gf = compile_and_run(&w.source, Setting::GoFree, &cfg).unwrap();
        assert_eq!(go.output, gf.output);
        assert!(
            gf.metrics.free_ratio() < 0.05,
            "lowfree must stay under the paper's 5% threshold: {}",
            gf.metrics.free_ratio()
        );
    }

    #[test]
    fn by_name_finds_workloads() {
        assert!(by_name("json", Scale::Test).is_some());
        assert!(by_name("nope", Scale::Test).is_none());
        assert_eq!(all(Scale::Test).len(), 6);
    }

    #[test]
    fn contribution_shapes_match_table9() {
        // badger/json/slayout: growth-dominated; scheck: map-lifetime
        // heavy; gocompile/hugo: slices contribute most.
        let cfg = RunConfig::deterministic(7);
        let share = |name: &str| {
            let w = by_name(name, Scale::Test).unwrap();
            let r = compile_and_run(&w.source, Setting::GoFree, &cfg).unwrap();
            r.metrics.source_shares()
        };
        let [slice, _map, grow] = share("json");
        assert!(grow > 0.9, "json grow share {grow}");
        assert!(slice < 0.05, "json slice share {slice}");
        let [slice, _map, grow] = share("badger");
        assert!(grow > 0.9, "badger grow share {grow}");
        assert!(slice < 0.05);
        let [_, map, grow] = share("scheck");
        assert!(map > 0.25, "scheck map share {map}");
        assert!(grow > 0.2, "scheck grow share {grow}");
        let [slice, _, _] = share("gocompile");
        assert!(slice > 0.4, "gocompile slice share {slice}");
        let [slice, _, _] = share("hugo");
        assert!(slice > 0.3, "hugo slice share {slice}");
    }
}
