//! A deterministic random-program generator for differential testing.
//!
//! Every generated program is type-correct, terminates (loops have small
//! constant bounds), and prints a checksum — so any divergence between the
//! Go pipeline, the GoFree pipeline, and the poisoned-tcfree run (§6.8)
//! exposes a miscompilation or an unsound free. The generator leans into
//! what stresses the escape analysis: slices flowing through calls and
//! reslices, maps growing and dying at different scopes, pointers with
//! indirect stores, struct values carrying slices, and factory helpers.

/// A tiny deterministic RNG (splitmix64) so generated programs depend only
/// on the seed.
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Creates a generator for `seed`.
    pub fn new(seed: u64) -> Self {
        Gen {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo).max(1)
    }
}

/// Generates a self-checking program from `seed`.
///
/// ```
/// let program = gofree_workloads::fuzzgen::generate(7);
/// assert!(program.contains("func main()"));
/// assert!(gofree::compile(&program, &gofree::CompileOptions::default()).is_ok());
/// ```
pub fn generate(seed: u64) -> String {
    let mut g = Gen::new(seed);
    let mut out = String::new();
    let nhelpers = g.range(1, 4) as usize;

    // Helper functions: factories and consumers over slices.
    for h in 0..nhelpers {
        match g.range(0, 3) {
            0 => {
                // Slice factory.
                let fill = g.range(2, 6);
                out.push_str(&format!(
                    "func h{h}(n int) []int {{\n    s := make([]int, n+{})\n    for i := 0; i < len(s); i += 1 {{\n        s[i] = i * {fill}\n    }}\n    return s\n}}\n\n",
                    g.range(1, 8),
                ));
            }
            1 => {
                // Map factory.
                out.push_str(&format!(
                    "func h{h}(n int) map[int]int {{\n    m := make(map[int]int)\n    for i := 0; i < n%17+3; i += 1 {{\n        m[i*{}] = i + n\n    }}\n    return m\n}}\n\n",
                    g.range(1, 5),
                ));
            }
            _ => {
                // Consumer that sums a window of its input.
                out.push_str(&format!(
                    "func h{h}(s []int) int {{\n    t := 0\n    w := s[{}:len(s)]\n    for i := 0; i < len(w); i += 1 {{\n        t += w[i]\n    }}\n    return t\n}}\n\n",
                    g.range(0, 2),
                ));
            }
        }
    }

    out.push_str("func main() {\n    sum := 0\n");
    let nstmts = g.range(4, 12);
    let mut slices: Vec<String> = Vec::new();
    let mut maps: Vec<String> = Vec::new();
    let mut v = 0usize;
    for _ in 0..nstmts {
        v += 1;
        match g.range(0, 8) {
            0 => {
                // Local slice with writes.
                let n = g.range(3, 60);
                out.push_str(&format!(
                    "    s{v} := make([]int, {n})\n    for i := 0; i < len(s{v}); i += 1 {{\n        s{v}[i] = i * {}\n    }}\n    sum += s{v}[{}]\n",
                    g.range(1, 9),
                    g.range(0, 3),
                ));
                slices.push(format!("s{v}"));
            }
            1 => {
                // Local map with growth.
                let n = g.range(4, 40);
                out.push_str(&format!(
                    "    m{v} := make(map[int]int)\n    for i := 0; i < {n}; i += 1 {{\n        m{v}[i%{}] += i\n    }}\n    sum += m{v}[0] + len(m{v})\n",
                    g.range(3, 25),
                ));
                maps.push(format!("m{v}"));
            }
            2 => {
                // Call a helper if one matches; h0 always exists.
                let h = g.range(0, nhelpers as u64);
                // Figure out its shape from how we generated it: probe by
                // regenerating the choice sequence is fragile, so call h0
                // defensively only when the source contains its signature.
                let sig_slice = format!("func h{h}(n int) []int");
                let sig_map = format!("func h{h}(n int) map[int]int");
                let sig_sum = format!("func h{h}(s []int) int");
                if out.contains(&sig_slice) {
                    out.push_str(&format!(
                        "    f{v} := h{h}({})\n    sum += f{v}[0] + len(f{v})\n",
                        g.range(2, 30)
                    ));
                    slices.push(format!("f{v}"));
                } else if out.contains(&sig_map) {
                    out.push_str(&format!(
                        "    g{v} := h{h}({})\n    sum += g{v}[1] + len(g{v})\n",
                        g.range(2, 30)
                    ));
                    maps.push(format!("g{v}"));
                } else if out.contains(&sig_sum) {
                    if let Some(s) = slices.last() {
                        out.push_str(&format!("    sum += h{h}({s})\n"));
                    }
                }
            }
            3 => {
                // Reslice an existing slice.
                if let Some(s) = slices.last().cloned() {
                    out.push_str(&format!(
                        "    w{v} := {s}[0 : len({s})/2+1]\n    sum += w{v}[0] + len(w{v})\n"
                    ));
                    slices.push(format!("w{v}"));
                }
            }
            4 => {
                // Pointer shuffle with an indirect store.
                out.push_str(&format!(
                    "    a{v} := {}\n    b{v} := a{v} * 2\n    p{v} := &a{v}\n    q{v} := &b{v}\n    pp{v} := &p{v}\n    *pp{v} = q{v}\n    r{v} := *pp{v}\n    *r{v} = a{v} + 7\n    sum += a{v} + b{v}\n",
                    g.range(1, 50),
                ));
            }
            5 => {
                // Append chain (sometimes from nil).
                let from_nil = g.next().is_multiple_of(2);
                if from_nil {
                    out.push_str(&format!("    var t{v} []int\n"));
                } else {
                    out.push_str(&format!("    t{v} := make([]int, 1, {})\n", g.range(2, 10)));
                }
                out.push_str(&format!(
                    "    for i := 0; i < {}; i += 1 {{\n        t{v} = append(t{v}, i*i)\n    }}\n    sum += t{v}[len(t{v})-1] + cap(t{v})%7\n",
                    g.range(2, 25),
                ));
                slices.push(format!("t{v}"));
            }
            6 => {
                // Inner scope with its own dying slice or map.
                let n = g.range(4, 40);
                out.push_str(&format!(
                    "    {{\n        inner{v} := make([]int, {n})\n        inner{v}[0] = sum % 97\n        sum += inner{v}[0]\n    }}\n"
                ));
            }
            _ => {
                // Switch on accumulated state.
                out.push_str(&format!(
                    "    switch sum % {} {{\ncase 0:\n    sum += 11\ncase 1, 2:\n    sum += 13\ndefault:\n    sum += 17\n}}\n",
                    g.range(3, 6),
                ));
            }
        }
        // Occasionally delete from a live map.
        if g.next().is_multiple_of(5) {
            if let Some(m) = maps.last() {
                out.push_str(&format!("    delete({m}, {})\n", g.range(0, 10)));
            }
        }
    }
    out.push_str("    print(sum)\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gofree::{compile, execute, CompileOptions, PoisonMode, RunConfig, Setting};

    #[test]
    fn generated_programs_compile_and_run() {
        for seed in 0..20 {
            let src = generate(seed);
            let compiled = compile(&src, &CompileOptions::default())
                .unwrap_or_else(|e| panic!("seed {seed}: {}\n{src}", e.render(&src)));
            let r = execute(&compiled, Setting::GoFree, &RunConfig::deterministic(seed))
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            assert!(!r.output.is_empty());
        }
    }

    #[test]
    fn differential_go_vs_gofree_vs_poison() {
        for seed in 0..40 {
            let src = generate(seed);
            let cfg = RunConfig::deterministic(seed);
            let go = compile(&src, &CompileOptions::go()).expect("go compiles");
            let gofree = compile(&src, &CompileOptions::default()).expect("gofree compiles");
            let go_out = execute(&go, Setting::Go, &cfg)
                .unwrap_or_else(|e| panic!("seed {seed} go: {e}\n{src}"))
                .output;
            let gf_out = execute(&gofree, Setting::GoFree, &cfg)
                .unwrap_or_else(|e| panic!("seed {seed} gofree: {e}\n{src}"))
                .output;
            assert_eq!(go_out, gf_out, "seed {seed} diverged:\n{src}");
            let poisoned = execute(
                &gofree,
                Setting::GoFree,
                &RunConfig {
                    poison: PoisonMode::Flip,
                    ..cfg.clone()
                },
            )
            .unwrap_or_else(|e| panic!("seed {seed} poisoned: {e}\n{src}"));
            assert_eq!(go_out, poisoned.output, "seed {seed} unsound free:\n{src}");
        }
    }

    #[test]
    fn generation_is_deterministic_and_varied() {
        assert_eq!(generate(7), generate(7));
        let distinct: std::collections::HashSet<String> = (0..10).map(generate).collect();
        assert!(distinct.len() >= 8, "seeds should vary the programs");
    }
}
