//! Synthetic compilation corpus for the §6.7 compilation-speed experiment
//! and the complexity benchmarks.
//!
//! Generates programs of configurable size whose functions exercise every
//! analysis feature: pointers, indirect stores, slices, maps, struct
//! values, multiple return values, call chains, and recursion. The
//! generator is deterministic, so timing comparisons across analysis
//! configurations see identical inputs.

use std::fmt::Write as _;

/// Generates a program with `nfuncs` functions (plus `main`).
///
/// Functions form call chains of length ~8 with a few recursive knots, so
/// the inter-procedural ordering and default-tag paths are exercised.
pub fn generate(nfuncs: usize) -> String {
    let mut out = String::new();
    out.push_str(
        "type Pair struct {\n    a int\n    b int\n}\n\ntype Holder struct {\n    items []int\n    tags map[int]int\n}\n\n",
    );
    for i in 0..nfuncs {
        let variant = i % 5;
        match variant {
            0 => {
                // Slice-temp worker.
                let _ = write!(
                    out,
                    "func w{i}(n int) int {{\n    s := make([]int, n+1)\n    for j := 0; j < len(s); j += 1 {{\n        s[j] = j * {k}\n    }}\n    x := s[0] + s[len(s)-1]\n    return x\n}}\n\n",
                    k = i % 7 + 1
                );
            }
            1 => {
                // Pointer shuffling with indirect stores.
                let _ = write!(
                    out,
                    "func w{i}(n int) int {{\n    a := n\n    b := n * 2\n    pa := &a\n    pb := &b\n    ppa := &pa\n    *ppa = pb\n    q := *ppa\n    *q = n + 3\n    return a + b\n}}\n\n"
                );
            }
            2 => {
                // Map builder returned to the caller (content tags).
                let _ = write!(
                    out,
                    "func w{i}(n int) map[int]int {{\n    m := make(map[int]int)\n    for j := 0; j < n%13+2; j += 1 {{\n        m[j] = j * j\n    }}\n    return m\n}}\n\n"
                );
            }
            3 => {
                // Multi-value factory: fresh + passthrough (§4.6.3).
                let _ = write!(
                    out,
                    "func w{i}(s []int) ([]int, []int) {{\n    fresh := make([]int, 3)\n    fresh[0] = len(s)\n    return fresh, s\n}}\n\n"
                );
            }
            _ => {
                // Call-chain node, sometimes recursive.
                let callee = if i >= 5 { i - 5 } else { i };
                let call = match callee % 5 {
                    0 | 1 => format!("w{callee}(n)"),
                    2 => format!("len(w{callee}(n))"),
                    // Variant 3 returns two values and needs destructuring;
                    // keep this arm simple.
                    _ => "n".to_string(),
                };
                if i % 10 == 9 {
                    let _ = write!(
                        out,
                        "func w{i}(n int) int {{\n    if n < 2 {{\n        return n\n    }}\n    return w{i}(n-1) + {call}\n}}\n\n"
                    );
                } else {
                    let _ = write!(
                        out,
                        "func w{i}(n int) int {{\n    h := Holder{{make([]int, n%7+1), make(map[int]int)}}\n    h.items[0] = {call}\n    p := Pair{{n, n + 1}}\n    return h.items[0] + p.a\n}}\n\n"
                    );
                }
            }
        }
    }
    // main ties a few chains together so the program also runs.
    out.push_str("func main() {\n    total := 0\n");
    for i in (0..nfuncs).step_by(5.max(nfuncs / 8)) {
        match i % 5 {
            2 => {
                let _ = writeln!(out, "    total += len(w{i}(9))");
            }
            3 => {
                let _ = writeln!(out, "    f{i}, p{i} := w{i}(make([]int, 4))");
                let _ = writeln!(out, "    total += len(f{i}) + len(p{i})");
            }
            _ => {
                let _ = writeln!(out, "    total += w{i}(9)");
            }
        }
    }
    out.push_str("    print(total)\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gofree::{compile, compile_and_run, CompileOptions, RunConfig, Setting};

    #[test]
    fn generated_corpus_compiles_at_several_sizes() {
        for n in [5, 25, 80] {
            let src = generate(n);
            let c = compile(&src, &CompileOptions::default())
                .unwrap_or_else(|e| panic!("n={n}: {}", e.render(&src)));
            assert!(c.analysis.stats.locations > n);
        }
    }

    #[test]
    fn generated_corpus_runs() {
        let src = generate(30);
        let cfg = RunConfig::deterministic(1);
        let go = compile_and_run(&src, Setting::Go, &cfg).unwrap();
        let gofree = compile_and_run(&src, Setting::GoFree, &cfg).unwrap();
        assert_eq!(go.output, gofree.output);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(40), generate(40));
        assert_ne!(generate(40), generate(41));
    }
}
