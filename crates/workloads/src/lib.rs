//! # gofree-workloads
//!
//! MiniGo workload generators for the GoFree reproduction's evaluation:
//!
//! * [`programs`] — analogues of the paper's six subject programs
//!   (table 6), tuned to each one's allocation shape.
//! * [`micro`] — the fig. 10 map microbenchmark with the object-size
//!   parameter `c`.
//! * [`corpus`] — a deterministic program generator for the §6.7
//!   compilation-speed experiment and the complexity benchmarks.
//! * [`regressions`] — the minimized fuzz-regression corpus under
//!   `tests/regressions/`, plus the `ddmin`-style shrinker that feeds it.

#![warn(missing_docs)]

pub mod corpus;
pub mod fuzzgen;
pub mod micro;
pub mod programs;
pub mod regressions;
pub mod service;

pub use programs::{all, by_name, Scale, Workload};
