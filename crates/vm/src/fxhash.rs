//! A fast, deterministic hasher for the VM's internal tables.
//!
//! `SipHash` (std's default) dominates profiles of map-heavy workloads;
//! the VM's tables never face adversarial keys, so the firefox-style
//! multiply-rotate hash is a safe 5-10x cheaper drop-in. Determinism
//! matters more than speed here: the hasher is unseeded, so table
//! behaviour is identical across runs and processes.
//!
//! Observable-safety note: nothing the VM exposes depends on hash
//! *iteration* order — `MapData` keeps entry order in its `entries`
//! vec, and every cost the runtime sums over a hash table commutes
//! (DESIGN.md §11) — so swapping the hash function cannot change any
//! metric, trace, or output. The differential and golden suites pin
//! this.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Multiply-rotate hasher (the rustc/firefox "fx" function):
/// `h = (rotl(h, 5) ^ word) * K` per 8-byte word.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let hash = |s: &str| {
            let mut h = FxHasher::default();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_eq!(hash("alloc-site"), hash("alloc-site"));
        assert_ne!(hash("a"), hash("b"));
    }

    #[test]
    fn maps_behave_like_std() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        for i in 0..100 {
            m.insert(format!("k{i}"), i);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get("k42"), Some(&42));
        assert_eq!(m.remove("k42"), Some(42));
        assert_eq!(m.get("k42"), None);
    }
}
