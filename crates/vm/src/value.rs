//! Runtime values.
//!
//! MiniGo values follow Go's semantics: structs are values (copied on
//! assignment), slices are headers sharing a backing array, maps are
//! references to runtime-managed storage, and pointers address either a
//! heap cell or a stack slot (uniformly represented as shared cells; the
//! escape analysis decides which get heap *accounting*).
//!
//! # The three-tier layout
//!
//! [`Value`] is the unit of operand-stack and frame-slot traffic, so its
//! size is the VM's memory bandwidth. The enum is kept at **24 bytes**
//! (asserted by a test below) by tiering the payloads:
//!
//! 1. **Inline scalars** — `Int`, `Bool`, `Nil`, `Poison` fit in the
//!    discriminant + 8 payload bytes.
//! 2. **Shared string** — `Str(Rc<str>)` is a 16-byte fat pointer; the
//!    payload is immutable, so a clone is a refcount bump. This tier
//!    sets the enum's size floor.
//! 3. **Boxed aggregates** — `Struct`, `Ptr`, `Slice`, and `Map` hold an
//!    8-byte `Rc` to their (formerly inline, up to 48-byte) payloads.
//!    Cloning any of them is a refcount bump instead of a header
//!    memcpy. Value semantics for structs and slice headers are
//!    preserved with copy-on-write: every mutation site goes through
//!    [`Rc::make_mut`], which clones the payload only when it is
//!    actually shared — exactly the copy Go semantics would have made
//!    eagerly. Maps and pointer cells are reference types, so sharing
//!    the payload *is* their semantics and they are never `make_mut`.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Identifies a heap-accounted object in the VM's object table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u64);

/// A shared, mutable storage cell (a variable's box or an object's
/// payload slot).
pub type Cell = Rc<RefCell<Value>>;

/// A MiniGo runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// String (immutable).
    Str(Rc<str>),
    /// Typed nil (pointer, slice, or map).
    Nil,
    /// A struct value: fields in declaration order. Copy-on-write:
    /// mutations go through [`Rc::make_mut`] (see the module docs).
    Struct(Rc<Vec<Value>>),
    /// A pointer to a cell.
    Ptr(Rc<PtrVal>),
    /// A slice header. Copy-on-write like `Struct`.
    Slice(Rc<SliceVal>),
    /// A map reference.
    Map(Rc<MapVal>),
    /// Poisoned memory written by the §6.8 mock `tcfree`; reading it is a
    /// runtime error, which is how unsound frees are detected.
    Poison,
}

/// A pointer value: the cell it addresses plus the heap-accounting id of
/// the box, when the pointee is heap-allocated.
#[derive(Debug, Clone)]
pub struct PtrVal {
    /// The addressed storage.
    pub cell: Cell,
    /// Heap object backing the cell, if any.
    pub obj: Option<ObjId>,
}

/// A slice header: shared backing array, offset, length, and element size
/// (bytes) for allocator accounting. Reslicing (`s[a:b]`) produces a new
/// header over the same cells, exactly like Go.
#[derive(Debug, Clone)]
pub struct SliceVal {
    /// The backing array.
    pub cells: Rc<RefCell<Vec<Value>>>,
    /// Heap object backing the array, if heap-allocated.
    pub obj: Option<ObjId>,
    /// Start offset into the backing array.
    pub offset: usize,
    /// Visible length.
    pub len: usize,
    /// Element size in bytes.
    pub elem_size: u64,
}

impl SliceVal {
    /// Capacity: from the offset to the end of the backing array.
    pub fn cap(&self) -> usize {
        self.cells.borrow().len().saturating_sub(self.offset)
    }
}

/// A map reference.
#[derive(Debug, Clone)]
pub struct MapVal {
    /// The shared map storage.
    pub data: Rc<RefCell<MapData>>,
    /// Heap object for the hmap + initial bucket, if heap-allocated.
    pub obj: Option<ObjId>,
}

/// Map keys: Go restricts ours to scalars.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Key {
    /// Integer key.
    Int(i64),
    /// Boolean key.
    Bool(bool),
    /// String key.
    Str(Rc<str>),
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Key::Int(v) => write!(f, "{v}"),
            Key::Bool(b) => write!(f, "{b}"),
            Key::Str(s) => write!(f, "{s}"),
        }
    }
}

/// The runtime-managed body of a map.
#[derive(Debug)]
pub struct MapData {
    /// Entries (insertion-ordered for deterministic runs).
    pub entries: Vec<(Key, Value)>,
    /// Fast lookup index.
    pub index: crate::fxhash::FxHashMap<Key, usize>,
    /// Current bucket array, if it has been grown off the hmap.
    pub buckets_obj: Option<ObjId>,
    /// Bucket capacity (entries before the next growth).
    pub bucket_cap: usize,
    /// Zero value returned on missing keys.
    pub default: Value,
    /// Bytes per entry charged to bucket arrays.
    pub entry_size: u64,
    /// The `make(map...)` expression that created this map (profile
    /// attribution for growth allocations).
    pub origin: Option<crate::interp::SiteId>,
    /// Set when the §6.8 mock poisoned this map's storage.
    pub poisoned: bool,
}

impl MapData {
    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a key.
    pub fn get(&self, key: &Key) -> Option<&Value> {
        self.index.get(key).map(|&i| &self.entries[i].1)
    }

    /// Inserts or updates a key. Returns true when the entry is new.
    pub fn insert(&mut self, key: Key, value: Value) -> bool {
        match self.index.get(&key) {
            Some(&i) => {
                self.entries[i].1 = value;
                false
            }
            None => {
                self.index.insert(key.clone(), self.entries.len());
                self.entries.push((key, value));
                true
            }
        }
    }

    /// Removes a key if present.
    pub fn remove(&mut self, key: &Key) -> bool {
        let Some(i) = self.index.remove(key) else {
            return false;
        };
        self.entries.remove(i);
        // Reindex the tail.
        for (j, (k, _)) in self.entries.iter().enumerate().skip(i) {
            self.index.insert(k.clone(), j);
        }
        true
    }
}

impl Value {
    /// Renders the value for `print`.
    pub fn display(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Str(s) => s.to_string(),
            Value::Nil => "nil".to_string(),
            Value::Struct(fields) => {
                let inner: Vec<String> = fields.iter().map(Value::display).collect();
                format!("{{{}}}", inner.join(" "))
            }
            Value::Ptr(_) => "<ptr>".to_string(),
            Value::Slice(s) => {
                let cells = s.cells.borrow();
                let inner: Vec<String> = cells[s.offset..s.offset + s.len]
                    .iter()
                    .map(Value::display)
                    .collect();
                format!("[{}]", inner.join(" "))
            }
            Value::Map(m) => {
                let data = m.data.borrow();
                let inner: Vec<String> = data
                    .entries
                    .iter()
                    .map(|(k, v)| format!("{k}:{}", v.display()))
                    .collect();
                format!("map[{}]", inner.join(" "))
            }
            Value::Poison => "<poison>".to_string(),
        }
    }

    /// Converts to a map key.
    pub fn as_key(&self) -> Option<Key> {
        match self {
            Value::Int(v) => Some(Key::Int(*v)),
            Value::Bool(b) => Some(Key::Bool(*b)),
            Value::Str(s) => Some(Key::Str(s.clone())),
            _ => None,
        }
    }

    /// Builds a struct value (tier-3 boxing in one place).
    pub fn struct_of(fields: Vec<Value>) -> Value {
        Value::Struct(Rc::new(fields))
    }

    /// Builds a pointer value.
    pub fn ptr(p: PtrVal) -> Value {
        Value::Ptr(Rc::new(p))
    }

    /// Builds a slice value.
    pub fn slice(s: SliceVal) -> Value {
        Value::Slice(Rc::new(s))
    }

    /// Builds a map value.
    pub fn map(m: MapVal) -> Value {
        Value::Map(Rc::new(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_data_insert_get_remove() {
        let mut m = MapData {
            entries: Vec::new(),
            index: crate::fxhash::FxHashMap::default(),
            buckets_obj: None,
            bucket_cap: 8,
            default: Value::Int(0),
            entry_size: 32,
            origin: None,
            poisoned: false,
        };
        assert!(m.insert(Key::Int(1), Value::Int(10)));
        assert!(!m.insert(Key::Int(1), Value::Int(11)), "update not insert");
        assert!(m.insert(Key::Str("a".into()), Value::Int(2)));
        assert_eq!(m.len(), 2);
        assert!(matches!(m.get(&Key::Int(1)), Some(Value::Int(11))));
        assert!(m.remove(&Key::Int(1)));
        assert!(!m.remove(&Key::Int(1)));
        assert!(matches!(m.get(&Key::Str("a".into())), Some(Value::Int(2))));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn map_reindexes_after_remove() {
        let mut m = MapData {
            entries: Vec::new(),
            index: crate::fxhash::FxHashMap::default(),
            buckets_obj: None,
            bucket_cap: 8,
            default: Value::Int(0),
            entry_size: 32,
            origin: None,
            poisoned: false,
        };
        for i in 0..5 {
            m.insert(Key::Int(i), Value::Int(i * 10));
        }
        m.remove(&Key::Int(2));
        assert!(matches!(m.get(&Key::Int(4)), Some(Value::Int(40))));
        assert!(matches!(m.get(&Key::Int(3)), Some(Value::Int(30))));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(3).display(), "3");
        assert_eq!(Value::Nil.display(), "nil");
        let s = Value::slice(SliceVal {
            cells: Rc::new(RefCell::new(vec![
                Value::Int(1),
                Value::Int(2),
                Value::Int(0),
            ])),
            obj: None,
            offset: 0,
            len: 2,
            elem_size: 8,
        });
        assert_eq!(s.display(), "[1 2]");
        assert_eq!(
            Value::struct_of(vec![Value::Int(1), Value::Bool(true)]).display(),
            "{1 true}"
        );
    }

    /// The three-tier layout (module docs) pins `Value` at 24 bytes on
    /// 64-bit hosts: 16 for the `Rc<str>` fat pointer plus 8 for the
    /// discriminant-bearing word. Growing any variant past that is a
    /// regression in operand-stack and slot bandwidth.
    #[cfg(target_pointer_width = "64")]
    #[test]
    fn value_stays_compact() {
        assert_eq!(std::mem::size_of::<Value>(), 24);
        assert_eq!(std::mem::size_of::<Option<Value>>(), 24);
    }

    #[test]
    fn struct_mutation_is_copy_on_write() {
        // A cloned struct value must not observe mutations of the
        // original (Go value semantics, preserved via Rc::make_mut).
        let mut a = Value::struct_of(vec![Value::Int(1), Value::Int(2)]);
        let b = a.clone();
        if let Value::Struct(fields) = &mut a {
            Rc::make_mut(fields)[0] = Value::Int(99);
        }
        assert_eq!(a.display(), "{99 2}");
        assert_eq!(b.display(), "{1 2}");
    }

    #[test]
    fn keys_from_values() {
        assert_eq!(Value::Int(3).as_key(), Some(Key::Int(3)));
        assert_eq!(Value::Nil.as_key(), None);
        assert!(Value::Str("x".into()).as_key().is_some());
    }
}
