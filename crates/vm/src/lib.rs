//! # minigo-vm
//!
//! The MiniGo interpreter: executes (optionally GoFree-instrumented)
//! programs against the simulated runtime of `minigo-runtime`. Allocation
//! sites follow the escape analysis' stack/heap decisions, `tcfree`
//! statements call the runtime's explicit-deallocation primitives, and GC
//! runs at statement-boundary safepoints, marking from the VM's frames.
//!
//! ```
//! use minigo_escape::{analyze, instrument, AnalyzeOptions};
//! use minigo_syntax::frontend;
//! use minigo_vm::{run, VmConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "func main() { s := make([]int, 3)\n s[0] = 41\n print(s[0] + 1) }\n";
//! let (program, mut res, types) = frontend(src)?;
//! let analysis = analyze(&program, &res, &types, &AnalyzeOptions::default());
//! let instrumented = instrument(&program, &mut res, &analysis);
//! let outcome = run(&instrumented, &res, &types, &analysis, VmConfig::default())?;
//! assert_eq!(outcome.output, "42\n");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod bytecode;
pub mod error;
pub mod fxhash;
pub mod interp;
pub mod value;

pub use bytecode::{lower, optimize, run_module, BSession, Const, Module, OptStats};
pub use error::ExecError;
pub use interp::{run, RunOutcome, Session, SiteProfile, VmConfig};
pub use value::{Key, MapData, MapVal, ObjId, PtrVal, SliceVal, Value};
