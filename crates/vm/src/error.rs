//! Runtime errors.

use std::error::Error;
use std::fmt;

/// A runtime failure while executing a MiniGo program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// `panic(v)` unwound to the top without recovery.
    Panic(String),
    /// Slice index out of range.
    OutOfBounds {
        /// The index used.
        index: i64,
        /// The slice length.
        len: usize,
    },
    /// Dereference of a nil pointer / use of a nil map.
    NilDeref,
    /// Integer division or remainder by zero.
    DivByZero,
    /// A read observed memory corrupted by the §6.8 mock `tcfree` — an
    /// unsound explicit free was detected.
    PoisonedRead,
    /// The configured step limit was exceeded (runaway program).
    StepLimit,
    /// Call stack exceeded the limit.
    StackOverflow,
    /// The program has no `main` function.
    NoMain,
    /// A session call named a function the program does not define (the
    /// service harness' `setup`/`handle` contract).
    NoFunc(String),
    /// The runtime configuration failed validation before the run
    /// started (e.g. GOGC=0 with GC enabled, a zero assist divisor, or a
    /// generational nursery at or above the heap goal).
    InvalidConfig(minigo_runtime::ConfigError),
    /// An operation the VM does not support (e.g. interior pointers
    /// `&x.f`).
    Unsupported(String),
    /// An internal invariant broke (a front-end bug if it ever fires).
    Internal(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Panic(msg) => write!(f, "panic: {msg}"),
            ExecError::OutOfBounds { index, len } => {
                write!(f, "index out of range [{index}] with length {len}")
            }
            ExecError::NilDeref => write!(f, "invalid memory address or nil pointer dereference"),
            ExecError::DivByZero => write!(f, "integer divide by zero"),
            ExecError::PoisonedRead => {
                write!(f, "read of poisoned memory (unsound tcfree detected)")
            }
            ExecError::StepLimit => write!(f, "step limit exceeded"),
            ExecError::StackOverflow => write!(f, "stack overflow"),
            ExecError::NoMain => write!(f, "program has no func main()"),
            ExecError::NoFunc(name) => write!(f, "program has no func {name}()"),
            ExecError::InvalidConfig(err) => write!(f, "invalid runtime configuration: {err}"),
            ExecError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            ExecError::Internal(what) => write!(f, "internal error: {what}"),
        }
    }
}

impl Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ExecError::Panic("boom".into()).to_string().contains("boom"));
        assert!(ExecError::OutOfBounds { index: 5, len: 3 }
            .to_string()
            .contains("[5]"));
        assert!(ExecError::PoisonedRead.to_string().contains("poisoned"));
        assert!(
            ExecError::InvalidConfig(minigo_runtime::ConfigError::ZeroGogc)
                .to_string()
                .contains("GOGC")
        );
    }
}
