//! The tree-walking interpreter.
//!
//! Executes an (optionally instrumented) MiniGo program against the
//! simulated runtime: allocation sites honor the escape analysis'
//! stack-or-heap decisions, inserted `tcfree` statements call into the
//! runtime's free primitives, and GC runs at statement boundaries
//! (safepoints) when the pacer requests it, marking from the VM's frames.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use minigo_escape::{AllocPlace, Analysis, Mode};
use minigo_runtime::{
    Category, FreeOutcome, FreeSource, ObjAddr, Runtime, RuntimeConfig, ShadowHeap, ShadowViolation,
};
use minigo_syntax::{
    BinOp, Block, Builtin, Expr, ExprKind, Func, FuncId, Program, Resolution, Stmt, StmtKind, Type,
    TypeInfo, UnOp, VarId,
};

use crate::error::ExecError;
use crate::value::{Cell, Key, MapData, MapVal, ObjId, PtrVal, SliceVal, Value};

/// Result alias for execution.
pub type Result<T> = std::result::Result<T, ExecError>;

/// VM configuration.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Runtime (allocator/GC/tcfree) configuration.
    pub runtime: RuntimeConfig,
    /// Abort after this many statements (runaway guard).
    pub step_limit: u64,
    /// Maximum call depth.
    pub max_frames: usize,
    /// Whether GoFree's runtime-side map-growth freeing is active
    /// (§4.6.2's GrowMapAndFreeOld). True when running GoFree-compiled
    /// programs.
    pub grow_map_free_old: bool,
    /// Batch adjacent `tcfree` statements (§5, "Possibility of Batching"):
    /// consecutive frees share one call overhead. Off by default, as in
    /// the paper.
    pub batch_frees: bool,
    /// Run the shadow-heap sanitizer: check every load, store, and free
    /// against an out-of-band shadow of the heap and report
    /// use-after-free / use-after-revert / untolerated-double-free
    /// violations in [`RunOutcome::violations`]. Has no effect on the
    /// simulation itself (no ticks, no metrics, no RNG).
    pub sanitize: bool,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            runtime: RuntimeConfig::default(),
            step_limit: 500_000_000,
            max_frames: 4096,
            grow_map_free_old: true,
            batch_frees: false,
            sanitize: false,
        }
    }
}

impl VmConfig {
    /// Configuration matching an analysis mode: plain-Go programs do not
    /// get the map-growth runtime optimization.
    pub fn for_mode(mode: Mode) -> Self {
        VmConfig {
            grow_map_free_old: mode == Mode::GoFree,
            ..VmConfig::default()
        }
    }
}

/// The result of a completed run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Everything `print` produced.
    pub output: String,
    /// Virtual wall-clock time (table 5 `time`).
    pub time: u64,
    /// Runtime metrics (table 5, 8, 9 inputs).
    pub metrics: minigo_runtime::Metrics,
    /// Statements executed.
    pub steps: u64,
    /// Per-allocation-site profile, sorted by bytes descending (the
    /// paper's profiling-tool view of where heap memory comes from).
    pub site_profile: Vec<SiteProfile>,
    /// Shadow-heap sanitizer findings (empty unless
    /// [`VmConfig::sanitize`] was on). Carried out-of-band: `output`,
    /// `time`, `metrics`, and `steps` are bit-identical with the
    /// sanitizer on or off.
    pub violations: Vec<ShadowViolation>,
    /// The typed runtime event stream (present only when
    /// [`minigo_runtime::RuntimeConfig::trace`] was on). Carried
    /// out-of-band like `violations`: every other report field is
    /// bit-identical with tracing on or off, and the stream itself is
    /// bit-identical across the two VM engines.
    pub trace: Option<minigo_runtime::Trace>,
    /// Which collection backend ran
    /// ([`minigo_runtime::RuntimeConfig::collector`]).
    pub collector: minigo_runtime::CollectorKind,
    /// Inline-cache hits, when the bytecode engine ran an optimized
    /// module (always 0 on the tree-walk and on unoptimized streams).
    /// Carried out-of-band like `violations`: the caches cannot change
    /// any other field.
    pub ic_hits: u64,
    /// Inline-cache misses (see `ic_hits`).
    pub ic_misses: u64,
    /// Optimizer-tier rewrite statistics for the module this run
    /// executed. The VM itself leaves this `None`; the driver that
    /// selected an optimized stream fills it in (so it is `None` on the
    /// tree-walk and at `--opt off`).
    pub opt: Option<crate::bytecode::OptStats>,
    /// Liveness free-placement counters for the compiled program this
    /// run executed. Like `opt`, the VM leaves this `None`; the driver
    /// copies it from the compile so both engines report identically
    /// (it is `None` in `--free-placement scope` and plain-Go runs).
    pub placement: Option<minigo_escape::PlacementStats>,
}

/// The id type used for profile attribution (an expression id).
pub type SiteId = minigo_syntax::ExprId;

/// Heap allocation statistics for one allocation expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteProfile {
    /// The allocation expression (make/new/&T{}/append).
    pub site: minigo_syntax::ExprId,
    /// Objects allocated at this site.
    pub count: u64,
    /// Bytes allocated at this site.
    pub bytes: u64,
}

/// Runs `program`'s `main` function.
///
/// # Errors
///
/// Returns an [`ExecError`] on panics, nil dereferences, bounds errors,
/// poisoned reads (§6.8), or resource-limit violations.
pub fn run(
    program: &Program,
    res: &Resolution,
    types: &TypeInfo,
    analysis: &Analysis,
    cfg: VmConfig,
) -> Result<RunOutcome> {
    cfg.runtime.validate().map_err(ExecError::InvalidConfig)?;
    let main = program.func("main").ok_or(ExecError::NoMain)?;
    let mut vm = Vm::new(program, res, types, analysis, cfg);
    vm.call_function(main.id, Vec::new())?;
    Ok(vm.finish())
}

/// A persistent tree-walk execution session: one runtime, one heap, one
/// virtual clock, driven through repeated function calls instead of a
/// single `main`. The service harness uses it to execute request
/// handlers against state that survives between calls — GC pacing,
/// tcfree bail-outs, and heap growth accumulate across requests exactly
/// as they would inside one long-running program.
///
/// Values returned by one call may be passed back into later calls; to
/// keep them (and everything reachable from them) alive across the GC
/// cycles in between, root them with [`Session::hold`].
pub struct Session<'p> {
    vm: Vm<'p>,
}

impl<'p> Session<'p> {
    /// Creates a session.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidConfig`] when the runtime
    /// configuration fails validation.
    pub fn new(
        program: &'p Program,
        res: &'p Resolution,
        types: &'p TypeInfo,
        analysis: &'p Analysis,
        cfg: VmConfig,
    ) -> Result<Self> {
        cfg.runtime.validate().map_err(ExecError::InvalidConfig)?;
        Ok(Session {
            vm: Vm::new(program, res, types, analysis, cfg),
        })
    }

    /// Calls a top-level function by name and returns its results. The
    /// call costs exactly what the same call would cost inside a
    /// program: both engines drive it through their ordinary call
    /// protocol, so session runs stay bit-identical across engines.
    ///
    /// # Errors
    ///
    /// [`ExecError::NoFunc`] for an unknown name; otherwise whatever the
    /// call itself raises.
    pub fn call(&mut self, name: &str, args: Vec<Value>) -> Result<Vec<Value>> {
        let func = self
            .vm
            .program
            .func(name)
            .ok_or_else(|| ExecError::NoFunc(name.to_string()))?;
        self.vm.call_function(func.id, args)
    }

    /// Roots `values` for the rest of the session: they (and everything
    /// reachable from them) survive every GC cycle until [`Session::finish`].
    pub fn hold(&mut self, values: Vec<Value>) {
        self.vm.held.extend(values);
    }

    /// Elapsed virtual time.
    pub fn now(&self) -> u64 {
        self.vm.rt.now()
    }

    /// Advances the virtual clock to absolute time `t` (idle waiting; see
    /// [`Runtime::idle_until`](minigo_runtime::Runtime::idle_until)).
    pub fn idle_until(&mut self, t: u64) {
        self.vm.rt.idle_until(t);
    }

    /// Current live heap bytes.
    pub fn heap_live(&self) -> u64 {
        self.vm.rt.heap_live()
    }

    /// Current page-level heap footprint in bytes.
    pub fn footprint(&self) -> u64 {
        self.vm.rt.footprint()
    }

    /// Every completed GC cycle's stop record so far.
    pub fn pauses(&self) -> &[minigo_runtime::Pause] {
        self.vm.rt.pauses()
    }

    /// Records a completed-request trace span (no-op without tracing).
    pub fn note_request(&mut self, id: u64, arrival: u64, start: u64) {
        self.vm.rt.trace_request(id, arrival, start);
    }

    /// Ends the session: finalizes the runtime (leftover objects count
    /// toward the GC columns, held state included) and assembles the
    /// same [`RunOutcome`] a one-shot [`run`] would produce.
    pub fn finish(self) -> RunOutcome {
        self.vm.finish()
    }
}

/// The runtime entry point a [`FreeSource`] corresponds to (table 4) —
/// used to label sanitizer findings.
pub(crate) fn free_op_name(source: FreeSource) -> &'static str {
    match source {
        FreeSource::SliceLifetime => "FreeSlice",
        FreeSource::MapLifetime => "FreeMap",
        FreeSource::MapGrowOld => "GrowMapAndFreeOld",
        FreeSource::Object => "Tcfree",
    }
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return,
}

enum Slot {
    Plain(Value),
    Boxed(Cell, Option<ObjId>),
}

enum DeferKind {
    Func(FuncId),
    Builtin(Builtin),
}

struct Deferred {
    kind: DeferKind,
    args: Vec<Value>,
}

struct Frame {
    func: FuncId,
    slots: HashMap<VarId, Slot>,
    defers: Vec<Deferred>,
}

struct Vm<'p> {
    program: &'p Program,
    res: &'p Resolution,
    types: &'p TypeInfo,
    analysis: &'p Analysis,
    cfg: VmConfig,
    rt: Runtime,
    /// Heap-accounted objects: id → allocator address.
    objects: HashMap<ObjId, ObjAddr>,
    addr_map: HashMap<ObjAddr, ObjId>,
    next_obj: u64,
    frames: Vec<Frame>,
    /// Address-taken variables per function (these get boxed slots).
    addr_taken: HashMap<FuncId, HashSet<VarId>>,
    /// Per-site allocation profile: expr id -> (count, bytes).
    site_profile: HashMap<minigo_syntax::ExprId, (u64, u64)>,
    /// Interned call stacks, present when tracing: every function
    /// entry/exit stamps the current stack id into the runtime so traced
    /// events carry full call-stack attribution. Interning follows the
    /// call sequence, which both engines execute identically, so stack
    /// ids are bit-identical across engines.
    stacks: Option<minigo_runtime::StackTable>,
    /// The interned id of the current call stack (root when not tracing).
    cur_stack: u32,
    /// Set while executing the 2nd..nth statement of a `tcfree` run with
    /// batching enabled: the call overhead was already charged.
    in_free_batch: bool,
    /// The shadow-heap sanitizer, present when `cfg.sanitize` is on.
    shadow: Option<ShadowHeap>,
    /// Session-held GC roots: values a [`Session`] keeps alive across
    /// calls (service state returned by `setup` and passed back into
    /// every `handle`). Always empty in one-shot [`run`] executions.
    held: Vec<Value>,
    output: String,
    steps: u64,
}

impl<'p> Vm<'p> {
    fn new(
        program: &'p Program,
        res: &'p Resolution,
        types: &'p TypeInfo,
        analysis: &'p Analysis,
        cfg: VmConfig,
    ) -> Self {
        let rt = Runtime::new(cfg.runtime.clone());
        let shadow = cfg.sanitize.then(ShadowHeap::new);
        let stacks = cfg.runtime.trace.then(minigo_runtime::StackTable::new);
        let mut addr_taken = HashMap::new();
        for func in &program.funcs {
            let mut set = HashSet::new();
            collect_addr_taken_block(&func.body, res, &mut set);
            addr_taken.insert(func.id, set);
        }
        Vm {
            program,
            res,
            types,
            analysis,
            cfg,
            rt,
            objects: HashMap::new(),
            addr_map: HashMap::new(),
            next_obj: 0,
            frames: Vec::new(),
            addr_taken,
            site_profile: HashMap::new(),
            stacks,
            cur_stack: minigo_runtime::ROOT_STACK,
            in_free_batch: false,
            shadow,
            held: Vec::new(),
            output: String::new(),
            steps: 0,
        }
    }

    /// End-of-run accounting shared by [`run`] and [`Session::finish`]:
    /// finalizes the runtime and assembles the report.
    fn finish(mut self) -> RunOutcome {
        self.rt.finalize();
        let mut site_profile: Vec<SiteProfile> = self
            .site_profile
            .iter()
            .map(|(&site, &(count, bytes))| SiteProfile { site, count, bytes })
            .collect();
        site_profile.sort_by(|a, b| b.bytes.cmp(&a.bytes).then(a.site.cmp(&b.site)));
        let violations = match self.shadow.as_mut() {
            Some(sh) => sh.take_violations(),
            None => Vec::new(),
        };
        let mut trace = self.rt.take_trace();
        if let (Some(tr), Some(st)) = (trace.as_mut(), self.stacks.take()) {
            // The runtime only sees interned ids; the table that resolves
            // them lives in the VM and rides along in the trace.
            tr.stacks = st;
        }
        RunOutcome {
            output: std::mem::take(&mut self.output),
            time: self.rt.now(),
            metrics: self.rt.metrics().clone(),
            steps: self.steps,
            site_profile,
            violations,
            trace,
            collector: self.rt.collector_kind(),
            ic_hits: 0,
            ic_misses: 0,
            opt: None,
            placement: None,
        }
    }

    // ---- object accounting ----

    fn new_obj(&mut self, size: u64, cat: Category) -> ObjId {
        self.new_obj_at(size, cat, None)
    }

    fn new_obj_at(
        &mut self,
        size: u64,
        cat: Category,
        site: Option<minigo_syntax::ExprId>,
    ) -> ObjId {
        if let Some(site) = site {
            let entry = self.site_profile.entry(site).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += size;
        }
        let addr = self.rt.alloc_at(size, cat, site.map(|s| s.0));
        // The allocator may hand back a previously swept address.
        if let Some(old) = self.addr_map.insert(addr, ObjId(self.next_obj)) {
            self.objects.remove(&old);
        }
        let id = ObjId(self.next_obj);
        self.next_obj += 1;
        self.objects.insert(id, addr);
        if let Some(sh) = &mut self.shadow {
            sh.on_alloc(id.0, addr);
        }
        id
    }

    /// Attempts a `tcfree` on an accounted object. Returns the outcome and
    /// whether the payload should be poisoned.
    fn free_obj(&mut self, obj: ObjId, source: FreeSource) -> (FreeOutcome, bool) {
        if let Some(sh) = &mut self.shadow {
            sh.check_free(obj.0, free_op_name(source), self.steps);
        }
        let Some(&addr) = self.objects.get(&obj) else {
            // Already freed or swept: tolerated double free.
            return (
                FreeOutcome::Bailed(minigo_runtime::BailReason::AlreadyFree),
                false,
            );
        };
        let out = if self.in_free_batch {
            self.rt.tcfree_continue(addr, source)
        } else {
            self.rt.tcfree(addr, source)
        };
        match out {
            FreeOutcome::Freed { .. } => {
                self.objects.remove(&obj);
                self.addr_map.remove(&addr);
                if let Some(sh) = &mut self.shadow {
                    sh.on_free(obj.0, addr);
                }
                (out, false)
            }
            FreeOutcome::Poisoned => (out, true),
            FreeOutcome::Bailed(_) => (out, false),
        }
    }

    fn place_of(&self, expr: &Expr) -> AllocPlace {
        self.analysis.place_of(expr.id)
    }

    // ---- shadow-heap sanitizer hooks ----

    /// Checks a load or store through `obj` against the shadow heap.
    /// No-op when the sanitizer is off or the value is stack-allocated
    /// (`obj` is `None`).
    fn shadow_access(&mut self, obj: Option<ObjId>, op: &'static str) {
        if let (Some(sh), Some(obj)) = (self.shadow.as_mut(), obj) {
            sh.check_access(obj.0, op, self.steps);
        }
    }

    /// Checks a map operation against the shadow heap: both the hmap
    /// header object and the current bucket array are consulted.
    fn shadow_access_map(&mut self, m: &MapVal, op: &'static str) {
        if self.shadow.is_some() {
            let buckets = m.data.borrow().buckets_obj;
            self.shadow_access(m.obj, op);
            self.shadow_access(buckets, op);
        }
    }

    // ---- write barrier ----

    /// Write-barrier hook at the same heap store sites the shadow
    /// sanitizer checks: tells the collector the object's payload was
    /// mutated (the generational remembered set's input; a total no-op
    /// under the default mark-sweep backend). Stack values (`obj` =
    /// `None`) need no barrier. Unlike the shadow hooks this always
    /// fires — barriers are part of the simulation, not an observer.
    fn barrier_store(&mut self, obj: Option<ObjId>) {
        if let Some(obj) = obj {
            if let Some(&addr) = self.objects.get(&obj) {
                self.rt.record_store(addr);
            }
        }
    }

    /// [`Vm::barrier_store`] for a map store: both the hmap header and
    /// the current bucket array count as mutated.
    fn barrier_store_map(&mut self, m: &MapVal) {
        let buckets = m.data.borrow().buckets_obj;
        self.barrier_store(m.obj);
        self.barrier_store(buckets);
    }

    // ---- GC ----

    fn safepoint(&mut self) -> Result<()> {
        self.steps += 1;
        if self.steps > self.cfg.step_limit {
            return Err(ExecError::StepLimit);
        }
        self.rt.tick(1);
        if self.rt.gc_pending() {
            self.collect_garbage();
        }
        Ok(())
    }

    fn collect_garbage(&mut self) {
        let mut marked: HashSet<ObjAddr> = HashSet::new();
        let mut seen: HashSet<usize> = HashSet::new();
        for frame in &self.frames {
            for slot in frame.slots.values() {
                match slot {
                    Slot::Plain(v) => {
                        mark_value(v, &self.objects, &mut marked, &mut seen);
                    }
                    Slot::Boxed(cell, obj) => {
                        if let Some(obj) = obj {
                            if let Some(&addr) = self.objects.get(obj) {
                                marked.insert(addr);
                            }
                        }
                        if seen.insert(Rc::as_ptr(cell) as usize) {
                            mark_value(&cell.borrow(), &self.objects, &mut marked, &mut seen);
                        }
                    }
                }
            }
            for d in &frame.defers {
                for v in &d.args {
                    mark_value(v, &self.objects, &mut marked, &mut seen);
                }
            }
        }
        for v in &self.held {
            mark_value(v, &self.objects, &mut marked, &mut seen);
        }
        let swept = self.rt.collect(&marked);
        for (addr, _, _) in &swept.freed {
            if let Some(obj) = self.addr_map.remove(addr) {
                self.objects.remove(&obj);
                if let Some(sh) = &mut self.shadow {
                    sh.on_sweep(obj.0);
                }
            }
        }
    }

    // ---- calls ----

    fn call_function(&mut self, fid: FuncId, args: Vec<Value>) -> Result<Vec<Value>> {
        if self.frames.len() >= self.cfg.max_frames {
            return Err(ExecError::StackOverflow);
        }
        let func = &self.program.funcs[fid.index()];
        let mut slots = HashMap::new();
        let taken = &self.addr_taken[&fid];
        for (&pvar, arg) in self.res.params_of(fid).iter().zip(args) {
            slots.insert(pvar, make_slot(arg, taken.contains(&pvar)));
        }
        for &rvar in self.res.results_of(fid) {
            let ty = self
                .types
                .var(rvar)
                .ok_or_else(|| ExecError::Internal("untyped result".into()))?;
            let zero = self.zero_value(ty);
            slots.insert(rvar, make_slot(zero, taken.contains(&rvar)));
        }
        self.frames.push(Frame {
            func: fid,
            slots,
            defers: Vec::new(),
        });
        let parent_stack = self.enter_stack(&func.name);

        let body = &func.body;
        let flow = self.exec_block(body);
        // Run defers LIFO regardless of how the body exited; on panic the
        // defers still run before unwinding continues.
        let defer_result = self.run_defers();
        let flow = match (flow, defer_result) {
            (Err(e), _) => Err(e),
            (_, Err(e)) => Err(e),
            (Ok(f), Ok(())) => Ok(f),
        };
        match flow {
            Err(e) => {
                self.leave_stack(parent_stack);
                self.frames.pop();
                Err(e)
            }
            Ok(_) => {
                let mut results = Vec::new();
                for &rvar in self.res.results_of(fid) {
                    results.push(self.read_var(rvar)?);
                }
                self.leave_stack(parent_stack);
                self.frames.pop();
                Ok(results)
            }
        }
    }

    /// Tracing only: interns the stack extended with `name`, stamps it
    /// into the runtime, and returns the previous stack id for
    /// [`Vm::leave_stack`]. A no-op returning the root id when tracing is
    /// off.
    fn enter_stack(&mut self, name: &str) -> u32 {
        let parent = self.cur_stack;
        if let Some(st) = &mut self.stacks {
            self.cur_stack = st.push(parent, name);
            self.rt.set_stack(self.cur_stack);
        }
        parent
    }

    /// Tracing only: restores the caller's stack id on function exit.
    fn leave_stack(&mut self, parent: u32) {
        if self.stacks.is_some() {
            self.cur_stack = parent;
            self.rt.set_stack(parent);
        }
    }

    fn run_defers(&mut self) -> Result<()> {
        loop {
            let Some(d) = self.frames.last_mut().and_then(|f| f.defers.pop()) else {
                return Ok(());
            };
            match d.kind {
                DeferKind::Func(fid) => {
                    self.call_function(fid, d.args)?;
                }
                DeferKind::Builtin(Builtin::Print) => {
                    self.do_print(&d.args);
                }
                DeferKind::Builtin(_) => {}
            }
        }
    }

    /// Declares a variable, boxing it when its address is taken and
    /// charging heap accounting when the analysis decided its storage
    /// escapes.
    fn declare_var(&mut self, var: VarId, value: Value) {
        let fid = self.frames.last().expect("in a frame").func;
        let boxed = self.addr_taken[&fid].contains(&var);
        let slot = if boxed {
            let heap = self
                .analysis
                .funcs
                .get(&fid)
                .and_then(|fg| fg.var_locs.get(&var).copied())
                .map(|loc| self.analysis.funcs[&fid].graph.loc(loc).heap_alloc)
                .unwrap_or(false);
            let obj = if heap {
                let size = self
                    .types
                    .var(var)
                    .map(|t| self.types.inline_size(t))
                    .unwrap_or(8);
                Some(self.new_obj(size, Category::Other))
            } else {
                self.rt.stack_alloc(Category::Other);
                None
            };
            Slot::Boxed(Rc::new(RefCell::new(value)), obj)
        } else {
            Slot::Plain(value)
        };
        self.frames
            .last_mut()
            .expect("in a frame")
            .slots
            .insert(var, slot);
    }

    fn read_var(&self, var: VarId) -> Result<Value> {
        for frame in self.frames.iter().rev() {
            if let Some(slot) = frame.slots.get(&var) {
                let v = match slot {
                    Slot::Plain(v) => v.clone(),
                    Slot::Boxed(cell, _) => cell.borrow().clone(),
                };
                return check_poison(v);
            }
        }
        Err(ExecError::Internal(format!(
            "variable {} not found in any frame",
            self.res.var(var).name
        )))
    }

    fn write_var(&mut self, var: VarId, value: Value) -> Result<()> {
        for frame in self.frames.iter_mut().rev() {
            if let Some(slot) = frame.slots.get_mut(&var) {
                match slot {
                    Slot::Plain(v) => *v = value,
                    Slot::Boxed(cell, _) => *cell.borrow_mut() = value,
                }
                return Ok(());
            }
        }
        Err(ExecError::Internal("write to undeclared variable".into()))
    }

    // ---- statements ----

    fn exec_block(&mut self, block: &Block) -> Result<Flow> {
        let mut prev_was_free = false;
        for stmt in &block.stmts {
            self.safepoint()?;
            let is_free = matches!(stmt.kind, StmtKind::Free { .. });
            self.in_free_batch = self.cfg.batch_frees && is_free && prev_was_free;
            let flow = self.exec_stmt(stmt);
            self.in_free_batch = false;
            prev_was_free = is_free;
            match flow? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> Result<Flow> {
        match &stmt.kind {
            StmtKind::VarDecl { names, ty, init } => {
                let values = if init.is_empty() {
                    vec![self.zero_value(ty); names.len()]
                } else if init.len() == 1 && names.len() > 1 {
                    self.eval_multi(&init[0], names.len())?
                } else {
                    init.iter().map(|e| self.eval(e)).collect::<Result<_>>()?
                };
                for (i, v) in values.into_iter().enumerate() {
                    let var = self
                        .res
                        .decl_of(stmt.id, i)
                        .ok_or_else(|| ExecError::Internal("unresolved decl".into()))?;
                    self.declare_var(var, v);
                }
                Ok(Flow::Normal)
            }
            StmtKind::ShortDecl { names, init } => {
                let values = if init.len() == 1 && names.len() > 1 {
                    self.eval_multi(&init[0], names.len())?
                } else {
                    init.iter().map(|e| self.eval(e)).collect::<Result<_>>()?
                };
                for (i, v) in values.into_iter().enumerate() {
                    let var = self
                        .res
                        .decl_of(stmt.id, i)
                        .ok_or_else(|| ExecError::Internal("unresolved decl".into()))?;
                    self.declare_var(var, v);
                }
                Ok(Flow::Normal)
            }
            StmtKind::Assign { lhs, op, rhs } => {
                if let Some(op) = op {
                    let old = self.eval(&lhs[0])?;
                    let rv = self.eval(&rhs[0])?;
                    let new = self.binop(*op, old, rv)?;
                    self.store(&lhs[0], new)?;
                    return Ok(Flow::Normal);
                }
                let values = if rhs.len() == 1 && lhs.len() > 1 {
                    self.eval_multi(&rhs[0], lhs.len())?
                } else {
                    rhs.iter().map(|e| self.eval(e)).collect::<Result<_>>()?
                };
                for (l, v) in lhs.iter().zip(values) {
                    self.store(l, v)?;
                }
                Ok(Flow::Normal)
            }
            StmtKind::If { cond, then, els } => {
                if self.eval_bool(cond)? {
                    self.exec_block(then)
                } else if let Some(els) = els {
                    self.exec_stmt(els)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::For {
                init,
                cond,
                post,
                body,
            } => {
                if let Some(init) = init {
                    self.exec_stmt(init)?;
                }
                loop {
                    if let Some(cond) = cond {
                        if !self.eval_bool(cond)? {
                            break;
                        }
                    }
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if let Some(post) = post {
                        self.exec_stmt(post)?;
                    }
                    self.safepoint()?;
                }
                Ok(Flow::Normal)
            }
            StmtKind::Return { exprs } => {
                let fid = self.frames.last().expect("in a frame").func;
                let results = self.res.results_of(fid).to_vec();
                if !exprs.is_empty() {
                    let values = if exprs.len() == 1 && results.len() > 1 {
                        self.eval_multi(&exprs[0], results.len())?
                    } else {
                        exprs.iter().map(|e| self.eval(e)).collect::<Result<_>>()?
                    };
                    for (&rvar, v) in results.iter().zip(values) {
                        self.write_var(rvar, v)?;
                    }
                }
                Ok(Flow::Return)
            }
            StmtKind::Expr { expr } => {
                self.eval_multi(expr, usize::MAX)?;
                Ok(Flow::Normal)
            }
            StmtKind::BlockStmt { block } => self.exec_block(block),
            StmtKind::Defer { call } => {
                let (kind, args) = match &call.kind {
                    ExprKind::Call { callee, args } => {
                        let fid = self
                            .res
                            .func_by_name(callee)
                            .ok_or_else(|| ExecError::Internal("unknown callee".into()))?;
                        (DeferKind::Func(fid), args)
                    }
                    ExprKind::Builtin { kind, args, .. } => (DeferKind::Builtin(*kind), args),
                    _ => return Err(ExecError::Internal("defer of non-call".into())),
                };
                let args = args
                    .iter()
                    .map(|a| self.eval(a))
                    .collect::<Result<Vec<_>>>()?;
                self.frames
                    .last_mut()
                    .expect("in a frame")
                    .defers
                    .push(Deferred { kind, args });
                Ok(Flow::Normal)
            }
            StmtKind::Switch {
                subject,
                cases,
                default,
            } => {
                let sv = self.eval(subject)?;
                for case in cases {
                    for v in &case.values {
                        let cv = self.eval(v)?;
                        if value_eq(&sv, &cv)? {
                            // Go semantics: `break` inside a switch exits
                            // the switch, not an enclosing loop.
                            return Ok(match self.exec_block(&case.body)? {
                                Flow::Break => Flow::Normal,
                                other => other,
                            });
                        }
                    }
                }
                if let Some(default) = default {
                    return Ok(match self.exec_block(default)? {
                        Flow::Break => Flow::Normal,
                        other => other,
                    });
                }
                Ok(Flow::Normal)
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Free { target, .. } => {
                let v = self.eval(target)?;
                self.exec_tcfree(v)?;
                Ok(Flow::Normal)
            }
        }
    }

    /// Executes a `tcfree` statement: dispatches to TcfreeSlice /
    /// TcfreeMap / Tcfree on the runtime value (table 4).
    fn exec_tcfree(&mut self, v: Value) -> Result<()> {
        match v {
            Value::Slice(s) => {
                if let Some(obj) = s.obj {
                    let (_, poison) = self.free_obj(obj, FreeSource::SliceLifetime);
                    if poison {
                        let mut cells = s.cells.borrow_mut();
                        for c in cells.iter_mut() {
                            *c = Value::Poison;
                        }
                    }
                }
            }
            Value::Map(m) => {
                let buckets = m.data.borrow().buckets_obj;
                let mut poisoned = false;
                if let Some(b) = buckets {
                    let (out, poison) = self.free_obj(b, FreeSource::MapLifetime);
                    poisoned |= poison;
                    if matches!(out, FreeOutcome::Freed { .. }) {
                        m.data.borrow_mut().buckets_obj = None;
                    }
                }
                if let Some(h) = m.obj {
                    let (_, poison) = self.free_obj(h, FreeSource::MapLifetime);
                    poisoned |= poison;
                }
                if poisoned {
                    let mut data = m.data.borrow_mut();
                    data.poisoned = true;
                    for (_, v) in data.entries.iter_mut() {
                        *v = Value::Poison;
                    }
                }
            }
            Value::Ptr(p) => {
                if let Some(obj) = p.obj {
                    let (_, poison) = self.free_obj(obj, FreeSource::Object);
                    if poison {
                        *p.cell.borrow_mut() = Value::Poison;
                    }
                }
            }
            // tcfree ignores nil and non-reference values (§4.3: calls on
            // stack objects are safe no-ops).
            _ => {}
        }
        Ok(())
    }

    // ---- expressions ----

    fn eval_bool(&mut self, e: &Expr) -> Result<bool> {
        match self.eval(e)? {
            Value::Bool(b) => Ok(b),
            other => Err(ExecError::Internal(format!(
                "expected bool, got {}",
                other.display()
            ))),
        }
    }

    fn eval_int(&mut self, e: &Expr) -> Result<i64> {
        match self.eval(e)? {
            Value::Int(v) => Ok(v),
            other => Err(ExecError::Internal(format!(
                "expected int, got {}",
                other.display()
            ))),
        }
    }

    /// Evaluates an expression that may yield multiple values (a call in
    /// multi-value position). `want == usize::MAX` means "any arity"
    /// (expression statements).
    fn eval_multi(&mut self, e: &Expr, want: usize) -> Result<Vec<Value>> {
        if let ExprKind::Call { callee, args } = &e.kind {
            let fid = self
                .res
                .func_by_name(callee)
                .ok_or_else(|| ExecError::Internal("unknown callee".into()))?;
            let argv = args
                .iter()
                .map(|a| self.eval(a))
                .collect::<Result<Vec<_>>>()?;
            // A call in value position charges its expression-node tick
            // here, after the arguments (the bytecode `Call` instruction's
            // `value_pos` extra).
            if want == 1 {
                self.rt.tick(1);
            }
            self.rt.tick(2);
            let out = self.call_function(fid, argv)?;
            if want != usize::MAX && out.len() != want {
                return Err(ExecError::Internal("result arity mismatch".into()));
            }
            return Ok(out);
        }
        Ok(vec![self.eval(e)?])
    }

    /// Evaluates an expression. Each node charges its one tick at the
    /// point where the bytecode VM's corresponding instruction charges it
    /// (post-order: after the operands, right before the node's own
    /// effect), so runtime trace timestamps are bit-identical across
    /// engines. Totals per statement are unchanged — one tick per node.
    fn eval(&mut self, e: &Expr) -> Result<Value> {
        match &e.kind {
            ExprKind::IntLit(v) => {
                self.rt.tick(1);
                Ok(Value::Int(*v))
            }
            ExprKind::BoolLit(b) => {
                self.rt.tick(1);
                Ok(Value::Bool(*b))
            }
            ExprKind::StrLit(s) => {
                self.rt.tick(1);
                Ok(Value::Str(Rc::from(s.as_str())))
            }
            ExprKind::Nil => {
                self.rt.tick(1);
                Ok(Value::Nil)
            }
            ExprKind::Ident(_) => {
                self.rt.tick(1);
                let var = self
                    .res
                    .def_of(e.id)
                    .ok_or_else(|| ExecError::Internal("unresolved ident".into()))?;
                self.read_var(var)
            }
            ExprKind::Unary { op, operand } => match op {
                UnOp::Neg => {
                    let v = self.eval_int(operand)?;
                    self.rt.tick(1);
                    Ok(Value::Int(v.wrapping_neg()))
                }
                UnOp::Not => {
                    let v = self.eval_bool(operand)?;
                    self.rt.tick(1);
                    Ok(Value::Bool(!v))
                }
                UnOp::Addr => self.addr_of(operand),
                UnOp::Deref => {
                    let v = self.eval(operand)?;
                    self.rt.tick(1);
                    match v {
                        Value::Ptr(p) => {
                            self.shadow_access(p.obj, "pointer deref read");
                            check_poison(p.cell.borrow().clone())
                        }
                        Value::Nil => Err(ExecError::NilDeref),
                        _ => Err(ExecError::Internal("deref of non-pointer".into())),
                    }
                }
            },
            ExprKind::Binary { op, lhs, rhs } => match op {
                // Short-circuit operators charge up front (the lowering
                // emits their tick before the left operand).
                BinOp::And => {
                    self.rt.tick(1);
                    if !self.eval_bool(lhs)? {
                        return Ok(Value::Bool(false));
                    }
                    Ok(Value::Bool(self.eval_bool(rhs)?))
                }
                BinOp::Or => {
                    self.rt.tick(1);
                    if self.eval_bool(lhs)? {
                        return Ok(Value::Bool(true));
                    }
                    Ok(Value::Bool(self.eval_bool(rhs)?))
                }
                _ => {
                    let l = self.eval(lhs)?;
                    let r = self.eval(rhs)?;
                    self.rt.tick(1);
                    self.binop(*op, l, r)
                }
            },
            ExprKind::Field { base, name } => {
                let bv = self.eval(base)?;
                self.rt.tick(1);
                if let Value::Ptr(p) = &bv {
                    self.shadow_access(p.obj, "field read");
                }
                let (sv, sname) = self.auto_deref_struct(bv, base)?;
                let idx = self.field_index(&sname, name)?;
                check_poison(sv[idx].clone())
            }
            ExprKind::Index { base, index } => {
                let bv = self.eval(base)?;
                match bv {
                    Value::Slice(s) => {
                        let i = self.eval_int(index)?;
                        self.rt.tick(1);
                        if i < 0 || i as usize >= s.len {
                            return Err(ExecError::OutOfBounds {
                                index: i,
                                len: s.len,
                            });
                        }
                        self.shadow_access(s.obj, "slice index read");
                        check_poison(s.cells.borrow()[s.offset + i as usize].clone())
                    }
                    Value::Map(m) => {
                        let kv = self.eval(index)?;
                        self.rt.tick(1);
                        let key = kv
                            .as_key()
                            .ok_or_else(|| ExecError::Internal("bad map key".into()))?;
                        self.rt.tick(2);
                        self.shadow_access_map(&m, "map lookup");
                        let data = m.data.borrow();
                        if data.poisoned {
                            return Err(ExecError::PoisonedRead);
                        }
                        match data.get(&key) {
                            Some(v) => check_poison(v.clone()),
                            None => Ok(data.default.clone()),
                        }
                    }
                    Value::Nil => Err(ExecError::NilDeref),
                    _ => Err(ExecError::Internal("index of non-indexable".into())),
                }
            }
            ExprKind::SliceExpr { base, lo, hi } => {
                let bv = self.eval(base)?;
                let lo_v = match lo {
                    Some(e) => self.eval_int(e)?,
                    None => 0,
                };
                let hi_raw = match hi {
                    Some(e) => Some(self.eval_int(e)?),
                    None => None,
                };
                self.rt.tick(1);
                match bv {
                    Value::Slice(s) => {
                        let hi_v = hi_raw.unwrap_or(s.len as i64);
                        // Go allows the high bound up to cap(s).
                        if lo_v < 0 || hi_v < lo_v || hi_v as usize > s.cap() {
                            return Err(ExecError::OutOfBounds {
                                index: hi_v,
                                len: s.cap(),
                            });
                        }
                        Ok(Value::slice(SliceVal {
                            cells: s.cells.clone(),
                            obj: s.obj,
                            offset: s.offset + lo_v as usize,
                            len: (hi_v - lo_v) as usize,
                            elem_size: s.elem_size,
                        }))
                    }
                    Value::Nil => {
                        if lo_v == 0 && hi_raw.unwrap_or(0) == 0 {
                            Ok(Value::Nil)
                        } else {
                            Err(ExecError::NilDeref)
                        }
                    }
                    _ => Err(ExecError::Internal("reslice of non-slice".into())),
                }
            }
            ExprKind::Call { .. } => {
                let mut out = self.eval_multi(e, 1)?;
                Ok(out.pop().expect("arity checked"))
            }
            ExprKind::Builtin {
                kind,
                ty_args,
                args,
            } => self.builtin(e, *kind, ty_args, args),
            ExprKind::StructLit { name, fields } => {
                let mut values = Vec::with_capacity(fields.len());
                for f in fields {
                    values.push(self.eval(f)?);
                }
                self.rt.tick(1);
                let _ = name;
                Ok(Value::struct_of(values))
            }
        }
    }

    fn addr_of(&mut self, operand: &Expr) -> Result<Value> {
        match &operand.kind {
            ExprKind::Ident(_) => {
                self.rt.tick(1);
                let var = self
                    .res
                    .def_of(operand.id)
                    .ok_or_else(|| ExecError::Internal("unresolved ident".into()))?;
                for frame in self.frames.iter().rev() {
                    if let Some(slot) = frame.slots.get(&var) {
                        return match slot {
                            Slot::Boxed(cell, obj) => Ok(Value::ptr(PtrVal {
                                cell: cell.clone(),
                                obj: *obj,
                            })),
                            Slot::Plain(_) => Err(ExecError::Internal(format!(
                                "address taken of unboxed variable {}",
                                self.res.var(var).name
                            ))),
                        };
                    }
                }
                Err(ExecError::Internal("variable not found".into()))
            }
            ExprKind::StructLit { .. } => {
                let v = self.eval(operand)?;
                self.rt.tick(1);
                let place = self.place_of(operand);
                let obj = if place == AllocPlace::Heap {
                    let size = self
                        .types
                        .expr(operand.id)
                        .map(|t| self.types.inline_size(t))
                        .unwrap_or(8);
                    Some(self.new_obj_at(size, Category::Other, Some(operand.id)))
                } else {
                    self.rt.stack_alloc(Category::Other);
                    None
                };
                Ok(Value::ptr(PtrVal {
                    cell: Rc::new(RefCell::new(v)),
                    obj,
                }))
            }
            ExprKind::Unary {
                op: UnOp::Deref,
                operand: inner,
            } => {
                // `&*p` evaluates to `p`; the `&` node still ticks (the
                // lowering emits its tick ahead of the inner expression).
                self.rt.tick(1);
                self.eval(inner)
            }
            other => Err(ExecError::Unsupported(format!(
                "interior pointers (&{other:?}) are not supported by the VM"
            ))),
        }
    }

    fn builtin(
        &mut self,
        e: &Expr,
        kind: Builtin,
        ty_args: &[Type],
        args: &[Expr],
    ) -> Result<Value> {
        match kind {
            Builtin::Make => {
                let ty = &ty_args[0];
                match ty {
                    Type::Slice(elem) => {
                        let len = self.eval_int(&args[0])?.max(0) as usize;
                        let cap = if args.len() > 1 {
                            (self.eval_int(&args[1])?.max(0) as usize).max(len)
                        } else {
                            len
                        };
                        self.rt.tick(1);
                        let elem_size = self.types.inline_size(elem);
                        let zero = self.zero_value(elem);
                        self.make_slice(e, len, cap, elem_size, zero)
                    }
                    Type::Map(_, v) => {
                        self.rt.tick(1);
                        let default = self.zero_value(v);
                        let entry_size = 16 + self.types.inline_size(v);
                        self.make_map(e, default, entry_size)
                    }
                    _ => Err(ExecError::Internal("make of bad type".into())),
                }
            }
            Builtin::New => {
                self.rt.tick(1);
                let ty = &ty_args[0];
                let zero = self.zero_value(ty);
                let place = self.place_of(e);
                let obj = if place == AllocPlace::Heap {
                    let size = self.types.inline_size(ty);
                    Some(self.new_obj_at(size, Category::Other, Some(e.id)))
                } else {
                    self.rt.stack_alloc(Category::Other);
                    None
                };
                Ok(Value::ptr(PtrVal {
                    cell: Rc::new(RefCell::new(zero)),
                    obj,
                }))
            }
            Builtin::Append => {
                let sv = self.eval(&args[0])?;
                let item = self.eval(&args[1])?;
                self.rt.tick(1);
                let elem_size = match self.types.expr(args[0].id) {
                    Some(Type::Slice(elem)) => self.types.inline_size(elem),
                    _ => 8,
                };
                self.append(sv, item, elem_size, e.id)
            }
            Builtin::Len => {
                let v = self.eval(&args[0])?;
                self.rt.tick(1);
                match v {
                    Value::Slice(s) => Ok(Value::Int(s.len as i64)),
                    Value::Map(m) => Ok(Value::Int(m.data.borrow().len() as i64)),
                    Value::Str(s) => Ok(Value::Int(s.len() as i64)),
                    Value::Nil => Ok(Value::Int(0)),
                    _ => Err(ExecError::Internal("len of bad value".into())),
                }
            }
            Builtin::Cap => {
                let v = self.eval(&args[0])?;
                self.rt.tick(1);
                match v {
                    Value::Slice(s) => Ok(Value::Int(s.cap() as i64)),
                    Value::Nil => Ok(Value::Int(0)),
                    _ => Err(ExecError::Internal("cap of bad value".into())),
                }
            }
            Builtin::Delete => {
                let mv = self.eval(&args[0])?;
                let kv = self.eval(&args[1])?;
                self.rt.tick(1);
                if let Value::Map(m) = mv {
                    let key = kv
                        .as_key()
                        .ok_or_else(|| ExecError::Internal("bad map key".into()))?;
                    self.rt.tick(2);
                    self.shadow_access_map(&m, "map delete");
                    m.data.borrow_mut().remove(&key);
                }
                Ok(Value::Int(0))
            }
            Builtin::Panic => {
                let v = self.eval(&args[0])?;
                self.rt.tick(1);
                Err(ExecError::Panic(v.display()))
            }
            Builtin::Print => {
                let values = args
                    .iter()
                    .map(|a| self.eval(a))
                    .collect::<Result<Vec<_>>>()?;
                self.rt.tick(1);
                self.do_print(&values);
                Ok(Value::Int(0))
            }
            Builtin::Itoa => {
                let v = self.eval_int(&args[0])?;
                self.rt.tick(1);
                Ok(Value::Str(Rc::from(v.to_string().as_str())))
            }
        }
    }

    fn do_print(&mut self, values: &[Value]) {
        let line: Vec<String> = values.iter().map(Value::display).collect();
        self.output.push_str(&line.join(" "));
        self.output.push('\n');
    }

    fn make_slice(
        &mut self,
        site: &Expr,
        len: usize,
        cap: usize,
        elem_size: u64,
        zero: Value,
    ) -> Result<Value> {
        let cap = cap.max(1);
        let place = self.place_of(site);
        let obj = if place == AllocPlace::Heap {
            Some(self.new_obj_at(
                (cap as u64 * elem_size).max(8),
                Category::Slice,
                Some(site.id),
            ))
        } else {
            self.rt.stack_alloc(Category::Slice);
            None
        };
        Ok(Value::slice(SliceVal {
            cells: Rc::new(RefCell::new(vec![zero; cap])),
            obj,
            offset: 0,
            len,
            elem_size,
        }))
    }

    fn make_map(&mut self, site: &Expr, default: Value, entry_size: u64) -> Result<Value> {
        let place = self.place_of(site);
        let obj = if place == AllocPlace::Heap {
            Some(self.new_obj_at(minigo_escape::MAP_BASE_BYTES, Category::Map, Some(site.id)))
        } else {
            self.rt.stack_alloc(Category::Map);
            None
        };
        Ok(Value::map(MapVal {
            data: Rc::new(RefCell::new(MapData {
                entries: Vec::new(),
                index: crate::fxhash::FxHashMap::default(),
                buckets_obj: None,
                bucket_cap: 8,
                default,
                entry_size,
                origin: Some(site.id),
                poisoned: false,
            })),
            obj,
        }))
    }

    fn append(
        &mut self,
        sv: Value,
        item: Value,
        elem_size: u64,
        site: minigo_syntax::ExprId,
    ) -> Result<Value> {
        self.rt.tick(2);
        match sv {
            Value::Nil => {
                // Appending to a nil slice allocates a fresh heap array
                // (runtime-managed, §4.6.1).
                let cap = 8;
                let obj = self.new_obj_at(cap as u64 * elem_size, Category::Slice, Some(site));
                let mut cells = vec![item];
                cells.resize(cap, Value::Int(0));
                Ok(Value::slice(SliceVal {
                    cells: Rc::new(RefCell::new(cells)),
                    obj: Some(obj),
                    offset: 0,
                    len: 1,
                    elem_size,
                }))
            }
            Value::Slice(mut s) => {
                self.shadow_access(s.obj, "append");
                if s.len < s.cap() {
                    let at = s.offset + s.len;
                    s.cells.borrow_mut()[at] = item;
                    Rc::make_mut(&mut s).len += 1;
                    Ok(Value::Slice(s))
                } else {
                    // Grow: a fresh heap array; the old one is left to GC
                    // (other slices may still reference it).
                    let new_cap = (s.cap() * 2).max(8);
                    let obj =
                        self.new_obj_at(new_cap as u64 * elem_size, Category::Slice, Some(site));
                    let mut cells: Vec<Value> =
                        s.cells.borrow()[s.offset..s.offset + s.len].to_vec();
                    cells.push(item);
                    cells.resize(new_cap, Value::Int(0));
                    Ok(Value::slice(SliceVal {
                        cells: Rc::new(RefCell::new(cells)),
                        obj: Some(obj),
                        offset: 0,
                        len: s.len + 1,
                        elem_size,
                    }))
                }
            }
            _ => Err(ExecError::Internal("append to non-slice".into())),
        }
    }

    fn map_insert(&mut self, m: &MapVal, key: Key, value: Value) -> Result<()> {
        self.rt.tick(3);
        self.shadow_access_map(m, "map insert");
        self.barrier_store_map(m);
        let (is_new, needs_growth) = {
            let data = m.data.borrow();
            if data.poisoned {
                return Err(ExecError::PoisonedRead);
            }
            let is_new = data.get(&key).is_none();
            (is_new, is_new && data.len() + 1 > data.bucket_cap)
        };
        if needs_growth {
            // §4.6.2: the map grows; the old bucket array is exclusively
            // owned and (under GoFree) explicitly freed.
            let (old, new_cap, entry_size, origin) = {
                let mut data = m.data.borrow_mut();
                let new_cap = data.bucket_cap * 2;
                data.bucket_cap = new_cap;
                (
                    data.buckets_obj.take(),
                    new_cap,
                    data.entry_size,
                    data.origin,
                )
            };
            let new_obj = self.new_obj_at(new_cap as u64 * entry_size, Category::Map, origin);
            m.data.borrow_mut().buckets_obj = Some(new_obj);
            if let Some(old) = old {
                if self.cfg.grow_map_free_old {
                    let (_, poison) = self.free_obj(old, FreeSource::MapGrowOld);
                    if poison {
                        // Poisoning old buckets corrupts nothing the map
                        // still uses: entries were evacuated. Nothing to do.
                    }
                } else {
                    // Plain Go: the old buckets become garbage for GC; we
                    // simply drop the strong reference.
                    // (The object stays in `objects` until swept.)
                    let _ = old;
                }
            }
        }
        let _ = is_new;
        m.data.borrow_mut().insert(key, value);
        Ok(())
    }

    fn binop(&mut self, op: BinOp, l: Value, r: Value) -> Result<Value> {
        binop_rt(&mut self.rt, op, l, r)
    }

    // ---- lvalue stores ----

    fn store(&mut self, lv: &Expr, value: Value) -> Result<()> {
        match &lv.kind {
            ExprKind::Ident(_) => {
                let var = self
                    .res
                    .def_of(lv.id)
                    .ok_or_else(|| ExecError::Internal("unresolved ident".into()))?;
                self.write_var(var, value)
            }
            ExprKind::Unary {
                op: UnOp::Deref,
                operand,
            } => match self.eval(operand)? {
                Value::Ptr(p) => {
                    self.shadow_access(p.obj, "pointer deref write");
                    self.barrier_store(p.obj);
                    *p.cell.borrow_mut() = value;
                    Ok(())
                }
                Value::Nil => Err(ExecError::NilDeref),
                _ => Err(ExecError::Internal("store through non-pointer".into())),
            },
            ExprKind::Field { base, name } => {
                let bv = self.eval(base)?;
                match bv {
                    Value::Ptr(p) => {
                        // Through-pointer store: mutate in place.
                        self.shadow_access(p.obj, "field write");
                        self.barrier_store(p.obj);
                        let sname = self.struct_name_of(base, true)?;
                        let idx = self.field_index(&sname, name)?;
                        let mut target = p.cell.borrow_mut();
                        match &mut *target {
                            Value::Struct(fields) => {
                                Rc::make_mut(fields)[idx] = value;
                                Ok(())
                            }
                            Value::Poison => Err(ExecError::PoisonedRead),
                            _ => Err(ExecError::Internal("field store on non-struct".into())),
                        }
                    }
                    Value::Struct(mut fields) => {
                        // Value semantics: copy, modify, write back.
                        let sname = self.struct_name_of(base, false)?;
                        let idx = self.field_index(&sname, name)?;
                        Rc::make_mut(&mut fields)[idx] = value;
                        self.store(base, Value::Struct(fields))
                    }
                    Value::Nil => Err(ExecError::NilDeref),
                    Value::Poison => Err(ExecError::PoisonedRead),
                    _ => Err(ExecError::Internal("field store on non-struct".into())),
                }
            }
            ExprKind::Index { base, index } => {
                let bv = self.eval(base)?;
                match bv {
                    Value::Slice(s) => {
                        let i = self.eval_int(index)?;
                        if i < 0 || i as usize >= s.len {
                            return Err(ExecError::OutOfBounds {
                                index: i,
                                len: s.len,
                            });
                        }
                        self.shadow_access(s.obj, "slice index write");
                        self.barrier_store(s.obj);
                        s.cells.borrow_mut()[s.offset + i as usize] = value;
                        Ok(())
                    }
                    Value::Map(m) => {
                        let kv = self.eval(index)?;
                        let key = kv
                            .as_key()
                            .ok_or_else(|| ExecError::Internal("bad map key".into()))?;
                        self.map_insert(&m, key, value)
                    }
                    Value::Nil => Err(ExecError::NilDeref),
                    _ => Err(ExecError::Internal("store into non-indexable".into())),
                }
            }
            _ => Err(ExecError::Internal("bad lvalue".into())),
        }
    }

    // ---- helpers ----

    fn auto_deref_struct(&self, v: Value, base: &Expr) -> Result<(Rc<Vec<Value>>, String)> {
        match v {
            Value::Struct(fields) => {
                let name = self.struct_name_of(base, false)?;
                Ok((fields, name))
            }
            Value::Ptr(p) => {
                let name = self.struct_name_of(base, true)?;
                let inner = p.cell.borrow().clone();
                match inner {
                    Value::Struct(fields) => Ok((fields, name)),
                    Value::Poison => Err(ExecError::PoisonedRead),
                    _ => Err(ExecError::Internal("field of non-struct".into())),
                }
            }
            Value::Nil => Err(ExecError::NilDeref),
            Value::Poison => Err(ExecError::PoisonedRead),
            _ => Err(ExecError::Internal("field of non-struct".into())),
        }
    }

    fn struct_name_of(&self, base: &Expr, through_ptr: bool) -> Result<String> {
        match self.types.expr(base.id) {
            Some(Type::Named(n)) if !through_ptr => Ok(n.clone()),
            Some(Type::Ptr(inner)) if through_ptr => match &**inner {
                Type::Named(n) => Ok(n.clone()),
                _ => Err(ExecError::Internal("pointer to non-struct".into())),
            },
            other => Err(ExecError::Internal(format!(
                "no struct type for base: {other:?}"
            ))),
        }
    }

    fn field_index(&self, sname: &str, field: &str) -> Result<usize> {
        self.types
            .fields_of(sname)
            .and_then(|fs| fs.iter().position(|(f, _)| f == field))
            .ok_or_else(|| ExecError::Internal(format!("no field {field} on {sname}")))
    }

    fn zero_value(&self, ty: &Type) -> Value {
        match ty {
            Type::Int => Value::Int(0),
            Type::Bool => Value::Bool(false),
            Type::Str => Value::Str(Rc::from("")),
            Type::Ptr(_) | Type::Slice(_) | Type::Map(_, _) => Value::Nil,
            Type::Named(name) => {
                let fields = self
                    .types
                    .fields_of(name)
                    .map(|fs| fs.to_vec())
                    .unwrap_or_default();
                Value::struct_of(fields.iter().map(|(_, t)| self.zero_value(t)).collect())
            }
        }
    }
}

fn make_slot(value: Value, boxed: bool) -> Slot {
    if boxed {
        Slot::Boxed(Rc::new(RefCell::new(value)), None)
    } else {
        Slot::Plain(value)
    }
}

/// Applies a binary operator, charging string-concatenation ticks on the
/// given runtime. Shared by both execution engines.
#[inline]
pub(crate) fn binop_rt(rt: &mut Runtime, op: BinOp, l: Value, r: Value) -> Result<Value> {
    use BinOp::*;
    if matches!(l, Value::Poison) || matches!(r, Value::Poison) {
        return Err(ExecError::PoisonedRead);
    }
    match (op, &l, &r) {
        (Add, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
        (Add, Value::Str(a), Value::Str(b)) => {
            let mut s = a.to_string();
            s.push_str(b);
            rt.tick(1 + (s.len() as u64) / 16);
            Ok(Value::Str(Rc::from(s.as_str())))
        }
        (Sub, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_sub(*b))),
        (Mul, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_mul(*b))),
        (Div, Value::Int(a), Value::Int(b)) => {
            if *b == 0 {
                Err(ExecError::DivByZero)
            } else {
                Ok(Value::Int(a.wrapping_div(*b)))
            }
        }
        (Rem, Value::Int(a), Value::Int(b)) => {
            if *b == 0 {
                Err(ExecError::DivByZero)
            } else {
                Ok(Value::Int(a.wrapping_rem(*b)))
            }
        }
        (Lt, Value::Int(a), Value::Int(b)) => Ok(Value::Bool(a < b)),
        (Le, Value::Int(a), Value::Int(b)) => Ok(Value::Bool(a <= b)),
        (Gt, Value::Int(a), Value::Int(b)) => Ok(Value::Bool(a > b)),
        (Ge, Value::Int(a), Value::Int(b)) => Ok(Value::Bool(a >= b)),
        (Lt, Value::Str(a), Value::Str(b)) => Ok(Value::Bool(a < b)),
        (Le, Value::Str(a), Value::Str(b)) => Ok(Value::Bool(a <= b)),
        (Gt, Value::Str(a), Value::Str(b)) => Ok(Value::Bool(a > b)),
        (Ge, Value::Str(a), Value::Str(b)) => Ok(Value::Bool(a >= b)),
        (Eq, _, _) => Ok(Value::Bool(value_eq(&l, &r)?)),
        (Ne, _, _) => Ok(Value::Bool(!value_eq(&l, &r)?)),
        _ => Err(ExecError::Internal(format!(
            "bad operands for {op}: {} and {}",
            l.display(),
            r.display()
        ))),
    }
}

#[inline]
pub(crate) fn check_poison(v: Value) -> Result<Value> {
    if matches!(v, Value::Poison) {
        Err(ExecError::PoisonedRead)
    } else {
        Ok(v)
    }
}

#[inline]
pub(crate) fn value_eq(a: &Value, b: &Value) -> Result<bool> {
    Ok(match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Nil, Value::Nil) => true,
        (Value::Nil, Value::Ptr(_) | Value::Slice(_) | Value::Map(_))
        | (Value::Ptr(_) | Value::Slice(_) | Value::Map(_), Value::Nil) => false,
        (Value::Ptr(x), Value::Ptr(y)) => Rc::ptr_eq(&x.cell, &y.cell),
        (Value::Map(x), Value::Map(y)) => Rc::ptr_eq(&x.data, &y.data),
        (Value::Struct(xs), Value::Struct(ys)) => {
            if xs.len() != ys.len() {
                return Ok(false);
            }
            for (x, y) in xs.iter().zip(ys.iter()) {
                if !value_eq(x, y)? {
                    return Ok(false);
                }
            }
            true
        }
        (Value::Slice(_), Value::Slice(_)) => {
            return Err(ExecError::Internal(
                "slices are only comparable to nil".into(),
            ));
        }
        _ => false,
    })
}

/// Marks every heap object reachable from `v`. Generic over the table
/// hashers so both engines can pass their own (the bytecode engine's
/// tables use [`crate::fxhash::FxHasher`]).
pub(crate) fn mark_value<S, S2>(
    v: &Value,
    objects: &HashMap<ObjId, ObjAddr, S>,
    marked: &mut HashSet<ObjAddr>,
    seen: &mut HashSet<usize, S2>,
) where
    S: std::hash::BuildHasher,
    S2: std::hash::BuildHasher,
{
    match v {
        Value::Struct(fields) => {
            for f in fields.iter() {
                mark_value(f, objects, marked, seen);
            }
        }
        Value::Ptr(p) => {
            if let Some(obj) = p.obj {
                if let Some(&addr) = objects.get(&obj) {
                    marked.insert(addr);
                }
            }
            if seen.insert(Rc::as_ptr(&p.cell) as usize) {
                mark_value(&p.cell.borrow(), objects, marked, seen);
            }
        }
        Value::Slice(s) => {
            if let Some(obj) = s.obj {
                if let Some(&addr) = objects.get(&obj) {
                    marked.insert(addr);
                }
            }
            if seen.insert(Rc::as_ptr(&s.cells) as usize) {
                for c in s.cells.borrow().iter() {
                    mark_value(c, objects, marked, seen);
                }
            }
        }
        Value::Map(m) => {
            if let Some(obj) = m.obj {
                if let Some(&addr) = objects.get(&obj) {
                    marked.insert(addr);
                }
            }
            if seen.insert(Rc::as_ptr(&m.data) as usize) {
                let data = m.data.borrow();
                if let Some(obj) = data.buckets_obj {
                    if let Some(&addr) = objects.get(&obj) {
                        marked.insert(addr);
                    }
                }
                for (_, v) in &data.entries {
                    mark_value(v, objects, marked, seen);
                }
            }
        }
        _ => {}
    }
}

pub(crate) fn collect_addr_taken_block(block: &Block, res: &Resolution, out: &mut HashSet<VarId>) {
    for stmt in &block.stmts {
        collect_addr_taken_stmt(stmt, res, out);
    }
}

fn collect_addr_taken_stmt(stmt: &Stmt, res: &Resolution, out: &mut HashSet<VarId>) {
    let mut visit_expr = |e: &Expr| collect_addr_taken_expr(e, res, out);
    match &stmt.kind {
        StmtKind::VarDecl { init, .. } | StmtKind::ShortDecl { init, .. } => {
            init.iter().for_each(&mut visit_expr)
        }
        StmtKind::Assign { lhs, rhs, .. } => {
            lhs.iter().for_each(&mut visit_expr);
            rhs.iter().for_each(&mut visit_expr);
        }
        StmtKind::If { cond, then, els } => {
            visit_expr(cond);
            collect_addr_taken_block(then, res, out);
            if let Some(els) = els {
                collect_addr_taken_stmt(els, res, out);
            }
        }
        StmtKind::For {
            init,
            cond,
            post,
            body,
        } => {
            if let Some(init) = init {
                collect_addr_taken_stmt(init, res, out);
            }
            if let Some(cond) = cond {
                collect_addr_taken_expr(cond, res, out);
            }
            if let Some(post) = post {
                collect_addr_taken_stmt(post, res, out);
            }
            collect_addr_taken_block(body, res, out);
        }
        StmtKind::Return { exprs } => exprs.iter().for_each(&mut visit_expr),
        StmtKind::Expr { expr } => visit_expr(expr),
        StmtKind::BlockStmt { block } => collect_addr_taken_block(block, res, out),
        StmtKind::Defer { call } => visit_expr(call),
        StmtKind::Switch {
            subject,
            cases,
            default,
        } => {
            collect_addr_taken_expr(subject, res, out);
            for case in cases {
                for v in &case.values {
                    collect_addr_taken_expr(v, res, out);
                }
                collect_addr_taken_block(&case.body, res, out);
            }
            if let Some(default) = default {
                collect_addr_taken_block(default, res, out);
            }
        }
        StmtKind::Break | StmtKind::Continue => {}
        StmtKind::Free { target, .. } => visit_expr(target),
    }
}

fn collect_addr_taken_expr(e: &Expr, res: &Resolution, out: &mut HashSet<VarId>) {
    match &e.kind {
        ExprKind::Unary {
            op: UnOp::Addr,
            operand,
        } => {
            if let ExprKind::Ident(_) = &operand.kind {
                if let Some(v) = res.def_of(operand.id) {
                    out.insert(v);
                }
            }
            collect_addr_taken_expr(operand, res, out);
        }
        ExprKind::Unary { operand, .. } => collect_addr_taken_expr(operand, res, out),
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_addr_taken_expr(lhs, res, out);
            collect_addr_taken_expr(rhs, res, out);
        }
        ExprKind::Field { base, .. } => collect_addr_taken_expr(base, res, out),
        ExprKind::Index { base, index } => {
            collect_addr_taken_expr(base, res, out);
            collect_addr_taken_expr(index, res, out);
        }
        ExprKind::SliceExpr { base, lo, hi } => {
            collect_addr_taken_expr(base, res, out);
            for bound in [lo, hi].into_iter().flatten() {
                collect_addr_taken_expr(bound, res, out);
            }
        }
        ExprKind::Call { args, .. } | ExprKind::Builtin { args, .. } => {
            args.iter()
                .for_each(|a| collect_addr_taken_expr(a, res, out));
        }
        ExprKind::StructLit { fields, .. } => {
            fields
                .iter()
                .for_each(|f| collect_addr_taken_expr(f, res, out));
        }
        _ => {}
    }
}

// The `Func` import is used in signatures via Program lookups.
#[allow(unused)]
fn _assert_types(_: &Func) {}

#[cfg(test)]
mod tests {
    use super::*;
    use minigo_escape::{analyze, instrument, AnalyzeOptions};
    use minigo_runtime::PoisonMode;
    use minigo_syntax::frontend;

    fn run_src_with(src: &str, opts: AnalyzeOptions, cfg: VmConfig) -> Result<RunOutcome> {
        let (program, mut res, types) = frontend(src).expect("frontend");
        let analysis = analyze(&program, &res, &types, &opts);
        let instrumented = instrument(&program, &mut res, &analysis);
        run(&instrumented, &res, &types, &analysis, cfg)
    }

    fn run_src(src: &str) -> RunOutcome {
        let cfg = VmConfig {
            runtime: RuntimeConfig {
                migrate_prob: 0.0,
                jitter: 0.0,
                ..RuntimeConfig::default()
            },
            ..VmConfig::default()
        };
        match run_src_with(src, AnalyzeOptions::default(), cfg) {
            Ok(out) => out,
            Err(e) => panic!("run failed: {e}\nsource:\n{src}"),
        }
    }

    #[test]
    fn arithmetic_and_print() {
        let out = run_src("func main() { x := 2 + 3 * 4\n print(x, x % 5, x / 2) }\n");
        assert_eq!(out.output, "14 4 7\n");
    }

    #[test]
    fn control_flow_fib() {
        let out = run_src(
            "func fib(n int) int { if n < 2 { return n }\n return fib(n-1) + fib(n-2) }\nfunc main() { print(fib(10)) }\n",
        );
        assert_eq!(out.output, "55\n");
    }

    #[test]
    fn loops_break_continue() {
        let out = run_src(
            "func main() { sum := 0\n for i := 0; i < 10; i += 1 { if i == 3 { continue }\n if i == 7 { break }\n sum += i }\n print(sum) }\n",
        );
        assert_eq!(out.output, "18\n"); // 0+1+2+4+5+6
    }

    #[test]
    fn slices_share_backing() {
        let out =
            run_src("func main() { s := make([]int, 3)\n t := s\n t[1] = 42\n print(s[1]) }\n");
        assert_eq!(out.output, "42\n");
    }

    #[test]
    fn append_grows_and_preserves() {
        let out = run_src(
            "func main() { var s []int\n for i := 0; i < 20; i += 1 { s = append(s, i*i) }\n print(len(s), s[19], cap(s) >= 20) }\n",
        );
        assert_eq!(out.output, "20 361 true\n");
    }

    #[test]
    fn append_within_cap_aliases() {
        let out = run_src(
            "func main() { s := make([]int, 1, 4)\n t := append(s, 9)\n print(t[1], len(s), len(t)) }\n",
        );
        assert_eq!(out.output, "9 1 2\n");
    }

    #[test]
    fn maps_insert_lookup_delete() {
        let out = run_src(
            "func main() { m := make(map[string]int)\n m[\"a\"] = 1\n m[\"b\"] = 2\n m[\"a\"] = 3\n print(m[\"a\"], m[\"b\"], m[\"missing\"], len(m))\n delete(m, \"a\")\n print(len(m)) }\n",
        );
        assert_eq!(out.output, "3 2 0 2\n1\n");
    }

    #[test]
    fn map_growth_allocates_and_frees_old_buckets() {
        let out = run_src(
            "func main() { m := make(map[int]int)\n for i := 0; i < 100; i += 1 { m[i] = i }\n print(m[77], len(m)) }\n",
        );
        assert_eq!(out.output, "77 100\n");
        let grow_frees = out.metrics.freed_objects_by_source[FreeSource::MapGrowOld.index()];
        assert!(grow_frees >= 2, "expected grow-frees, got {grow_frees}");
    }

    #[test]
    fn pointers_read_write() {
        let out =
            run_src("func main() { x := 1\n p := &x\n *p = 41\n y := *p + 1\n print(x, y) }\n");
        assert_eq!(out.output, "41 42\n");
    }

    #[test]
    fn structs_are_values() {
        let out = run_src(
            "type P struct { x int\n y int }\nfunc main() { a := P{1, 2}\n b := a\n b.x = 99\n print(a.x, b.x) }\n",
        );
        assert_eq!(out.output, "1 99\n");
    }

    #[test]
    fn struct_through_pointer_shares() {
        let out = run_src(
            "type P struct { x int }\nfunc main() { p := &P{5}\n q := p\n q.x = 7\n print(p.x) }\n",
        );
        assert_eq!(out.output, "7\n");
    }

    #[test]
    fn multiple_return_values() {
        let out = run_src(
            "func divmod(a int, b int) (int, int) { return a / b, a % b }\nfunc main() { q, r := divmod(17, 5)\n print(q, r) }\n",
        );
        assert_eq!(out.output, "3 2\n");
    }

    #[test]
    fn named_results_and_bare_return() {
        let out = run_src(
            "func f(n int) (out int) { out = n * 2\n return }\nfunc main() { print(f(21)) }\n",
        );
        assert_eq!(out.output, "42\n");
    }

    #[test]
    fn defers_run_lifo_at_exit() {
        let out = run_src("func main() { defer print(1)\n defer print(2)\n print(3) }\n");
        assert_eq!(out.output, "3\n2\n1\n");
    }

    #[test]
    fn panic_unwinds_with_defers() {
        let src =
            "func boom() { defer print(\"deferred\")\n panic(\"bad\") }\nfunc main() { boom() }\n";
        let cfg = VmConfig::default();
        let err = run_src_with(src, AnalyzeOptions::default(), cfg).unwrap_err();
        assert_eq!(err, ExecError::Panic("bad".into()));
    }

    #[test]
    fn out_of_bounds_detected() {
        let src = "func main() { s := make([]int, 2)\n print(s[5]) }\n";
        let err = run_src_with(src, AnalyzeOptions::default(), VmConfig::default()).unwrap_err();
        assert!(matches!(err, ExecError::OutOfBounds { index: 5, len: 2 }));
    }

    #[test]
    fn nil_map_store_fails() {
        let src = "func main() { var m map[int]int\n m[1] = 2 }\n";
        let err = run_src_with(src, AnalyzeOptions::default(), VmConfig::default()).unwrap_err();
        assert_eq!(err, ExecError::NilDeref);
    }

    #[test]
    fn div_by_zero() {
        let src = "func main() { x := 1\n y := 0\n print(x / y) }\n";
        let err = run_src_with(src, AnalyzeOptions::default(), VmConfig::default()).unwrap_err();
        assert_eq!(err, ExecError::DivByZero);
    }

    #[test]
    fn string_ops() {
        let out = run_src(
            "func main() { a := \"go\" + \"free\"\n print(a, len(a), itoa(42) + \"!\") }\n",
        );
        assert_eq!(out.output, "gofree 6 42!\n");
    }

    #[test]
    fn tcfree_frees_local_slices() {
        let out = run_src(
            "func work(n int) int { s := make([]int, n)\n s[0] = n\n x := s[0]\n return x }\nfunc main() { total := 0\n for i := 0; i < 50; i += 1 { total += work(100 + i) }\n print(total) }\n",
        );
        assert_eq!(out.output, "6225\n");
        assert!(
            out.metrics.freed_bytes > 0,
            "inserted tcfrees reclaimed memory: {:?}",
            out.metrics
        );
        assert!(out.metrics.free_ratio() > 0.5);
    }

    #[test]
    fn go_mode_frees_nothing() {
        let src = "func work(n int) int { s := make([]int, n)\n s[0] = n\n x := s[0]\n return x }\nfunc main() { total := 0\n for i := 0; i < 50; i += 1 { total += work(100 + i) }\n print(total) }\n";
        let cfg = VmConfig {
            grow_map_free_old: false,
            ..VmConfig::default()
        };
        let out = run_src_with(src, AnalyzeOptions::go(), cfg).unwrap();
        assert_eq!(out.metrics.freed_bytes, 0);
        assert_eq!(out.metrics.tcfree_attempts, 0);
    }

    #[test]
    fn gc_collects_dead_objects() {
        // Allocate far past the GC trigger with everything dying young.
        let src = "func main() { for i := 0; i < 2000; i += 1 { s := make([]int, 100 + i % 3)\n s[0] = i } }\n";
        let cfg = VmConfig {
            runtime: RuntimeConfig {
                migrate_prob: 0.0,
                jitter: 0.0,
                min_heap: 64 * 1024,
                ..RuntimeConfig::default()
            },
            ..VmConfig::default()
        };
        // Run in plain Go mode so GC does all the work.
        let out = run_src_with(src, AnalyzeOptions::go(), cfg).unwrap();
        assert!(out.metrics.gcs >= 1, "GC ran: {:?}", out.metrics.gcs);
        assert!(out.metrics.heap_gced[Category::Slice.index()] > 0);
    }

    #[test]
    fn gofree_reduces_gcs_versus_go() {
        let src = "func work(n int) int { s := make([]int, n)\n s[0] = n\n x := s[0]\n return x }\nfunc main() { total := 0\n for i := 0; i < 3000; i += 1 { total += work(120) }\n print(total) }\n";
        let mk_cfg = || VmConfig {
            runtime: RuntimeConfig {
                migrate_prob: 0.0,
                jitter: 0.0,
                min_heap: 64 * 1024,
                ..RuntimeConfig::default()
            },
            ..VmConfig::default()
        };
        let go = run_src_with(src, AnalyzeOptions::go(), mk_cfg()).unwrap();
        let gofree = run_src_with(src, AnalyzeOptions::default(), mk_cfg()).unwrap();
        assert_eq!(go.output, gofree.output, "same program behaviour");
        assert!(
            gofree.metrics.gcs < go.metrics.gcs,
            "GoFree {} GCs vs Go {} GCs",
            gofree.metrics.gcs,
            go.metrics.gcs
        );
        assert!(gofree.metrics.free_ratio() > 0.5);
    }

    #[test]
    fn poison_mode_detects_unsound_free() {
        // Directly free a slice that is still used afterwards — the mock
        // tcfree (§6.8) must surface the bug as a poisoned read.
        let src =
            "func main() { n := 100\n s := make([]int, n)\n s[0] = 7\n tcfree(s)\n print(s[0]) }\n";
        let cfg = VmConfig {
            runtime: RuntimeConfig {
                poison: PoisonMode::Zero,
                migrate_prob: 0.0,
                ..RuntimeConfig::default()
            },
            ..VmConfig::default()
        };
        let err = run_src_with(src, AnalyzeOptions::go(), cfg).unwrap_err();
        assert_eq!(err, ExecError::PoisonedRead);
    }

    #[test]
    fn sanitizer_flags_use_after_free() {
        // The same unsound hand-written free, but caught by the shadow
        // heap instead of poison: the run completes (the stale read sees
        // the old bytes) and the violation is reported out-of-band.
        let src =
            "func main() { n := 100\n s := make([]int, n)\n s[0] = 7\n tcfree(s)\n print(s[0]) }\n";
        let cfg = VmConfig {
            runtime: RuntimeConfig {
                migrate_prob: 0.0,
                jitter: 0.0,
                ..RuntimeConfig::default()
            },
            sanitize: true,
            ..VmConfig::default()
        };
        let out = run_src_with(src, AnalyzeOptions::go(), cfg).unwrap();
        assert_eq!(out.output, "7\n", "stale read still sees old bytes");
        assert!(!out.violations.is_empty());
        assert_eq!(
            out.violations[0].kind,
            minigo_runtime::ViolationKind::UseAfterFree
        );
        assert_eq!(out.violations[0].op, "slice index read");
    }

    #[test]
    fn sanitizer_is_invisible_and_clean_on_sound_program() {
        // Instrumented (sound) frees: zero violations, and the observable
        // report is bit-identical with the sanitizer on or off.
        let src = "func work(n int) int { s := make([]int, n)\n s[0] = n\n x := s[0]\n return x }\nfunc main() { total := 0\n for i := 0; i < 50; i += 1 { total += work(100 + i) }\n print(total) }\n";
        let base = VmConfig {
            runtime: RuntimeConfig {
                migrate_prob: 0.0,
                jitter: 0.0,
                ..RuntimeConfig::default()
            },
            ..VmConfig::default()
        };
        let plain = run_src_with(src, AnalyzeOptions::default(), base.clone()).unwrap();
        let sanitized = run_src_with(
            src,
            AnalyzeOptions::default(),
            VmConfig {
                sanitize: true,
                ..base
            },
        )
        .unwrap();
        assert!(sanitized.violations.is_empty());
        assert_eq!(plain.output, sanitized.output);
        assert_eq!(plain.time, sanitized.time);
        assert_eq!(plain.steps, sanitized.steps);
        assert_eq!(
            format!("{:?}", plain.metrics),
            format!("{:?}", sanitized.metrics)
        );
        assert_eq!(plain.site_profile, sanitized.site_profile);
    }

    #[test]
    fn poison_mode_passes_on_sound_program() {
        // The instrumented frees are all sound, so poisoning must not
        // change observable behaviour.
        let src = "func work(n int) int { s := make([]int, n)\n s[0] = n\n x := s[0]\n return x }\nfunc main() { total := 0\n for i := 0; i < 50; i += 1 { total += work(100 + i) }\n print(total) }\n";
        let cfg = VmConfig {
            runtime: RuntimeConfig {
                poison: PoisonMode::Flip,
                migrate_prob: 0.0,
                ..RuntimeConfig::default()
            },
            ..VmConfig::default()
        };
        let out = run_src_with(src, AnalyzeOptions::default(), cfg).unwrap();
        assert_eq!(out.output, "6225\n");
    }

    #[test]
    fn stack_allocation_counted() {
        let out = run_src("func main() { s := make([]int, 10)\n s[0] = 1\n print(s[0]) }\n");
        assert_eq!(out.metrics.stack_allocs[Category::Slice.index()], 1);
        assert_eq!(out.metrics.heap_allocs[Category::Slice.index()], 0);
    }

    #[test]
    fn escaping_var_is_heap_accounted() {
        let src = "func mk() *int { x := 5\n return &x }\nfunc main() { p := mk()\n print(*p) }\n";
        let out = run_src(src);
        assert_eq!(out.output, "5\n");
        assert!(
            out.metrics.heap_allocs[Category::Other.index()] >= 1,
            "escaping x must be heap-accounted: {:?}",
            out.metrics.heap_allocs
        );
    }

    #[test]
    fn step_limit_stops_runaway() {
        let src = "func main() { for { } }\n";
        let cfg = VmConfig {
            step_limit: 10_000,
            ..VmConfig::default()
        };
        let err = run_src_with(src, AnalyzeOptions::default(), cfg).unwrap_err();
        assert_eq!(err, ExecError::StepLimit);
    }

    #[test]
    fn deterministic_across_runs() {
        let src = "func main() { m := make(map[int]int)\n for i := 0; i < 500; i += 1 { m[i % 50] = i }\n print(len(m)) }\n";
        let a = run_src(src);
        let b = run_src(src);
        assert_eq!(a.output, b.output);
        assert_eq!(a.time, b.time);
        assert_eq!(a.metrics.alloced_bytes, b.metrics.alloced_bytes);
    }
}
