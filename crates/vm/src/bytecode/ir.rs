//! The slot-indexed bytecode IR.
//!
//! A [`Module`] is the unit of lowering: one [`BFunc`] per source
//! function, a shared constant pool, and flat instruction vectors with
//! explicit jump targets. Variables are compile-time frame slots (dense
//! indices assigned per function), so the executing engine indexes a
//! `Vec` instead of hashing [`VarId`](minigo_syntax::VarId)s.
//!
//! Tick accounting is baked into the instructions: an instruction that
//! corresponds to an AST node the tree-walking interpreter would `eval`
//! charges that node's clock ticks when it executes. Tick *placement*
//! within a statement differs from the tree-walk (which charges on node
//! entry), but per-statement totals are identical, and the simulated
//! runtime's observable behaviour (GC pacing, RNG draws, metrics)
//! depends only on the allocation/free/safepoint sequence and on total
//! charged ticks — so the two engines produce identical outcomes.

use std::sync::Arc;

use minigo_syntax::{BinOp, Builtin, ExprId};

use crate::value::Value;

/// A lowered program: all functions plus the shared constant pool.
///
/// A `Module` is deliberately `Send + Sync` (statically asserted below):
/// the parallel experiment harness shares one compiled module across
/// worker threads by reference, so nothing in the IR may hold
/// thread-bound state. That is why the constant pool stores [`Const`]
/// (with `Arc<str>` strings) rather than runtime [`Value`]s (with
/// `Rc<str>`); each run materializes thread-local `Value`s from the pool
/// at VM startup.
#[derive(Debug, Clone)]
pub struct Module {
    /// Functions, indexed by `FuncId::index()`.
    pub funcs: Vec<BFunc>,
    /// Index of `main` in `funcs`.
    pub main: usize,
    /// The constant pool. Holds literals and statically computed zero
    /// values; the engine materializes them into per-run [`Value`]s that
    /// are cloned onto the operand stack.
    pub consts: Vec<Const>,
    /// Number of inline-cache slots referenced by the instruction
    /// stream. Zero straight out of lowering; the optimizer tier
    /// ([`super::optimize`]) assigns a slot to every cache-carrying
    /// instruction it installs, and the engine sizes its per-run cache
    /// vector from this.
    pub ic_slots: u32,
}

impl Module {
    /// Total number of instructions across all functions.
    pub fn instr_count(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }
}

// A compiled module must remain shareable across the parallel harness's
// worker threads; adding an `Rc`/`RefCell` anywhere in the IR breaks
// this at compile time rather than at run time.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Module>();
};

/// A constant-pool entry: the thread-shareable (`Send + Sync`) subset of
/// [`Value`] the lowering can produce — literals and statically computed
/// zero values. Reference-typed zeros are `Nil`, so slices/maps/pointers
/// never appear here.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// Integer literal or zero.
    Int(i64),
    /// Boolean literal or zero.
    Bool(bool),
    /// String literal or the empty-string zero.
    Str(Arc<str>),
    /// Zero value of pointer/slice/map types.
    Nil,
    /// Struct zero value: field zeros in declaration order.
    Struct(Vec<Const>),
}

impl Const {
    /// Materializes the per-run runtime [`Value`] for this constant.
    /// Called once per constant per run (the engine keeps the result and
    /// clones it onto the operand stack), so per-run `Rc` sharing of
    /// string payloads matches the previous `Value`-pool behaviour.
    pub fn to_value(&self) -> Value {
        match self {
            Const::Int(i) => Value::Int(*i),
            Const::Bool(b) => Value::Bool(*b),
            Const::Str(s) => Value::Str(std::rc::Rc::from(&**s)),
            Const::Nil => Value::Nil,
            Const::Struct(fields) => Value::struct_of(fields.iter().map(Const::to_value).collect()),
        }
    }
}

/// One lowered function.
#[derive(Debug, Clone)]
pub struct BFunc {
    /// Source name (for error messages).
    pub name: String,
    /// Number of frame slots (parameters + results + locals).
    pub nslots: u32,
    /// Parameter slots in declaration order, with their boxed-ness
    /// (address-taken variables live in shared cells).
    pub params: Vec<(u32, bool)>,
    /// Result slots in declaration order: slot, boxed-ness, and the
    /// constant-pool index of the zero value they start as. `None` when
    /// the front end left the result untyped (calling such a function is
    /// a runtime error, exactly as in the tree-walk).
    pub results: Vec<(u32, bool, Option<u32>)>,
    /// Slot names, for error messages.
    pub slot_names: Vec<String>,
    /// The instruction stream. Always ends with [`Instr::Ret`].
    pub code: Vec<Instr>,
}

/// A bytecode instruction.
///
/// Stack effects are written `[before] -> [after]` with the top of the
/// stack on the right.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    // ---- control ----
    /// Statement-boundary safepoint: count a step, charge one tick, and
    /// collect garbage if the pacer requested it.
    Safepoint,
    /// Charge `n` clock ticks.
    Tick(u32),
    /// Unconditional jump to an instruction index.
    Jump(usize),
    /// `[cond] -> []` — jump if the popped bool is false. Errors if the
    /// value is not a bool (the tree-walk's `eval_bool`).
    JumpIfFalse(usize),
    /// `[lhs] -> [false]?` — short-circuit `&&`: if the popped bool is
    /// false, push `false` back and jump past the rhs. Charges the
    /// binary node's tick.
    AndJump(usize),
    /// `[lhs] -> [true]?` — short-circuit `||`.
    OrJump(usize),
    /// `[v] -> [v]` — error unless the top of stack is a bool (the type
    /// check `eval_bool` applies to `&&`/`||` right operands).
    AssertBool,
    /// `[subject, case] -> [subject]` or `[] + jump` — switch dispatch:
    /// pop the case value, compare to the subject below it; on a match
    /// pop the subject too and jump to the case body.
    CaseJump(usize),
    /// Return from the current function. Defers and result-slot reads
    /// are handled by the engine's call protocol.
    Ret,
    /// `[args...] -> [results...]` — call a function: pop `nargs`
    /// arguments, charge call ticks (2, plus 1 more in single-value
    /// expression position), recurse. `want == u32::MAX` discards the
    /// results (expression statements); otherwise the result count must
    /// equal `want` and the results are pushed in order.
    Call {
        /// Callee function index.
        fid: usize,
        /// Argument count.
        nargs: u32,
        /// Expected result arity, or `u32::MAX` for "any, discarded".
        want: u32,
        /// Whether the call sits in single-value expression position
        /// (charges the expression node's extra tick).
        value_pos: bool,
    },
    /// Record a deferred call of a user function: pop `nargs` arguments.
    DeferFunc {
        /// Callee function index.
        fid: usize,
        /// Argument count.
        nargs: u32,
    },
    /// Record a deferred builtin: pop `nargs` arguments.
    DeferBuiltin {
        /// The builtin.
        builtin: Builtin,
        /// Argument count.
        nargs: u32,
    },

    // ---- stack & slots ----
    /// `[] -> [const]` — push a constant and charge the literal node's
    /// tick.
    Const(u32),
    /// `[] -> [const]` — push a constant without charging ticks (used
    /// for implicit values the tree-walk never evaluates: zero-value
    /// initializers and absent reslice bounds).
    ConstRaw(u32),
    /// `[] -> [v]` — read a slot (through its cell when boxed) with a
    /// poison check; charges the identifier node's tick.
    LoadSlot(u32),
    /// `[v] -> []` — write a slot (through its cell when boxed).
    StoreSlot(u32),
    /// `[v] -> []` — declare a variable: allocate a fresh cell when
    /// boxed, charging heap or stack accounting per the escape
    /// analysis's static decision.
    Declare {
        /// Destination slot.
        slot: u32,
        /// Whether the variable is address-taken (boxed).
        boxed: bool,
        /// Whether the box is heap-accounted.
        heap: bool,
        /// Heap object size when `heap`.
        size: u64,
    },
    /// `[v] -> []` — discard `n` values.
    Pop(u32),
    /// Reverse the top `n` stack values (so multi-value results pop in
    /// declaration order).
    ReverseN(u32),

    // ---- operators ----
    /// `[v] -> [-v]` — integer negation; charges the unary node's tick.
    Neg,
    /// `[v] -> [!v]` — boolean not.
    Not,
    /// `[l, r] -> [l op r]` — binary operator, charging the node's tick
    /// (string concatenation charges extra inside, as in the tree-walk).
    Bin(BinOp),
    /// `[l, r] -> [l op r]` — binary operator *without* the node tick:
    /// compound assignments apply the operator directly.
    BinRaw(BinOp),

    // ---- memory ----
    /// `[] -> [ptr]` — address of a boxed slot; charges the `&x` node's
    /// tick.
    AddrOfSlot(u32),
    /// `[v] -> [ptr]` — box a value into a fresh cell (`&T{...}`),
    /// charging heap or stack accounting; charges the node's tick.
    AllocBox {
        /// Heap-allocated per the escape analysis.
        heap: bool,
        /// Object size when heap-allocated.
        size: u64,
        /// Profile attribution site.
        site: ExprId,
    },
    /// `[ptr] -> [*ptr]` — pointer load with poison check.
    Deref,
    /// `[v, ptr] -> []` — pointer store.
    DerefSet,
    /// `[base] -> [field]` — struct field read with auto-deref decided
    /// statically.
    GetField {
        /// Field index in declaration order.
        idx: u32,
        /// Whether the base is a pointer (deref through the cell).
        through_ptr: bool,
    },
    /// `[v, base] -> [base']` — value-semantics field store: writes the
    /// field into the popped struct and pushes the updated struct (the
    /// lowering then stores it back into the base lvalue).
    StructSetField {
        /// Field index.
        idx: u32,
    },
    /// `[v, ptr] -> []` — through-pointer field store: mutate in place.
    FieldSetPtr {
        /// Field index.
        idx: u32,
    },
    /// `[.., base] -> [.., base]` — error out on nil (or non-indexable)
    /// index bases *before* the index expression is evaluated, matching
    /// the tree-walk's dispatch order.
    CheckIndexBase,
    /// `[base, idx] -> [v]` — slice/map read, dispatching on the base
    /// value exactly like the tree-walk (slice: bounds check; map: key
    /// lookup charging the map-op ticks).
    IndexGet,
    /// `[v, base, idx] -> []` — slice/map store (map stores run the full
    /// insert-with-growth path).
    IndexSet,
    /// `[base, lo, hi?] -> [slice]` — reslice; `has_hi` tells whether a
    /// high bound was pushed (otherwise it defaults to the length).
    ReSlice {
        /// Whether an explicit high bound is on the stack.
        has_hi: bool,
    },

    // ---- allocation ----
    /// `[len, cap?] -> [slice]` — `make([]T, ..)`.
    MakeSlice {
        /// Element size in bytes.
        elem_size: u64,
        /// Whether an explicit capacity was pushed.
        has_cap: bool,
        /// Heap-allocated per the escape analysis.
        heap: bool,
        /// Profile attribution site.
        site: ExprId,
        /// Constant-pool index of the element zero value.
        zero: u32,
    },
    /// `[] -> [map]` — `make(map[K]V)`.
    MakeMap {
        /// Entry size in bytes (16 + value inline size).
        entry_size: u64,
        /// Heap-allocated per the escape analysis.
        heap: bool,
        /// Profile attribution site.
        site: ExprId,
        /// Constant-pool index of the value-type zero (missing-key
        /// default).
        default: u32,
    },
    /// `[] -> [ptr]` — `new(T)`.
    NewPtr {
        /// Pointee size in bytes.
        size: u64,
        /// Heap-allocated per the escape analysis.
        heap: bool,
        /// Profile attribution site.
        site: ExprId,
        /// Constant-pool index of the pointee zero value.
        zero: u32,
    },
    /// `[slice, item] -> [slice']` — `append`, including nil-slice
    /// bootstrap and growth.
    Append {
        /// Element size in bytes.
        elem_size: u64,
        /// Profile attribution site.
        site: ExprId,
    },
    /// `[fields...] -> [struct]` — build a struct from `n` field values.
    MakeStruct(u32),

    // ---- builtins ----
    /// `[v] -> [len]`.
    Len,
    /// `[v] -> [cap]`.
    Cap,
    /// `[map, key] -> [0]` — `delete`.
    MapDelete,
    /// `[v] -> !` — `panic`.
    Panic,
    /// `[args...] -> [0]` — `print(n args)`.
    Print(u32),
    /// `[int] -> [str]` — `itoa`.
    Itoa,

    // ---- frees ----
    /// `[v] -> []` — a `tcfree` statement: dispatch on the value
    /// (slice/map/pointer) and call the runtime's free primitives.
    /// `follows_free` marks statically adjacent frees for §5 batching.
    Tcfree {
        /// Whether the previous statement in the block was also a free.
        follows_free: bool,
    },

    // ---- diagnostics ----
    /// Fail with [`ExecError::Unsupported`](crate::ExecError) when
    /// executed. Lowering never fails; constructs the engines cannot run
    /// become traps so programs that never reach them behave
    /// identically.
    TrapUnsupported(Box<str>),
    /// Fail with [`ExecError::Internal`](crate::ExecError) when
    /// executed.
    TrapInternal(Box<str>),

    // ---- optimizer tier ----
    //
    // Everything below is installed by `bytecode::opt`, never emitted by
    // lowering, so the baseline stream stays available under `--opt
    // off`. Each fused instruction charges `ticks` — the summed static
    // charges of its constituents — up front, then runs the constituent
    // handlers in order; per-statement tick totals (and therefore GC
    // pacing, safepoints, and every metric) are unchanged, because the
    // clock charge is an exact add and no observable runtime event can
    // occur between the coalesced charges.
    /// `[] -> [const]` — push a constant charging `ticks`: a folded
    /// constant expression carrying the summed charge of the
    /// instructions it replaced.
    ConstTicked {
        /// Constant-pool index.
        c: u32,
        /// Coalesced tick charge.
        ticks: u32,
    },
    /// `[] -> [a op b]` — fused `LoadSlot a; LoadSlot b; Bin/BinRaw op`.
    LoadLoadBin {
        /// Left operand slot.
        a: u32,
        /// Right operand slot.
        b: u32,
        /// The operator.
        op: BinOp,
        /// Coalesced tick charge.
        ticks: u32,
    },
    /// `[] -> [a op c]` — fused `LoadSlot a; Const c; Bin/BinRaw op`.
    LoadConstBin {
        /// Left operand slot.
        a: u32,
        /// Right operand constant-pool index.
        c: u32,
        /// The operator.
        op: BinOp,
        /// Coalesced tick charge.
        ticks: u32,
    },
    /// `[] -> []` — fused `LoadSlot a; LoadSlot b; Bin/BinRaw;
    /// StoreSlot dst` (e.g. `x = a + b`).
    LoadLoadBinStore {
        /// Left operand slot.
        a: u32,
        /// Right operand slot.
        b: u32,
        /// The operator.
        op: BinOp,
        /// Destination slot.
        dst: u32,
        /// Coalesced tick charge.
        ticks: u32,
    },
    /// `[] -> []` — fused `LoadSlot a; Const c; Bin/BinRaw; StoreSlot
    /// dst` (compound assignments like `i += 1` collapse 4 → 1).
    LoadConstBinStore {
        /// Left operand slot.
        a: u32,
        /// Right operand constant-pool index.
        c: u32,
        /// The operator.
        op: BinOp,
        /// Destination slot.
        dst: u32,
        /// Coalesced tick charge.
        ticks: u32,
    },
    /// `[] -> []` or jump — fused `LoadSlot a; LoadSlot b; Bin;
    /// JumpIfFalse t` (loop conditions like `i < n` collapse 4 → 1).
    LoadLoadBinJump {
        /// Left operand slot.
        a: u32,
        /// Right operand slot.
        b: u32,
        /// The operator.
        op: BinOp,
        /// Branch target when the result is false.
        t: usize,
        /// Coalesced tick charge.
        ticks: u32,
    },
    /// `[] -> []` or jump — fused `LoadSlot a; Const c; Bin;
    /// JumpIfFalse t`.
    LoadConstBinJump {
        /// Left operand slot.
        a: u32,
        /// Right operand constant-pool index.
        c: u32,
        /// The operator.
        op: BinOp,
        /// Branch target when the result is false.
        t: usize,
        /// Coalesced tick charge.
        ticks: u32,
    },
    /// `[] -> []` or jump — fused `LoadSlot s; JumpIfFalse t`.
    LoadJumpIfFalse {
        /// Condition slot.
        s: u32,
        /// Branch target when false.
        t: usize,
        /// Coalesced tick charge.
        ticks: u32,
    },
    /// `[l, r] -> []` or jump — fused `Bin op; JumpIfFalse t`.
    BinJumpIfFalse {
        /// The operator.
        op: BinOp,
        /// Branch target when false.
        t: usize,
        /// Coalesced tick charge.
        ticks: u32,
    },
    /// `[] -> [v]` — fused `LoadSlot base; CheckIndexBase; LoadSlot
    /// idx; IndexGet`, with an inline-cache slot for map bases.
    LoadLoadIndexGet {
        /// Slot holding the slice/map base.
        base: u32,
        /// Slot holding the index/key.
        idx: u32,
        /// Inline-cache slot.
        ic: u32,
        /// Coalesced tick charge.
        ticks: u32,
    },
    /// `[] -> [v]` — fused `LoadSlot base; CheckIndexBase; Const c;
    /// IndexGet`, with an inline-cache slot for map bases.
    LoadConstIndexGet {
        /// Slot holding the slice/map base.
        base: u32,
        /// Constant-pool index of the index/key.
        c: u32,
        /// Inline-cache slot.
        ic: u32,
        /// Coalesced tick charge.
        ticks: u32,
    },
    /// `[v] -> []` — fused `LoadSlot base; CheckIndexBase; LoadSlot
    /// idx; IndexSet`, with an inline-cache slot for map bases.
    LoadLoadIndexSet {
        /// Slot holding the slice/map base.
        base: u32,
        /// Slot holding the index/key.
        idx: u32,
        /// Inline-cache slot.
        ic: u32,
        /// Coalesced tick charge.
        ticks: u32,
    },
    /// `[v] -> []` — fused `LoadSlot base; CheckIndexBase; Const c;
    /// IndexSet`, with an inline-cache slot for map bases.
    LoadConstIndexSet {
        /// Slot holding the slice/map base.
        base: u32,
        /// Constant-pool index of the index/key.
        c: u32,
        /// Inline-cache slot.
        ic: u32,
        /// Coalesced tick charge.
        ticks: u32,
    },
    /// `[] -> [len]` — fused `LoadSlot s; Len` (e.g. `n := len(s)`).
    LoadLen {
        /// Slot holding the slice/map/string.
        s: u32,
        /// Coalesced tick charge.
        ticks: u32,
    },
    /// `[] -> []` — fused `LoadSlot s; Len; StoreSlot dst`.
    LoadLenStore {
        /// Slot holding the slice/map/string.
        s: u32,
        /// Destination slot.
        dst: u32,
        /// Coalesced tick charge.
        ticks: u32,
    },
    /// `[] -> []` or jump — fused `LoadSlot a; LoadSlot s; Len; Bin;
    /// JumpIfFalse t`: the canonical loop header `for i < len(s)`
    /// collapses 5 → 1.
    LoadLoadLenBinJump {
        /// Left operand slot (the induction variable).
        a: u32,
        /// Slot holding the slice/map/string whose length is compared.
        s: u32,
        /// The comparison operator.
        op: BinOp,
        /// Branch target when the result is false.
        t: usize,
        /// Coalesced tick charge.
        ticks: u32,
    },
    /// `[l] -> [l op s]` — fused `LoadSlot s; Bin/BinRaw op`: the right
    /// operand is a slot, the left comes from the stack (a complex
    /// subexpression already evaluated).
    BinSlot {
        /// Right operand slot.
        s: u32,
        /// The operator.
        op: BinOp,
        /// Coalesced tick charge.
        ticks: u32,
    },
    /// `[l] -> [l op c]` — fused `Const c; Bin/BinRaw op`: the right
    /// operand is a constant, the left comes from the stack.
    BinConst {
        /// Right operand constant-pool index.
        c: u32,
        /// The operator.
        op: BinOp,
        /// Coalesced tick charge.
        ticks: u32,
    },
    /// `[l] -> []` — fused `Const c; Bin/BinRaw op; StoreSlot dst`.
    BinConstStore {
        /// Right operand constant-pool index.
        c: u32,
        /// The operator.
        op: BinOp,
        /// Destination slot.
        dst: u32,
        /// Coalesced tick charge.
        ticks: u32,
    },
    /// `[l] -> []` or jump — fused `Const c; Bin op; JumpIfFalse t`
    /// (conditions like `x % 2 == 0` finish in one dispatch).
    BinConstJump {
        /// Right operand constant-pool index.
        c: u32,
        /// The operator.
        op: BinOp,
        /// Branch target when the result is false.
        t: usize,
        /// Coalesced tick charge.
        ticks: u32,
    },
    /// `[] -> [a, b]` — fused `LoadSlot a; LoadSlot b`: adjacent slot
    /// reads feeding an unfuseable consumer (call arguments, struct
    /// literals, prints) still coalesce their dispatch.
    LoadLoad {
        /// First slot pushed.
        a: u32,
        /// Second slot pushed.
        b: u32,
        /// Coalesced tick charge.
        ticks: u32,
    },
    /// `[base, idx] -> [v]` — [`Instr::IndexGet`] with a monomorphic
    /// inline cache: the cache slot remembers the last map identity and
    /// entry index, skipping the hash lookup when the same key hits the
    /// same map (validated against the entry, so a stale cache can only
    /// miss, never misread).
    IndexGetIC(u32),
    /// `[v, base, idx] -> []` — [`Instr::IndexSet`] with a monomorphic
    /// inline cache (fast path: in-place update of an existing entry).
    IndexSetIC(u32),
}

impl Instr {
    /// The instruction's jump-target operand, if it has one. The
    /// optimizer uses this to find fusion barriers and to rewrite
    /// targets after structural passes.
    pub fn jump_target(&self) -> Option<usize> {
        match self {
            Instr::Jump(t)
            | Instr::JumpIfFalse(t)
            | Instr::AndJump(t)
            | Instr::OrJump(t)
            | Instr::CaseJump(t)
            | Instr::LoadLoadBinJump { t, .. }
            | Instr::LoadConstBinJump { t, .. }
            | Instr::LoadJumpIfFalse { t, .. }
            | Instr::BinJumpIfFalse { t, .. }
            | Instr::LoadLoadLenBinJump { t, .. }
            | Instr::BinConstJump { t, .. } => Some(*t),
            _ => None,
        }
    }

    /// Mutable access to the jump-target operand.
    pub fn jump_target_mut(&mut self) -> Option<&mut usize> {
        match self {
            Instr::Jump(t)
            | Instr::JumpIfFalse(t)
            | Instr::AndJump(t)
            | Instr::OrJump(t)
            | Instr::CaseJump(t)
            | Instr::LoadLoadBinJump { t, .. }
            | Instr::LoadConstBinJump { t, .. }
            | Instr::LoadJumpIfFalse { t, .. }
            | Instr::BinJumpIfFalse { t, .. }
            | Instr::LoadLoadLenBinJump { t, .. }
            | Instr::BinConstJump { t, .. } => Some(t),
            _ => None,
        }
    }
}
