//! AST → bytecode lowering.
//!
//! Lowering is total: constructs the engine cannot execute become
//! [`Instr::TrapUnsupported`]/[`Instr::TrapInternal`] instructions that
//! only fail if reached, so lowered programs preserve the tree-walk's
//! runtime-error behaviour exactly.
//!
//! Every static decision the tree-walking interpreter makes per
//! execution — hash-map variable lookup, address-taken queries, escape
//! analysis placement, struct field resolution, zero-value
//! construction — is resolved here once: variables become dense frame
//! slots, allocation sites carry their heap/stack decision and sizes,
//! field accesses carry their index, and zero values live in the
//! constant pool.

use std::collections::{HashMap, HashSet};

use minigo_escape::{AllocPlace, Analysis};
use minigo_syntax::{
    BinOp, Block, Builtin, Expr, ExprKind, Func, FuncId, Program, Resolution, Stmt, StmtKind, Type,
    TypeInfo, UnOp, VarId,
};

use super::ir::{BFunc, Const, Instr, Module};
use crate::interp::collect_addr_taken_block;

/// Lowers a checked (and, in GoFree mode, instrumented) program to
/// bytecode. Never fails: see the module docs.
pub fn lower(program: &Program, res: &Resolution, types: &TypeInfo, analysis: &Analysis) -> Module {
    let mut consts = ConstPool::default();
    let funcs = program
        .funcs
        .iter()
        .map(|f| lower_func(f, res, types, analysis, &mut consts))
        .collect();
    let main = program
        .func("main")
        .map(|f| f.id.index())
        .unwrap_or(usize::MAX);
    Module {
        funcs,
        main,
        consts: consts.pool,
        ic_slots: 0,
    }
}

#[derive(Default)]
struct ConstPool {
    pool: Vec<Const>,
    scalars: HashMap<ScalarKey, u32>,
}

#[derive(PartialEq, Eq, Hash)]
enum ScalarKey {
    Int(i64),
    Bool(bool),
    Str(String),
    Nil,
}

impl ConstPool {
    fn add(&mut self, v: Const) -> u32 {
        let key = match &v {
            Const::Int(i) => Some(ScalarKey::Int(*i)),
            Const::Bool(b) => Some(ScalarKey::Bool(*b)),
            Const::Str(s) => Some(ScalarKey::Str(s.to_string())),
            Const::Nil => Some(ScalarKey::Nil),
            _ => None,
        };
        if let Some(key) = key {
            if let Some(&idx) = self.scalars.get(&key) {
                return idx;
            }
            let idx = self.pool.len() as u32;
            self.pool.push(v);
            self.scalars.insert(key, idx);
            return idx;
        }
        let idx = self.pool.len() as u32;
        self.pool.push(v);
        idx
    }
}

fn lower_func(
    func: &Func,
    res: &Resolution,
    types: &TypeInfo,
    analysis: &Analysis,
    consts: &mut ConstPool,
) -> BFunc {
    let mut addr_taken = HashSet::new();
    collect_addr_taken_block(&func.body, res, &mut addr_taken);

    // Dense slot assignment: every variable the resolver attributed to
    // this function, in VarId order (parameters and results first, since
    // the resolver numbers them at function entry).
    let mut slot_of = HashMap::new();
    let mut slot_names = Vec::new();
    for (i, info) in res.vars().iter().enumerate() {
        if info.func == func.id {
            slot_of.insert(VarId(i as u32), slot_names.len() as u32);
            slot_names.push(info.name.clone());
        }
    }

    let mut lo = FnLowerer {
        fid: func.id,
        res,
        types,
        analysis,
        addr_taken,
        slot_of,
        consts,
        code: Vec::new(),
        patches: Vec::new(),
        break_stack: Vec::new(),
        continue_stack: Vec::new(),
    };
    lo.lower_block(&func.body);
    lo.code.push(Instr::Ret);
    lo.apply_patches();

    let params = res
        .params_of(func.id)
        .iter()
        .map(|&v| (lo.slot_of[&v], lo.addr_taken.contains(&v)))
        .collect();
    let results = res
        .results_of(func.id)
        .iter()
        .map(|&v| {
            let zero = types.var(v).map(|t| lo.consts.add(zero_value(t, types)));
            (lo.slot_of[&v], lo.addr_taken.contains(&v), zero)
        })
        .collect();
    let code = std::mem::take(&mut lo.code);
    BFunc {
        name: func.name.clone(),
        nslots: slot_names.len() as u32,
        params,
        results,
        slot_names,
        code,
    }
}

/// Computes a type's zero value, mirroring the tree-walk's
/// `Vm::zero_value`.
fn zero_value(ty: &Type, types: &TypeInfo) -> Const {
    match ty {
        Type::Int => Const::Int(0),
        Type::Bool => Const::Bool(false),
        Type::Str => Const::Str(std::sync::Arc::from("")),
        Type::Ptr(_) | Type::Slice(_) | Type::Map(_, _) => Const::Nil,
        Type::Named(name) => {
            let fields = types.fields_of(name).map(<[_]>::to_vec).unwrap_or_default();
            Const::Struct(fields.iter().map(|(_, t)| zero_value(t, types)).collect())
        }
    }
}

struct FnLowerer<'a> {
    fid: FuncId,
    res: &'a Resolution,
    types: &'a TypeInfo,
    analysis: &'a Analysis,
    addr_taken: HashSet<VarId>,
    slot_of: HashMap<VarId, u32>,
    consts: &'a mut ConstPool,
    code: Vec<Instr>,
    /// The back-patch table: every forward jump is emitted with a
    /// `usize::MAX` placeholder and recorded here with its resolved
    /// target; [`Self::apply_patches`] writes them all in one pass at
    /// the end of the function instead of re-touching `code` per patch.
    patches: Vec<(usize, usize)>,
    /// Per innermost breakable construct (loop or switch): indices of
    /// placeholder jumps to patch to the construct's end.
    break_stack: Vec<Vec<usize>>,
    /// Per innermost loop: placeholder jumps to patch to the post
    /// statement (continue target).
    continue_stack: Vec<Vec<usize>>,
}

impl<'a> FnLowerer<'a> {
    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn here(&self) -> usize {
        self.code.len()
    }

    /// Records a jump patch; applied in bulk by [`Self::apply_patches`].
    fn patch(&mut self, at: usize, target: usize) {
        self.patches.push((at, target));
    }

    /// Applies the accumulated back-patch table. A `break`/`continue`
    /// placeholder that was rewritten to `Ret` (stray outside any loop)
    /// never reaches here, so every patched instruction must be a jump.
    fn apply_patches(&mut self) {
        for &(at, target) in &self.patches {
            match self.code[at].jump_target_mut() {
                Some(t) => *t = target,
                None => unreachable!("patching non-jump {:?}", self.code[at]),
            }
        }
        self.patches.clear();
    }

    fn slot(&self, var: VarId) -> u32 {
        self.slot_of[&var]
    }

    fn intern(&mut self, v: Const) -> u32 {
        self.consts.add(v)
    }

    fn heap_placed(&self, e: &Expr) -> bool {
        self.analysis.place_of(e.id) == AllocPlace::Heap
    }

    fn expr_size(&self, e: &Expr) -> u64 {
        self.types
            .expr(e.id)
            .map(|t| self.types.inline_size(t))
            .unwrap_or(8)
    }

    // ---- statements ----

    fn lower_block(&mut self, block: &Block) {
        let mut prev_was_free = false;
        for stmt in &block.stmts {
            self.emit(Instr::Safepoint);
            let is_free = matches!(stmt.kind, StmtKind::Free { .. });
            self.lower_stmt(stmt, is_free && prev_was_free);
            prev_was_free = is_free;
        }
    }

    fn lower_stmt(&mut self, stmt: &Stmt, follows_free: bool) {
        match &stmt.kind {
            StmtKind::VarDecl { names, ty, init } => {
                if init.is_empty() {
                    // Zero initialization evaluates nothing, so the
                    // per-name push/declare interleave preserves the
                    // tree-walk's declaration (and alloc) order.
                    let zero = self.intern(zero_value(ty, self.types));
                    for i in 0..names.len() {
                        self.emit(Instr::ConstRaw(zero));
                        self.lower_decl(stmt.id, i);
                    }
                } else {
                    self.lower_decl_inits(stmt.id, names.len(), init);
                }
            }
            StmtKind::ShortDecl { names, init } => {
                self.lower_decl_inits(stmt.id, names.len(), init);
            }
            StmtKind::Assign { lhs, op, rhs } => {
                if let Some(op) = op {
                    self.lower_expr(&lhs[0]);
                    self.lower_expr(&rhs[0]);
                    self.emit(Instr::BinRaw(*op));
                    self.lower_store(&lhs[0]);
                    return;
                }
                let n = if rhs.len() == 1 && lhs.len() > 1 {
                    self.lower_multi(&rhs[0], lhs.len())
                } else {
                    for e in rhs {
                        self.lower_expr(e);
                    }
                    rhs.len()
                };
                if n > 1 {
                    self.emit(Instr::ReverseN(n as u32));
                }
                for l in lhs.iter().take(n) {
                    self.lower_store(l);
                }
            }
            StmtKind::If { cond, then, els } => {
                self.lower_expr(cond);
                let jf = self.emit(Instr::JumpIfFalse(usize::MAX));
                self.lower_block(then);
                if let Some(els) = els {
                    let jend = self.emit(Instr::Jump(usize::MAX));
                    let else_at = self.here();
                    self.patch(jf, else_at);
                    self.lower_stmt(els, false);
                    let end = self.here();
                    self.patch(jend, end);
                } else {
                    let end = self.here();
                    self.patch(jf, end);
                }
            }
            StmtKind::For {
                init,
                cond,
                post,
                body,
            } => {
                if let Some(init) = init {
                    self.lower_stmt(init, false);
                }
                let top = self.here();
                let exit = if let Some(cond) = cond {
                    self.lower_expr(cond);
                    Some(self.emit(Instr::JumpIfFalse(usize::MAX)))
                } else {
                    None
                };
                self.break_stack.push(Vec::new());
                self.continue_stack.push(Vec::new());
                self.lower_block(body);
                let post_at = self.here();
                if let Some(post) = post {
                    self.lower_stmt(post, false);
                }
                self.emit(Instr::Safepoint);
                self.emit(Instr::Jump(top));
                let end = self.here();
                if let Some(exit) = exit {
                    self.patch(exit, end);
                }
                for at in self.break_stack.pop().expect("pushed above") {
                    self.patch(at, end);
                }
                for at in self.continue_stack.pop().expect("pushed above") {
                    self.patch(at, post_at);
                }
            }
            StmtKind::Return { exprs } => {
                let results = self.res.results_of(self.fid).to_vec();
                if !exprs.is_empty() {
                    let n = if exprs.len() == 1 && results.len() > 1 {
                        self.lower_multi(&exprs[0], results.len())
                    } else {
                        for e in exprs {
                            self.lower_expr(e);
                        }
                        exprs.len()
                    };
                    if n > 1 {
                        self.emit(Instr::ReverseN(n as u32));
                    }
                    for &rvar in results.iter().take(n) {
                        let slot = self.slot(rvar);
                        self.emit(Instr::StoreSlot(slot));
                    }
                }
                self.emit(Instr::Ret);
            }
            StmtKind::Expr { expr } => {
                if matches!(expr.kind, ExprKind::Call { .. }) {
                    self.lower_call(expr, u32::MAX, false);
                } else {
                    self.lower_expr(expr);
                    self.emit(Instr::Pop(1));
                }
            }
            StmtKind::BlockStmt { block } => self.lower_block(block),
            StmtKind::Defer { call } => match &call.kind {
                ExprKind::Call { callee, args } => {
                    match self.res.func_by_name(callee) {
                        Some(fid) => {
                            for a in args {
                                self.lower_expr(a);
                            }
                            self.emit(Instr::DeferFunc {
                                fid: fid.index(),
                                nargs: args.len() as u32,
                            });
                        }
                        None => {
                            self.emit(Instr::TrapInternal("unknown callee".into()));
                        }
                    };
                }
                ExprKind::Builtin { kind, args, .. } => {
                    for a in args {
                        self.lower_expr(a);
                    }
                    self.emit(Instr::DeferBuiltin {
                        builtin: *kind,
                        nargs: args.len() as u32,
                    });
                }
                _ => {
                    self.emit(Instr::TrapInternal("defer of non-call".into()));
                }
            },
            StmtKind::Switch {
                subject,
                cases,
                default,
            } => {
                self.lower_expr(subject);
                let mut case_jumps: Vec<Vec<usize>> = Vec::new();
                for case in cases {
                    let mut jumps = Vec::new();
                    for v in &case.values {
                        self.lower_expr(v);
                        jumps.push(self.emit(Instr::CaseJump(usize::MAX)));
                    }
                    case_jumps.push(jumps);
                }
                // No case matched: drop the subject, run the default.
                self.emit(Instr::Pop(1));
                let mut end_jumps = Vec::new();
                if let Some(default) = default {
                    self.break_stack.push(Vec::new());
                    self.lower_block(default);
                    let breaks = self.break_stack.pop().expect("pushed above");
                    end_jumps.extend(breaks);
                }
                end_jumps.push(self.emit(Instr::Jump(usize::MAX)));
                for (case, jumps) in cases.iter().zip(case_jumps) {
                    let body_at = self.here();
                    for at in jumps {
                        self.patch(at, body_at);
                    }
                    self.break_stack.push(Vec::new());
                    self.lower_block(&case.body);
                    let breaks = self.break_stack.pop().expect("pushed above");
                    end_jumps.extend(breaks);
                    end_jumps.push(self.emit(Instr::Jump(usize::MAX)));
                }
                let end = self.here();
                for at in end_jumps {
                    self.patch(at, end);
                }
            }
            StmtKind::Break => {
                let at = self.emit(Instr::Jump(usize::MAX));
                match self.break_stack.last_mut() {
                    Some(patches) => patches.push(at),
                    // A stray break outside any loop leaves the function
                    // body, which the call protocol treats as a return.
                    None => self.code[at] = Instr::Ret,
                }
            }
            StmtKind::Continue => {
                let at = self.emit(Instr::Jump(usize::MAX));
                match self.continue_stack.last_mut() {
                    Some(patches) => patches.push(at),
                    None => self.code[at] = Instr::Ret,
                }
            }
            StmtKind::Free { target, .. } => {
                self.lower_expr(target);
                self.emit(Instr::Tcfree { follows_free });
            }
        }
    }

    /// Lowers a declaration's initializer list and the declares
    /// themselves, preserving the tree-walk's evaluate-all-then-declare
    /// order.
    fn lower_decl_inits(&mut self, stmt: minigo_syntax::StmtId, nnames: usize, init: &[Expr]) {
        let n = if init.len() == 1 && nnames > 1 {
            self.lower_multi(&init[0], nnames)
        } else {
            for e in init {
                self.lower_expr(e);
            }
            init.len()
        };
        if n > 1 {
            self.emit(Instr::ReverseN(n as u32));
        }
        for i in 0..n {
            self.lower_decl(stmt, i);
        }
    }

    /// Emits the declare for `decl_of(stmt, idx)`; the initial value is
    /// on the stack.
    fn lower_decl(&mut self, stmt: minigo_syntax::StmtId, idx: usize) {
        let Some(var) = self.res.decl_of(stmt, idx) else {
            self.emit(Instr::TrapInternal("unresolved decl".into()));
            return;
        };
        let boxed = self.addr_taken.contains(&var);
        let heap = boxed
            && self
                .analysis
                .funcs
                .get(&self.fid)
                .and_then(|fg| fg.var_locs.get(&var).copied())
                .map(|loc| self.analysis.funcs[&self.fid].graph.loc(loc).heap_alloc)
                .unwrap_or(false);
        let size = self
            .types
            .var(var)
            .map(|t| self.types.inline_size(t))
            .unwrap_or(8);
        self.emit(Instr::Declare {
            slot: self.slot(var),
            boxed,
            heap,
            size,
        });
    }

    /// Lowers an expression in multi-value position (the tree-walk's
    /// `eval_multi`): a call pushes its results, anything else a single
    /// value. Returns how many values are on the stack.
    fn lower_multi(&mut self, e: &Expr, want: usize) -> usize {
        if matches!(e.kind, ExprKind::Call { .. }) {
            self.lower_call(e, want as u32, false);
            want
        } else {
            self.lower_expr(e);
            1
        }
    }

    /// Lowers a call expression. `want` is the expected result arity
    /// (`u32::MAX` discards); `value_pos` marks single-value expression
    /// position, which charges the call node's own tick.
    fn lower_call(&mut self, e: &Expr, want: u32, value_pos: bool) {
        let ExprKind::Call { callee, args } = &e.kind else {
            unreachable!("lower_call on non-call");
        };
        let Some(fid) = self.res.func_by_name(callee) else {
            self.emit(Instr::TrapInternal("unknown callee".into()));
            return;
        };
        for a in args {
            self.lower_expr(a);
        }
        self.emit(Instr::Call {
            fid: fid.index(),
            nargs: args.len() as u32,
            want,
            value_pos,
        });
    }

    // ---- expressions ----

    fn lower_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::IntLit(v) => {
                let c = self.intern(Const::Int(*v));
                self.emit(Instr::Const(c));
            }
            ExprKind::BoolLit(b) => {
                let c = self.intern(Const::Bool(*b));
                self.emit(Instr::Const(c));
            }
            ExprKind::StrLit(s) => {
                let c = self.intern(Const::Str(std::sync::Arc::from(s.as_str())));
                self.emit(Instr::Const(c));
            }
            ExprKind::Nil => {
                let c = self.intern(Const::Nil);
                self.emit(Instr::Const(c));
            }
            ExprKind::Ident(_) => match self.res.def_of(e.id) {
                Some(var) => {
                    let slot = self.slot(var);
                    self.emit(Instr::LoadSlot(slot));
                }
                None => {
                    self.emit(Instr::TrapInternal("unresolved ident".into()));
                }
            },
            ExprKind::Unary { op, operand } => match op {
                UnOp::Neg => {
                    self.lower_expr(operand);
                    self.emit(Instr::Neg);
                }
                UnOp::Not => {
                    self.lower_expr(operand);
                    self.emit(Instr::Not);
                }
                UnOp::Addr => self.lower_addr_of(operand),
                UnOp::Deref => {
                    self.lower_expr(operand);
                    self.emit(Instr::Deref);
                }
            },
            ExprKind::Binary { op, lhs, rhs } => match op {
                BinOp::And | BinOp::Or => {
                    self.emit(Instr::Tick(1));
                    self.lower_expr(lhs);
                    let j = self.emit(if *op == BinOp::And {
                        Instr::AndJump(usize::MAX)
                    } else {
                        Instr::OrJump(usize::MAX)
                    });
                    self.lower_expr(rhs);
                    self.emit(Instr::AssertBool);
                    let end = self.here();
                    self.patch(j, end);
                }
                _ => {
                    self.lower_expr(lhs);
                    self.lower_expr(rhs);
                    self.emit(Instr::Bin(*op));
                }
            },
            ExprKind::Field { base, name } => {
                self.lower_expr(base);
                match self.field_target(base, name) {
                    Ok((idx, through_ptr)) => {
                        self.emit(Instr::GetField {
                            idx: idx as u32,
                            through_ptr,
                        });
                    }
                    Err(msg) => {
                        self.emit(Instr::TrapInternal(msg.into()));
                    }
                }
            }
            ExprKind::Index { base, index } => {
                self.lower_expr(base);
                self.emit(Instr::CheckIndexBase);
                self.lower_expr(index);
                self.emit(Instr::IndexGet);
            }
            ExprKind::SliceExpr { base, lo, hi } => {
                self.lower_expr(base);
                match lo {
                    Some(lo) => self.lower_expr(lo),
                    None => {
                        let c = self.intern(Const::Int(0));
                        self.emit(Instr::ConstRaw(c));
                    }
                }
                if let Some(hi) = hi {
                    self.lower_expr(hi);
                }
                self.emit(Instr::ReSlice {
                    has_hi: hi.is_some(),
                });
            }
            ExprKind::Call { .. } => self.lower_call(e, 1, true),
            ExprKind::Builtin {
                kind,
                ty_args,
                args,
            } => {
                self.lower_builtin(e, *kind, ty_args, args);
            }
            ExprKind::StructLit { fields, .. } => {
                for f in fields {
                    self.lower_expr(f);
                }
                self.emit(Instr::MakeStruct(fields.len() as u32));
            }
        }
    }

    fn lower_addr_of(&mut self, operand: &Expr) {
        match &operand.kind {
            ExprKind::Ident(_) => match self.res.def_of(operand.id) {
                Some(var) => {
                    let slot = self.slot(var);
                    self.emit(Instr::AddrOfSlot(slot));
                }
                None => {
                    self.emit(Instr::TrapInternal("unresolved ident".into()));
                }
            },
            ExprKind::StructLit { .. } => {
                self.lower_expr(operand);
                self.emit(Instr::AllocBox {
                    heap: self.heap_placed(operand),
                    size: self.expr_size(operand),
                    site: operand.id,
                });
            }
            ExprKind::Unary {
                op: UnOp::Deref,
                operand: inner,
            } => {
                // `&*p` evaluates to `p`; the `&` node still ticks.
                self.emit(Instr::Tick(1));
                self.lower_expr(inner);
            }
            other => {
                self.emit(Instr::TrapUnsupported(
                    format!("interior pointers (&{other:?}) are not supported by the VM").into(),
                ));
            }
        }
    }

    fn lower_builtin(&mut self, e: &Expr, kind: Builtin, ty_args: &[Type], args: &[Expr]) {
        match kind {
            Builtin::Make => match ty_args.first() {
                Some(Type::Slice(elem)) => {
                    self.lower_expr(&args[0]);
                    let has_cap = args.len() > 1;
                    if has_cap {
                        self.lower_expr(&args[1]);
                    }
                    let zero = self.intern(zero_value(elem, self.types));
                    self.emit(Instr::MakeSlice {
                        elem_size: self.types.inline_size(elem),
                        has_cap,
                        heap: self.heap_placed(e),
                        site: e.id,
                        zero,
                    });
                }
                Some(Type::Map(_, v)) => {
                    let default = self.intern(zero_value(v, self.types));
                    self.emit(Instr::MakeMap {
                        entry_size: 16 + self.types.inline_size(v),
                        heap: self.heap_placed(e),
                        site: e.id,
                        default,
                    });
                }
                _ => {
                    self.emit(Instr::TrapInternal("make of bad type".into()));
                }
            },
            Builtin::New => match ty_args.first() {
                Some(ty) => {
                    let zero = self.intern(zero_value(ty, self.types));
                    self.emit(Instr::NewPtr {
                        size: self.types.inline_size(ty),
                        heap: self.heap_placed(e),
                        site: e.id,
                        zero,
                    });
                }
                None => {
                    self.emit(Instr::TrapInternal("make of bad type".into()));
                }
            },
            Builtin::Append => {
                self.lower_expr(&args[0]);
                self.lower_expr(&args[1]);
                let elem_size = match self.types.expr(args[0].id) {
                    Some(Type::Slice(elem)) => self.types.inline_size(elem),
                    _ => 8,
                };
                self.emit(Instr::Append {
                    elem_size,
                    site: e.id,
                });
            }
            Builtin::Len => {
                self.lower_expr(&args[0]);
                self.emit(Instr::Len);
            }
            Builtin::Cap => {
                self.lower_expr(&args[0]);
                self.emit(Instr::Cap);
            }
            Builtin::Delete => {
                self.lower_expr(&args[0]);
                self.lower_expr(&args[1]);
                self.emit(Instr::MapDelete);
            }
            Builtin::Panic => {
                self.lower_expr(&args[0]);
                self.emit(Instr::Panic);
            }
            Builtin::Print => {
                for a in args {
                    self.lower_expr(a);
                }
                self.emit(Instr::Print(args.len() as u32));
            }
            Builtin::Itoa => {
                self.lower_expr(&args[0]);
                self.emit(Instr::Itoa);
            }
        }
    }

    // ---- lvalues ----

    /// Lowers a store into `lv`; the value to store is on the stack
    /// beneath whatever operands the lvalue itself evaluates.
    fn lower_store(&mut self, lv: &Expr) {
        match &lv.kind {
            ExprKind::Ident(_) => match self.res.def_of(lv.id) {
                Some(var) => {
                    let slot = self.slot(var);
                    self.emit(Instr::StoreSlot(slot));
                }
                None => {
                    self.emit(Instr::TrapInternal("unresolved ident".into()));
                }
            },
            ExprKind::Unary {
                op: UnOp::Deref,
                operand,
            } => {
                self.lower_expr(operand);
                self.emit(Instr::DerefSet);
            }
            ExprKind::Field { base, name } => {
                self.lower_expr(base);
                match self.field_target(base, name) {
                    Ok((idx, true)) => {
                        self.emit(Instr::FieldSetPtr { idx: idx as u32 });
                    }
                    Ok((idx, false)) => {
                        self.emit(Instr::StructSetField { idx: idx as u32 });
                        self.lower_store(base);
                    }
                    Err(msg) => {
                        self.emit(Instr::TrapInternal(msg.into()));
                    }
                }
            }
            ExprKind::Index { base, index } => {
                self.lower_expr(base);
                self.emit(Instr::CheckIndexBase);
                self.lower_expr(index);
                self.emit(Instr::IndexSet);
            }
            _ => {
                self.emit(Instr::TrapInternal("bad lvalue".into()));
            }
        }
    }

    /// Resolves a field access statically: the field's index and whether
    /// the base is accessed through a pointer. Errors reproduce the
    /// tree-walk's `struct_name_of`/`field_index` messages.
    fn field_target(&self, base: &Expr, field: &str) -> Result<(usize, bool), String> {
        let (sname, through_ptr) = match self.types.expr(base.id) {
            Some(Type::Named(n)) => (n.clone(), false),
            Some(Type::Ptr(inner)) => match &**inner {
                Type::Named(n) => (n.clone(), true),
                _ => return Err("pointer to non-struct".into()),
            },
            other => return Err(format!("no struct type for base: {other:?}")),
        };
        let idx = self
            .types
            .fields_of(&sname)
            .and_then(|fs| fs.iter().position(|(f, _)| f == field))
            .ok_or_else(|| format!("no field {field} on {sname}"))?;
        Ok((idx, through_ptr))
    }
}
