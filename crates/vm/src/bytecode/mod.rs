//! The bytecode execution engine.
//!
//! The AST is lowered once ([`lower`]) into a slot-indexed [`Module`] —
//! flat instruction vectors with explicit jump targets, dense frame
//! slots, and a shared constant pool — then executed by a loop-dispatch
//! VM ([`run_module`]). Observable behaviour (program output, free
//! counts, heap/GC metrics, virtual time) is identical to the
//! tree-walking interpreter in [`crate::interp`]; the differential tests
//! in the workspace enforce this across the whole workload corpus.

mod exec;
mod ir;
mod lower;
mod opt;

pub use exec::{run_module, BSession};
pub use ir::{BFunc, Const, Instr, Module};
pub use lower::lower;
pub use opt::{optimize, OptStats};

use minigo_escape::Analysis;
use minigo_syntax::{Program, Resolution, TypeInfo};

use crate::interp::{Result, RunOutcome, VmConfig};

/// Lowers `program` and runs its `main` on the bytecode engine.
///
/// Convenience entry point matching [`crate::interp::run`]'s signature;
/// callers that already hold a lowered [`Module`] should use
/// [`run_module`] directly and skip the lowering cost.
///
/// # Errors
///
/// Returns the same [`ExecError`](crate::ExecError)s as the tree-walking
/// interpreter.
pub fn run(
    program: &Program,
    res: &Resolution,
    types: &TypeInfo,
    analysis: &Analysis,
    cfg: VmConfig,
) -> Result<RunOutcome> {
    let module = lower(program, res, types, analysis);
    run_module(&module, cfg)
}
