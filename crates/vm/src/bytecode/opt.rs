//! The bytecode optimizer tier: peephole/constant folding, jump
//! threading, inline-cache installation, and superinstruction fusion.
//!
//! [`optimize`] rewrites a lowered [`Module`] into a faster but
//! observably identical one. "Observably identical" is a hard contract
//! here, enforced by the workspace's differential suites: program
//! output, virtual time, step counts, metrics, traces, and profiles
//! must be bit-identical to both the unoptimized stream and the
//! tree-walking interpreter.
//!
//! The contract holds because of one rule — **tick preservation**:
//! every rewrite that removes instructions carries their summed static
//! tick charges on the replacement (the `ticks` operand of
//! [`Instr::ConstTicked`] and the fused instructions). The runtime's
//! clock charge is an exact add with no per-call randomness, and no
//! observable event (allocation, trace event, safepoint, GC poll) can
//! occur *between* the charges of a fused window, so coalescing
//! `tick(1); tick(1)` into `tick(2)` is invisible to every observer.
//! Rewrites that could change error behaviour are refused: division by
//! a constant zero is never folded, branch folding only applies to
//! constant bools, and fusion windows never span a jump target.
//!
//! Pass ordering (per function):
//!
//! 1. **Fold** (to a fixpoint): constant arithmetic/comparisons into
//!    pool entries, dead push/pop pairs, constant branches, adjacent
//!    tick merging.
//! 2. **Thread**: collapse jump-to-jump chains and jumps-to-return.
//! 3. **Install ICs**: every `IndexGet`/`IndexSet` gets a monomorphic
//!    inline-cache slot (the cache accelerates map access; slice bases
//!    never touch it).
//! 4. **Fuse**: superinstructions for the hot shapes the lowering
//!    emits (`load load bin [store|branch]`, `load const bin ...`,
//!    slice-index-then-load, `load branch`), longest match first.
//!
//! Structural passes rebuild the instruction vector and remap every
//! jump operand through an old-index → new-index table; a window is
//! only rewritten when no jump targets its interior (targets *at* a
//! window start stay valid, since entering the window's replacement
//! executes exactly the constituent sequence).

use std::collections::HashMap;

use minigo_syntax::BinOp;

use super::ir::{BFunc, Const, Instr, Module};

/// Per-pass rewrite counters for one [`optimize`] run, surfaced through
/// the compile pipeline next to its phase timings and exported in the
/// JSON report (`gofree-report/3`'s additive `"opt"` object).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Instructions across the module before optimization.
    pub instrs_before: u64,
    /// Instructions after all passes.
    pub instrs_after: u64,
    /// Constant expressions folded into pool entries (fold pass).
    pub consts_folded: u64,
    /// Constant branches resolved to straight-line code (fold pass).
    pub branches_folded: u64,
    /// Dead push/pop pairs eliminated (fold pass).
    pub pushpops_elided: u64,
    /// Adjacent tick charges merged (fold pass).
    pub ticks_merged: u64,
    /// Jump-to-jump chains and jumps-to-return collapsed (thread pass).
    pub jumps_threaded: u64,
    /// Inline-cache slots installed on index instructions (IC pass).
    pub ic_sites: u64,
    /// Superinstructions fused (fuse pass).
    pub fusions: u64,
}

impl OptStats {
    /// Total rewrites across all passes.
    pub fn total_rewrites(&self) -> u64 {
        self.consts_folded
            + self.branches_folded
            + self.pushpops_elided
            + self.ticks_merged
            + self.jumps_threaded
            + self.ic_sites
            + self.fusions
    }
}

/// Runs the optimizer tier over a lowered module, returning the
/// optimized module and the per-pass rewrite counters. The input is
/// left untouched so the baseline stream stays available for `--opt
/// off`.
pub fn optimize(m: &Module) -> (Module, OptStats) {
    let mut out = m.clone();
    let mut stats = OptStats {
        instrs_before: out.instr_count() as u64,
        ..OptStats::default()
    };
    let mut pool = PoolInterner::new(&mut out.consts);
    let mut next_ic = 0u32;
    for f in &mut out.funcs {
        // Fold to a fixpoint so nested constant expressions collapse
        // fully (`1 + 2 + 3` needs two rounds); bounded for safety.
        for _ in 0..8 {
            if fold_pass(f, &mut pool, &mut stats) == 0 {
                break;
            }
        }
        thread_jumps(f, &mut stats);
        install_ics(f, &mut next_ic, &mut stats);
        fuse_pass(f, &mut stats);
    }
    out.ic_slots = next_ic;
    stats.instrs_after = out.instr_count() as u64;
    (out, stats)
}

// ---- constant pool interning ----

/// Interns scalar constants into an existing pool, mirroring the
/// lowering's dedup so folding reuses entries instead of growing the
/// pool per rewrite.
struct PoolInterner<'a> {
    pool: &'a mut Vec<Const>,
    scalars: HashMap<ScalarKey, u32>,
}

#[derive(PartialEq, Eq, Hash)]
enum ScalarKey {
    Int(i64),
    Bool(bool),
    Str(String),
    Nil,
}

fn scalar_key(c: &Const) -> Option<ScalarKey> {
    match c {
        Const::Int(i) => Some(ScalarKey::Int(*i)),
        Const::Bool(b) => Some(ScalarKey::Bool(*b)),
        Const::Str(s) => Some(ScalarKey::Str(s.to_string())),
        Const::Nil => Some(ScalarKey::Nil),
        Const::Struct(_) => None,
    }
}

impl<'a> PoolInterner<'a> {
    fn new(pool: &'a mut Vec<Const>) -> Self {
        let scalars = pool
            .iter()
            .enumerate()
            .filter_map(|(i, c)| scalar_key(c).map(|k| (k, i as u32)))
            .collect();
        PoolInterner { pool, scalars }
    }

    fn add(&mut self, c: Const) -> u32 {
        match scalar_key(&c) {
            Some(key) => *self.scalars.entry(key).or_insert_with(|| {
                let idx = self.pool.len() as u32;
                self.pool.push(c);
                idx
            }),
            None => {
                let idx = self.pool.len() as u32;
                self.pool.push(c);
                idx
            }
        }
    }

    fn get(&self, idx: u32) -> &Const {
        &self.pool[idx as usize]
    }
}

// ---- shared rewrite machinery ----

/// Marks every instruction index that is a jump target.
fn target_flags(code: &[Instr]) -> Vec<bool> {
    let mut flags = vec![false; code.len() + 1];
    for i in code {
        if let Some(t) = i.jump_target() {
            flags[t] = true;
        }
    }
    flags
}

/// Rebuilds `f.code` by scanning left to right: at each position the
/// matcher may claim a window of `consumed` instructions and supply a
/// replacement (with jump operands still in the *old* index space).
/// Afterwards every jump operand — survivors and replacements alike —
/// is remapped to the new index space. Returns the number of windows
/// rewritten.
///
/// The matcher must refuse windows whose interior (everything after the
/// first instruction) is a jump target; a jump *at* the window start
/// lands on the replacement, which executes the same sequence.
fn rewrite_windows(
    f: &mut BFunc,
    mut matcher: impl FnMut(&[Instr], usize, &[bool]) -> Option<(usize, Vec<Instr>)>,
) -> u64 {
    let code = &f.code;
    let is_target = target_flags(code);
    let mut new_code: Vec<Instr> = Vec::with_capacity(code.len());
    let mut map: Vec<usize> = vec![0; code.len() + 1];
    let mut rewrites = 0u64;
    let mut i = 0;
    while i < code.len() {
        map[i] = new_code.len();
        match matcher(code, i, &is_target) {
            Some((consumed, repl)) => {
                debug_assert!(consumed >= 1 && i + consumed <= code.len());
                debug_assert!(!is_target[i + 1..i + consumed].iter().any(|&b| b));
                for j in i + 1..i + consumed {
                    map[j] = map[i];
                }
                new_code.extend(repl);
                rewrites += 1;
                i += consumed;
            }
            None => {
                new_code.push(code[i].clone());
                i += 1;
            }
        }
    }
    map[code.len()] = new_code.len();
    for instr in &mut new_code {
        if let Some(t) = instr.jump_target_mut() {
            *t = map[*t];
        }
    }
    f.code = new_code;
    rewrites
}

/// Views an instruction as a constant push: `(pool index, ticks)`.
fn as_const_push(i: &Instr) -> Option<(u32, u32)> {
    match i {
        Instr::Const(c) => Some((*c, 1)),
        Instr::ConstRaw(c) => Some((*c, 0)),
        Instr::ConstTicked { c, ticks } => Some((*c, *ticks)),
        _ => None,
    }
}

/// `ConstTicked`, but degrading to the cheapest encoding.
fn const_push(c: u32, ticks: u32) -> Instr {
    match ticks {
        0 => Instr::ConstRaw(c),
        1 => Instr::Const(c),
        _ => Instr::ConstTicked { c, ticks },
    }
}

// ---- pass 1: peephole + constant folding ----

/// One fold round. Returns the number of rewrites.
fn fold_pass(f: &mut BFunc, pool: &mut PoolInterner, stats: &mut OptStats) -> u64 {
    // Counters are attributed inside the matcher; the closure borrows
    // them individually to keep borrowck happy.
    let mut folded = 0u64;
    let mut branches = 0u64;
    let mut pushpops = 0u64;
    let mut ticks_merged = 0u64;
    let total = rewrite_windows(f, |code, i, is_target| {
        let interior_free =
            |n: usize| i + n <= code.len() && !is_target[i + 1..i + n].iter().any(|&b| b);
        // [Tick a, Tick b] -> [Tick a+b]; [Tick n, const] -> const+n.
        if let Instr::Tick(a) = code[i] {
            if interior_free(2) {
                if let Instr::Tick(b) = code[i + 1] {
                    ticks_merged += 1;
                    return Some((2, vec![Instr::Tick(a + b)]));
                }
                if let Some((c, t)) = as_const_push(&code[i + 1]) {
                    ticks_merged += 1;
                    return Some((2, vec![const_push(c, a + t)]));
                }
            }
            if a == 0 {
                ticks_merged += 1;
                return Some((1, Vec::new()));
            }
            return None;
        }
        let (ca, ta) = as_const_push(&code[i])?;
        // [const a, const b, Bin op] -> folded const.
        if interior_free(3) {
            if let Some((cb, tb)) = as_const_push(&code[i + 1]) {
                let op_ticks = match &code[i + 2] {
                    Instr::Bin(op) => Some((*op, 1u32)),
                    Instr::BinRaw(op) => Some((*op, 0u32)),
                    _ => None,
                };
                if let Some((op, op_tick)) = op_ticks {
                    if let Some((folded_c, extra)) = fold_binop(pool.get(ca), pool.get(cb), op) {
                        let idx = pool.add(folded_c);
                        folded += 1;
                        return Some((3, vec![const_push(idx, ta + tb + op_tick + extra as u32)]));
                    }
                }
            }
        }
        if !interior_free(2) {
            return None;
        }
        match &code[i + 1] {
            // [const int, Neg] / [const bool, Not].
            Instr::Neg => {
                if let Const::Int(v) = pool.get(ca) {
                    let idx = pool.add(Const::Int(v.wrapping_neg()));
                    folded += 1;
                    return Some((2, vec![const_push(idx, ta + 1)]));
                }
            }
            Instr::Not => {
                if let Const::Bool(b) = pool.get(ca) {
                    let idx = pool.add(Const::Bool(!b));
                    folded += 1;
                    return Some((2, vec![const_push(idx, ta + 1)]));
                }
            }
            // [const, Pop 1] -> the ticks alone.
            Instr::Pop(1) => {
                pushpops += 1;
                let repl = if ta > 0 {
                    vec![Instr::Tick(ta)]
                } else {
                    Vec::new()
                };
                return Some((2, repl));
            }
            // [const bool, JumpIfFalse t] -> straight line or jump.
            Instr::JumpIfFalse(t) => {
                if let Const::Bool(b) = pool.get(ca) {
                    let mut repl = Vec::new();
                    if ta > 0 {
                        repl.push(Instr::Tick(ta));
                    }
                    if !b {
                        repl.push(Instr::Jump(*t));
                    }
                    branches += 1;
                    return Some((2, repl));
                }
            }
            // [const bool, AndJump t]: false short-circuits (push false,
            // jump), true continues with nothing pushed.
            Instr::AndJump(t) => {
                if let Const::Bool(b) = pool.get(ca) {
                    let repl = if *b {
                        if ta > 0 {
                            vec![Instr::Tick(ta)]
                        } else {
                            Vec::new()
                        }
                    } else {
                        vec![const_push(ca, ta), Instr::Jump(*t)]
                    };
                    branches += 1;
                    return Some((2, repl));
                }
            }
            Instr::OrJump(t) => {
                if let Const::Bool(b) = pool.get(ca) {
                    let repl = if *b {
                        vec![const_push(ca, ta), Instr::Jump(*t)]
                    } else if ta > 0 {
                        vec![Instr::Tick(ta)]
                    } else {
                        Vec::new()
                    };
                    branches += 1;
                    return Some((2, repl));
                }
            }
            _ => {}
        }
        None
    });
    stats.consts_folded += folded;
    stats.branches_folded += branches;
    stats.pushpops_elided += pushpops;
    stats.ticks_merged += ticks_merged;
    total
}

/// Folds `a op b` exactly as [`binop_rt`](crate::interp) would evaluate
/// it, or `None` when the operation could fail (division by a constant
/// zero), charges data-dependent ticks the fold can't express, or
/// involves non-scalar operands. Returns the result and any extra ticks
/// the runtime op would have charged beyond the `Bin` node's own
/// (string concatenation's length-scaled charge).
fn fold_binop(a: &Const, b: &Const, op: BinOp) -> Option<(Const, u64)> {
    use BinOp::*;
    let out = match (op, a, b) {
        (Add, Const::Int(x), Const::Int(y)) => (Const::Int(x.wrapping_add(*y)), 0),
        (Sub, Const::Int(x), Const::Int(y)) => (Const::Int(x.wrapping_sub(*y)), 0),
        (Mul, Const::Int(x), Const::Int(y)) => (Const::Int(x.wrapping_mul(*y)), 0),
        (Div, Const::Int(x), Const::Int(y)) if *y != 0 => (Const::Int(x.wrapping_div(*y)), 0),
        (Rem, Const::Int(x), Const::Int(y)) if *y != 0 => (Const::Int(x.wrapping_rem(*y)), 0),
        (Add, Const::Str(x), Const::Str(y)) => {
            let s = format!("{x}{y}");
            let extra = 1 + (s.len() as u64) / 16;
            (Const::Str(s.into()), extra)
        }
        (Lt, Const::Int(x), Const::Int(y)) => (Const::Bool(x < y), 0),
        (Le, Const::Int(x), Const::Int(y)) => (Const::Bool(x <= y), 0),
        (Gt, Const::Int(x), Const::Int(y)) => (Const::Bool(x > y), 0),
        (Ge, Const::Int(x), Const::Int(y)) => (Const::Bool(x >= y), 0),
        (Lt, Const::Str(x), Const::Str(y)) => (Const::Bool(x < y), 0),
        (Le, Const::Str(x), Const::Str(y)) => (Const::Bool(x <= y), 0),
        (Gt, Const::Str(x), Const::Str(y)) => (Const::Bool(x > y), 0),
        (Ge, Const::Str(x), Const::Str(y)) => (Const::Bool(x >= y), 0),
        (Eq, _, _) => (Const::Bool(const_eq(a, b)?), 0),
        (Ne, _, _) => (Const::Bool(!const_eq(a, b)?), 0),
        _ => return None,
    };
    Some(out)
}

/// Scalar equality mirroring the runtime's `value_eq`: mismatched
/// scalar kinds compare unequal (its `_ => false` arm); structs are
/// skipped rather than recursed.
fn const_eq(a: &Const, b: &Const) -> Option<bool> {
    Some(match (a, b) {
        (Const::Struct(_), _) | (_, Const::Struct(_)) => return None,
        (Const::Int(x), Const::Int(y)) => x == y,
        (Const::Bool(x), Const::Bool(y)) => x == y,
        (Const::Str(x), Const::Str(y)) => x == y,
        (Const::Nil, Const::Nil) => true,
        _ => false,
    })
}

// ---- pass 2: jump threading ----

/// Retargets jump-to-jump chains to their final destination and
/// collapses unconditional jumps-to-return into `Ret`. Non-structural:
/// indices are unchanged.
fn thread_jumps(f: &mut BFunc, stats: &mut OptStats) {
    let code = &mut f.code;
    for i in 0..code.len() {
        let Some(t0) = code[i].jump_target() else {
            continue;
        };
        let mut t = t0;
        // Follow the chain with a hop bound as the cycle guard.
        let mut hops = 0;
        while hops <= code.len() {
            match &code[t] {
                Instr::Jump(u) if *u != t => {
                    t = *u;
                    hops += 1;
                }
                _ => break,
            }
        }
        if hops > code.len() {
            // Pure jump cycle (unreachable from lowered code, which
            // always has a safepoint in loops): leave it alone.
            continue;
        }
        if t != t0 {
            *code[i].jump_target_mut().expect("jump checked above") = t;
            stats.jumps_threaded += 1;
        }
        // An unconditional jump to `Ret` is a return.
        if let Instr::Jump(jt) = code[i] {
            if matches!(code[jt], Instr::Ret) {
                code[i] = Instr::Ret;
                stats.jumps_threaded += 1;
            }
        }
    }
}

// ---- pass 3: inline-cache installation ----

/// Gives every index instruction a monomorphic inline-cache slot. Runs
/// before fusion so fused index superinstructions inherit the slot.
fn install_ics(f: &mut BFunc, next_ic: &mut u32, stats: &mut OptStats) {
    for instr in &mut f.code {
        match instr {
            Instr::IndexGet => {
                *instr = Instr::IndexGetIC(*next_ic);
                *next_ic += 1;
                stats.ic_sites += 1;
            }
            Instr::IndexSet => {
                *instr = Instr::IndexSetIC(*next_ic);
                *next_ic += 1;
                stats.ic_sites += 1;
            }
            _ => {}
        }
    }
}

// ---- pass 4: superinstruction fusion ----

/// Fuses the hot instruction shapes, longest match first. Every fused
/// instruction's `ticks` operand is the sum of its constituents' static
/// charges; data-dependent charges (map-op ticks, string concat) stay
/// inside the shared runtime helpers the fused handlers call.
fn fuse_pass(f: &mut BFunc, stats: &mut OptStats) {
    let fused = rewrite_windows(f, |code, i, is_target| {
        let interior_free =
            |n: usize| i + n <= code.len() && !is_target[i + 1..i + n].iter().any(|&b| b);
        let Instr::LoadSlot(a) = code[i] else {
            // Non-load-led shapes: [Bin, JumpIfFalse].
            if interior_free(2) {
                if let (Instr::Bin(op), Instr::JumpIfFalse(t)) = (&code[i], &code[i + 1]) {
                    return Some((
                        2,
                        vec![Instr::BinJumpIfFalse {
                            op: *op,
                            t: *t,
                            ticks: 1,
                        }],
                    ));
                }
            }
            // Const-led shapes: [const, Bin|BinRaw, ...] — the left
            // operand is already on the stack (a complex subexpression),
            // the right is a constant. Reached only when the const was
            // not absorbed by a load-led window further left.
            if let Some((c, tc)) = as_const_push(&code[i]) {
                let op = if interior_free(2) {
                    match &code[i + 1] {
                        Instr::Bin(op) => Some((*op, tc + 1)),
                        Instr::BinRaw(op) => Some((*op, tc)),
                        _ => None,
                    }
                } else {
                    None
                };
                if let Some((op, ticks)) = op {
                    let tail = if interior_free(3) {
                        Some(&code[i + 2])
                    } else {
                        None
                    };
                    return Some(match tail {
                        Some(Instr::JumpIfFalse(t)) => (
                            3,
                            vec![Instr::BinConstJump {
                                c,
                                op,
                                t: *t,
                                ticks,
                            }],
                        ),
                        Some(Instr::StoreSlot(dst)) => (
                            3,
                            vec![Instr::BinConstStore {
                                c,
                                op,
                                dst: *dst,
                                ticks,
                            }],
                        ),
                        _ => (2, vec![Instr::BinConst { c, op, ticks }]),
                    });
                }
            }
            return None;
        };
        // Loop-header shape: [LoadSlot i, LoadSlot s, Len, Bin,
        // JumpIfFalse] (`for i < len(s)`) collapses 5 -> 1.
        if interior_free(5) {
            if let (Instr::LoadSlot(s), Instr::Len, Instr::Bin(op), Instr::JumpIfFalse(t)) =
                (&code[i + 1], &code[i + 2], &code[i + 3], &code[i + 4])
            {
                return Some((
                    5,
                    vec![Instr::LoadLoadLenBinJump {
                        a,
                        s: *s,
                        op: *op,
                        t: *t,
                        ticks: 4,
                    }],
                ));
            }
        }
        // Arithmetic shapes: [LoadSlot, LoadSlot|const, Bin|BinRaw, ...].
        let rhs = if interior_free(3) {
            match &code[i + 1] {
                Instr::LoadSlot(b) => match &code[i + 2] {
                    Instr::Bin(op) => Some((Ok(*b), *op, 2 + 1)),
                    Instr::BinRaw(op) => Some((Ok(*b), *op, 2)),
                    _ => None,
                },
                other => match (as_const_push(other), &code[i + 2]) {
                    (Some((c, tc)), Instr::Bin(op)) => Some((Err(c), *op, 1 + tc + 1)),
                    (Some((c, tc)), Instr::BinRaw(op)) => Some((Err(c), *op, 1 + tc)),
                    _ => None,
                },
            }
        } else {
            None
        };
        if let Some((rhs, op, ticks)) = rhs {
            // Try to absorb a trailing StoreSlot or JumpIfFalse.
            let tail = if interior_free(4) {
                Some(&code[i + 3])
            } else {
                None
            };
            let instr = match (rhs, tail) {
                (Ok(b), Some(Instr::StoreSlot(dst))) => Some((
                    4,
                    Instr::LoadLoadBinStore {
                        a,
                        b,
                        op,
                        dst: *dst,
                        ticks,
                    },
                )),
                (Err(c), Some(Instr::StoreSlot(dst))) => Some((
                    4,
                    Instr::LoadConstBinStore {
                        a,
                        c,
                        op,
                        dst: *dst,
                        ticks,
                    },
                )),
                (Ok(b), Some(Instr::JumpIfFalse(t))) => Some((
                    4,
                    Instr::LoadLoadBinJump {
                        a,
                        b,
                        op,
                        t: *t,
                        ticks,
                    },
                )),
                (Err(c), Some(Instr::JumpIfFalse(t))) => Some((
                    4,
                    Instr::LoadConstBinJump {
                        a,
                        c,
                        op,
                        t: *t,
                        ticks,
                    },
                )),
                (Ok(b), _) => Some((3, Instr::LoadLoadBin { a, b, op, ticks })),
                (Err(c), _) => Some((3, Instr::LoadConstBin { a, c, op, ticks })),
            };
            if let Some((n, instr)) = instr {
                return Some((n, vec![instr]));
            }
        }
        // Index shapes: [LoadSlot base, CheckIndexBase, LoadSlot|const,
        // IndexGetIC|IndexSetIC].
        if interior_free(4) {
            if let Instr::CheckIndexBase = code[i + 1] {
                let idx = match &code[i + 2] {
                    Instr::LoadSlot(s) => Some((Ok(*s), 1u32)),
                    other => as_const_push(other).map(|(c, tc)| (Err(c), tc)),
                };
                if let Some((idx, tidx)) = idx {
                    let instr = match (&code[i + 3], idx) {
                        (Instr::IndexGetIC(ic), Ok(s)) => Some(Instr::LoadLoadIndexGet {
                            base: a,
                            idx: s,
                            ic: *ic,
                            ticks: 1 + tidx + 1,
                        }),
                        (Instr::IndexGetIC(ic), Err(c)) => Some(Instr::LoadConstIndexGet {
                            base: a,
                            c,
                            ic: *ic,
                            ticks: 1 + tidx + 1,
                        }),
                        (Instr::IndexSetIC(ic), Ok(s)) => Some(Instr::LoadLoadIndexSet {
                            base: a,
                            idx: s,
                            ic: *ic,
                            ticks: 1 + tidx,
                        }),
                        (Instr::IndexSetIC(ic), Err(c)) => Some(Instr::LoadConstIndexSet {
                            base: a,
                            c,
                            ic: *ic,
                            ticks: 1 + tidx,
                        }),
                        _ => None,
                    };
                    if let Some(instr) = instr {
                        return Some((4, vec![instr]));
                    }
                }
            }
        }
        // [LoadSlot, JumpIfFalse] (bare bool conditions).
        if interior_free(2) {
            if let Instr::JumpIfFalse(t) = code[i + 1] {
                return Some((2, vec![Instr::LoadJumpIfFalse { s: a, t, ticks: 1 }]));
            }
        }
        // [LoadSlot, Len, StoreSlot?] (`n := len(s)` and friends).
        if interior_free(2) {
            if let Instr::Len = code[i + 1] {
                if interior_free(3) {
                    if let Instr::StoreSlot(dst) = code[i + 2] {
                        return Some((
                            3,
                            vec![Instr::LoadLenStore {
                                s: a,
                                dst,
                                ticks: 2,
                            }],
                        ));
                    }
                }
                return Some((2, vec![Instr::LoadLen { s: a, ticks: 2 }]));
            }
        }
        // [LoadSlot, Bin|BinRaw]: slot right operand under a stack left
        // operand (reached only when the longer arithmetic windows
        // above did not match).
        if interior_free(2) {
            let op = match &code[i + 1] {
                Instr::Bin(op) => Some((*op, 2)),
                Instr::BinRaw(op) => Some((*op, 1)),
                _ => None,
            };
            if let Some((op, ticks)) = op {
                return Some((2, vec![Instr::BinSlot { s: a, op, ticks }]));
            }
        }
        // [LoadSlot, LoadSlot] pairs feeding an unfuseable consumer
        // (call arguments, struct literals, prints). Guarded: when the
        // instruction after the pair could start a fusion led by the
        // second load, leave the pair alone so that window stays
        // available.
        if interior_free(2) {
            if let Instr::LoadSlot(b) = code[i + 1] {
                let blocks_b = i + 2 < code.len()
                    && matches!(
                        code[i + 2],
                        Instr::LoadSlot(_)
                            | Instr::Const(_)
                            | Instr::ConstRaw(_)
                            | Instr::ConstTicked { .. }
                            | Instr::Len
                            | Instr::CheckIndexBase
                            | Instr::Bin(_)
                            | Instr::BinRaw(_)
                            | Instr::JumpIfFalse(_)
                    );
                if !blocks_b {
                    return Some((2, vec![Instr::LoadLoad { a, b, ticks: 2 }]));
                }
            }
        }
        None
    });
    stats.fusions += fused;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(code: Vec<Instr>, consts: Vec<Const>) -> Module {
        Module {
            funcs: vec![BFunc {
                name: "main".into(),
                nslots: 4,
                params: Vec::new(),
                results: Vec::new(),
                slot_names: vec!["a".into(), "b".into(), "c".into(), "d".into()],
                code,
            }],
            main: 0,
            consts,
            ic_slots: 0,
        }
    }

    #[test]
    fn folds_constant_arithmetic_with_summed_ticks() {
        // 1 + 2 + 3 -> one push charging all five constituent ticks.
        let m = module(
            vec![
                Instr::Const(0),
                Instr::Const(1),
                Instr::Bin(BinOp::Add),
                Instr::Const(2),
                Instr::Bin(BinOp::Add),
                Instr::Pop(1),
                Instr::Ret,
            ],
            vec![Const::Int(1), Const::Int(2), Const::Int(3)],
        );
        let (opt, stats) = optimize(&m);
        assert!(stats.consts_folded >= 2, "{stats:?}");
        assert!(stats.pushpops_elided >= 1, "{stats:?}");
        // The whole expression statement collapses to its tick charge.
        assert_eq!(opt.funcs[0].code, vec![Instr::Tick(5), Instr::Ret]);
        assert!(opt.consts.iter().any(|c| matches!(c, Const::Int(6))));
    }

    #[test]
    fn never_folds_division_by_zero() {
        let m = module(
            vec![
                Instr::Const(0),
                Instr::Const(1),
                Instr::Bin(BinOp::Div),
                Instr::Pop(1),
                Instr::Ret,
            ],
            vec![Const::Int(1), Const::Int(0)],
        );
        let (opt, stats) = optimize(&m);
        assert_eq!(stats.consts_folded, 0);
        // The division must still execute at runtime (where it errors);
        // fusing it into a const-operand form is fine, folding is not.
        assert!(opt.funcs[0].code.iter().any(|i| matches!(
            i,
            Instr::Bin(BinOp::Div) | Instr::BinConst { op: BinOp::Div, .. }
        )));
    }

    #[test]
    fn fuses_compound_assignment_to_one_instruction() {
        // i += 1 -> LoadConstBinStore with the original 2-tick charge.
        let m = module(
            vec![
                Instr::LoadSlot(0),
                Instr::Const(0),
                Instr::BinRaw(BinOp::Add),
                Instr::StoreSlot(0),
                Instr::Ret,
            ],
            vec![Const::Int(1)],
        );
        let (opt, stats) = optimize(&m);
        assert_eq!(stats.fusions, 1);
        assert_eq!(
            opt.funcs[0].code,
            vec![
                Instr::LoadConstBinStore {
                    a: 0,
                    c: 0,
                    op: BinOp::Add,
                    dst: 0,
                    ticks: 2,
                },
                Instr::Ret,
            ]
        );
    }

    #[test]
    fn fusion_respects_jump_targets_and_remaps() {
        // The StoreSlot at index 3 is a jump target, so the 4-window
        // must not absorb it; the 3-window [Load, Load, Bin] still
        // fuses and the jump is remapped onto the surviving store.
        let m = module(
            vec![
                Instr::Jump(3),
                Instr::LoadSlot(0),
                Instr::LoadSlot(1),
                Instr::StoreSlot(2), // target
                Instr::LoadSlot(0),
                Instr::LoadSlot(1),
                Instr::Bin(BinOp::Add),
                Instr::StoreSlot(3), // target of nothing: fused fully
                Instr::Ret,
            ],
            Vec::new(),
        );
        let (opt, stats) = optimize(&m);
        assert!(stats.fusions >= 1);
        let code = &opt.funcs[0].code;
        let Some(Instr::Jump(t)) = code.first() else {
            panic!("expected leading jump, got {code:?}");
        };
        assert!(
            matches!(code[*t], Instr::StoreSlot(2)),
            "jump should land on the store: {code:?}"
        );
    }

    #[test]
    fn installs_ics_and_fuses_index_reads() {
        let m = module(
            vec![
                Instr::LoadSlot(0),
                Instr::CheckIndexBase,
                Instr::LoadSlot(1),
                Instr::IndexGet,
                Instr::Pop(1),
                Instr::Ret,
            ],
            Vec::new(),
        );
        let (opt, stats) = optimize(&m);
        assert_eq!(stats.ic_sites, 1);
        assert_eq!(opt.ic_slots, 1);
        assert!(matches!(
            opt.funcs[0].code[0],
            Instr::LoadLoadIndexGet {
                base: 0,
                idx: 1,
                ic: 0,
                ticks: 3,
            }
        ));
    }

    #[test]
    fn threads_jump_chains() {
        let m = module(
            vec![
                Instr::JumpIfFalse(2),
                Instr::Ret,
                Instr::Jump(4),
                Instr::Ret,
                Instr::Ret,
            ],
            Vec::new(),
        );
        let (opt, stats) = optimize(&m);
        assert!(stats.jumps_threaded >= 1);
        assert!(matches!(opt.funcs[0].code[0], Instr::JumpIfFalse(4)));
    }
}
