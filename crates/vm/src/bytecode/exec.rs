//! The bytecode engine: a loop-dispatch VM over the slot-indexed IR.
//!
//! Executes one instruction stream per function against the same
//! simulated runtime as the tree-walking interpreter, with identical
//! observable behaviour: the sequence of allocations, frees, safepoints,
//! and GC cycles — and the total clock charge per statement — match the
//! tree-walk exactly, so outputs, free counts, and heap/GC metrics are
//! bit-identical across engines (enforced by the differential tests).
//!
//! Frames hold a dense `Vec` of slots instead of a `HashMap<VarId, _>`;
//! each call's operand stack is a plain local `Vec`. Operand-stack
//! temporaries are deliberately *not* GC roots, mirroring the tree-walk,
//! which marks only frame slots and deferred-call arguments.

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

use minigo_runtime::{Category, FreeOutcome, FreeSource, ObjAddr, Runtime, ShadowHeap};
use minigo_syntax::Builtin;

use super::ir::{BFunc, Const, Instr, Module};
use crate::error::ExecError;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::interp::{binop_rt, check_poison, free_op_name, mark_value, value_eq};
use crate::interp::{Result, RunOutcome, SiteProfile, VmConfig};
use crate::value::{Key, MapData, MapVal, ObjId, PtrVal, SliceVal, Value};

/// Runs a lowered module's `main`.
///
/// # Errors
///
/// Returns the same [`ExecError`]s as the tree-walking interpreter:
/// panics, nil dereferences, bounds errors, poisoned reads, and
/// resource-limit violations.
pub fn run_module(module: &Module, cfg: VmConfig) -> Result<RunOutcome> {
    cfg.runtime.validate().map_err(ExecError::InvalidConfig)?;
    if module.main == usize::MAX {
        return Err(ExecError::NoMain);
    }
    let mut vm = BVm::new(cfg, module);
    vm.run_function(module, module.main, Vec::new())?;
    Ok(vm.finish())
}

/// A persistent bytecode execution session — the bytecode twin of
/// [`crate::interp::Session`], driving the same call protocol the
/// engine's internal calls use so session runs stay bit-identical
/// across engines. See the tree-walk session for the contract.
pub struct BSession<'m> {
    module: &'m Module,
    vm: BVm,
}

impl<'m> BSession<'m> {
    /// Creates a session over a lowered (optionally optimized) module.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidConfig`] when the runtime
    /// configuration fails validation.
    pub fn new(module: &'m Module, cfg: VmConfig) -> Result<Self> {
        cfg.runtime.validate().map_err(ExecError::InvalidConfig)?;
        Ok(BSession {
            module,
            vm: BVm::new(cfg, module),
        })
    }

    /// Calls a top-level function by name and returns its results.
    ///
    /// # Errors
    ///
    /// [`ExecError::NoFunc`] for an unknown name; otherwise whatever the
    /// call itself raises.
    pub fn call(&mut self, name: &str, args: Vec<Value>) -> Result<Vec<Value>> {
        let fid = self
            .module
            .funcs
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| ExecError::NoFunc(name.to_string()))?;
        let want = self.module.funcs[fid].results.len() as u32;
        let mut stack = args;
        let nargs = stack.len();
        self.vm
            .call_on_stack(self.module, fid, &mut stack, nargs, want)?;
        Ok(stack)
    }

    /// Roots `values` for the rest of the session (marked at every GC).
    pub fn hold(&mut self, values: Vec<Value>) {
        self.vm.held.extend(values);
    }

    /// Elapsed virtual time.
    pub fn now(&self) -> u64 {
        self.vm.rt.now()
    }

    /// Advances the virtual clock to absolute time `t` (idle waiting).
    pub fn idle_until(&mut self, t: u64) {
        self.vm.rt.idle_until(t);
    }

    /// Current live heap bytes.
    pub fn heap_live(&self) -> u64 {
        self.vm.rt.heap_live()
    }

    /// Current page-level heap footprint in bytes.
    pub fn footprint(&self) -> u64 {
        self.vm.rt.footprint()
    }

    /// Every completed GC cycle's stop record so far.
    pub fn pauses(&self) -> &[minigo_runtime::Pause] {
        self.vm.rt.pauses()
    }

    /// Records a completed-request trace span (no-op without tracing).
    pub fn note_request(&mut self, id: u64, arrival: u64, start: u64) {
        self.vm.rt.trace_request(id, arrival, start);
    }

    /// Ends the session and assembles the same [`RunOutcome`] a one-shot
    /// [`run_module`] would produce.
    pub fn finish(self) -> RunOutcome {
        self.vm.finish()
    }
}

/// A frame slot. `Empty` marks a not-yet-declared local; reading one is
/// the engine's analogue of the tree-walk's "variable not found".
#[derive(Clone)]
enum BSlot {
    Empty,
    Plain(Value),
    Boxed(Rc<RefCell<Value>>, Option<ObjId>),
}

enum BDeferKind {
    Func(usize),
    Builtin(Builtin),
}

struct BDeferred {
    kind: BDeferKind,
    args: Vec<Value>,
}

struct BFrame {
    slots: Vec<BSlot>,
    defers: Vec<BDeferred>,
}

struct BVm {
    cfg: VmConfig,
    /// Per-run materialization of the module's (thread-shared) constant
    /// pool; entries are cloned onto the operand stack so string payloads
    /// are `Rc`-shared within the run, as with the old `Value` pool.
    consts: Vec<Value>,
    rt: Runtime,
    objects: FxHashMap<ObjId, ObjAddr>,
    addr_map: FxHashMap<ObjAddr, ObjId>,
    next_obj: u64,
    frames: Vec<BFrame>,
    /// Retired frame-slot vectors, reused across calls so a call does
    /// not malloc (values were dropped when the owning frame popped).
    slot_pool: Vec<Vec<BSlot>>,
    /// Retired operand stacks, reused across calls for the same reason.
    stack_pool: Vec<Vec<Value>>,
    site_profile: FxHashMap<minigo_syntax::ExprId, (u64, u64)>,
    /// Interned call stacks when tracing (hooked at the same function
    /// entry/exit points as the tree-walk's, so ids are bit-identical
    /// across engines).
    stacks: Option<minigo_runtime::StackTable>,
    /// The interned id of the current call stack (root when not tracing).
    cur_stack: u32,
    /// The shadow-heap sanitizer, present when `cfg.sanitize` is on
    /// (hooked at the same points as the tree-walk's).
    shadow: Option<ShadowHeap>,
    /// Monomorphic inline caches, one per `ic_slots` entry in the
    /// module. A cache can only *miss* when stale (the tag is the map
    /// storage's address and the cached entry's key is re-checked on
    /// every hit), so it accelerates lookups without being able to
    /// change any observable result.
    ics: Vec<IcEntry>,
    ic_hits: u64,
    ic_misses: u64,
    /// Session-held GC roots (see the tree-walk's `held`); always empty
    /// in one-shot [`run_module`] executions.
    held: Vec<Value>,
    output: String,
    steps: u64,
}

/// One inline-cache entry: the identity of the last map storage seen at
/// this site plus the entry index its key resolved to.
#[derive(Clone, Copy)]
struct IcEntry {
    tag: usize,
    idx: usize,
}

const IC_EMPTY: IcEntry = IcEntry {
    tag: 0,
    idx: usize::MAX,
};

#[inline]
fn bslot(value: Value, boxed: bool) -> BSlot {
    if boxed {
        BSlot::Boxed(Rc::new(RefCell::new(value)), None)
    } else {
        BSlot::Plain(value)
    }
}

fn expected_bool(v: &Value) -> ExecError {
    ExecError::Internal(format!("expected bool, got {}", v.display()))
}

fn expected_int(v: &Value) -> ExecError {
    ExecError::Internal(format!("expected int, got {}", v.display()))
}

/// The `CheckIndexBase` test, shared with the fused index handlers.
#[inline]
fn check_index_base(v: &Value) -> Result<()> {
    match v {
        Value::Slice(_) | Value::Map(_) => Ok(()),
        Value::Nil => Err(ExecError::NilDeref),
        _ => Err(ExecError::Internal("index of non-indexable".into())),
    }
}

/// The `Len` computation, shared with the fused length handlers.
#[inline]
fn len_of(v: Value) -> Result<Value> {
    let n = match v {
        Value::Slice(s) => s.len as i64,
        Value::Map(map) => map.data.borrow().len() as i64,
        Value::Str(s) => s.len() as i64,
        Value::Nil => 0,
        _ => return Err(ExecError::Internal("len of bad value".into())),
    };
    Ok(Value::Int(n))
}

/// The `JumpIfFalse` test, shared with the fused branch handlers.
#[inline]
fn branch_if_false(v: Value, pc: &mut usize, t: usize) -> Result<()> {
    match v {
        Value::Bool(b) => {
            if !b {
                *pc = t;
            }
            Ok(())
        }
        other => Err(expected_bool(&other)),
    }
}

impl BVm {
    fn new(cfg: VmConfig, module: &Module) -> Self {
        let rt = Runtime::new(cfg.runtime.clone());
        let shadow = cfg.sanitize.then(ShadowHeap::new);
        let stacks = cfg.runtime.trace.then(minigo_runtime::StackTable::new);
        BVm {
            cfg,
            consts: module.consts.iter().map(Const::to_value).collect(),
            rt,
            objects: FxHashMap::default(),
            addr_map: FxHashMap::default(),
            next_obj: 0,
            frames: Vec::new(),
            slot_pool: Vec::new(),
            stack_pool: Vec::new(),
            site_profile: FxHashMap::default(),
            stacks,
            cur_stack: minigo_runtime::ROOT_STACK,
            shadow,
            ics: vec![IC_EMPTY; module.ic_slots as usize],
            ic_hits: 0,
            ic_misses: 0,
            held: Vec::new(),
            output: String::new(),
            steps: 0,
        }
    }

    // ---- object accounting (mirrors the tree-walk's) ----

    /// End-of-run accounting shared by [`run_module`] and
    /// [`BSession::finish`]: finalizes the runtime and assembles the
    /// report (mirrors the tree-walk's `finish`).
    fn finish(mut self) -> RunOutcome {
        self.rt.finalize();
        let mut site_profile: Vec<SiteProfile> = self
            .site_profile
            .iter()
            .map(|(&site, &(count, bytes))| SiteProfile { site, count, bytes })
            .collect();
        site_profile.sort_by(|a, b| b.bytes.cmp(&a.bytes).then(a.site.cmp(&b.site)));
        let violations = match self.shadow.as_mut() {
            Some(sh) => sh.take_violations(),
            None => Vec::new(),
        };
        let mut trace = self.rt.take_trace();
        if let (Some(tr), Some(st)) = (trace.as_mut(), self.stacks.take()) {
            // The runtime only sees interned ids; the table that resolves
            // them lives in the VM and rides along in the trace.
            tr.stacks = st;
        }
        RunOutcome {
            output: std::mem::take(&mut self.output),
            time: self.rt.now(),
            metrics: self.rt.metrics().clone(),
            steps: self.steps,
            site_profile,
            violations,
            trace,
            collector: self.rt.collector_kind(),
            ic_hits: self.ic_hits,
            ic_misses: self.ic_misses,
            opt: None,
            placement: None,
        }
    }

    fn new_obj(&mut self, size: u64, cat: Category) -> ObjId {
        self.new_obj_at(size, cat, None)
    }

    fn new_obj_at(
        &mut self,
        size: u64,
        cat: Category,
        site: Option<minigo_syntax::ExprId>,
    ) -> ObjId {
        if let Some(site) = site {
            let entry = self.site_profile.entry(site).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += size;
        }
        let addr = self.rt.alloc_at(size, cat, site.map(|s| s.0));
        if let Some(old) = self.addr_map.insert(addr, ObjId(self.next_obj)) {
            self.objects.remove(&old);
        }
        let id = ObjId(self.next_obj);
        self.next_obj += 1;
        self.objects.insert(id, addr);
        if let Some(sh) = &mut self.shadow {
            sh.on_alloc(id.0, addr);
        }
        id
    }

    fn free_obj(&mut self, obj: ObjId, source: FreeSource, batched: bool) -> (FreeOutcome, bool) {
        if let Some(sh) = &mut self.shadow {
            sh.check_free(obj.0, free_op_name(source), self.steps);
        }
        let Some(&addr) = self.objects.get(&obj) else {
            return (
                FreeOutcome::Bailed(minigo_runtime::BailReason::AlreadyFree),
                false,
            );
        };
        let out = if batched {
            self.rt.tcfree_continue(addr, source)
        } else {
            self.rt.tcfree(addr, source)
        };
        match out {
            FreeOutcome::Freed { .. } => {
                self.objects.remove(&obj);
                self.addr_map.remove(&addr);
                if let Some(sh) = &mut self.shadow {
                    sh.on_free(obj.0, addr);
                }
                (out, false)
            }
            FreeOutcome::Poisoned => (out, true),
            FreeOutcome::Bailed(_) => (out, false),
        }
    }

    // ---- GC ----

    #[inline]
    fn safepoint(&mut self) -> Result<()> {
        self.steps += 1;
        if self.steps > self.cfg.step_limit {
            return Err(ExecError::StepLimit);
        }
        self.rt.tick(1);
        if self.rt.gc_pending() {
            self.collect_garbage();
        }
        Ok(())
    }

    fn collect_garbage(&mut self) {
        let mut marked: HashSet<ObjAddr> = HashSet::new();
        let mut seen: FxHashSet<usize> = FxHashSet::default();
        for frame in &self.frames {
            for slot in &frame.slots {
                match slot {
                    BSlot::Empty => {}
                    BSlot::Plain(v) => {
                        mark_value(v, &self.objects, &mut marked, &mut seen);
                    }
                    BSlot::Boxed(cell, obj) => {
                        if let Some(obj) = obj {
                            if let Some(&addr) = self.objects.get(obj) {
                                marked.insert(addr);
                            }
                        }
                        if seen.insert(Rc::as_ptr(cell) as usize) {
                            mark_value(&cell.borrow(), &self.objects, &mut marked, &mut seen);
                        }
                    }
                }
            }
            for d in &frame.defers {
                for v in &d.args {
                    mark_value(v, &self.objects, &mut marked, &mut seen);
                }
            }
        }
        for v in &self.held {
            mark_value(v, &self.objects, &mut marked, &mut seen);
        }
        let swept = self.rt.collect(&marked);
        for (addr, _, _) in &swept.freed {
            if let Some(obj) = self.addr_map.remove(addr) {
                self.objects.remove(&obj);
                if let Some(sh) = &mut self.shadow {
                    sh.on_sweep(obj.0);
                }
            }
        }
    }

    // ---- shadow-heap sanitizer hooks (mirror the tree-walk's) ----

    fn shadow_access(&mut self, obj: Option<ObjId>, op: &'static str) {
        if let (Some(sh), Some(obj)) = (self.shadow.as_mut(), obj) {
            sh.check_access(obj.0, op, self.steps);
        }
    }

    fn shadow_access_map(&mut self, m: &MapVal, op: &'static str) {
        if self.shadow.is_some() {
            let buckets = m.data.borrow().buckets_obj;
            self.shadow_access(m.obj, op);
            self.shadow_access(buckets, op);
        }
    }

    // ---- collector write barriers (mirror the tree-walk's) ----

    #[inline]
    fn barrier_store(&mut self, obj: Option<ObjId>) {
        if let Some(obj) = obj {
            if let Some(&addr) = self.objects.get(&obj) {
                self.rt.record_store(addr);
            }
        }
    }

    fn barrier_store_map(&mut self, m: &MapVal) {
        let buckets = m.data.borrow().buckets_obj;
        self.barrier_store(m.obj);
        self.barrier_store(buckets);
    }

    // ---- calls ----

    /// Calls a function whose results are discarded (entry point and
    /// deferred calls); `args` become the callee's parameters. Results
    /// are still read and poison-checked exactly as a stack call's.
    fn run_function(&mut self, m: &Module, fid: usize, args: Vec<Value>) -> Result<()> {
        let mut stack = args;
        let nargs = stack.len();
        self.call_on_stack(m, fid, &mut stack, nargs, u32::MAX)
    }

    /// The call protocol: moves the top `nargs` of the caller's operand
    /// stack into the callee's parameter slots, runs body + defers, and
    /// pushes the poison-checked results back (dropped when `want` is
    /// `u32::MAX`). Frame-slot vectors and operand stacks are recycled
    /// through pools, so a call steady-state allocates nothing.
    fn call_on_stack(
        &mut self,
        m: &Module,
        fid: usize,
        stack: &mut Vec<Value>,
        nargs: usize,
        want: u32,
    ) -> Result<()> {
        if self.frames.len() >= self.cfg.max_frames {
            return Err(ExecError::StackOverflow);
        }
        let f = &m.funcs[fid];
        let mut slots = self.slot_pool.pop().unwrap_or_default();
        slots.resize(f.nslots as usize, BSlot::Empty);
        let base = stack.len() - nargs;
        for (&(slot, boxed), arg) in f.params.iter().zip(stack.drain(base..)) {
            slots[slot as usize] = bslot(arg, boxed);
        }
        for &(slot, boxed, zero) in &f.results {
            let Some(zero) = zero else {
                slots.clear();
                self.slot_pool.push(slots);
                return Err(ExecError::Internal("untyped result".into()));
            };
            slots[slot as usize] = bslot(self.consts[zero as usize].clone(), boxed);
        }
        self.frames.push(BFrame {
            slots,
            defers: Vec::new(),
        });
        let parent_stack = self.enter_stack(&f.name);

        let body = self.exec(m, f);
        let defer_result = self.run_defers(m);
        match body.and(defer_result) {
            Err(e) => {
                self.leave_stack(parent_stack);
                self.pop_frame();
                Err(e)
            }
            Ok(()) => {
                let rbase = stack.len();
                for &(slot, _, _) in &f.results {
                    let frame = self.frames.last().expect("in a frame");
                    let v = match &frame.slots[slot as usize] {
                        BSlot::Plain(v) => v.clone(),
                        BSlot::Boxed(cell, _) => cell.borrow().clone(),
                        BSlot::Empty => {
                            return Err(ExecError::Internal(format!(
                                "variable {} not found in any frame",
                                f.slot_names[slot as usize]
                            )))
                        }
                    };
                    stack.push(check_poison(v)?);
                }
                self.leave_stack(parent_stack);
                self.pop_frame();
                if want == u32::MAX {
                    stack.truncate(rbase);
                } else if stack.len() - rbase != want as usize {
                    return Err(ExecError::Internal("result arity mismatch".into()));
                }
                Ok(())
            }
        }
    }

    /// Pops the current frame, recycling its slot vector (the slot
    /// values drop here, exactly when the frame itself used to drop).
    fn pop_frame(&mut self) {
        if let Some(frame) = self.frames.pop() {
            let mut slots = frame.slots;
            slots.clear();
            self.slot_pool.push(slots);
        }
    }

    /// Tracing only: interns the stack extended with `name`, stamps it
    /// into the runtime, and returns the previous stack id (mirrors the
    /// tree-walk's hook exactly — same call points, same interning order).
    fn enter_stack(&mut self, name: &str) -> u32 {
        let parent = self.cur_stack;
        if let Some(st) = &mut self.stacks {
            self.cur_stack = st.push(parent, name);
            self.rt.set_stack(self.cur_stack);
        }
        parent
    }

    /// Tracing only: restores the caller's stack id on function exit.
    fn leave_stack(&mut self, parent: u32) {
        if self.stacks.is_some() {
            self.cur_stack = parent;
            self.rt.set_stack(parent);
        }
    }

    fn run_defers(&mut self, m: &Module) -> Result<()> {
        loop {
            let Some(d) = self.frames.last_mut().and_then(|f| f.defers.pop()) else {
                return Ok(());
            };
            match d.kind {
                BDeferKind::Func(fid) => {
                    self.run_function(m, fid, d.args)?;
                }
                BDeferKind::Builtin(Builtin::Print) => {
                    self.do_print(&d.args);
                }
                BDeferKind::Builtin(_) => {}
            }
        }
    }

    // ---- the dispatch loop ----

    /// Runs one function body on a pooled operand stack.
    fn exec(&mut self, m: &Module, f: &BFunc) -> Result<()> {
        let mut stack = self.stack_pool.pop().unwrap_or_default();
        let res = self.exec_on(m, f, &mut stack);
        stack.clear();
        self.stack_pool.push(stack);
        res
    }

    #[allow(clippy::too_many_lines)]
    fn exec_on(&mut self, m: &Module, f: &BFunc, stack: &mut Vec<Value>) -> Result<()> {
        let code = &f.code;
        let mut pc = 0usize;
        loop {
            let instr = &code[pc];
            pc += 1;
            match instr {
                Instr::Safepoint => self.safepoint()?,
                Instr::Tick(n) => self.rt.tick(u64::from(*n)),
                Instr::Jump(t) => pc = *t,
                Instr::JumpIfFalse(t) => match pop(stack) {
                    Value::Bool(b) => {
                        if !b {
                            pc = *t;
                        }
                    }
                    other => return Err(expected_bool(&other)),
                },
                Instr::AndJump(t) => match pop(stack) {
                    Value::Bool(b) => {
                        if !b {
                            stack.push(Value::Bool(false));
                            pc = *t;
                        }
                    }
                    other => return Err(expected_bool(&other)),
                },
                Instr::OrJump(t) => match pop(stack) {
                    Value::Bool(b) => {
                        if b {
                            stack.push(Value::Bool(true));
                            pc = *t;
                        }
                    }
                    other => return Err(expected_bool(&other)),
                },
                Instr::AssertBool => {
                    let v = stack.last().expect("operand stack underflow");
                    if !matches!(v, Value::Bool(_)) {
                        return Err(expected_bool(v));
                    }
                }
                Instr::CaseJump(t) => {
                    let cv = pop(stack);
                    let sv = stack.last().expect("operand stack underflow");
                    if value_eq(sv, &cv)? {
                        stack.pop();
                        pc = *t;
                    }
                }
                Instr::Ret => return Ok(()),
                Instr::Call {
                    fid,
                    nargs,
                    want,
                    value_pos,
                } => {
                    if *value_pos {
                        self.rt.tick(1);
                    }
                    self.rt.tick(2);
                    self.call_on_stack(m, *fid, stack, *nargs as usize, *want)?;
                }
                Instr::DeferFunc { fid, nargs } => {
                    let args = stack.split_off(stack.len() - *nargs as usize);
                    self.frames
                        .last_mut()
                        .expect("in a frame")
                        .defers
                        .push(BDeferred {
                            kind: BDeferKind::Func(*fid),
                            args,
                        });
                }
                Instr::DeferBuiltin { builtin, nargs } => {
                    let args = stack.split_off(stack.len() - *nargs as usize);
                    self.frames
                        .last_mut()
                        .expect("in a frame")
                        .defers
                        .push(BDeferred {
                            kind: BDeferKind::Builtin(*builtin),
                            args,
                        });
                }
                Instr::Const(c) => {
                    self.rt.tick(1);
                    stack.push(self.consts[*c as usize].clone());
                }
                Instr::ConstRaw(c) => stack.push(self.consts[*c as usize].clone()),
                Instr::LoadSlot(s) => {
                    self.rt.tick(1);
                    let v = self.slot_value(f, *s)?;
                    stack.push(v);
                }
                Instr::StoreSlot(s) => {
                    let v = pop(stack);
                    self.store_slot(*s, v)?;
                }
                Instr::Declare {
                    slot,
                    boxed,
                    heap,
                    size,
                } => {
                    let v = pop(stack);
                    let new_slot = if *boxed {
                        let obj = if *heap {
                            Some(self.new_obj(*size, Category::Other))
                        } else {
                            self.rt.stack_alloc(Category::Other);
                            None
                        };
                        BSlot::Boxed(Rc::new(RefCell::new(v)), obj)
                    } else {
                        BSlot::Plain(v)
                    };
                    let frame = self.frames.last_mut().expect("in a frame");
                    frame.slots[*slot as usize] = new_slot;
                }
                Instr::Pop(n) => {
                    stack.truncate(stack.len() - *n as usize);
                }
                Instr::ReverseN(n) => {
                    let at = stack.len() - *n as usize;
                    stack[at..].reverse();
                }
                Instr::Neg => match pop(stack) {
                    Value::Int(v) => {
                        self.rt.tick(1);
                        stack.push(Value::Int(v.wrapping_neg()));
                    }
                    other => return Err(expected_int(&other)),
                },
                Instr::Not => match pop(stack) {
                    Value::Bool(b) => {
                        self.rt.tick(1);
                        stack.push(Value::Bool(!b));
                    }
                    other => return Err(expected_bool(&other)),
                },
                Instr::Bin(op) => {
                    let r = pop(stack);
                    let l = pop(stack);
                    self.rt.tick(1);
                    stack.push(binop_rt(&mut self.rt, *op, l, r)?);
                }
                Instr::BinRaw(op) => {
                    let r = pop(stack);
                    let l = pop(stack);
                    stack.push(binop_rt(&mut self.rt, *op, l, r)?);
                }
                Instr::AddrOfSlot(s) => {
                    self.rt.tick(1);
                    let frame = self.frames.last().expect("in a frame");
                    match &frame.slots[*s as usize] {
                        BSlot::Boxed(cell, obj) => stack.push(Value::ptr(PtrVal {
                            cell: cell.clone(),
                            obj: *obj,
                        })),
                        BSlot::Plain(_) => {
                            return Err(ExecError::Internal(format!(
                                "address taken of unboxed variable {}",
                                f.slot_names[*s as usize]
                            )))
                        }
                        BSlot::Empty => {
                            return Err(ExecError::Internal("variable not found".into()))
                        }
                    }
                }
                Instr::AllocBox { heap, size, site } => {
                    self.rt.tick(1);
                    let v = pop(stack);
                    let obj = if *heap {
                        Some(self.new_obj_at(*size, Category::Other, Some(*site)))
                    } else {
                        self.rt.stack_alloc(Category::Other);
                        None
                    };
                    stack.push(Value::ptr(PtrVal {
                        cell: Rc::new(RefCell::new(v)),
                        obj,
                    }));
                }
                Instr::Deref => {
                    self.rt.tick(1);
                    match pop(stack) {
                        Value::Ptr(p) => {
                            self.shadow_access(p.obj, "pointer deref read");
                            let v = check_poison(p.cell.borrow().clone())?;
                            stack.push(v);
                        }
                        Value::Nil => return Err(ExecError::NilDeref),
                        _ => return Err(ExecError::Internal("deref of non-pointer".into())),
                    }
                }
                Instr::DerefSet => match pop(stack) {
                    Value::Ptr(p) => {
                        self.shadow_access(p.obj, "pointer deref write");
                        self.barrier_store(p.obj);
                        let v = pop(stack);
                        *p.cell.borrow_mut() = v;
                    }
                    Value::Nil => return Err(ExecError::NilDeref),
                    _ => return Err(ExecError::Internal("store through non-pointer".into())),
                },
                Instr::GetField { idx, through_ptr } => {
                    self.rt.tick(1);
                    let fields = match (pop(stack), through_ptr) {
                        (Value::Struct(fields), false) => fields,
                        (Value::Ptr(p), true) => {
                            self.shadow_access(p.obj, "field read");
                            let inner = p.cell.borrow().clone();
                            match inner {
                                Value::Struct(fields) => fields,
                                Value::Poison => return Err(ExecError::PoisonedRead),
                                _ => return Err(ExecError::Internal("field of non-struct".into())),
                            }
                        }
                        (Value::Nil, _) => return Err(ExecError::NilDeref),
                        (Value::Poison, _) => return Err(ExecError::PoisonedRead),
                        _ => return Err(ExecError::Internal("field of non-struct".into())),
                    };
                    stack.push(check_poison(fields[*idx as usize].clone())?);
                }
                Instr::StructSetField { idx } => match pop(stack) {
                    Value::Struct(mut fields) => {
                        let v = pop(stack);
                        Rc::make_mut(&mut fields)[*idx as usize] = v;
                        stack.push(Value::Struct(fields));
                    }
                    Value::Nil => return Err(ExecError::NilDeref),
                    Value::Poison => return Err(ExecError::PoisonedRead),
                    _ => return Err(ExecError::Internal("field store on non-struct".into())),
                },
                Instr::FieldSetPtr { idx } => match pop(stack) {
                    Value::Ptr(p) => {
                        self.shadow_access(p.obj, "field write");
                        self.barrier_store(p.obj);
                        let v = pop(stack);
                        let mut target = p.cell.borrow_mut();
                        match &mut *target {
                            Value::Struct(fields) => Rc::make_mut(fields)[*idx as usize] = v,
                            Value::Poison => return Err(ExecError::PoisonedRead),
                            _ => {
                                return Err(ExecError::Internal("field store on non-struct".into()))
                            }
                        }
                    }
                    Value::Nil => return Err(ExecError::NilDeref),
                    Value::Poison => return Err(ExecError::PoisonedRead),
                    _ => return Err(ExecError::Internal("field store on non-struct".into())),
                },
                Instr::CheckIndexBase => {
                    check_index_base(stack.last().expect("operand stack underflow"))?
                }
                Instr::IndexGet => {
                    self.rt.tick(1);
                    let idx = pop(stack);
                    let base = pop(stack);
                    let v = self.index_get(base, idx, None)?;
                    stack.push(v);
                }
                Instr::IndexGetIC(ic) => {
                    self.rt.tick(1);
                    let idx = pop(stack);
                    let base = pop(stack);
                    let v = self.index_get(base, idx, Some(*ic))?;
                    stack.push(v);
                }
                Instr::IndexSet => {
                    let idx = pop(stack);
                    let base = pop(stack);
                    let v = pop(stack);
                    self.index_set(base, idx, v, None)?;
                }
                Instr::IndexSetIC(ic) => {
                    let idx = pop(stack);
                    let base = pop(stack);
                    let v = pop(stack);
                    self.index_set(base, idx, v, Some(*ic))?;
                }
                Instr::ReSlice { has_hi } => {
                    self.rt.tick(1);
                    let hi_v = if *has_hi { Some(pop(stack)) } else { None };
                    let lo_v = pop(stack);
                    let base = pop(stack);
                    let Value::Int(lo) = lo_v else {
                        return Err(expected_int(&lo_v));
                    };
                    let hi = match &hi_v {
                        Some(Value::Int(h)) => Some(*h),
                        Some(other) => return Err(expected_int(other)),
                        None => None,
                    };
                    match base {
                        Value::Slice(s) => {
                            let hi = hi.unwrap_or(s.len as i64);
                            if lo < 0 || hi < lo || hi as usize > s.cap() {
                                return Err(ExecError::OutOfBounds {
                                    index: hi,
                                    len: s.cap(),
                                });
                            }
                            stack.push(Value::slice(SliceVal {
                                cells: s.cells.clone(),
                                obj: s.obj,
                                offset: s.offset + lo as usize,
                                len: (hi - lo) as usize,
                                elem_size: s.elem_size,
                            }));
                        }
                        Value::Nil => {
                            let hi = hi.unwrap_or(0);
                            if lo == 0 && hi == 0 {
                                stack.push(Value::Nil);
                            } else {
                                return Err(ExecError::NilDeref);
                            }
                        }
                        _ => return Err(ExecError::Internal("reslice of non-slice".into())),
                    }
                }
                Instr::MakeSlice {
                    elem_size,
                    has_cap,
                    heap,
                    site,
                    zero,
                } => {
                    self.rt.tick(1);
                    let cap_v = if *has_cap { Some(pop(stack)) } else { None };
                    let len_v = pop(stack);
                    let Value::Int(len_raw) = len_v else {
                        return Err(expected_int(&len_v));
                    };
                    let len = len_raw.max(0) as usize;
                    let cap = match cap_v {
                        Some(Value::Int(c)) => (c.max(0) as usize).max(len),
                        Some(other) => return Err(expected_int(&other)),
                        None => len,
                    };
                    let cap = cap.max(1);
                    let obj = if *heap {
                        Some(self.new_obj_at(
                            (cap as u64 * elem_size).max(8),
                            Category::Slice,
                            Some(*site),
                        ))
                    } else {
                        self.rt.stack_alloc(Category::Slice);
                        None
                    };
                    let zero = self.consts[*zero as usize].clone();
                    stack.push(Value::slice(SliceVal {
                        cells: Rc::new(RefCell::new(vec![zero; cap])),
                        obj,
                        offset: 0,
                        len,
                        elem_size: *elem_size,
                    }));
                }
                Instr::MakeMap {
                    entry_size,
                    heap,
                    site,
                    default,
                } => {
                    self.rt.tick(1);
                    let obj = if *heap {
                        Some(self.new_obj_at(
                            minigo_escape::MAP_BASE_BYTES,
                            Category::Map,
                            Some(*site),
                        ))
                    } else {
                        self.rt.stack_alloc(Category::Map);
                        None
                    };
                    stack.push(Value::map(MapVal {
                        data: Rc::new(RefCell::new(MapData {
                            entries: Vec::new(),
                            index: FxHashMap::default(),
                            buckets_obj: None,
                            bucket_cap: 8,
                            default: self.consts[*default as usize].clone(),
                            entry_size: *entry_size,
                            origin: Some(*site),
                            poisoned: false,
                        })),
                        obj,
                    }));
                }
                Instr::NewPtr {
                    size,
                    heap,
                    site,
                    zero,
                } => {
                    self.rt.tick(1);
                    let obj = if *heap {
                        Some(self.new_obj_at(*size, Category::Other, Some(*site)))
                    } else {
                        self.rt.stack_alloc(Category::Other);
                        None
                    };
                    stack.push(Value::ptr(PtrVal {
                        cell: Rc::new(RefCell::new(self.consts[*zero as usize].clone())),
                        obj,
                    }));
                }
                Instr::Append { elem_size, site } => {
                    self.rt.tick(1);
                    let item = pop(stack);
                    let sv = pop(stack);
                    let out = self.append(sv, item, *elem_size, *site)?;
                    stack.push(out);
                }
                Instr::MakeStruct(n) => {
                    self.rt.tick(1);
                    let fields = stack.split_off(stack.len() - *n as usize);
                    stack.push(Value::struct_of(fields));
                }
                Instr::Len => {
                    self.rt.tick(1);
                    let v = len_of(pop(stack))?;
                    stack.push(v);
                }
                Instr::Cap => {
                    self.rt.tick(1);
                    let v = match pop(stack) {
                        Value::Slice(s) => s.cap() as i64,
                        Value::Nil => 0,
                        _ => return Err(ExecError::Internal("cap of bad value".into())),
                    };
                    stack.push(Value::Int(v));
                }
                Instr::MapDelete => {
                    self.rt.tick(1);
                    let kv = pop(stack);
                    if let Value::Map(map) = pop(stack) {
                        let key = kv
                            .as_key()
                            .ok_or_else(|| ExecError::Internal("bad map key".into()))?;
                        self.rt.tick(2);
                        self.shadow_access_map(&map, "map delete");
                        map.data.borrow_mut().remove(&key);
                    }
                    stack.push(Value::Int(0));
                }
                Instr::Panic => {
                    self.rt.tick(1);
                    let v = pop(stack);
                    return Err(ExecError::Panic(v.display()));
                }
                Instr::Print(n) => {
                    self.rt.tick(1);
                    let args = stack.split_off(stack.len() - *n as usize);
                    self.do_print(&args);
                    stack.push(Value::Int(0));
                }
                Instr::Itoa => {
                    self.rt.tick(1);
                    match pop(stack) {
                        Value::Int(v) => {
                            stack.push(Value::Str(Rc::from(v.to_string().as_str())));
                        }
                        other => return Err(expected_int(&other)),
                    }
                }
                Instr::Tcfree { follows_free } => {
                    let v = pop(stack);
                    let batched = self.cfg.batch_frees && *follows_free;
                    self.exec_tcfree(v, batched)?;
                }
                Instr::TrapUnsupported(msg) => {
                    return Err(ExecError::Unsupported(msg.to_string()));
                }
                Instr::TrapInternal(msg) => {
                    return Err(ExecError::Internal(msg.to_string()));
                }
                // ---- optimizer-tier instructions ----
                //
                // Each fused handler charges its summed constituent
                // ticks upfront, then runs the constituent logic in the
                // original order. Coalescing is invisible: the clock
                // charge is an exact add and no observable event can
                // occur between the constituents' charges.
                Instr::ConstTicked { c, ticks } => {
                    self.rt.tick(u64::from(*ticks));
                    stack.push(self.consts[*c as usize].clone());
                }
                Instr::LoadLoadBin { a, b, op, ticks } => {
                    self.rt.tick(u64::from(*ticks));
                    let l = self.slot_value(f, *a)?;
                    let r = self.slot_value(f, *b)?;
                    stack.push(binop_rt(&mut self.rt, *op, l, r)?);
                }
                Instr::LoadConstBin { a, c, op, ticks } => {
                    self.rt.tick(u64::from(*ticks));
                    let l = self.slot_value(f, *a)?;
                    let r = self.consts[*c as usize].clone();
                    stack.push(binop_rt(&mut self.rt, *op, l, r)?);
                }
                Instr::LoadLoadBinStore {
                    a,
                    b,
                    op,
                    dst,
                    ticks,
                } => {
                    self.rt.tick(u64::from(*ticks));
                    let l = self.slot_value(f, *a)?;
                    let r = self.slot_value(f, *b)?;
                    let v = binop_rt(&mut self.rt, *op, l, r)?;
                    self.store_slot(*dst, v)?;
                }
                Instr::LoadConstBinStore {
                    a,
                    c,
                    op,
                    dst,
                    ticks,
                } => {
                    self.rt.tick(u64::from(*ticks));
                    let l = self.slot_value(f, *a)?;
                    let r = self.consts[*c as usize].clone();
                    let v = binop_rt(&mut self.rt, *op, l, r)?;
                    self.store_slot(*dst, v)?;
                }
                Instr::LoadLoadBinJump { a, b, op, t, ticks } => {
                    self.rt.tick(u64::from(*ticks));
                    let l = self.slot_value(f, *a)?;
                    let r = self.slot_value(f, *b)?;
                    let v = binop_rt(&mut self.rt, *op, l, r)?;
                    branch_if_false(v, &mut pc, *t)?;
                }
                Instr::LoadConstBinJump { a, c, op, t, ticks } => {
                    self.rt.tick(u64::from(*ticks));
                    let l = self.slot_value(f, *a)?;
                    let r = self.consts[*c as usize].clone();
                    let v = binop_rt(&mut self.rt, *op, l, r)?;
                    branch_if_false(v, &mut pc, *t)?;
                }
                Instr::LoadJumpIfFalse { s, t, ticks } => {
                    self.rt.tick(u64::from(*ticks));
                    let v = self.slot_value(f, *s)?;
                    branch_if_false(v, &mut pc, *t)?;
                }
                Instr::BinJumpIfFalse { op, t, ticks } => {
                    self.rt.tick(u64::from(*ticks));
                    let r = pop(stack);
                    let l = pop(stack);
                    let v = binop_rt(&mut self.rt, *op, l, r)?;
                    branch_if_false(v, &mut pc, *t)?;
                }
                Instr::LoadLoadIndexGet {
                    base,
                    idx,
                    ic,
                    ticks,
                } => {
                    self.rt.tick(u64::from(*ticks));
                    let b = self.slot_value(f, *base)?;
                    check_index_base(&b)?;
                    let i = self.slot_value(f, *idx)?;
                    let v = self.index_get(b, i, Some(*ic))?;
                    stack.push(v);
                }
                Instr::LoadConstIndexGet { base, c, ic, ticks } => {
                    self.rt.tick(u64::from(*ticks));
                    let b = self.slot_value(f, *base)?;
                    check_index_base(&b)?;
                    let i = self.consts[*c as usize].clone();
                    let v = self.index_get(b, i, Some(*ic))?;
                    stack.push(v);
                }
                Instr::LoadLoadIndexSet {
                    base,
                    idx,
                    ic,
                    ticks,
                } => {
                    self.rt.tick(u64::from(*ticks));
                    let b = self.slot_value(f, *base)?;
                    check_index_base(&b)?;
                    let i = self.slot_value(f, *idx)?;
                    let v = pop(stack);
                    self.index_set(b, i, v, Some(*ic))?;
                }
                Instr::LoadConstIndexSet { base, c, ic, ticks } => {
                    self.rt.tick(u64::from(*ticks));
                    let b = self.slot_value(f, *base)?;
                    check_index_base(&b)?;
                    let i = self.consts[*c as usize].clone();
                    let v = pop(stack);
                    self.index_set(b, i, v, Some(*ic))?;
                }
                Instr::LoadLen { s, ticks } => {
                    self.rt.tick(u64::from(*ticks));
                    let v = len_of(self.slot_value(f, *s)?)?;
                    stack.push(v);
                }
                Instr::LoadLenStore { s, dst, ticks } => {
                    self.rt.tick(u64::from(*ticks));
                    let v = len_of(self.slot_value(f, *s)?)?;
                    self.store_slot(*dst, v)?;
                }
                Instr::LoadLoadLenBinJump { a, s, op, t, ticks } => {
                    self.rt.tick(u64::from(*ticks));
                    let l = self.slot_value(f, *a)?;
                    let r = len_of(self.slot_value(f, *s)?)?;
                    let v = binop_rt(&mut self.rt, *op, l, r)?;
                    branch_if_false(v, &mut pc, *t)?;
                }
                Instr::BinSlot { s, op, ticks } => {
                    self.rt.tick(u64::from(*ticks));
                    let r = self.slot_value(f, *s)?;
                    let l = pop(stack);
                    stack.push(binop_rt(&mut self.rt, *op, l, r)?);
                }
                Instr::BinConst { c, op, ticks } => {
                    self.rt.tick(u64::from(*ticks));
                    let r = self.consts[*c as usize].clone();
                    let l = pop(stack);
                    stack.push(binop_rt(&mut self.rt, *op, l, r)?);
                }
                Instr::BinConstStore { c, op, dst, ticks } => {
                    self.rt.tick(u64::from(*ticks));
                    let r = self.consts[*c as usize].clone();
                    let l = pop(stack);
                    let v = binop_rt(&mut self.rt, *op, l, r)?;
                    self.store_slot(*dst, v)?;
                }
                Instr::BinConstJump { c, op, t, ticks } => {
                    self.rt.tick(u64::from(*ticks));
                    let r = self.consts[*c as usize].clone();
                    let l = pop(stack);
                    let v = binop_rt(&mut self.rt, *op, l, r)?;
                    branch_if_false(v, &mut pc, *t)?;
                }
                Instr::LoadLoad { a, b, ticks } => {
                    self.rt.tick(u64::from(*ticks));
                    let va = self.slot_value(f, *a)?;
                    stack.push(va);
                    let vb = self.slot_value(f, *b)?;
                    stack.push(vb);
                }
            }
        }
    }

    // ---- runtime-value helpers (mirror the tree-walk's) ----

    fn exec_tcfree(&mut self, v: Value, batched: bool) -> Result<()> {
        match v {
            Value::Slice(s) => {
                if let Some(obj) = s.obj {
                    let (_, poison) = self.free_obj(obj, FreeSource::SliceLifetime, batched);
                    if poison {
                        let mut cells = s.cells.borrow_mut();
                        for c in cells.iter_mut() {
                            *c = Value::Poison;
                        }
                    }
                }
            }
            Value::Map(map) => {
                let buckets = map.data.borrow().buckets_obj;
                let mut poisoned = false;
                if let Some(b) = buckets {
                    let (out, poison) = self.free_obj(b, FreeSource::MapLifetime, batched);
                    poisoned |= poison;
                    if matches!(out, FreeOutcome::Freed { .. }) {
                        map.data.borrow_mut().buckets_obj = None;
                    }
                }
                if let Some(h) = map.obj {
                    let (_, poison) = self.free_obj(h, FreeSource::MapLifetime, batched);
                    poisoned |= poison;
                }
                if poisoned {
                    let mut data = map.data.borrow_mut();
                    data.poisoned = true;
                    for (_, v) in data.entries.iter_mut() {
                        *v = Value::Poison;
                    }
                }
            }
            Value::Ptr(p) => {
                if let Some(obj) = p.obj {
                    let (_, poison) = self.free_obj(obj, FreeSource::Object, batched);
                    if poison {
                        *p.cell.borrow_mut() = Value::Poison;
                    }
                }
            }
            _ => {}
        }
        Ok(())
    }

    fn append(
        &mut self,
        sv: Value,
        item: Value,
        elem_size: u64,
        site: minigo_syntax::ExprId,
    ) -> Result<Value> {
        self.rt.tick(2);
        match sv {
            Value::Nil => {
                let cap = 8;
                let obj = self.new_obj_at(cap as u64 * elem_size, Category::Slice, Some(site));
                let mut cells = vec![item];
                cells.resize(cap, Value::Int(0));
                Ok(Value::slice(SliceVal {
                    cells: Rc::new(RefCell::new(cells)),
                    obj: Some(obj),
                    offset: 0,
                    len: 1,
                    elem_size,
                }))
            }
            Value::Slice(mut s) => {
                self.shadow_access(s.obj, "append");
                if s.len < s.cap() {
                    let at = s.offset + s.len;
                    s.cells.borrow_mut()[at] = item;
                    Rc::make_mut(&mut s).len += 1;
                    Ok(Value::Slice(s))
                } else {
                    let new_cap = (s.cap() * 2).max(8);
                    let obj =
                        self.new_obj_at(new_cap as u64 * elem_size, Category::Slice, Some(site));
                    let mut cells: Vec<Value> =
                        s.cells.borrow()[s.offset..s.offset + s.len].to_vec();
                    cells.push(item);
                    cells.resize(new_cap, Value::Int(0));
                    Ok(Value::slice(SliceVal {
                        cells: Rc::new(RefCell::new(cells)),
                        obj: Some(obj),
                        offset: 0,
                        len: s.len + 1,
                        elem_size,
                    }))
                }
            }
            _ => Err(ExecError::Internal("append to non-slice".into())),
        }
    }

    /// The `LoadSlot` body (sans tick), shared with the fused handlers.
    /// The hot
    /// path (a plain, unpoisoned slot) must stay small enough to inline
    /// into the dispatch loop; the error constructions are kept out of
    /// line behind `#[cold]`. `inline(always)` because LLVM refuses the
    /// hint at this size yet the call sits on every fused load's hot
    /// path (a measured win; see DESIGN.md §12).
    #[inline(always)]
    fn slot_value(&self, f: &BFunc, s: u32) -> Result<Value> {
        #[cold]
        fn undeclared(f: &BFunc, s: u32) -> ExecError {
            ExecError::Internal(format!(
                "variable {} not found in any frame",
                f.slot_names[s as usize]
            ))
        }
        let frame = self.frames.last().expect("in a frame");
        let v = match &frame.slots[s as usize] {
            BSlot::Plain(v) => v.clone(),
            BSlot::Boxed(cell, _) => cell.borrow().clone(),
            BSlot::Empty => return Err(undeclared(f, s)),
        };
        check_poison(v)
    }

    /// The `StoreSlot` body, shared with the fused handlers.
    #[inline]
    fn store_slot(&mut self, s: u32, v: Value) -> Result<()> {
        let frame = self.frames.last_mut().expect("in a frame");
        match &mut frame.slots[s as usize] {
            BSlot::Plain(p) => *p = v,
            BSlot::Boxed(cell, _) => *cell.borrow_mut() = v,
            BSlot::Empty => Err(ExecError::Internal("write to undeclared variable".into()))?,
        }
        Ok(())
    }

    /// The `IndexGet` body, shared by the plain, IC, and fused handlers.
    /// The caller has already charged the instruction's own tick; map
    /// lookups charge their data-dependent ticks here, identically on
    /// hit and miss.
    #[inline]
    fn index_get(&mut self, base: Value, idx: Value, ic: Option<u32>) -> Result<Value> {
        match base {
            Value::Slice(s) => {
                let Value::Int(i) = idx else {
                    return Err(expected_int(&idx));
                };
                if i < 0 || i as usize >= s.len {
                    return Err(ExecError::OutOfBounds {
                        index: i,
                        len: s.len,
                    });
                }
                self.shadow_access(s.obj, "slice index read");
                let v = s.cells.borrow()[s.offset + i as usize].clone();
                check_poison(v)
            }
            Value::Map(map) => {
                let key = idx
                    .as_key()
                    .ok_or_else(|| ExecError::Internal("bad map key".into()))?;
                self.rt.tick(2);
                self.shadow_access_map(&map, "map lookup");
                let data = map.data.borrow();
                if data.poisoned {
                    return Err(ExecError::PoisonedRead);
                }
                if let Some(slot) = ic {
                    let tag = Rc::as_ptr(&map.data) as usize;
                    let e = self.ics[slot as usize];
                    if e.tag == tag && data.entries.get(e.idx).is_some_and(|(k, _)| *k == key) {
                        // Hit: the cached entry index resolves this key
                        // without hashing. A stale tag or moved entry
                        // fails the check and falls through to a miss.
                        self.ic_hits += 1;
                        return check_poison(data.entries[e.idx].1.clone());
                    }
                    self.ic_misses += 1;
                    return match data.index.get(&key) {
                        Some(&i) => {
                            self.ics[slot as usize] = IcEntry { tag, idx: i };
                            check_poison(data.entries[i].1.clone())
                        }
                        None => {
                            self.ics[slot as usize] = IC_EMPTY;
                            Ok(data.default.clone())
                        }
                    };
                }
                match data.get(&key) {
                    Some(v) => check_poison(v.clone()),
                    None => Ok(data.default.clone()),
                }
            }
            Value::Nil => Err(ExecError::NilDeref),
            _ => Err(ExecError::Internal("index of non-indexable".into())),
        }
    }

    /// The `IndexSet` body, shared by the plain, IC, and fused handlers.
    #[inline]
    fn index_set(&mut self, base: Value, idx: Value, v: Value, ic: Option<u32>) -> Result<()> {
        match base {
            Value::Slice(s) => {
                let Value::Int(i) = idx else {
                    return Err(expected_int(&idx));
                };
                if i < 0 || i as usize >= s.len {
                    return Err(ExecError::OutOfBounds {
                        index: i,
                        len: s.len,
                    });
                }
                self.shadow_access(s.obj, "slice index write");
                self.barrier_store(s.obj);
                s.cells.borrow_mut()[s.offset + i as usize] = v;
                Ok(())
            }
            Value::Map(map) => {
                let key = idx
                    .as_key()
                    .ok_or_else(|| ExecError::Internal("bad map key".into()))?;
                self.map_insert(&map, key, v, ic)
            }
            Value::Nil => Err(ExecError::NilDeref),
            _ => Err(ExecError::Internal("store into non-indexable".into())),
        }
    }

    #[inline]
    fn map_insert(&mut self, m: &MapVal, key: Key, value: Value, ic: Option<u32>) -> Result<()> {
        self.rt.tick(3);
        self.shadow_access_map(m, "map insert");
        self.barrier_store_map(m);
        if let Some(slot) = ic {
            let tag = Rc::as_ptr(&m.data) as usize;
            let e = self.ics[slot as usize];
            {
                let mut data = m.data.borrow_mut();
                if data.poisoned {
                    return Err(ExecError::PoisonedRead);
                }
                if e.tag == tag && data.entries.get(e.idx).is_some_and(|(k, _)| *k == key) {
                    // Hit: updating an existing entry in place — no
                    // growth check needed, exactly what the slow path's
                    // `insert` would do for a present key.
                    self.ic_hits += 1;
                    data.entries[e.idx].1 = value;
                    return Ok(());
                }
            }
            self.ic_misses += 1;
            self.map_insert_slow(m, key.clone(), value)?;
            let idx = m
                .data
                .borrow()
                .index
                .get(&key)
                .copied()
                .unwrap_or(usize::MAX);
            self.ics[slot as usize] = IcEntry { tag, idx };
            return Ok(());
        }
        self.map_insert_slow(m, key, value)
    }

    /// The growth-checking insert; ticks/shadow/barrier are the caller's.
    fn map_insert_slow(&mut self, m: &MapVal, key: Key, value: Value) -> Result<()> {
        let (is_new, needs_growth) = {
            let data = m.data.borrow();
            if data.poisoned {
                return Err(ExecError::PoisonedRead);
            }
            let is_new = data.get(&key).is_none();
            (is_new, is_new && data.len() + 1 > data.bucket_cap)
        };
        if needs_growth {
            let (old, new_cap, entry_size, origin) = {
                let mut data = m.data.borrow_mut();
                let new_cap = data.bucket_cap * 2;
                data.bucket_cap = new_cap;
                (
                    data.buckets_obj.take(),
                    new_cap,
                    data.entry_size,
                    data.origin,
                )
            };
            let new_obj = self.new_obj_at(new_cap as u64 * entry_size, Category::Map, origin);
            m.data.borrow_mut().buckets_obj = Some(new_obj);
            if let Some(old) = old {
                if self.cfg.grow_map_free_old {
                    let (_, _poison) = self.free_obj(old, FreeSource::MapGrowOld, false);
                } else {
                    let _ = old;
                }
            }
        }
        let _ = is_new;
        m.data.borrow_mut().insert(key, value);
        Ok(())
    }

    fn do_print(&mut self, values: &[Value]) {
        let line: Vec<String> = values.iter().map(Value::display).collect();
        self.output.push_str(&line.join(" "));
        self.output.push('\n');
    }
}

#[inline]
fn pop(stack: &mut Vec<Value>) -> Value {
    stack.pop().expect("operand stack underflow")
}
