//! A golden-output specification suite for MiniGo semantics: every entry
//! is a small program with its exact expected output, executed under both
//! the plain-Go and the GoFree pipelines (which must agree). This is the
//! regression net for interpreter semantics.

use minigo_escape::{analyze, instrument, AnalyzeOptions};
use minigo_runtime::RuntimeConfig;
use minigo_syntax::frontend;
use minigo_vm::{run, VmConfig};

fn exec(src: &str, gofree: bool) -> String {
    let (program, mut res, types) =
        frontend(src).unwrap_or_else(|e| panic!("frontend: {}\n{src}", e.render(src)));
    let opts = if gofree {
        AnalyzeOptions::default()
    } else {
        AnalyzeOptions::go()
    };
    let analysis = analyze(&program, &res, &types, &opts);
    let program = if gofree {
        instrument(&program, &mut res, &analysis)
    } else {
        program
    };
    let cfg = VmConfig {
        runtime: RuntimeConfig {
            migrate_prob: 0.0,
            jitter: 0.0,
            ..RuntimeConfig::default()
        },
        grow_map_free_old: gofree,
        ..VmConfig::default()
    };
    run(&program, &res, &types, &analysis, cfg)
        .unwrap_or_else(|e| panic!("run: {e}\n{src}"))
        .output
}

fn check(cases: &[(&str, &str)]) {
    for (src, expected) in cases {
        let go = exec(src, false);
        assert_eq!(&go, expected, "Go semantics mismatch for:\n{src}");
        let gofree = exec(src, true);
        assert_eq!(go, gofree, "GoFree diverged for:\n{src}");
    }
}

#[test]
fn arithmetic_and_operators() {
    check(&[
        ("func main() { print(7 / 2, 7 % 2, -7 / 2, -7 % 2) }\n", "3 1 -3 -1\n"),
        ("func main() { print(2 * 3 + 4, 2 * (3 + 4)) }\n", "10 14\n"),
        ("func main() { print(1 < 2, 2 <= 2, 3 > 4, 4 >= 5, 1 == 1, 1 != 1) }\n", "true true false false true false\n"),
        ("func main() { print(true && false, true || false, !true) }\n", "false true false\n"),
        (
            "func side(x int) bool { print(x)\n return x > 0 }\nfunc main() { b := false && side(1)\n c := true || side(2)\n print(b, c) }\n",
            "false true\n",
        ),
        ("func main() { print(\"a\" + \"b\", \"a\" < \"b\", len(\"héllo\")) }\n", "ab true 6\n"),
    ]);
}

#[test]
fn variables_and_scoping() {
    check(&[
        (
            "func main() { var x int\n var s string\n var b bool\n print(x, s == \"\", b) }\n",
            "0 true false\n",
        ),
        (
            "func main() { x := 1\n { x := 2\n print(x) }\n print(x) }\n",
            "2\n1\n",
        ),
        (
            "func main() { x, y := 1, 2\n x, y = y, x\n print(x, y) }\n",
            "2 1\n",
        ),
        (
            "func main() { var a, b int = 3, 4\n print(a + b) }\n",
            "7\n",
        ),
    ]);
}

#[test]
fn control_flow() {
    check(&[
        (
            "func main() { for i := 0; i < 3; i += 1 { if i % 2 == 0 { print(i) } else { print(-i) } } }\n",
            "0\n-1\n2\n",
        ),
        (
            "func main() { n := 0\n for { n += 1\n if n == 4 { break } }\n print(n) }\n",
            "4\n",
        ),
        (
            "func main() { s := 0\n for i := 0; i < 6; i += 1 { if i == 2 { continue }\n s += i }\n print(s) }\n",
            "13\n",
        ),
        (
            "func main() { switch 2 + 1 {\ncase 1:\n print(\"one\")\ncase 3:\n print(\"three\")\n} }\n",
            "three\n",
        ),
    ]);
}

#[test]
fn functions_and_returns() {
    check(&[
        (
            "func f(a int, b int) (int, int) { return b, a }\nfunc main() { x, y := f(1, 2)\n print(x, y) }\n",
            "2 1\n",
        ),
        (
            "func f() (a int, b int) { a = 10\n return }\nfunc main() { x, y := f()\n print(x, y) }\n",
            "10 0\n",
        ),
        (
            "func fact(n int) int { if n < 2 { return 1 }\n return n * fact(n-1) }\nfunc main() { print(fact(6)) }\n",
            "720\n",
        ),
        (
            "func even(n int) bool { if n == 0 { return true }\n return odd(n - 1) }\nfunc odd(n int) bool { if n == 0 { return false }\n return even(n - 1) }\nfunc main() { print(even(10), odd(7)) }\n",
            "true true\n",
        ),
    ]);
}

#[test]
fn slices() {
    check(&[
        (
            "func main() { s := make([]int, 3)\n print(len(s), cap(s), s[0]) }\n",
            "3 3 0\n",
        ),
        (
            "func main() { s := make([]int, 2, 10)\n print(len(s), cap(s)) }\n",
            "2 10\n",
        ),
        (
            "func main() { s := make([]int, 4)\n t := s[1:3]\n t[0] = 9\n print(s[1], len(t), cap(t)) }\n",
            "9 2 3\n",
        ),
        (
            "func main() { var s []int\n print(len(s), cap(s))\n s = append(s, 7)\n print(s[0], len(s)) }\n",
            "0 0\n7 1\n",
        ),
        (
            "func main() { s := make([]int, 0, 2)\n s = append(s, 1)\n t := append(s, 2)\n u := append(s, 3)\n print(t[1], u[1]) }\n",
            "3 3\n", // t and u share the backing array within cap, Go semantics
        ),
        (
            "func main() { s := make([]int, 5)\n for i := 0; i < len(s); i += 1 { s[i] = i * i }\n sum := 0\n w := s[1:4]\n for i := 0; i < len(w); i += 1 { sum += w[i] }\n print(sum) }\n",
            "14\n",
        ),
    ]);
}

#[test]
fn maps() {
    check(&[
        (
            "func main() { m := make(map[string]int)\n m[\"k\"] = 3\n print(m[\"k\"], m[\"absent\"], len(m)) }\n",
            "3 0 1\n",
        ),
        (
            "func main() { m := make(map[bool]string)\n m[true] = \"yes\"\n print(m[true], m[false] == \"\") }\n",
            "yes true\n",
        ),
        (
            "func main() { m := make(map[int]int)\n for i := 0; i < 30; i += 1 { m[i%7] += 1 }\n print(len(m), m[3]) }\n",
            "7 4\n",
        ),
        (
            "func main() { m := make(map[int][]int)\n m[1] = make([]int, 2)\n s := m[1]\n s[0] = 5\n print(m[1][0]) }\n",
            "5\n",
        ),
        (
            "func main() { m := make(map[int]int)\n m[1] = 1\n m[2] = 2\n delete(m, 1)\n print(len(m), m[1], m[2]) }\n",
            "1 0 2\n",
        ),
    ]);
}

#[test]
fn pointers_and_structs() {
    check(&[
        (
            "func main() { x := 5\n p := &x\n *p += 1\n print(x, *p) }\n",
            "6 6\n",
        ),
        (
            "func main() { x := 1\n p := &x\n q := p\n print(p == q, p == &x) }\n",
            "true true\n",
        ),
        (
            "type P struct { x int\n y int }\nfunc main() { a := P{1, 2}\n b := P{1, 2}\n print(a == b, a.x + b.y) }\n",
            "true 3\n",
        ),
        (
            "type N struct { v int\n next *N }\nfunc main() { c := &N{3, nil}\n b := &N{2, c}\n a := &N{1, b}\n print(a.v + a.next.v + a.next.next.v) }\n",
            "6\n",
        ),
        (
            "type B struct { s []int }\nfunc main() { b := B{make([]int, 2)}\n c := b\n c.s[0] = 7\n print(b.s[0]) }\n",
            "7\n", // struct copy shares the slice backing array, as in Go
        ),
        (
            "func main() { var p *int\n print(p == nil) }\n",
            "true\n",
        ),
    ]);
}

#[test]
fn defers() {
    check(&[
        (
            "func main() { x := 1\n defer print(x)\n x = 2\n print(x) }\n",
            "2\n1\n", // defer captures argument values at defer time
        ),
        (
            "func f() { defer print(\"inner\") }\nfunc main() { defer print(\"outer\")\n f()\n print(\"body\") }\n",
            "inner\nbody\nouter\n",
        ),
        (
            "func main() { for i := 0; i < 3; i += 1 { defer print(i) } }\n",
            "2\n1\n0\n",
        ),
    ]);
}

#[test]
fn builtins_and_strings() {
    check(&[
        ("func main() { print(itoa(-42) + \"!\") }\n", "-42!\n"),
        (
            "func main() { s := make([]int, 2)\n s[0] = 1\n s[1] = 2\n print(s) }\n",
            "[1 2]\n",
        ),
        (
            "func main() { m := make(map[int]int)\n m[1] = 10\n print(m) }\n",
            "map[1:10]\n",
        ),
        (
            "type P struct { a int\n b bool }\nfunc main() { print(P{4, true}) }\n",
            "{4 true}\n",
        ),
    ]);
}

#[test]
fn composite_nesting() {
    check(&[
        // Map of maps: inner maps are reference values.
        (
            "func main() { m := make(map[int]map[int]int)\n inner := make(map[int]int)\n inner[1] = 10\n m[0] = inner\n m[0][2] = 20\n print(m[0][1], m[0][2], inner[2]) }\n",
            "10 20 20\n",
        ),
        // Slice of structs: elements are values inside the array.
        (
            "type P struct { x int }\nfunc main() { s := make([]P, 2)\n s[0] = P{5}\n p := s[0]\n p.x = 9\n print(s[0].x, p.x) }\n",
            "5 9\n",
        ),
        // Struct containing a map: the map field is shared on copy.
        (
            "type H struct { m map[int]int }\nfunc main() { h := H{make(map[int]int)}\n g := h\n g.m[1] = 7\n print(h.m[1]) }\n",
            "7\n",
        ),
        // Pointers to pointers.
        (
            "func main() { x := 1\n p := &x\n pp := &p\n **pp = 5\n print(x) }\n",
            "5\n",
        ),
        // Slice alias chains through struct fields and calls.
        (
            "type W struct { buf []int }\nfunc fill(w W) { w.buf[0] = 42 }\nfunc main() { w := W{make([]int, 1)}\n fill(w)\n print(w.buf[0]) }\n",
            "42\n",
        ),
    ]);
}

#[test]
fn map_append_idiom() {
    check(&[
        // Appending to a map-held slice: read default nil, append, store.
        (
            "func main() { m := make(map[int][]int)\n for i := 0; i < 6; i += 1 { k := i % 2\n m[k] = append(m[k], i) }\n print(len(m[0]), len(m[1]), m[0][2], m[1][0]) }\n",
            "3 3 4 1\n",
        ),
        // Comparing references against nil after assignment.
        (
            "func main() { var s []int\n print(s == nil)\n s = append(s, 1)\n print(s == nil) }\n",
            "true\nfalse\n",
        ),
    ]);
}

#[test]
fn switch_and_reslice_spec() {
    check(&[
        (
            "func main() { s := make([]int, 10)\n for i := 0; i < 10; i += 1 { s[i] = i }\n mid := s[3:7]\n sub := mid[1:3]\n print(sub[0], sub[1], len(sub), cap(sub)) }\n",
            "4 5 2 6\n",
        ),
        (
            "func kind(s string) int { switch s {\ncase \"a\":\n return 1\ncase \"b\", \"c\":\n return 2\ndefault:\n return 3\n} }\nfunc main() { print(kind(\"a\") + kind(\"c\") + kind(\"z\")) }\n",
            "6\n",
        ),
        (
            // Appending to a reslice clobbers the parent within capacity,
            // exactly Go's (sometimes surprising) behaviour.
            "func main() { s := make([]int, 4)\n for i := 0; i < 4; i += 1 { s[i] = i + 1 }\n t := s[0:2]\n t = append(t, 99)\n print(s[2], t[2]) }\n",
            "99 99\n",
        ),
    ]);
}

#[test]
fn runtime_errors_match() {
    // Error cases must fail identically under both pipelines.
    let cases = [
        "func main() { s := make([]int, 2)\n print(s[2]) }\n",
        "func main() { var p *int\n print(*p) }\n",
        "func main() { x := 0\n print(5 / x) }\n",
        "func main() { panic(\"boom\") }\n",
        "func main() { var m map[int]int\n m[0] = 1 }\n",
    ];
    for src in cases {
        let run_one = |gofree: bool| -> Result<String, String> {
            let (program, mut res, types) = frontend(src).map_err(|e| e.render(src))?;
            let opts = if gofree {
                AnalyzeOptions::default()
            } else {
                AnalyzeOptions::go()
            };
            let analysis = analyze(&program, &res, &types, &opts);
            let program = if gofree {
                instrument(&program, &mut res, &analysis)
            } else {
                program
            };
            run(&program, &res, &types, &analysis, VmConfig::default())
                .map(|r| r.output)
                .map_err(|e| e.to_string())
        };
        let go = run_one(false);
        let gofree = run_one(true);
        assert!(go.is_err(), "expected failure: {src}");
        assert_eq!(go, gofree, "error divergence for: {src}");
    }
}
