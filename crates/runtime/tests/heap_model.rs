//! Model-based testing of the heap: random interleavings of allocation,
//! explicit freeing, and GC sweeps are checked against a simple reference
//! model of which objects must be live.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use minigo_runtime::{
    class_for, class_size, Category, FreeOutcome, FreeSource, ObjAddr, Runtime, RuntimeConfig,
    MAX_SMALL_SIZE, PAGE_SIZE,
};

#[derive(Debug, Clone)]
enum Op {
    Alloc(u64),
    Free(usize),
    Collect { keep_mod: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (8u64..100_000).prop_map(Op::Alloc),
        any::<usize>().prop_map(Op::Free),
        (1usize..5).prop_map(|keep_mod| Op::Collect { keep_mod }),
    ]
}

fn rounded(size: u64) -> u64 {
    if size <= MAX_SMALL_SIZE {
        class_size(class_for(size))
    } else {
        size
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The heap's live-byte accounting always equals the model's, objects
    /// the model considers live are always still allocated, and the page
    /// footprint always covers the live bytes.
    #[test]
    fn heap_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let mut rt = Runtime::new(RuntimeConfig {
            migrate_prob: 0.0,
            jitter: 0.0,
            gc_enabled: false, // collections are explicit in this model
            ..RuntimeConfig::default()
        });
        // model: addr -> rounded size of live objects.
        let mut model: HashMap<ObjAddr, u64> = HashMap::new();
        let mut order: Vec<ObjAddr> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(size) => {
                    let addr = rt.alloc(size, Category::Other);
                    prop_assert!(!model.contains_key(&addr), "address {addr:?} double-issued");
                    model.insert(addr, rounded(size.max(8)));
                    order.push(addr);
                }
                Op::Free(idx) => {
                    if order.is_empty() {
                        continue;
                    }
                    let addr = order[idx % order.len()];
                    match rt.tcfree(addr, FreeSource::SliceLifetime) {
                        FreeOutcome::Freed { bytes } => {
                            let expected = model.remove(&addr);
                            prop_assert_eq!(expected, Some(bytes), "freed bytes mismatch");
                        }
                        FreeOutcome::Bailed(_) => {
                            // Either already freed (not in model) or a
                            // legitimate bail (span state); both leave the
                            // model unchanged. If it IS in the model the
                            // object must still be allocated.
                        }
                        FreeOutcome::Poisoned => prop_assert!(false, "poison off"),
                    }
                }
                Op::Collect { keep_mod } => {
                    let marked: HashSet<ObjAddr> = order
                        .iter()
                        .enumerate()
                        .filter(|(i, a)| i % keep_mod == 0 && model.contains_key(a))
                        .map(|(_, a)| *a)
                        .collect();
                    let swept = rt.collect(&marked);
                    for (addr, _, bytes) in &swept.freed {
                        let expected = model.remove(addr);
                        prop_assert_eq!(expected, Some(*bytes), "swept bytes mismatch");
                    }
                    // Everything unmarked must now be gone from the model.
                    model.retain(|addr, _| marked.contains(addr));
                }
            }
            let model_live: u64 = model.values().sum();
            prop_assert_eq!(rt.heap_live(), model_live, "live-byte accounting diverged");
            prop_assert!(
                rt.footprint() >= rt.heap_live(),
                "footprint {} < live {}",
                rt.footprint(),
                rt.heap_live()
            );
            prop_assert_eq!(rt.footprint() % PAGE_SIZE, 0, "footprint is whole pages");
        }

        // Every object the model still considers live can be freed exactly
        // once more.
        for (&addr, &size) in &model {
            match rt.tcfree(addr, FreeSource::SliceLifetime) {
                FreeOutcome::Freed { bytes } => prop_assert_eq!(bytes, size),
                FreeOutcome::Bailed(reason) => {
                    // Span swapped out of the cache is the only legitimate
                    // excuse for a live object.
                    prop_assert!(
                        matches!(
                            reason,
                            minigo_runtime::BailReason::SpanSwappedOut
                                | minigo_runtime::BailReason::OwnershipChanged
                        ),
                        "unexpected bail {reason:?}"
                    );
                }
                FreeOutcome::Poisoned => prop_assert!(false, "poison off"),
            }
        }
    }

    /// GC pacing: with GC enabled, heap_live never exceeds twice the
    /// post-collection live set by more than the mark window's slack.
    #[test]
    fn pacing_bounds_heap_growth(sizes in proptest::collection::vec(64u64..4096, 50..300)) {
        let mut rt = Runtime::new(RuntimeConfig {
            migrate_prob: 0.0,
            jitter: 0.0,
            min_heap: 16 * 1024,
            ..RuntimeConfig::default()
        });
        let mut peak_between = 0u64;
        for size in sizes {
            rt.alloc(size, Category::Other);
            peak_between = peak_between.max(rt.heap_live());
            if rt.gc_pending() {
                // Nothing is reachable: everything dies.
                rt.collect(&HashSet::new());
                prop_assert_eq!(rt.heap_live(), 0);
            }
        }
        // Trigger floor + one mark window of slack (window ≤ 96 allocations
        // of ≤ 4096B, rounded by size classes).
        let bound = 16 * 1024 + 96 * 4096 + MAX_SMALL_SIZE;
        prop_assert!(
            peak_between <= bound,
            "peak {peak_between} exceeded pacing bound {bound}"
        );
    }
}
