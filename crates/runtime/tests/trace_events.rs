//! Directed edge-case tests for the traced GC pacing behaviour: the
//! event stream must witness exactly what the pacer did (and didn't do)
//! in the corners — GC disabled, GOGC=10 on tiny heaps, free-heavy
//! programs that never cross the trigger, and tcfree racing the
//! concurrent-mark window.

use std::collections::HashSet;

use minigo_runtime::{
    BailReason, Category, FreeOutcome, FreeSource, Runtime, RuntimeConfig, TraceEvent,
};

/// Deterministic traced config: no jitter, no migrations.
fn traced(cfg: RuntimeConfig) -> RuntimeConfig {
    RuntimeConfig {
        migrate_prob: 0.0,
        jitter: 0.0,
        trace: true,
        ..cfg
    }
}

fn gc_starts(events: &[TraceEvent]) -> Vec<(u64, u64, u64)> {
    events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::GcStart {
                heap_live,
                heap_goal,
                window,
                ..
            } => Some((*heap_live, *heap_goal, *window)),
            _ => None,
        })
        .collect()
}

#[test]
fn gc_off_records_no_cycle_events() {
    let mut rt = Runtime::new(traced(RuntimeConfig {
        gc_enabled: false,
        min_heap: 4096,
        ..RuntimeConfig::default()
    }));
    for _ in 0..2000 {
        rt.alloc(1024, Category::Slice);
        rt.tick(1);
    }
    assert!(!rt.gc_pending(), "pacer must stay idle with GC off");
    assert!(!rt.gc_running());
    rt.finalize();
    let m = rt.metrics().clone();
    let trace = rt.take_trace().expect("traced run");
    assert_eq!(m.gcs, 0);
    assert_eq!(trace.gc_count(), 0);
    assert!(
        !trace
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::GcStart { .. } | TraceEvent::GcEnd { .. })),
        "GC-off run must not record cycle events"
    );
    trace.reconcile(&m).expect("stream folds back to metrics");
}

#[test]
fn gogc_10_tiny_heap_paces_every_cycle_consistently() {
    // An aggressive pacer on a tiny heap: GOGC=10 re-arms the goal at
    // 1.1x the marked heap, floored at min_heap. Every GcStart must
    // witness live >= goal at the trigger, and every GcEnd's next goal
    // must be derivable from its own marked-heap field.
    let cfg = traced(RuntimeConfig {
        gogc: 10,
        min_heap: 8 * 1024,
        ..RuntimeConfig::default()
    });
    let (gogc, min_heap) = (cfg.gogc, cfg.min_heap);
    let mut rt = Runtime::new(cfg);
    let mut addrs = Vec::new();
    for i in 0..3000u64 {
        addrs.push(rt.alloc(256, Category::Other));
        rt.tick(1);
        if rt.gc_pending() {
            // Keep every fourth object alive across the sweep.
            let marked: HashSet<_> = addrs
                .iter()
                .copied()
                .skip(i as usize % 4)
                .step_by(4)
                .collect();
            let swept = rt.collect(&marked);
            let dead: HashSet<_> = swept.freed.iter().map(|&(a, _, _)| a).collect();
            addrs.retain(|a| !dead.contains(a));
        }
    }
    rt.finalize();
    let m = rt.metrics().clone();
    let trace = rt.take_trace().expect("traced run");
    assert!(m.gcs >= 3, "GOGC=10 on a tiny heap must collect repeatedly");
    assert_eq!(trace.gc_count(), m.gcs);

    let starts = gc_starts(&trace.events);
    assert_eq!(starts.len() as u64, m.gcs, "every cycle has its start");
    for (live, goal, window) in &starts {
        assert!(live >= goal, "trigger fired early: live={live} goal={goal}");
        assert!(*goal >= min_heap, "goal may never drop below min_heap");
        assert!(
            (16..=96).contains(window),
            "mark window must stay clamped, got {window}"
        );
    }
    for e in &trace.events {
        if let TraceEvent::GcEnd {
            heap_live,
            next_goal,
            ..
        } = e
        {
            let expect = (heap_live + heap_live * gogc / 100).max(min_heap);
            assert_eq!(*next_goal, expect, "GcEnd goal must follow the GOGC rule");
        }
    }
    trace.reconcile(&m).expect("stream folds back to metrics");
}

#[test]
fn free_heavy_run_never_reaches_the_trigger() {
    // Alloc-then-free keeps live bytes a fraction of min_heap: the pacer
    // must never fire even across many times min_heap in cumulative
    // allocation, and the stream must show every byte reclaimed by
    // tcfree rather than GC.
    let mut rt = Runtime::new(traced(RuntimeConfig::default()));
    for _ in 0..20_000 {
        let a = rt.alloc(4096, Category::Slice);
        rt.tick(1);
        assert!(matches!(
            rt.tcfree(a, FreeSource::SliceLifetime),
            FreeOutcome::Freed { .. }
        ));
    }
    rt.finalize();
    let m = rt.metrics().clone();
    assert!(
        m.alloced_bytes >= 10 * rt.config().min_heap,
        "cumulative allocation must dwarf the trigger for this to mean anything"
    );
    let trace = rt.take_trace().expect("traced run");
    assert_eq!(m.gcs, 0, "tcfree kept the heap below the first trigger");
    assert_eq!(trace.gc_count(), 0);
    assert!(gc_starts(&trace.events).is_empty());
    let frees = trace
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Free { .. }))
        .count();
    assert_eq!(frees, 20_000, "every tcfree shows up in the stream");
    trace.reconcile(&m).expect("stream folds back to metrics");
}

#[test]
fn concurrent_mark_window_bails_frees_until_it_closes() {
    // Frees landing inside the concurrent-mark window bail with
    // GcRunning and must appear as FreeBail events between the window
    // opening and the cycle's end; the window closes after exactly
    // `window` allocations.
    let mut rt = Runtime::new(traced(RuntimeConfig {
        min_heap: 16 * 1024,
        ..RuntimeConfig::default()
    }));
    let mut addrs = Vec::new();
    while !rt.gc_running() {
        addrs.push(rt.alloc(1024, Category::Other));
        rt.tick(1);
    }
    // Window open: tcfree must bail, and the pending flag must stay off
    // until the window is drained.
    let victim = addrs[0];
    assert_eq!(
        rt.tcfree(victim, FreeSource::SliceLifetime),
        FreeOutcome::Bailed(BailReason::GcRunning)
    );
    let window = {
        let trace_now = gc_starts(&rt.take_trace().expect("traced").events);
        trace_now.last().expect("window opened").2
    };
    // take_trace consumed the tracer; rebuild a runtime to check the
    // boundary precisely from a forced window instead.
    let mut rt = Runtime::new(traced(RuntimeConfig::default()));
    let a = rt.alloc(64, Category::Other);
    rt.force_gc_window(3);
    assert!(rt.gc_running() && !rt.gc_pending());
    assert_eq!(
        rt.tcfree(a, FreeSource::SliceLifetime),
        FreeOutcome::Bailed(BailReason::GcRunning),
        "free inside the window must bail"
    );
    for step in 0..3 {
        assert!(
            !rt.gc_pending(),
            "window closed after only {step} of 3 assists"
        );
        rt.alloc(64, Category::Other);
    }
    assert!(
        rt.gc_pending(),
        "window must close exactly after its assist budget"
    );
    let swept = rt.collect(&HashSet::new());
    assert!(!rt.gc_running(), "collect closes the cycle");
    assert!(swept.freed.iter().any(|&(addr, _, _)| addr == a));
    rt.finalize();
    let m = rt.metrics().clone();
    let trace = rt.take_trace().expect("traced run");
    assert_eq!(m.tcfree_bails[BailReason::GcRunning.index()], 1);
    let bail_pos = trace
        .events
        .iter()
        .position(|e| matches!(e, TraceEvent::FreeBail { reason, .. } if *reason == BailReason::GcRunning))
        .expect("the bailed free is in the stream");
    let end_pos = trace
        .events
        .iter()
        .position(|e| matches!(e, TraceEvent::GcEnd { .. }))
        .expect("the cycle end is in the stream");
    assert!(
        bail_pos < end_pos,
        "the bailed free happened inside the cycle"
    );
    trace.reconcile(&m).expect("stream folds back to metrics");
    // And the organically-opened window from the first runtime was
    // clamped like every other.
    assert!((16..=96).contains(&window));
}
