//! Directed tests for the shadow-heap sanitizer against the real
//! runtime: the §5 large-object two-step protocol (fig. 9) and the
//! tolerated-double-free paths, driven exactly as the VM drives them
//! (`on_alloc` after `Runtime::alloc`, `on_free` after a `Freed`
//! outcome, `on_sweep` for GC-reclaimed addresses).

use std::collections::HashSet;

use minigo_runtime::{
    Category, FreeCheck, FreeOutcome, Runtime, RuntimeConfig, ShadowHeap, ViolationKind,
    MAX_SMALL_SIZE,
};

fn quiet_runtime() -> Runtime {
    Runtime::new(RuntimeConfig {
        migrate_prob: 0.0,
        jitter: 0.0,
        gc_enabled: false, // collections are explicit in these tests
        ..RuntimeConfig::default()
    })
}

/// Fig. 9: a freed large object leaves a dangling span (step 1); the next
/// sweep retires the span struct to the idle list (step 2); the following
/// large allocation reuses it. The shadow heap must classify accesses
/// through the stale reference as use-after-free before the reuse and
/// use-after-revert after it — and the repeat free flips from tolerated
/// to an untolerated double free.
#[test]
fn large_object_two_step_reuse_is_classified() {
    let mut rt = quiet_runtime();
    let mut sh = ShadowHeap::new();
    let large = MAX_SMALL_SIZE + 4096;

    let addr = rt.alloc(large, Category::Slice);
    sh.on_alloc(1, addr);
    sh.check_access(1, "slice index read", 1);
    assert!(sh.violations().is_empty(), "live access is clean");

    // Step 1: the explicit free leaves the span dangling.
    match rt.tcfree(addr, minigo_runtime::FreeSource::SliceLifetime) {
        FreeOutcome::Freed { bytes } => {
            assert_eq!(bytes, large);
            sh.on_free(1, addr);
        }
        other => panic!("large tcfree did not free: {other:?}"),
    }

    // Freed but not yet reused: stale reads are use-after-free, a repeat
    // free is the tolerated double free of §5's AlreadyFree bail.
    sh.check_access(1, "slice index read", 2);
    assert_eq!(
        sh.violations().last().unwrap().kind,
        ViolationKind::UseAfterFree
    );
    assert_eq!(
        sh.check_free(1, "FreeSlice", 3),
        FreeCheck::Tolerated,
        "double free before reuse is tolerated"
    );
    assert_eq!(sh.tolerated_double_frees(), 1);

    // Step 2: the sweep retires the dangling span struct to the idle
    // list. Nothing was GC-freed, so the shadow heap sees no sweep event.
    let swept = rt.collect(&HashSet::new());
    assert!(swept.freed.is_empty(), "dangling span holds no live object");

    // The idle span struct is reused by the next large allocation: same
    // SpanId, same address, new object identity.
    let addr2 = rt.alloc(large, Category::Slice);
    assert_eq!(addr2, addr, "fig. 9: idle span struct reused");
    sh.on_alloc(2, addr2);

    // The stale reference now aliases the *new* object's storage.
    sh.check_access(1, "slice index read", 4);
    assert_eq!(
        sh.violations().last().unwrap().kind,
        ViolationKind::UseAfterRevert
    );
    assert_eq!(
        sh.check_free(1, "FreeSlice", 5),
        FreeCheck::Violation,
        "repeat free after reuse would free the new occupant"
    );
    assert_eq!(
        sh.violations().last().unwrap().kind,
        ViolationKind::UntoleratedDoubleFree
    );
    // The new identity itself stays clean throughout.
    sh.check_access(2, "slice index read", 6);
    let against_new: Vec<_> = sh.violations().iter().filter(|v| v.object == 2).collect();
    assert!(against_new.is_empty());
}

/// Small-object allocation-index reuse: after a small object is freed
/// (revert or bitmap path) and its slot is handed out again, the shadow
/// heap promotes the old identity to reused.
#[test]
fn small_object_slot_reuse_is_classified() {
    let mut rt = quiet_runtime();
    let mut sh = ShadowHeap::new();

    let a = rt.alloc(64, Category::Slice);
    sh.on_alloc(1, a);
    match rt.tcfree(a, minigo_runtime::FreeSource::SliceLifetime) {
        FreeOutcome::Freed { .. } => sh.on_free(1, a),
        other => panic!("small tcfree did not free: {other:?}"),
    }
    // The allocation-index revert hands the same slot straight back.
    let b = rt.alloc(64, Category::Slice);
    sh.on_alloc(2, b);
    assert_eq!(b, a, "allocation-index revert reuses the slot");
    sh.check_access(1, "slice index read", 1);
    assert_eq!(
        sh.violations().last().unwrap().kind,
        ViolationKind::UseAfterRevert
    );
}

/// A deliberately buggy hand-instrumented sequence — free, keep using,
/// free again across a reuse — accumulates exactly the three violation
/// kinds, while GC-swept identities never produce any.
#[test]
fn buggy_sequence_is_flagged_and_swept_identities_are_not() {
    let mut rt = quiet_runtime();
    let mut sh = ShadowHeap::new();

    // A GC-reclaimed object: unreachable, swept, forgotten.
    let g = rt.alloc(128, Category::Other);
    sh.on_alloc(10, g);
    let swept = rt.collect(&HashSet::new());
    assert!(swept.freed.iter().any(|(addr, _, _)| *addr == g));
    sh.on_sweep(10);
    sh.check_access(10, "pointer deref read", 1);
    assert!(
        sh.violations().is_empty(),
        "no reference can outlive a swept (unreachable) object"
    );

    // The planted bug: free s, read it, let the slot be reused, free again.
    let s = rt.alloc(256, Category::Slice);
    sh.on_alloc(11, s);
    match rt.tcfree(s, minigo_runtime::FreeSource::SliceLifetime) {
        FreeOutcome::Freed { .. } => sh.on_free(11, s),
        other => panic!("tcfree did not free: {other:?}"),
    }
    sh.check_access(11, "slice index read", 2); // use-after-free
    let s2 = rt.alloc(256, Category::Slice);
    sh.on_alloc(12, s2);
    assert_eq!(s2, s);
    sh.check_access(11, "slice index write", 3); // use-after-revert
    sh.check_free(11, "FreeSlice", 4); // untolerated double free
    let kinds: Vec<ViolationKind> = sh.violations().iter().map(|v| v.kind).collect();
    assert_eq!(
        kinds,
        vec![
            ViolationKind::UseAfterFree,
            ViolationKind::UseAfterRevert,
            ViolationKind::UntoleratedDoubleFree
        ]
    );
}
