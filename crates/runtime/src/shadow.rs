//! Shadow-heap sanitizer: the dynamic oracle that cross-validates the
//! static free-safety auditor.
//!
//! The shadow heap mirrors the real heap out-of-band. Every allocation
//! is tagged with its VM object identity (a monotonically increasing,
//! never-reused id — the "generation"), every explicit `tcfree` moves
//! that identity to a *freed* state, and every later allocation that
//! reuses the freed storage (a small-object allocation-index revert, or
//! a §5 fig. 9 step-2 span retirement followed by span reuse) promotes
//! it to *reused*. VM loads, stores, and frees consult the shadow state
//! and classify anything that touches dead storage:
//!
//! * **use-after-free** — an access through a freed identity whose
//!   storage has not been handed out again; the read still sees the old
//!   bytes, so only the sanitizer (or poison mode) can catch it.
//! * **use-after-revert** — an access through a freed identity whose
//!   storage *has* been reallocated; on real hardware this reads another
//!   object's bytes.
//! * **untolerated double free** — a second free of an identity whose
//!   storage was reallocated in between. The runtime's `AlreadyFree`
//!   bail (§5) only tolerates double frees when the allocation bitmap
//!   still shows the slot dead; after reuse the same call would free a
//!   *live* object.
//!
//! A second free *before* reuse is the paper's tolerated double free:
//! the sanitizer counts it ([`ShadowHeap::tolerated_double_frees`]) but
//! does not report a violation, mirroring the runtime bail-out.
//!
//! The sanitizer is deliberately free of side effects on the simulation:
//! it charges no virtual ticks, never touches [`crate::Metrics`] or the
//! RNG, and reports violations out-of-band — so a run's observable
//! report is bit-identical with the sanitizer on or off.

use std::collections::HashMap;

use crate::heap::ObjAddr;

/// How an access or free violated the shadow heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// Load or store through a freed object before its storage was reused.
    UseAfterFree,
    /// Load or store through a freed object after its storage was
    /// reallocated to a new object.
    UseAfterRevert,
    /// A repeated free after the storage was reallocated — the one kind of
    /// double free §5's `AlreadyFree` bail-out cannot tolerate.
    UntoleratedDoubleFree,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViolationKind::UseAfterFree => write!(f, "use-after-free"),
            ViolationKind::UseAfterRevert => write!(f, "use-after-revert"),
            ViolationKind::UntoleratedDoubleFree => write!(f, "untolerated-double-free"),
        }
    }
}

/// One sanitizer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowViolation {
    /// The classification.
    pub kind: ViolationKind,
    /// The VM object id (generation tag) involved.
    pub object: u64,
    /// What the VM was doing, e.g. `"slice index read"`.
    pub op: &'static str,
    /// The VM statement count at the violation (deterministic across
    /// engines, unlike host state).
    pub step: u64,
}

impl std::fmt::Display for ShadowViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} on object #{} during {} (step {})",
            self.kind, self.object, self.op, self.step
        )
    }
}

/// The state the shadow heap tracks per object identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShadowState {
    /// Allocated and not explicitly freed.
    Live,
    /// Explicitly freed; backing storage not yet handed out again.
    Freed,
    /// Explicitly freed and the backing storage has since been
    /// reallocated to another object.
    Reused,
}

/// The result of [`ShadowHeap::check_free`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreeCheck {
    /// First free of a live object.
    Ok,
    /// Double free before storage reuse — tolerated by §5's
    /// `AlreadyFree` bail, counted but not a violation.
    Tolerated,
    /// Double free after storage reuse — recorded as a violation.
    Violation,
}

/// The shadow heap itself. Owned by a VM when `--sanitize` is on.
#[derive(Debug, Clone, Default)]
pub struct ShadowHeap {
    /// Shadow state per object identity. Identities freed by GC sweep are
    /// removed entirely: the collector only reclaims unreachable objects,
    /// so no later access through them is possible.
    states: HashMap<u64, ShadowState>,
    /// Explicitly freed storage → the identity that used to own it. When
    /// the allocator hands the address out again the old identity is
    /// promoted to [`ShadowState::Reused`].
    freed_addrs: HashMap<ObjAddr, u64>,
    violations: Vec<ShadowViolation>,
    tolerated: u64,
}

impl ShadowHeap {
    /// A fresh, empty shadow heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an allocation: tags `obj` live at `addr` and, if `addr`
    /// was previously vacated by an explicit free, promotes the old
    /// occupant to the reused state (its bytes now belong to `obj`).
    pub fn on_alloc(&mut self, obj: u64, addr: ObjAddr) {
        if let Some(old) = self.freed_addrs.remove(&addr) {
            if let Some(st) = self.states.get_mut(&old) {
                *st = ShadowState::Reused;
            }
        }
        self.states.insert(obj, ShadowState::Live);
    }

    /// Records a successful explicit free of `obj` at `addr`.
    pub fn on_free(&mut self, obj: u64, addr: ObjAddr) {
        self.states.insert(obj, ShadowState::Freed);
        self.freed_addrs.insert(addr, obj);
    }

    /// Records a GC sweep of `obj`: the object was unreachable, so its
    /// identity is forgotten rather than marked freed (no reference to it
    /// can exist to misuse).
    pub fn on_sweep(&mut self, obj: u64) {
        self.states.remove(&obj);
    }

    /// Checks a load or store through `obj`, recording a violation if the
    /// object was explicitly freed. `op` names the access; `step` is the
    /// VM statement count.
    pub fn check_access(&mut self, obj: u64, op: &'static str, step: u64) {
        let kind = match self.states.get(&obj) {
            Some(ShadowState::Freed) => ViolationKind::UseAfterFree,
            Some(ShadowState::Reused) => ViolationKind::UseAfterRevert,
            // Live, or an identity the shadow heap never saw (stack
            // allocation or GC-swept — both inherently safe here).
            _ => return,
        };
        self.violations.push(ShadowViolation {
            kind,
            object: obj,
            op,
            step,
        });
    }

    /// Checks an explicit free of `obj` *before* the runtime performs it,
    /// classifying repeat frees. `op` names the free flavour.
    pub fn check_free(&mut self, obj: u64, op: &'static str, step: u64) -> FreeCheck {
        match self.states.get(&obj) {
            Some(ShadowState::Freed) => {
                self.tolerated += 1;
                FreeCheck::Tolerated
            }
            Some(ShadowState::Reused) => {
                self.violations.push(ShadowViolation {
                    kind: ViolationKind::UntoleratedDoubleFree,
                    object: obj,
                    op,
                    step,
                });
                FreeCheck::Violation
            }
            _ => FreeCheck::Ok,
        }
    }

    /// The violations recorded so far.
    pub fn violations(&self) -> &[ShadowViolation] {
        &self.violations
    }

    /// Consumes the recorded violations (used when assembling a run
    /// report).
    pub fn take_violations(&mut self) -> Vec<ShadowViolation> {
        std::mem::take(&mut self.violations)
    }

    /// How many double frees were tolerated (§5 `AlreadyFree` bails seen
    /// before any storage reuse).
    pub fn tolerated_double_frees(&self) -> u64 {
        self.tolerated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::SpanId;

    fn addr(span: u32, slot: u32) -> ObjAddr {
        ObjAddr {
            span: SpanId(span),
            slot,
        }
    }

    #[test]
    fn live_accesses_are_clean() {
        let mut sh = ShadowHeap::new();
        sh.on_alloc(1, addr(0, 0));
        sh.check_access(1, "read", 0);
        assert!(sh.violations().is_empty());
    }

    #[test]
    fn freed_then_reused_classification() {
        let mut sh = ShadowHeap::new();
        sh.on_alloc(1, addr(0, 3));
        sh.on_free(1, addr(0, 3));
        sh.check_access(1, "read", 10);
        assert_eq!(sh.violations()[0].kind, ViolationKind::UseAfterFree);
        // Storage handed out again: same address, new identity.
        sh.on_alloc(2, addr(0, 3));
        sh.check_access(1, "read", 20);
        assert_eq!(sh.violations()[1].kind, ViolationKind::UseAfterRevert);
        // The new occupant is fine.
        sh.check_access(2, "read", 21);
        assert_eq!(sh.violations().len(), 2);
    }

    #[test]
    fn double_free_tolerated_until_reuse() {
        let mut sh = ShadowHeap::new();
        sh.on_alloc(1, addr(2, 0));
        sh.on_free(1, addr(2, 0));
        assert_eq!(sh.check_free(1, "TcfreeSlice", 5), FreeCheck::Tolerated);
        assert_eq!(sh.tolerated_double_frees(), 1);
        assert!(sh.violations().is_empty());
        sh.on_alloc(2, addr(2, 0));
        assert_eq!(sh.check_free(1, "TcfreeSlice", 9), FreeCheck::Violation);
        assert_eq!(
            sh.violations()[0].kind,
            ViolationKind::UntoleratedDoubleFree
        );
    }

    #[test]
    fn swept_identities_are_forgotten() {
        let mut sh = ShadowHeap::new();
        sh.on_alloc(1, addr(0, 0));
        sh.on_sweep(1);
        sh.check_access(1, "read", 3);
        assert_eq!(sh.check_free(1, "TcfreeMap", 4), FreeCheck::Ok);
        assert!(sh.violations().is_empty());
    }
}
