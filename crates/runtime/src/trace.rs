//! The runtime event tracing layer: a typed, virtual-time-stamped event
//! stream recording every observable runtime action — allocations,
//! `tcfree` outcomes (including the small-object allocation-index
//! revert/cascade and the large-object dangling-span step), GC cycles
//! with their pacing trigger, mcache flushes, and §4.6.2 map-growth
//! frees.
//!
//! Like the shadow-heap sanitizer, tracing is **opt-in and invisible**:
//! the tracer never charges the clock, never touches [`Metrics`], and
//! never draws from the RNG, so a traced run's report (output, virtual
//! time, metrics, steps, site profile) is bit-identical to an untraced
//! one. Events are recorded *inside* the [`crate::Runtime`] methods both
//! VM engines drive through identical hook sequences, so traces are also
//! bit-identical across engines.
//!
//! The stream is complete: [`Trace::fold`] replays it into a [`Metrics`]
//! value and [`Trace::reconcile`] asserts the replay matches the metrics
//! the run actually produced — the property the workspace's
//! reconciliation tests enforce for every corpus program.
//!
//! On top of the raw stream the trace carries three profiling layers:
//! every allocation/free/bail event is stamped with an interned
//! **call-stack id** (see [`crate::profile::StackTable`], filled in by
//! the VM engines), per-object [`TraceEvent::Sweep`] events let the
//! profile builder attribute GC-reclaimed garbage back to its allocating
//! stack, and [`HeapSnapshot`]s capture per-size-class occupancy and
//! fragmentation at every GC safepoint. The event buffer may be capped
//! ([`Tracer::with_cap`]); a capped stream counts what it dropped and
//! [`Trace::reconcile`] then fails loudly instead of reconciling a
//! truncated stream by accident.

use std::collections::HashMap;

use crate::collector::{CollectorKind, CycleKind};
use crate::heap::{footprint, Heap, ObjAddr};
use crate::metrics::{BailReason, Category, FreeSource, Metrics};
use crate::profile::{StackId, StackTable};
use crate::sizeclass::PAGE_SIZE;

/// An allocation-site id: the raw `ExprId` number assigned by the MiniGo
/// parser (`None` on events for runtime-internal allocations that have
/// no source expression).
pub type TraceSiteId = u32;

/// How an explicit small/large free returned memory (§5 and fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FreeStep {
    /// Small object not on top of its span: the occupancy bit was
    /// cleared; the slot becomes reusable only after the next sweep.
    SlotClear,
    /// Small object on top: the span's allocation index was reverted,
    /// cascading over `cascade` earlier freed slots below it.
    Revert {
        /// Extra index steps the revert cascaded past (0 = only the
        /// freed slot itself was reclaimed for immediate reuse).
        cascade: u32,
    },
    /// Large object: fig. 9 step 1 — pages returned immediately, the
    /// span struct left dangling until the next GC sweep (step 2, visible
    /// as [`TraceEvent::GcEnd::dangling_retired`]).
    LargeStep1,
}

/// One typed runtime event, stamped with the virtual time (`at`) at which
/// it was recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A heap allocation was served.
    Alloc {
        /// Virtual timestamp (ticks).
        at: u64,
        /// Allocator address handed to the VM.
        addr: ObjAddr,
        /// Allocation-site expression id, when the VM attributed one.
        site: Option<TraceSiteId>,
        /// Interned call stack performing the allocation.
        stack: StackId,
        /// Allocation category (table 8).
        cat: Category,
        /// Accounted bytes (rounded size class for small objects).
        bytes: u64,
        /// Whether the large-object path served it.
        large: bool,
        /// Live heap bytes after the allocation.
        heap_live: u64,
        /// Page-level footprint after the allocation (maxheap input).
        footprint: u64,
    },
    /// The VM placed an object on the stack instead of the heap.
    StackAlloc {
        /// Virtual timestamp (ticks).
        at: u64,
        /// Allocation category.
        cat: Category,
        /// Interned call stack performing the allocation.
        stack: StackId,
    },
    /// A `tcfree` deallocated an object.
    Free {
        /// Virtual timestamp (ticks).
        at: u64,
        /// The freed address.
        addr: ObjAddr,
        /// The allocation site that produced the object, when known.
        site: Option<TraceSiteId>,
        /// Interned call stack performing the free (the object's
        /// *allocating* stack is recovered by the profile builder from
        /// the address's matching [`TraceEvent::Alloc`]).
        stack: StackId,
        /// The freed object's category.
        cat: Category,
        /// Which runtime entry point freed it (table 9's sources,
        /// including `GrowMapAndFreeOld`).
        source: FreeSource,
        /// Bytes returned.
        bytes: u64,
        /// What the free did structurally (revert/cascade/dangling).
        step: FreeStep,
        /// Live heap bytes after the free.
        heap_live: u64,
    },
    /// A `tcfree` gave up (§5's bail-outs).
    FreeBail {
        /// Virtual timestamp (ticks).
        at: u64,
        /// Why it bailed.
        reason: BailReason,
        /// Interned call stack attempting the free.
        stack: StackId,
    },
    /// Poison mode (§6.8): the free reported `Poisoned`; the object stays
    /// allocated and the VM corrupts the payload.
    FreePoison {
        /// Virtual timestamp (ticks).
        at: u64,
        /// The poisoned address.
        addr: ObjAddr,
        /// Interned call stack attempting the free.
        stack: StackId,
    },
    /// A simulated scheduler migration flushed a thread's mcache.
    McacheFlush {
        /// Virtual timestamp (ticks).
        at: u64,
        /// The thread whose mcache was flushed.
        thread: u32,
    },
    /// The GC pacer triggered: live heap crossed the goal. Opens the
    /// concurrent-mark window.
    GcStart {
        /// Virtual timestamp (ticks).
        at: u64,
        /// Live heap bytes at the trigger.
        heap_live: u64,
        /// The pacing goal that was crossed (`next_gc`, or the nursery
        /// size for a generational minor trigger).
        heap_goal: u64,
        /// Length of the concurrent-mark window in allocations.
        window: u64,
        /// Whether the triggered cycle is nursery-only or full-heap.
        kind: CycleKind,
    },
    /// A GC sweep reclaimed one unmarked object (recorded per object so
    /// the profile builder can attribute swept garbage back to the
    /// allocating stack; the per-cycle totals stay on
    /// [`TraceEvent::GcEnd`], which is what [`Trace::fold`] counts).
    Sweep {
        /// Virtual timestamp (ticks) — the cycle's end time.
        at: u64,
        /// The reclaimed address.
        addr: ObjAddr,
        /// The reclaimed object's category.
        cat: Category,
        /// Bytes reclaimed.
        bytes: u64,
    },
    /// A mark+sweep cycle completed.
    GcEnd {
        /// Virtual timestamp (ticks).
        at: u64,
        /// Live heap bytes after the sweep (`heap_marked`).
        heap_live: u64,
        /// The next pacing goal derived from GOGC.
        next_goal: u64,
        /// Objects swept per category (table 8's "Heap GC" input).
        swept: [u64; 3],
        /// Bytes swept.
        swept_bytes: u64,
        /// Dangling large-object spans that completed fig. 9 step 2.
        dangling_retired: u64,
        /// Virtual ticks the cycle cost (mark + sweep).
        ticks: u64,
        /// Whether the completed cycle was nursery-only or full-heap.
        kind: CycleKind,
    },
    /// End-of-run accounting: objects still live count toward the GC
    /// columns, and the final footprint feeds `maxheap`.
    Finalize {
        /// Virtual timestamp (ticks).
        at: u64,
        /// Leftover live objects per category.
        leftover: [u64; 3],
        /// Final page-level footprint.
        footprint: u64,
    },
    /// One completed service request (the service harness' span events).
    /// Pure annotation: [`Trace::fold`] ignores it, so traces with and
    /// without request spans reconcile against the same [`Metrics`].
    Request {
        /// Virtual timestamp (ticks) — the request's completion time.
        at: u64,
        /// Request index in arrival order.
        id: u64,
        /// When the request arrived (open-loop schedule time).
        arrival: u64,
        /// When the server started executing it (`≥ arrival`; the gap is
        /// queueing delay).
        start: u64,
    },
}

impl TraceEvent {
    /// The event's virtual timestamp.
    pub fn at(&self) -> u64 {
        match *self {
            TraceEvent::Alloc { at, .. }
            | TraceEvent::StackAlloc { at, .. }
            | TraceEvent::Free { at, .. }
            | TraceEvent::FreeBail { at, .. }
            | TraceEvent::FreePoison { at, .. }
            | TraceEvent::McacheFlush { at, .. }
            | TraceEvent::GcStart { at, .. }
            | TraceEvent::Sweep { at, .. }
            | TraceEvent::GcEnd { at, .. }
            | TraceEvent::Finalize { at, .. }
            | TraceEvent::Request { at, .. } => at,
        }
    }
}

/// Per-size-class occupancy inside a [`HeapSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassOccupancy {
    /// Size-class index.
    pub class: usize,
    /// Bytes per slot in this class.
    pub slot_size: u64,
    /// Active spans of this class.
    pub spans: u64,
    /// Total slots those spans carve out.
    pub slots: u64,
    /// Occupied slots.
    pub live_slots: u64,
    /// Bytes held by occupied slots (`live_slots * slot_size`).
    pub live_bytes: u64,
    /// Bytes of backing pages (`spans * npages * PAGE_SIZE`) — the
    /// denominator of the class's fragmentation ratio.
    pub span_bytes: u64,
}

/// A point-in-time picture of the heap, captured at GC safepoints (the
/// pacer trigger, before the sweep runs, so the garbage and any
/// fig. 9 dangling spans are still visible) and once at end of run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapSnapshot {
    /// Virtual timestamp (ticks).
    pub at: u64,
    /// 1-based GC cycle about to run, or `None` for the end-of-run
    /// snapshot.
    pub cycle: Option<u64>,
    /// Per-size-class occupancy, ascending class order; classes with no
    /// active span are omitted.
    pub classes: Vec<ClassOccupancy>,
    /// Active dedicated large-object spans (pages still held).
    pub large_spans: u64,
    /// Live bytes in those large spans.
    pub large_bytes: u64,
    /// Backing-page bytes of those large spans.
    pub large_span_bytes: u64,
    /// Large-object spans in fig. 9's dangling state: pages already
    /// returned by step 1, the span struct awaiting step 2 at the next
    /// sweep.
    pub dangling_spans: u64,
    /// Live heap bytes (the pacer's input).
    pub heap_live: u64,
    /// Page-level footprint (the `maxheap` input).
    pub footprint: u64,
}

impl HeapSnapshot {
    /// Captures the heap's current occupancy.
    pub fn capture(heap: &Heap, at: u64, cycle: Option<u64>) -> Self {
        let mut classes: HashMap<usize, ClassOccupancy> = HashMap::new();
        let (mut large_spans, mut large_bytes, mut large_span_bytes) = (0, 0, 0);
        let mut dangling_spans = 0;
        for i in 0..heap.span_count() {
            let span = heap.span(crate::heap::SpanId(i as u32));
            if span.dangling {
                dangling_spans += 1;
                continue;
            }
            if !span.active {
                continue;
            }
            match span.class {
                Some(class) => {
                    let c = classes.entry(class).or_insert(ClassOccupancy {
                        class,
                        slot_size: span.slot_size,
                        spans: 0,
                        slots: 0,
                        live_slots: 0,
                        live_bytes: 0,
                        span_bytes: 0,
                    });
                    c.spans += 1;
                    c.slots += span.nslots as u64;
                    let live = span.live_slots() as u64;
                    c.live_slots += live;
                    c.live_bytes += live * span.slot_size;
                    c.span_bytes += span.npages as u64 * PAGE_SIZE;
                }
                None => {
                    large_spans += 1;
                    large_bytes += span.slot_size;
                    large_span_bytes += span.npages as u64 * PAGE_SIZE;
                }
            }
        }
        let mut classes: Vec<ClassOccupancy> = classes.into_values().collect();
        classes.sort_by_key(|c| c.class);
        HeapSnapshot {
            at,
            cycle,
            classes,
            large_spans,
            large_bytes,
            large_span_bytes,
            dangling_spans,
            heap_live: heap.heap_live(),
            footprint: footprint(heap),
        }
    }
}

/// Initial event-buffer capacity: most corpus runs fit without a single
/// reallocation; longer runs grow the buffer geometrically (an append
/// buffer — unless capped, events are never dropped, so folding stays
/// exact).
const TRACE_PREALLOC: usize = 4096;

/// The recording side, owned by the [`crate::Runtime`] when
/// [`crate::RuntimeConfig::trace`] is on.
///
/// Besides the event buffer it keeps an address→site side table so free
/// events can be attributed back to the allocation site that produced
/// the object — state the simulation itself never reads.
#[derive(Debug)]
pub struct Tracer {
    events: Vec<TraceEvent>,
    sites: HashMap<ObjAddr, TraceSiteId>,
    snapshots: Vec<HeapSnapshot>,
    /// Optional hard cap on the event buffer; `None` = unbounded.
    cap: Option<usize>,
    /// Events discarded once the cap was hit.
    events_dropped: u64,
}

impl Tracer {
    /// Creates a tracer with a preallocated, unbounded event buffer.
    pub fn new() -> Self {
        Tracer::with_cap(None)
    }

    /// Creates a tracer whose event buffer holds at most `cap` events;
    /// further events are counted in `events_dropped` instead of
    /// recorded, and the resulting truncated [`Trace`] refuses to
    /// reconcile.
    pub fn with_cap(cap: Option<usize>) -> Self {
        let prealloc = cap.map_or(TRACE_PREALLOC, |c| c.min(TRACE_PREALLOC));
        Tracer {
            events: Vec::with_capacity(prealloc),
            sites: HashMap::new(),
            snapshots: Vec::new(),
            cap,
            events_dropped: 0,
        }
    }

    /// Appends an event (or counts it as dropped when the buffer is at
    /// its cap — never silently).
    pub fn record(&mut self, ev: TraceEvent) {
        match self.cap {
            Some(cap) if self.events.len() >= cap => self.events_dropped += 1,
            _ => self.events.push(ev),
        }
    }

    /// Appends a heap snapshot (bounded by the GC count, never capped).
    pub fn snapshot(&mut self, snap: HeapSnapshot) {
        self.snapshots.push(snap);
    }

    /// Remembers which site allocated `addr` (clearing any stale entry
    /// left by a previous occupant of the reused address).
    pub fn note_site(&mut self, addr: ObjAddr, site: Option<TraceSiteId>) {
        match site {
            Some(s) => {
                self.sites.insert(addr, s);
            }
            None => {
                self.sites.remove(&addr);
            }
        }
    }

    /// Takes the allocation site of `addr` (the object is gone).
    pub fn take_site(&mut self, addr: ObjAddr) -> Option<TraceSiteId> {
        self.sites.remove(&addr)
    }

    /// Drops site attributions for swept addresses.
    pub fn forget_site(&mut self, addr: ObjAddr) {
        self.sites.remove(&addr);
    }

    /// Finishes recording, yielding the immutable trace (the stack table
    /// is filled in afterwards by the VM engine that drove the run).
    pub fn finish(self) -> Trace {
        Trace {
            collector: CollectorKind::default(),
            events: self.events,
            events_dropped: self.events_dropped,
            snapshots: self.snapshots,
            stacks: StackTable::new(),
        }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

/// A completed run's event stream, carried out-of-band in the run report
/// (like sanitizer violations).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// Which collection backend produced the stream (stamped by the
    /// runtime when the trace is taken).
    pub collector: CollectorKind,
    /// Events in recording order (timestamps are non-decreasing).
    pub events: Vec<TraceEvent>,
    /// Events the buffer cap discarded (0 for unbounded tracers; a
    /// non-zero value marks the stream truncated and poisons
    /// [`Trace::reconcile`]).
    pub events_dropped: u64,
    /// Heap snapshots captured at each GC trigger plus end of run.
    pub snapshots: Vec<HeapSnapshot>,
    /// Interned call stacks referenced by the events' `stack` ids
    /// (filled in by the VM engine after the run; empty for runtimes
    /// driven without a VM).
    pub stacks: StackTable,
}

impl Trace {
    /// Replays the event stream into the [`Metrics`] it implies.
    ///
    /// Every counter the runtime maintains is derivable from the stream;
    /// the only exception is [`Metrics::frees_suppressed`], a
    /// compile-time fact that never passes through the runtime (the fold
    /// leaves it 0; [`Trace::reconcile`] copies it from the target).
    pub fn fold(&self) -> Metrics {
        let mut m = Metrics::default();
        for ev in &self.events {
            match *ev {
                TraceEvent::Alloc {
                    cat,
                    bytes,
                    footprint,
                    ..
                } => {
                    m.alloced_bytes += bytes;
                    m.alloced_objects += 1;
                    m.heap_allocs[cat.index()] += 1;
                    m.maxheap = m.maxheap.max(footprint);
                }
                TraceEvent::StackAlloc { cat, .. } => m.record_stack_alloc(cat),
                TraceEvent::Free {
                    cat, source, bytes, ..
                } => {
                    m.tcfree_attempts += 1;
                    m.freed_bytes += bytes;
                    m.freed_bytes_by_source[source.index()] += bytes;
                    m.freed_objects_by_source[source.index()] += 1;
                    m.heap_tcfreed[cat.index()] += 1;
                }
                TraceEvent::FreeBail { reason, .. } => {
                    m.tcfree_attempts += 1;
                    m.tcfree_bails[reason.index()] += 1;
                }
                TraceEvent::FreePoison { .. } => m.tcfree_attempts += 1,
                // Per-object sweep detail; the fold counts the cycle's
                // GcEnd totals instead, so sweeps don't double-count.
                TraceEvent::Sweep { .. } => {}
                TraceEvent::McacheFlush { .. }
                | TraceEvent::GcStart { .. }
                | TraceEvent::Request { .. } => {}
                TraceEvent::GcEnd {
                    swept, ticks, kind, ..
                } => {
                    m.gcs += 1;
                    match kind {
                        CycleKind::Minor => m.gcs_minor += 1,
                        CycleKind::Major => m.gcs_major += 1,
                    }
                    m.gc_ticks += ticks;
                    for (i, n) in swept.iter().enumerate() {
                        m.heap_gced[i] += n;
                    }
                }
                TraceEvent::Finalize {
                    leftover,
                    footprint,
                    ..
                } => {
                    m.maxheap = m.maxheap.max(footprint);
                    for (i, n) in leftover.iter().enumerate() {
                        m.heap_gced[i] += n;
                    }
                }
            }
        }
        m
    }

    /// Checks the folded stream reproduces `target` exactly.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence. A truncated stream
    /// (the tracer's buffer cap dropped events) fails immediately and
    /// loudly — a partial fold could otherwise diverge in ways that look
    /// like runtime bugs, or worse, happen to match.
    pub fn reconcile(&self, target: &Metrics) -> Result<(), String> {
        if self.events_dropped > 0 {
            return Err(format!(
                "trace truncated: the buffer cap dropped {} events; a partial stream cannot reconcile",
                self.events_dropped
            ));
        }
        let mut folded = self.fold();
        // Compile-time fact, not a runtime event (see `fold`).
        folded.frees_suppressed = target.frees_suppressed;
        let f = format!("{folded:?}");
        let t = format!("{target:?}");
        if f == t {
            Ok(())
        } else {
            Err(format!(
                "trace does not reconcile with metrics\n folded:  {f}\n metrics: {t}"
            ))
        }
    }

    /// Samples the live-heap curve the stream implies: `(at, heap_live)`
    /// after every event that moves the live-heap figure — the fig. 10/11
    /// heap-size view, re-derived from events instead of end-of-run
    /// aggregates.
    pub fn heap_curve(&self) -> Vec<(u64, u64)> {
        self.events
            .iter()
            .filter_map(|ev| match *ev {
                TraceEvent::Alloc { at, heap_live, .. }
                | TraceEvent::Free { at, heap_live, .. }
                | TraceEvent::GcEnd { at, heap_live, .. } => Some((at, heap_live)),
                _ => None,
            })
            .collect()
    }

    /// Peak page-level footprint seen by the stream (equals
    /// [`Metrics::maxheap`]).
    pub fn max_footprint(&self) -> u64 {
        self.events
            .iter()
            .filter_map(|ev| match *ev {
                TraceEvent::Alloc { footprint, .. } | TraceEvent::Finalize { footprint, .. } => {
                    Some(footprint)
                }
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Number of completed GC cycles in the stream.
    pub fn gc_count(&self) -> u64 {
        self.events
            .iter()
            .filter(|ev| matches!(ev, TraceEvent::GcEnd { .. }))
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::SpanId;

    fn addr(n: u32) -> ObjAddr {
        ObjAddr {
            span: SpanId(n),
            slot: 0,
        }
    }

    #[test]
    fn fold_reproduces_counters() {
        let trace = Trace {
            events: vec![
                TraceEvent::Alloc {
                    at: 10,
                    addr: addr(0),
                    site: Some(3),
                    stack: 1,
                    cat: Category::Slice,
                    bytes: 112,
                    large: false,
                    heap_live: 112,
                    footprint: 8192,
                },
                TraceEvent::StackAlloc {
                    at: 11,
                    cat: Category::Other,
                    stack: 1,
                },
                TraceEvent::Free {
                    at: 20,
                    addr: addr(0),
                    site: Some(3),
                    stack: 1,
                    cat: Category::Slice,
                    source: FreeSource::SliceLifetime,
                    bytes: 112,
                    step: FreeStep::Revert { cascade: 0 },
                    heap_live: 0,
                },
                TraceEvent::FreeBail {
                    at: 21,
                    reason: BailReason::AlreadyFree,
                    stack: 1,
                },
                TraceEvent::Sweep {
                    at: 30,
                    addr: addr(1),
                    cat: Category::Map,
                    bytes: 96,
                },
                TraceEvent::GcEnd {
                    at: 30,
                    heap_live: 0,
                    next_goal: 512 * 1024,
                    swept: [0, 2, 1],
                    swept_bytes: 96,
                    dangling_retired: 1,
                    ticks: 6000,
                    kind: CycleKind::Major,
                },
                TraceEvent::Finalize {
                    at: 31,
                    leftover: [0, 0, 1],
                    footprint: 4096,
                },
            ],
            ..Trace::default()
        };
        let m = trace.fold();
        assert_eq!(m.alloced_bytes, 112);
        assert_eq!(m.alloced_objects, 1);
        assert_eq!(m.freed_bytes, 112);
        assert_eq!(m.tcfree_attempts, 2);
        assert_eq!(m.tcfree_bails[BailReason::AlreadyFree.index()], 1);
        assert_eq!(m.gcs, 1);
        assert_eq!(m.gcs_major, 1);
        assert_eq!(m.gcs_minor, 0);
        assert_eq!(m.gc_ticks, 6000);
        assert_eq!(m.maxheap, 8192);
        assert_eq!(m.stack_allocs[Category::Other.index()], 1);
        assert_eq!(m.heap_gced, [0, 2, 2]);
        assert_eq!(m.heap_tcfreed[Category::Slice.index()], 1);
        trace.reconcile(&m).expect("fold reconciles with itself");
    }

    #[test]
    fn reconcile_reports_divergence() {
        let trace = Trace::default();
        let target = Metrics {
            alloced_bytes: 1,
            ..Metrics::default()
        };
        let err = trace.reconcile(&target).unwrap_err();
        assert!(err.contains("does not reconcile"), "{err}");
    }

    #[test]
    fn reconcile_ignores_frees_suppressed() {
        let trace = Trace::default();
        let target = Metrics {
            frees_suppressed: 5,
            ..Metrics::default()
        };
        trace.reconcile(&target).expect("compile-time field copied");
    }

    #[test]
    fn capped_tracer_counts_drops_and_refuses_to_reconcile() {
        let mut t = Tracer::with_cap(Some(2));
        for i in 0..5 {
            t.record(TraceEvent::StackAlloc {
                at: i,
                cat: Category::Other,
                stack: 0,
            });
        }
        let trace = t.finish();
        assert_eq!(trace.events.len(), 2, "cap bounds the buffer");
        assert_eq!(trace.events_dropped, 3, "every drop is counted");
        let mut m = Metrics::default();
        for _ in 0..5 {
            m.record_stack_alloc(Category::Other);
        }
        let err = trace.reconcile(&m).unwrap_err();
        assert!(err.contains("truncated"), "loud failure, got: {err}");
        assert!(err.contains('3'), "names the drop count, got: {err}");
        // And an uncapped tracer over the same stream reconciles.
        let mut t = Tracer::new();
        for i in 0..5 {
            t.record(TraceEvent::StackAlloc {
                at: i,
                cat: Category::Other,
                stack: 0,
            });
        }
        t.finish().reconcile(&m).expect("unbounded stream folds");
    }

    #[test]
    fn snapshot_captures_class_occupancy_and_dangling_spans() {
        use crate::sizeclass::class_for;
        let mut h = Heap::new(1);
        let class = class_for(64);
        let keep = h.alloc_small(class, 0, Category::Other).0;
        h.alloc_small(class, 0, Category::Slice);
        let big = h.alloc_large(PAGE_SIZE * 3, 0, Category::Other);
        let snap = HeapSnapshot::capture(&h, 42, Some(1));
        assert_eq!(snap.at, 42);
        assert_eq!(snap.cycle, Some(1));
        assert_eq!(snap.classes.len(), 1, "one small class in use");
        let c = &snap.classes[0];
        assert_eq!(c.class, class);
        assert_eq!(c.live_slots, 2);
        assert_eq!(c.live_bytes, 2 * c.slot_size);
        assert!(c.span_bytes >= PAGE_SIZE);
        assert_eq!(snap.large_spans, 1);
        assert_eq!(snap.large_bytes, PAGE_SIZE * 3);
        assert_eq!(snap.large_span_bytes, PAGE_SIZE * 3);
        assert_eq!(snap.dangling_spans, 0);
        assert_eq!(snap.heap_live, h.heap_live());
        assert_eq!(snap.footprint, footprint(&h));

        // Fig. 9 step 1 leaves the span dangling: pages gone, struct
        // counted in the snapshot until the next sweep retires it.
        h.free_large_step1(big);
        let snap = HeapSnapshot::capture(&h, 43, None);
        assert_eq!(snap.cycle, None);
        assert_eq!(snap.large_spans, 0);
        assert_eq!(snap.dangling_spans, 1);
        let _ = keep;
    }

    #[test]
    fn tracer_site_table_tracks_reuse() {
        let mut t = Tracer::new();
        t.note_site(addr(1), Some(7));
        assert_eq!(t.take_site(addr(1)), Some(7));
        assert_eq!(t.take_site(addr(1)), None);
        t.note_site(addr(2), Some(9));
        t.note_site(addr(2), None); // reused by an unattributed alloc
        assert_eq!(t.take_site(addr(2)), None);
    }

    #[test]
    fn curve_and_peaks() {
        let trace = Trace {
            events: vec![
                TraceEvent::Alloc {
                    at: 1,
                    addr: addr(0),
                    site: None,
                    stack: 0,
                    cat: Category::Other,
                    bytes: 64,
                    large: false,
                    heap_live: 64,
                    footprint: 8192,
                },
                TraceEvent::GcStart {
                    at: 2,
                    heap_live: 64,
                    heap_goal: 64,
                    window: 16,
                    kind: CycleKind::Major,
                },
                TraceEvent::GcEnd {
                    at: 3,
                    heap_live: 0,
                    next_goal: 1024,
                    swept: [0, 0, 1],
                    swept_bytes: 64,
                    dangling_retired: 0,
                    ticks: 100,
                    kind: CycleKind::Major,
                },
            ],
            ..Trace::default()
        };
        assert_eq!(trace.heap_curve(), vec![(1, 64), (3, 0)]);
        assert_eq!(trace.max_footprint(), 8192);
        assert_eq!(trace.gc_count(), 1);
        assert_eq!(trace.events[1].at(), 2);
    }
}
