//! The runtime event tracing layer: a typed, virtual-time-stamped event
//! stream recording every observable runtime action — allocations,
//! `tcfree` outcomes (including the small-object allocation-index
//! revert/cascade and the large-object dangling-span step), GC cycles
//! with their pacing trigger, mcache flushes, and §4.6.2 map-growth
//! frees.
//!
//! Like the shadow-heap sanitizer, tracing is **opt-in and invisible**:
//! the tracer never charges the clock, never touches [`Metrics`], and
//! never draws from the RNG, so a traced run's report (output, virtual
//! time, metrics, steps, site profile) is bit-identical to an untraced
//! one. Events are recorded *inside* the [`crate::Runtime`] methods both
//! VM engines drive through identical hook sequences, so traces are also
//! bit-identical across engines.
//!
//! The stream is complete: [`Trace::fold`] replays it into a [`Metrics`]
//! value and [`Trace::reconcile`] asserts the replay matches the metrics
//! the run actually produced — the property the workspace's
//! reconciliation tests enforce for every corpus program.

use std::collections::HashMap;

use crate::heap::ObjAddr;
use crate::metrics::{BailReason, Category, FreeSource, Metrics};

/// An allocation-site id: the raw `ExprId` number assigned by the MiniGo
/// parser (`None` on events for runtime-internal allocations that have
/// no source expression).
pub type TraceSiteId = u32;

/// How an explicit small/large free returned memory (§5 and fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FreeStep {
    /// Small object not on top of its span: the occupancy bit was
    /// cleared; the slot becomes reusable only after the next sweep.
    SlotClear,
    /// Small object on top: the span's allocation index was reverted,
    /// cascading over `cascade` earlier freed slots below it.
    Revert {
        /// Extra index steps the revert cascaded past (0 = only the
        /// freed slot itself was reclaimed for immediate reuse).
        cascade: u32,
    },
    /// Large object: fig. 9 step 1 — pages returned immediately, the
    /// span struct left dangling until the next GC sweep (step 2, visible
    /// as [`TraceEvent::GcEnd::dangling_retired`]).
    LargeStep1,
}

/// One typed runtime event, stamped with the virtual time (`at`) at which
/// it was recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A heap allocation was served.
    Alloc {
        /// Virtual timestamp (ticks).
        at: u64,
        /// Allocator address handed to the VM.
        addr: ObjAddr,
        /// Allocation-site expression id, when the VM attributed one.
        site: Option<TraceSiteId>,
        /// Allocation category (table 8).
        cat: Category,
        /// Accounted bytes (rounded size class for small objects).
        bytes: u64,
        /// Whether the large-object path served it.
        large: bool,
        /// Live heap bytes after the allocation.
        heap_live: u64,
        /// Page-level footprint after the allocation (maxheap input).
        footprint: u64,
    },
    /// The VM placed an object on the stack instead of the heap.
    StackAlloc {
        /// Virtual timestamp (ticks).
        at: u64,
        /// Allocation category.
        cat: Category,
    },
    /// A `tcfree` deallocated an object.
    Free {
        /// Virtual timestamp (ticks).
        at: u64,
        /// The freed address.
        addr: ObjAddr,
        /// The allocation site that produced the object, when known.
        site: Option<TraceSiteId>,
        /// The freed object's category.
        cat: Category,
        /// Which runtime entry point freed it (table 9's sources,
        /// including `GrowMapAndFreeOld`).
        source: FreeSource,
        /// Bytes returned.
        bytes: u64,
        /// What the free did structurally (revert/cascade/dangling).
        step: FreeStep,
        /// Live heap bytes after the free.
        heap_live: u64,
    },
    /// A `tcfree` gave up (§5's bail-outs).
    FreeBail {
        /// Virtual timestamp (ticks).
        at: u64,
        /// Why it bailed.
        reason: BailReason,
    },
    /// Poison mode (§6.8): the free reported `Poisoned`; the object stays
    /// allocated and the VM corrupts the payload.
    FreePoison {
        /// Virtual timestamp (ticks).
        at: u64,
        /// The poisoned address.
        addr: ObjAddr,
    },
    /// A simulated scheduler migration flushed a thread's mcache.
    McacheFlush {
        /// Virtual timestamp (ticks).
        at: u64,
        /// The thread whose mcache was flushed.
        thread: u32,
    },
    /// The GC pacer triggered: live heap crossed the goal. Opens the
    /// concurrent-mark window.
    GcStart {
        /// Virtual timestamp (ticks).
        at: u64,
        /// Live heap bytes at the trigger.
        heap_live: u64,
        /// The pacing goal that was crossed (`next_gc`).
        heap_goal: u64,
        /// Length of the concurrent-mark window in allocations.
        window: u64,
    },
    /// A mark+sweep cycle completed.
    GcEnd {
        /// Virtual timestamp (ticks).
        at: u64,
        /// Live heap bytes after the sweep (`heap_marked`).
        heap_live: u64,
        /// The next pacing goal derived from GOGC.
        next_goal: u64,
        /// Objects swept per category (table 8's "Heap GC" input).
        swept: [u64; 3],
        /// Bytes swept.
        swept_bytes: u64,
        /// Dangling large-object spans that completed fig. 9 step 2.
        dangling_retired: u64,
        /// Virtual ticks the cycle cost (mark + sweep).
        ticks: u64,
    },
    /// End-of-run accounting: objects still live count toward the GC
    /// columns, and the final footprint feeds `maxheap`.
    Finalize {
        /// Virtual timestamp (ticks).
        at: u64,
        /// Leftover live objects per category.
        leftover: [u64; 3],
        /// Final page-level footprint.
        footprint: u64,
    },
}

impl TraceEvent {
    /// The event's virtual timestamp.
    pub fn at(&self) -> u64 {
        match *self {
            TraceEvent::Alloc { at, .. }
            | TraceEvent::StackAlloc { at, .. }
            | TraceEvent::Free { at, .. }
            | TraceEvent::FreeBail { at, .. }
            | TraceEvent::FreePoison { at, .. }
            | TraceEvent::McacheFlush { at, .. }
            | TraceEvent::GcStart { at, .. }
            | TraceEvent::GcEnd { at, .. }
            | TraceEvent::Finalize { at, .. } => at,
        }
    }
}

/// Initial event-buffer capacity: most corpus runs fit without a single
/// reallocation; longer runs grow the buffer geometrically (an append
/// buffer — events are never dropped, so folding stays exact).
const TRACE_PREALLOC: usize = 4096;

/// The recording side, owned by the [`crate::Runtime`] when
/// [`crate::RuntimeConfig::trace`] is on.
///
/// Besides the event buffer it keeps an address→site side table so free
/// events can be attributed back to the allocation site that produced
/// the object — state the simulation itself never reads.
#[derive(Debug)]
pub struct Tracer {
    events: Vec<TraceEvent>,
    sites: HashMap<ObjAddr, TraceSiteId>,
}

impl Tracer {
    /// Creates a tracer with a preallocated event buffer.
    pub fn new() -> Self {
        Tracer {
            events: Vec::with_capacity(TRACE_PREALLOC),
            sites: HashMap::new(),
        }
    }

    /// Appends an event.
    pub fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// Remembers which site allocated `addr` (clearing any stale entry
    /// left by a previous occupant of the reused address).
    pub fn note_site(&mut self, addr: ObjAddr, site: Option<TraceSiteId>) {
        match site {
            Some(s) => {
                self.sites.insert(addr, s);
            }
            None => {
                self.sites.remove(&addr);
            }
        }
    }

    /// Takes the allocation site of `addr` (the object is gone).
    pub fn take_site(&mut self, addr: ObjAddr) -> Option<TraceSiteId> {
        self.sites.remove(&addr)
    }

    /// Drops site attributions for swept addresses.
    pub fn forget_site(&mut self, addr: ObjAddr) {
        self.sites.remove(&addr);
    }

    /// Finishes recording, yielding the immutable trace.
    pub fn finish(self) -> Trace {
        Trace {
            events: self.events,
        }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

/// A completed run's event stream, carried out-of-band in the run report
/// (like sanitizer violations).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// Events in recording order (timestamps are non-decreasing).
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Replays the event stream into the [`Metrics`] it implies.
    ///
    /// Every counter the runtime maintains is derivable from the stream;
    /// the only exception is [`Metrics::frees_suppressed`], a
    /// compile-time fact that never passes through the runtime (the fold
    /// leaves it 0; [`Trace::reconcile`] copies it from the target).
    pub fn fold(&self) -> Metrics {
        let mut m = Metrics::default();
        for ev in &self.events {
            match *ev {
                TraceEvent::Alloc {
                    cat,
                    bytes,
                    footprint,
                    ..
                } => {
                    m.alloced_bytes += bytes;
                    m.alloced_objects += 1;
                    m.heap_allocs[cat.index()] += 1;
                    m.maxheap = m.maxheap.max(footprint);
                }
                TraceEvent::StackAlloc { cat, .. } => m.record_stack_alloc(cat),
                TraceEvent::Free {
                    cat, source, bytes, ..
                } => {
                    m.tcfree_attempts += 1;
                    m.freed_bytes += bytes;
                    m.freed_bytes_by_source[source.index()] += bytes;
                    m.freed_objects_by_source[source.index()] += 1;
                    m.heap_tcfreed[cat.index()] += 1;
                }
                TraceEvent::FreeBail { reason, .. } => {
                    m.tcfree_attempts += 1;
                    m.tcfree_bails[reason.index()] += 1;
                }
                TraceEvent::FreePoison { .. } => m.tcfree_attempts += 1,
                TraceEvent::McacheFlush { .. } | TraceEvent::GcStart { .. } => {}
                TraceEvent::GcEnd { swept, ticks, .. } => {
                    m.gcs += 1;
                    m.gc_ticks += ticks;
                    for (i, n) in swept.iter().enumerate() {
                        m.heap_gced[i] += n;
                    }
                }
                TraceEvent::Finalize {
                    leftover,
                    footprint,
                    ..
                } => {
                    m.maxheap = m.maxheap.max(footprint);
                    for (i, n) in leftover.iter().enumerate() {
                        m.heap_gced[i] += n;
                    }
                }
            }
        }
        m
    }

    /// Checks the folded stream reproduces `target` exactly.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence.
    pub fn reconcile(&self, target: &Metrics) -> Result<(), String> {
        let mut folded = self.fold();
        // Compile-time fact, not a runtime event (see `fold`).
        folded.frees_suppressed = target.frees_suppressed;
        let f = format!("{folded:?}");
        let t = format!("{target:?}");
        if f == t {
            Ok(())
        } else {
            Err(format!(
                "trace does not reconcile with metrics\n folded:  {f}\n metrics: {t}"
            ))
        }
    }

    /// Samples the live-heap curve the stream implies: `(at, heap_live)`
    /// after every event that moves the live-heap figure — the fig. 10/11
    /// heap-size view, re-derived from events instead of end-of-run
    /// aggregates.
    pub fn heap_curve(&self) -> Vec<(u64, u64)> {
        self.events
            .iter()
            .filter_map(|ev| match *ev {
                TraceEvent::Alloc { at, heap_live, .. }
                | TraceEvent::Free { at, heap_live, .. }
                | TraceEvent::GcEnd { at, heap_live, .. } => Some((at, heap_live)),
                _ => None,
            })
            .collect()
    }

    /// Peak page-level footprint seen by the stream (equals
    /// [`Metrics::maxheap`]).
    pub fn max_footprint(&self) -> u64 {
        self.events
            .iter()
            .filter_map(|ev| match *ev {
                TraceEvent::Alloc { footprint, .. } | TraceEvent::Finalize { footprint, .. } => {
                    Some(footprint)
                }
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Number of completed GC cycles in the stream.
    pub fn gc_count(&self) -> u64 {
        self.events
            .iter()
            .filter(|ev| matches!(ev, TraceEvent::GcEnd { .. }))
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::SpanId;

    fn addr(n: u32) -> ObjAddr {
        ObjAddr {
            span: SpanId(n),
            slot: 0,
        }
    }

    #[test]
    fn fold_reproduces_counters() {
        let trace = Trace {
            events: vec![
                TraceEvent::Alloc {
                    at: 10,
                    addr: addr(0),
                    site: Some(3),
                    cat: Category::Slice,
                    bytes: 112,
                    large: false,
                    heap_live: 112,
                    footprint: 8192,
                },
                TraceEvent::StackAlloc {
                    at: 11,
                    cat: Category::Other,
                },
                TraceEvent::Free {
                    at: 20,
                    addr: addr(0),
                    site: Some(3),
                    cat: Category::Slice,
                    source: FreeSource::SliceLifetime,
                    bytes: 112,
                    step: FreeStep::Revert { cascade: 0 },
                    heap_live: 0,
                },
                TraceEvent::FreeBail {
                    at: 21,
                    reason: BailReason::AlreadyFree,
                },
                TraceEvent::GcEnd {
                    at: 30,
                    heap_live: 0,
                    next_goal: 512 * 1024,
                    swept: [0, 2, 1],
                    swept_bytes: 96,
                    dangling_retired: 1,
                    ticks: 6000,
                },
                TraceEvent::Finalize {
                    at: 31,
                    leftover: [0, 0, 1],
                    footprint: 4096,
                },
            ],
        };
        let m = trace.fold();
        assert_eq!(m.alloced_bytes, 112);
        assert_eq!(m.alloced_objects, 1);
        assert_eq!(m.freed_bytes, 112);
        assert_eq!(m.tcfree_attempts, 2);
        assert_eq!(m.tcfree_bails[BailReason::AlreadyFree.index()], 1);
        assert_eq!(m.gcs, 1);
        assert_eq!(m.gc_ticks, 6000);
        assert_eq!(m.maxheap, 8192);
        assert_eq!(m.stack_allocs[Category::Other.index()], 1);
        assert_eq!(m.heap_gced, [0, 2, 2]);
        assert_eq!(m.heap_tcfreed[Category::Slice.index()], 1);
        trace.reconcile(&m).expect("fold reconciles with itself");
    }

    #[test]
    fn reconcile_reports_divergence() {
        let trace = Trace::default();
        let target = Metrics {
            alloced_bytes: 1,
            ..Metrics::default()
        };
        let err = trace.reconcile(&target).unwrap_err();
        assert!(err.contains("does not reconcile"), "{err}");
    }

    #[test]
    fn reconcile_ignores_frees_suppressed() {
        let trace = Trace::default();
        let target = Metrics {
            frees_suppressed: 5,
            ..Metrics::default()
        };
        trace.reconcile(&target).expect("compile-time field copied");
    }

    #[test]
    fn tracer_site_table_tracks_reuse() {
        let mut t = Tracer::new();
        t.note_site(addr(1), Some(7));
        assert_eq!(t.take_site(addr(1)), Some(7));
        assert_eq!(t.take_site(addr(1)), None);
        t.note_site(addr(2), Some(9));
        t.note_site(addr(2), None); // reused by an unattributed alloc
        assert_eq!(t.take_site(addr(2)), None);
    }

    #[test]
    fn curve_and_peaks() {
        let trace = Trace {
            events: vec![
                TraceEvent::Alloc {
                    at: 1,
                    addr: addr(0),
                    site: None,
                    cat: Category::Other,
                    bytes: 64,
                    large: false,
                    heap_live: 64,
                    footprint: 8192,
                },
                TraceEvent::GcStart {
                    at: 2,
                    heap_live: 64,
                    heap_goal: 64,
                    window: 16,
                },
                TraceEvent::GcEnd {
                    at: 3,
                    heap_live: 0,
                    next_goal: 1024,
                    swept: [0, 0, 1],
                    swept_bytes: 64,
                    dangling_retired: 0,
                    ticks: 100,
                },
            ],
        };
        assert_eq!(trace.heap_curve(), vec![(1, 64), (3, 0)]);
        assert_eq!(trace.max_footprint(), 8192);
        assert_eq!(trace.gc_count(), 1);
        assert_eq!(trace.events[1].at(), 2);
    }
}
