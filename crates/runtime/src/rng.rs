//! A small, dependency-free seeded PRNG for the simulated runtime.
//!
//! The runtime only needs reproducible randomness for two things: the
//! per-allocation scheduler-migration roll and clock jitter. A SplitMix64
//! generator is more than enough for both, and keeping it in-tree means
//! the workspace builds with no registry access at all.
//!
//! Determinism contract: for a given seed the sequence of draws is fixed
//! forever — run-to-run distributions (fig. 11) depend on it.

/// A seeded SplitMix64 generator.
///
/// SplitMix64 is the standard seeding generator from Steele et al.,
/// "Fast splittable pseudorandom number generators" (OOPSLA 2014): a
/// single 64-bit state advanced by a Weyl sequence and finalized with a
/// variant of the MurmurHash3 mixer. It passes BigCrush and is exactly
/// reproducible from its seed.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed (mirrors
    /// `SeedableRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// A uniform draw in `lo..=hi`. The modulo bias is far below anything
    /// the simulation can observe (ranges are tiny next to 2^64).
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi, "empty range {lo}..={hi}");
        let width = hi - lo + 1; // hi = u64::MAX is never used here
        lo + self.next_u64() % width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        let mut c = SimRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SimRng::seed_from_u64(1);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_calibrated() {
        let mut r = SimRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits} hits");
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = r.gen_range_inclusive(10, 20);
            assert!((10..=20).contains(&v));
        }
        assert_eq!(r.gen_range_inclusive(5, 5), 5);
    }
}
