//! # minigo-runtime
//!
//! The managed-runtime substrate for the GoFree reproduction: a
//! TCMalloc-style size-segregated thread-caching allocator (mspans,
//! mcaches, mcentral, page heap — §3.3 of the paper), a non-moving
//! mark-sweep GC with GOGC pacing and a simulated concurrent-mark window,
//! and the `tcfree` explicit-deallocation primitive family of §5 —
//! including the small-object allocation-index revert, the large-object
//! two-step dangling-span protocol, best-effort bail-outs, tolerated
//! double frees, and the §6.8 poison ("mock tcfree") mode.
//!
//! Time is a deterministic virtual clock driven by a cost model, so the
//! relative measurements of the paper's evaluation (time ratios, GC time
//! via GC-off subtraction) are exact and reproducible per seed.
//!
//! ```
//! use minigo_runtime::{Category, FreeOutcome, FreeSource, Runtime, RuntimeConfig};
//!
//! let mut rt = Runtime::new(RuntimeConfig { migrate_prob: 0.0, ..RuntimeConfig::default() });
//! let addr = rt.alloc(1024, Category::Slice);
//! match rt.tcfree(addr, FreeSource::SliceLifetime) {
//!     FreeOutcome::Freed { bytes } => assert_eq!(bytes, 1024),
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod collector;
pub mod heap;
pub mod histogram;
pub mod metrics;
pub mod profile;
pub mod rng;
pub mod runtime;
pub mod shadow;
pub mod sizeclass;
pub mod trace;

pub use clock::{Clock, CostModel};
pub use collector::{Collector, CollectorKind, CycleKind, CycleOutcome, GcTrigger};
pub use heap::{AllocEvents, Heap, Mspan, ObjAddr, SmallFree, SpanId, SweepOutcome};
pub use histogram::{percentile_sorted, Histogram};
pub use metrics::{BailReason, Category, FreeSource, Metrics};
pub use profile::{Profile, SiteDrag, StackId, StackStat, StackTable, DRAG_BUCKETS, ROOT_STACK};
pub use rng::SimRng;
pub use runtime::{ConfigError, FreeOutcome, Pause, PoisonMode, Runtime, RuntimeConfig};
pub use shadow::{FreeCheck, ShadowHeap, ShadowViolation, ViolationKind};
pub use sizeclass::{class_for, class_size, MAX_SMALL_SIZE, PAGE_SIZE};
pub use trace::{ClassOccupancy, FreeStep, HeapSnapshot, Trace, TraceEvent, Tracer};
