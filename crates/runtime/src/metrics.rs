//! Run metrics — everything the paper's profiling tool collects (table 5)
//! plus the per-category breakdowns of tables 8 and 9.

/// Allocation categories tracked for table 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Slice backing arrays.
    Slice,
    /// Map storage (hmap + buckets).
    Map,
    /// Everything else (`new`, `&T{}`).
    Other,
}

impl Category {
    /// Dense index for counters.
    pub fn index(self) -> usize {
        match self {
            Category::Slice => 0,
            Category::Map => 1,
            Category::Other => 2,
        }
    }

    /// All categories in index order.
    pub fn all() -> [Category; 3] {
        [Category::Slice, Category::Map, Category::Other]
    }
}

/// Where reclaimed bytes came from — the three deallocation categories of
/// table 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FreeSource {
    /// `FreeSlice()`: a slice's lifetime ended.
    SliceLifetime,
    /// `FreeMap()`: a map's lifetime ended.
    MapLifetime,
    /// `GrowMapAndFreeOld()`: a map grew and its old buckets were freed.
    MapGrowOld,
    /// `Tcfree()` on a raw pointer's object (the widened-targets ablation;
    /// not one of the paper's three table 9 categories).
    Object,
}

impl FreeSource {
    /// Dense index for counters.
    pub fn index(self) -> usize {
        match self {
            FreeSource::SliceLifetime => 0,
            FreeSource::MapLifetime => 1,
            FreeSource::MapGrowOld => 2,
            FreeSource::Object => 3,
        }
    }
}

/// Why a `tcfree` call gave up (§5's bail-out conditions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BailReason {
    /// GC is running concurrently; freeing would race the collector.
    GcRunning,
    /// The mspan's ownership changed (thread migration) or it left the
    /// mcache.
    OwnershipChanged,
    /// The object was already freed (tolerated double free).
    AlreadyFree,
    /// The span was swapped out of the cache after filling up.
    SpanSwappedOut,
}

impl BailReason {
    /// Dense index for counters.
    pub fn index(self) -> usize {
        match self {
            BailReason::GcRunning => 0,
            BailReason::OwnershipChanged => 1,
            BailReason::AlreadyFree => 2,
            BailReason::SpanSwappedOut => 3,
        }
    }
}

/// Aggregated counters for one program execution.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Total heap bytes allocated (`alloced` in table 5).
    pub alloced_bytes: u64,
    /// Total heap objects allocated.
    pub alloced_objects: u64,
    /// Bytes freed by `tcfree` (`freed` in table 5).
    pub freed_bytes: u64,
    /// Bytes freed by `tcfree`, by source (table 9 plus the ablation's
    /// object category).
    pub freed_bytes_by_source: [u64; 4],
    /// Objects freed by `tcfree`, by source.
    pub freed_objects_by_source: [u64; 4],
    /// `tcfree` calls attempted.
    pub tcfree_attempts: u64,
    /// `tcfree` bail-outs by reason.
    pub tcfree_bails: [u64; 4],
    /// GC cycles triggered (`GCs` in table 5; minor + major).
    pub gcs: u64,
    /// Nursery-only cycles (generational backend; 0 under mark-sweep).
    pub gcs_minor: u64,
    /// Full-heap cycles (every mark-sweep cycle; the generational
    /// backend's GOGC-paced cycles). `gcs == gcs_minor + gcs_major`.
    pub gcs_major: u64,
    /// Virtual ticks spent in GC (mark + sweep).
    pub gc_ticks: u64,
    /// Peak live heap bytes (`maxheap` in table 5).
    pub maxheap: u64,
    /// Stack allocations per category (table 8 "Stack" columns).
    pub stack_allocs: [u64; 3],
    /// Heap allocations per category.
    pub heap_allocs: [u64; 3],
    /// Heap objects eventually freed by `tcfree`, per category (table 8
    /// "Heap tcfree" columns).
    pub heap_tcfreed: [u64; 3],
    /// Heap objects reclaimed by GC (or alive at exit), per category
    /// (table 8 "Heap GC" columns).
    pub heap_gced: [u64; 3],
    /// `tcfree` sites the free-safety auditor could not prove and the
    /// pipeline stripped under `--audit deny`. Set at compile time and
    /// copied into every run's metrics so table 7/8 comparisons of
    /// audited builds stay honest about suppressed reclamation.
    pub frees_suppressed: u64,
}

impl Metrics {
    /// `free ratio = freed / alloced` (table 5).
    pub fn free_ratio(&self) -> f64 {
        if self.alloced_bytes == 0 {
            0.0
        } else {
            self.freed_bytes as f64 / self.alloced_bytes as f64
        }
    }

    /// Fraction of reclaimed bytes per table 9 source (slice lifetime, map
    /// lifetime, map growth; sums to 1 when anything in those categories
    /// was freed).
    pub fn source_shares(&self) -> [f64; 3] {
        let total: u64 = self.freed_bytes_by_source[..3].iter().sum();
        if total == 0 {
            return [0.0; 3];
        }
        [
            self.freed_bytes_by_source[0] as f64 / total as f64,
            self.freed_bytes_by_source[1] as f64 / total as f64,
            self.freed_bytes_by_source[2] as f64 / total as f64,
        ]
    }

    /// Table 8's `tcfree / (tcfree + GC)` ratio for a category.
    pub fn tcfree_share(&self, cat: Category) -> f64 {
        let t = self.heap_tcfreed[cat.index()] as f64;
        let g = self.heap_gced[cat.index()] as f64;
        if t + g == 0.0 {
            0.0
        } else {
            t / (t + g)
        }
    }

    /// Records a stack allocation (made by the VM, not the heap).
    pub fn record_stack_alloc(&mut self, cat: Category) {
        self.stack_allocs[cat.index()] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_ratio_handles_zero() {
        let m = Metrics::default();
        assert_eq!(m.free_ratio(), 0.0);
        let m = Metrics {
            alloced_bytes: 200,
            freed_bytes: 50,
            ..Metrics::default()
        };
        assert!((m.free_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn source_shares_sum_to_one() {
        let m = Metrics {
            freed_bytes_by_source: [10, 30, 60, 0],
            ..Metrics::default()
        };
        let s = m.source_shares();
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((s[2] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn tcfree_share() {
        let mut m = Metrics::default();
        m.heap_tcfreed[Category::Slice.index()] = 1;
        m.heap_gced[Category::Slice.index()] = 3;
        assert!((m.tcfree_share(Category::Slice) - 0.25).abs() < 1e-12);
        assert_eq!(m.tcfree_share(Category::Map), 0.0);
    }

    #[test]
    fn indexes_are_dense() {
        for (i, c) in Category::all().into_iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
