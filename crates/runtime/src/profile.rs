//! Call-stack interning and the allocation-profile builder.
//!
//! The VM engines intern every MiniGo call stack into a [`StackTable`]
//! (parent-pointer nodes over interned function names, pprof-style) and
//! stamp the current stack id into the runtime so traced events carry
//! full call-stack attribution. Both engines drive function entry/exit
//! through identical sequences, so interning order — and therefore every
//! stack id — is bit-identical across the tree-walk and bytecode
//! engines, the same contract the tracer established for events.
//!
//! [`Profile::build`] replays a completed [`Trace`] into per-stack
//! allocation/free/bail statistics and per-site lifetime ("drag")
//! histograms: how many virtual ticks objects sat between allocation and
//! their `tcfree`, versus allocation and their GC sweep — the gap
//! Karkare-style heap-liveness work measures between ideal and actual
//! reclamation. [`Profile::reconcile`] asserts the per-stack sums add up
//! exactly to the run's [`Metrics`], so the profile layer can never
//! drift from the published numbers.

use std::collections::HashMap;

use crate::heap::ObjAddr;
use crate::histogram::Histogram;
use crate::metrics::Metrics;
use crate::trace::{Trace, TraceEvent, TraceSiteId};

/// An interned call-stack id. Id 0 ([`ROOT_STACK`]) is the empty stack
/// (no MiniGo frame active — e.g. end-of-run accounting).
pub type StackId = u32;

/// The id of the empty root stack.
pub const ROOT_STACK: StackId = 0;

/// One interned stack node: a frame appended to a parent stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StackNode {
    /// The stack below this frame ([`ROOT_STACK`] for outermost frames).
    parent: StackId,
    /// Index into the interned frame-name list (`u32::MAX` for the
    /// root node itself).
    frame: u32,
}

/// An interned table of call stacks: parent-pointer nodes over interned
/// function names, so each distinct stack is stored once and identified
/// by a dense `u32` id.
///
/// Interning is deterministic in call order: pushing the same sequence
/// of frames always yields the same ids, which is what makes stack ids
/// bit-identical across the two VM engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackTable {
    /// Interned frame (function) names.
    frames: Vec<String>,
    frame_ids: HashMap<String, u32>,
    /// Parent-pointer nodes; `nodes[0]` is the root (empty stack).
    nodes: Vec<StackNode>,
    node_ids: HashMap<(StackId, u32), StackId>,
}

impl StackTable {
    /// Creates a table holding only the root (empty) stack.
    pub fn new() -> Self {
        StackTable {
            frames: Vec::new(),
            frame_ids: HashMap::new(),
            nodes: vec![StackNode {
                parent: ROOT_STACK,
                frame: u32::MAX,
            }],
            node_ids: HashMap::new(),
        }
    }

    /// Interns the stack `parent` extended with a call to `name`,
    /// returning its id (stable across repeat pushes).
    pub fn push(&mut self, parent: StackId, name: &str) -> StackId {
        let frame = match self.frame_ids.get(name) {
            Some(&f) => f,
            None => {
                let f = self.frames.len() as u32;
                self.frames.push(name.to_string());
                self.frame_ids.insert(name.to_string(), f);
                f
            }
        };
        match self.node_ids.get(&(parent, frame)) {
            Some(&id) => id,
            None => {
                let id = self.nodes.len() as StackId;
                self.nodes.push(StackNode { parent, frame });
                self.node_ids.insert((parent, frame), id);
                id
            }
        }
    }

    /// The frames of stack `id`, outermost first (root → leaf).
    pub fn frames_of(&self, id: StackId) -> Vec<&str> {
        let mut rev = Vec::new();
        let mut cur = id;
        while cur != ROOT_STACK {
            let node = self.nodes[cur as usize];
            rev.push(self.frames[node.frame as usize].as_str());
            cur = node.parent;
        }
        rev.reverse();
        rev
    }

    /// The stack rendered in Brendan Gregg folded form:
    /// `outer;middle;leaf` (the root stack renders as `(root)`).
    pub fn folded(&self, id: StackId) -> String {
        if id == ROOT_STACK {
            return "(root)".to_string();
        }
        self.frames_of(id).join(";")
    }

    /// Number of interned stacks (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the root stack exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }
}

impl Default for StackTable {
    fn default() -> Self {
        StackTable::new()
    }
}

/// Number of log₂ drag buckets: bucket 0 holds drag 0, bucket `i ≥ 1`
/// holds drags in `[2^(i-1), 2^i)` ticks, and the last bucket absorbs
/// everything longer (the [`Histogram`] bucketing rule).
pub const DRAG_BUCKETS: usize = 24;

/// Per-allocation-site lifetime ("drag") histogram: virtual ticks
/// between allocation and reclamation, split by how the object died.
/// The histograms carry the per-source count (`.count()`) and summed
/// drag ticks (`.sum()`) that used to live in separate fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteDrag {
    /// The allocation site (`None` = runtime-internal allocations).
    pub site: Option<TraceSiteId>,
    /// Objects reclaimed by `tcfree`, bucketed by log₂ drag.
    pub tcfree: Histogram<DRAG_BUCKETS>,
    /// Objects reclaimed by a GC sweep, bucketed by log₂ drag.
    pub sweep: Histogram<DRAG_BUCKETS>,
}

impl SiteDrag {
    fn new(site: Option<TraceSiteId>) -> Self {
        SiteDrag {
            site,
            tcfree: Histogram::new(),
            sweep: Histogram::new(),
        }
    }
}

/// Per-stack allocation statistics. Objects are attributed to the stack
/// that **allocated** them (frees and sweeps included), except the
/// attempt counters `free_ops`, `bails`, and `poisons`, which belong to
/// the stack performing the attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StackStat {
    /// Heap objects allocated by this stack.
    pub allocs: u64,
    /// Accounted bytes those allocations took.
    pub alloc_bytes: u64,
    /// Stack (non-heap) allocations made by this stack.
    pub stack_allocs: u64,
    /// Of this stack's heap objects, how many a `tcfree` reclaimed.
    pub frees: u64,
    /// Bytes `tcfree` reclaimed from this stack's objects.
    pub free_bytes: u64,
    /// Of this stack's heap objects, how many a GC sweep reclaimed.
    pub swept: u64,
    /// Bytes GC sweeps reclaimed from this stack's objects.
    pub swept_bytes: u64,
    /// Objects of this stack still live at end of run.
    pub leftover: u64,
    /// Bytes still live at end of run.
    pub leftover_bytes: u64,
    /// Successful `tcfree` calls performed *at* this stack.
    pub free_ops: u64,
    /// `tcfree` bail-outs at this stack (§5).
    pub bails: u64,
    /// Poison-mode (§6.8) pseudo-frees at this stack.
    pub poisons: u64,
}

impl StackStat {
    /// Bytes this stack produced that GoFree did **not** reclaim — the
    /// garbage left for the collector (swept) or the end of the run
    /// (leftover).
    pub fn garbage_bytes(&self) -> u64 {
        self.swept_bytes + self.leftover_bytes
    }

    fn add(&mut self, other: &StackStat) {
        self.allocs += other.allocs;
        self.alloc_bytes += other.alloc_bytes;
        self.stack_allocs += other.stack_allocs;
        self.frees += other.frees;
        self.free_bytes += other.free_bytes;
        self.swept += other.swept;
        self.swept_bytes += other.swept_bytes;
        self.leftover += other.leftover;
        self.leftover_bytes += other.leftover_bytes;
        self.free_ops += other.free_ops;
        self.bails += other.bails;
        self.poisons += other.poisons;
    }
}

/// A per-stack, per-site profile folded from a run's event stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Profile {
    /// Per-stack statistics, in ascending stack-id order (deterministic:
    /// ids are interning order, identical across engines).
    pub stacks: Vec<(StackId, StackStat)>,
    /// Per-site drag histograms, in ascending site order with the
    /// unattributed (`None`) row last.
    pub sites: Vec<SiteDrag>,
    /// Events the tracer's buffer cap discarded (a non-zero value means
    /// the profile is incomplete and will not reconcile).
    pub events_dropped: u64,
}

/// What the replay remembers about a live object.
struct Origin {
    stack: StackId,
    site: Option<TraceSiteId>,
    at: u64,
    bytes: u64,
}

impl Profile {
    /// Folds a trace into the per-stack/per-site profile by replaying
    /// the event stream with a live-object table (address → allocating
    /// stack, site, and birth time).
    pub fn build(trace: &Trace) -> Profile {
        let mut stats: HashMap<StackId, StackStat> = HashMap::new();
        let mut drags: HashMap<Option<TraceSiteId>, SiteDrag> = HashMap::new();
        let mut live: HashMap<ObjAddr, Origin> = HashMap::new();
        for ev in &trace.events {
            match *ev {
                TraceEvent::Alloc {
                    at,
                    addr,
                    site,
                    stack,
                    bytes,
                    ..
                } => {
                    let s = stats.entry(stack).or_default();
                    s.allocs += 1;
                    s.alloc_bytes += bytes;
                    live.insert(
                        addr,
                        Origin {
                            stack,
                            site,
                            at,
                            bytes,
                        },
                    );
                }
                TraceEvent::StackAlloc { stack, .. } => {
                    stats.entry(stack).or_default().stack_allocs += 1;
                }
                TraceEvent::Free {
                    at,
                    addr,
                    stack,
                    bytes,
                    ..
                } => {
                    stats.entry(stack).or_default().free_ops += 1;
                    // Attribute the reclaimed object to its allocator.
                    let (origin_stack, origin_site, born) = match live.remove(&addr) {
                        Some(o) => (o.stack, o.site, o.at),
                        None => (stack, None, at),
                    };
                    let s = stats.entry(origin_stack).or_default();
                    s.frees += 1;
                    s.free_bytes += bytes;
                    let d = drags
                        .entry(origin_site)
                        .or_insert_with(|| SiteDrag::new(origin_site));
                    d.tcfree.record(at.saturating_sub(born));
                }
                TraceEvent::FreeBail { stack, .. } => {
                    stats.entry(stack).or_default().bails += 1;
                }
                TraceEvent::FreePoison { stack, .. } => {
                    stats.entry(stack).or_default().poisons += 1;
                }
                TraceEvent::Sweep {
                    at, addr, bytes, ..
                } => {
                    let (origin_stack, origin_site, born) = match live.remove(&addr) {
                        Some(o) => (o.stack, o.site, o.at),
                        None => (ROOT_STACK, None, at),
                    };
                    let s = stats.entry(origin_stack).or_default();
                    s.swept += 1;
                    s.swept_bytes += bytes;
                    let d = drags
                        .entry(origin_site)
                        .or_insert_with(|| SiteDrag::new(origin_site));
                    d.sweep.record(at.saturating_sub(born));
                }
                TraceEvent::McacheFlush { .. }
                | TraceEvent::GcStart { .. }
                | TraceEvent::GcEnd { .. }
                | TraceEvent::Request { .. } => {}
                TraceEvent::Finalize { .. } => {
                    // Objects still live would eventually be collected;
                    // they stay attributed to their allocating stacks.
                    for origin in live.values() {
                        let s = stats.entry(origin.stack).or_default();
                        s.leftover += 1;
                        s.leftover_bytes += origin.bytes;
                    }
                    live.clear();
                }
            }
        }
        let mut stacks: Vec<(StackId, StackStat)> = stats.into_iter().collect();
        stacks.sort_by_key(|&(id, _)| id);
        let mut sites: Vec<SiteDrag> = drags.into_values().collect();
        sites.sort_by_key(|d| (d.site.is_none(), d.site));
        Profile {
            stacks,
            sites,
            events_dropped: trace.events_dropped,
        }
    }

    /// Sums every per-stack row into one [`StackStat`].
    pub fn totals(&self) -> StackStat {
        let mut total = StackStat::default();
        for (_, s) in &self.stacks {
            total.add(s);
        }
        total
    }

    /// Per-stack rows sorted by a key, descending (ties broken by stack
    /// id ascending, so orderings are deterministic).
    pub fn ranked_by<F: Fn(&StackStat) -> u64>(&self, key: F) -> Vec<(StackId, StackStat)> {
        let mut rows = self.stacks.clone();
        rows.sort_by(|a, b| key(&b.1).cmp(&key(&a.1)).then(a.0.cmp(&b.0)));
        rows
    }

    /// Checks that the per-stack sums reproduce the run's [`Metrics`]
    /// exactly — the same field-exact contract as
    /// [`Trace::reconcile`](crate::trace::Trace::reconcile).
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence (or of a truncated
    /// stream: a profile built from a capped trace never reconciles).
    pub fn reconcile(&self, target: &Metrics) -> Result<(), String> {
        if self.events_dropped > 0 {
            return Err(format!(
                "profile built from a truncated trace ({} events dropped by the buffer cap)",
                self.events_dropped
            ));
        }
        let t = self.totals();
        let checks: [(&str, u64, u64); 8] = [
            ("alloc objects", t.allocs, target.alloced_objects),
            ("alloc bytes", t.alloc_bytes, target.alloced_bytes),
            (
                "stack allocs",
                t.stack_allocs,
                target.stack_allocs.iter().sum(),
            ),
            (
                "tcfreed objects",
                t.frees,
                target.freed_objects_by_source.iter().sum(),
            ),
            ("tcfreed bytes", t.free_bytes, target.freed_bytes),
            ("tcfree bails", t.bails, target.tcfree_bails.iter().sum()),
            (
                "tcfree attempts",
                t.free_ops + t.bails + t.poisons,
                target.tcfree_attempts,
            ),
            (
                "gc-reclaimed objects",
                t.swept + t.leftover,
                target.heap_gced.iter().sum(),
            ),
        ];
        for (what, folded, metric) in checks {
            if folded != metric {
                return Err(format!(
                    "profile does not reconcile with metrics: {what} folded={folded} metrics={metric}"
                ));
            }
        }
        if t.free_ops != t.frees {
            return Err(format!(
                "profile internal mismatch: free ops {} != freed objects {}",
                t.free_ops, t.frees
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::SpanId;
    use crate::metrics::{Category, FreeSource};
    use crate::trace::FreeStep;

    fn addr(n: u32) -> ObjAddr {
        ObjAddr {
            span: SpanId(n),
            slot: 0,
        }
    }

    #[test]
    fn interning_is_deterministic_and_deduplicated() {
        let mut t = StackTable::new();
        let main = t.push(ROOT_STACK, "main");
        let f = t.push(main, "f");
        let g = t.push(f, "g");
        assert_eq!(t.push(ROOT_STACK, "main"), main);
        assert_eq!(t.push(main, "f"), f);
        assert_eq!(t.frames_of(g), vec!["main", "f", "g"]);
        assert_eq!(t.folded(g), "main;f;g");
        assert_eq!(t.folded(ROOT_STACK), "(root)");
        assert_eq!(t.len(), 4);

        // A second table fed the same sequence interns identical ids.
        let mut u = StackTable::new();
        let m2 = u.push(ROOT_STACK, "main");
        let f2 = u.push(m2, "f");
        assert_eq!((m2, f2), (main, f));
        assert_eq!(u.push(f2, "g"), g);
    }

    #[test]
    fn drag_buckets_are_log2() {
        assert_eq!(Histogram::<DRAG_BUCKETS>::bucket_of(0), 0);
        assert_eq!(Histogram::<DRAG_BUCKETS>::bucket_of(1), 1);
        assert_eq!(Histogram::<DRAG_BUCKETS>::bucket_of(2), 2);
        assert_eq!(Histogram::<DRAG_BUCKETS>::bucket_of(3), 2);
        assert_eq!(Histogram::<DRAG_BUCKETS>::bucket_of(4), 3);
        assert_eq!(
            Histogram::<DRAG_BUCKETS>::bucket_of(u64::MAX),
            DRAG_BUCKETS - 1
        );
    }

    #[test]
    fn build_attributes_frees_and_sweeps_to_the_allocating_stack() {
        let mut stacks = StackTable::new();
        let main = stacks.push(ROOT_STACK, "main");
        let leaf = stacks.push(main, "leaf");
        let trace = Trace {
            events: vec![
                TraceEvent::Alloc {
                    at: 10,
                    addr: addr(0),
                    site: Some(3),
                    stack: leaf,
                    cat: Category::Slice,
                    bytes: 112,
                    large: false,
                    heap_live: 112,
                    footprint: 8192,
                },
                TraceEvent::Alloc {
                    at: 12,
                    addr: addr(1),
                    site: Some(4),
                    stack: main,
                    cat: Category::Map,
                    bytes: 64,
                    large: false,
                    heap_live: 176,
                    footprint: 8192,
                },
                TraceEvent::StackAlloc {
                    at: 13,
                    cat: Category::Other,
                    stack: leaf,
                },
                // main frees the object leaf allocated: bytes attribute
                // back to leaf, the op to main.
                TraceEvent::Free {
                    at: 30,
                    addr: addr(0),
                    site: Some(3),
                    stack: main,
                    cat: Category::Slice,
                    source: FreeSource::SliceLifetime,
                    bytes: 112,
                    step: FreeStep::Revert { cascade: 0 },
                    heap_live: 64,
                },
                TraceEvent::FreeBail {
                    at: 31,
                    reason: crate::metrics::BailReason::AlreadyFree,
                    stack: main,
                },
                TraceEvent::Sweep {
                    at: 50,
                    addr: addr(1),
                    cat: Category::Map,
                    bytes: 64,
                },
                TraceEvent::GcEnd {
                    at: 50,
                    heap_live: 0,
                    next_goal: 512 * 1024,
                    swept: [0, 1, 0],
                    swept_bytes: 64,
                    dangling_retired: 0,
                    ticks: 5,
                    kind: crate::collector::CycleKind::Major,
                },
                TraceEvent::Finalize {
                    at: 60,
                    leftover: [0, 0, 0],
                    footprint: 8192,
                },
            ],
            stacks,
            ..Trace::default()
        };
        let p = Profile::build(&trace);
        let by_id: HashMap<StackId, StackStat> = p.stacks.iter().copied().collect();
        let lf = &by_id[&leaf];
        assert_eq!((lf.allocs, lf.alloc_bytes), (1, 112));
        assert_eq!((lf.frees, lf.free_bytes), (1, 112));
        assert_eq!(lf.free_ops, 0, "the op happened at main");
        assert_eq!(lf.stack_allocs, 1);
        let mn = &by_id[&main];
        assert_eq!((mn.allocs, mn.alloc_bytes), (1, 64));
        assert_eq!((mn.swept, mn.swept_bytes), (1, 64));
        assert_eq!(mn.free_ops, 1);
        assert_eq!(mn.bails, 1);
        assert_eq!(mn.garbage_bytes(), 64);

        // Drag: site 3 lived 20 ticks to tcfree, site 4 lived 38 to sweep.
        let d3 = p.sites.iter().find(|d| d.site == Some(3)).unwrap();
        assert_eq!((d3.tcfree.count(), d3.tcfree.sum()), (1, 20));
        assert_eq!(
            d3.tcfree.buckets()[Histogram::<DRAG_BUCKETS>::bucket_of(20)],
            1
        );
        let d4 = p.sites.iter().find(|d| d.site == Some(4)).unwrap();
        assert_eq!((d4.sweep.count(), d4.sweep.sum()), (1, 38));

        let totals = p.totals();
        assert_eq!(totals.allocs, 2);
        assert_eq!(totals.alloc_bytes, 176);
        assert_eq!(totals.frees + totals.swept + totals.leftover, 2);
    }

    #[test]
    fn leftovers_attribute_at_finalize() {
        let mut stacks = StackTable::new();
        let main = stacks.push(ROOT_STACK, "main");
        let trace = Trace {
            events: vec![
                TraceEvent::Alloc {
                    at: 1,
                    addr: addr(0),
                    site: None,
                    stack: main,
                    cat: Category::Other,
                    bytes: 64,
                    large: false,
                    heap_live: 64,
                    footprint: 8192,
                },
                TraceEvent::Finalize {
                    at: 2,
                    leftover: [0, 0, 1],
                    footprint: 8192,
                },
            ],
            stacks,
            ..Trace::default()
        };
        let p = Profile::build(&trace);
        let by_id: HashMap<StackId, StackStat> = p.stacks.iter().copied().collect();
        assert_eq!(by_id[&main].leftover, 1);
        assert_eq!(by_id[&main].leftover_bytes, 64);
        assert_eq!(by_id[&main].garbage_bytes(), 64);
    }

    #[test]
    fn truncated_trace_fails_reconcile() {
        let trace = Trace {
            events_dropped: 3,
            ..Trace::default()
        };
        let p = Profile::build(&trace);
        let err = p.reconcile(&Metrics::default()).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn reconcile_detects_divergence() {
        let p = Profile::build(&Trace::default());
        p.reconcile(&Metrics::default()).expect("empty reconciles");
        let target = Metrics {
            alloced_objects: 1,
            ..Metrics::default()
        };
        let err = p.reconcile(&target).unwrap_err();
        assert!(err.contains("alloc objects"), "{err}");
    }
}
