//! The virtual clock: a deterministic cost model standing in for
//! wall-clock time.
//!
//! The paper's table 7 compares *relative* times (GoFree/Go ratios) and
//! derives GC time as `time − time_GCOff`. A cost model makes both exact
//! and reproducible: every allocator, GC, and interpreter action charges a
//! fixed number of ticks, optionally perturbed by seeded jitter so that
//! repeated runs form a distribution (fig. 11).

use crate::rng::SimRng;

/// Tick charges for runtime events.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Fast-path small allocation (mcache hit).
    pub alloc_small: u64,
    /// Refilling an mcache from the mcentral.
    pub mcache_refill: u64,
    /// Carving a fresh mspan out of the page heap.
    pub span_create: u64,
    /// Large (dedicated-span) allocation base cost.
    pub alloc_large: u64,
    /// Extra cost per page of a large allocation.
    pub alloc_large_per_page: u64,
    /// A `tcfree` attempt (status checks).
    pub tcfree_attempt: u64,
    /// Extra cost when a small free succeeds.
    pub tcfree_small: u64,
    /// Extra cost when a large free succeeds (page return + dangling mark).
    pub tcfree_large: u64,
    /// GC stop/start overhead per cycle.
    pub gc_cycle_base: u64,
    /// Marking one live object.
    pub gc_mark_object: u64,
    /// Scanning cost per 64 bytes of live data.
    pub gc_scan_per_64b: u64,
    /// Sweeping one span.
    pub gc_sweep_span: u64,
    /// GC stop/start overhead of a generational *minor* cycle (nursery
    /// only — much cheaper than `gc_cycle_base`). Unused by the default
    /// mark-sweep backend.
    pub gc_minor_base: u64,
    /// The generational write barrier: charged when a store into an old
    /// object enters the remembered set. The default mark-sweep backend
    /// has no barrier and never charges this.
    pub write_barrier: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alloc_small: 8,
            mcache_refill: 40,
            span_create: 50,
            alloc_large: 300,
            alloc_large_per_page: 6,
            tcfree_attempt: 4,
            tcfree_small: 6,
            tcfree_large: 80,
            gc_cycle_base: 6000,
            gc_mark_object: 10,
            gc_scan_per_64b: 3,
            gc_sweep_span: 40,
            gc_minor_base: 1500,
            write_barrier: 2,
        }
    }
}

/// A monotone virtual clock with jittered charging.
#[derive(Debug, Clone)]
pub struct Clock {
    total: u64,
    /// Jitter amplitude in parts-per-thousand (0 disables).
    jitter_ppm: u64,
}

impl Clock {
    /// Creates a clock; `jitter` is a fraction (e.g. 0.02 for ±2%).
    pub fn new(jitter: f64) -> Self {
        Clock {
            total: 0,
            jitter_ppm: (jitter.clamp(0.0, 0.5) * 1000.0) as u64,
        }
    }

    /// Elapsed virtual ticks.
    #[inline]
    pub fn now(&self) -> u64 {
        self.total
    }

    /// Charges exactly `ticks`.
    #[inline]
    pub fn charge(&mut self, ticks: u64) {
        self.total += ticks;
    }

    /// Charges `ticks` perturbed by seeded jitter (for costs that vary in
    /// real systems: refills, GC cycles, page faults).
    pub fn charge_jittered(&mut self, ticks: u64, rng: &mut SimRng) {
        if self.jitter_ppm == 0 || ticks == 0 {
            self.total += ticks;
            return;
        }
        let amp = self.jitter_ppm;
        let factor = 1000 - amp + rng.gen_range_inclusive(0, 2 * amp);
        self.total += (ticks * factor) / 1000;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates() {
        let mut c = Clock::new(0.0);
        c.charge(5);
        c.charge(7);
        assert_eq!(c.now(), 12);
    }

    #[test]
    fn zero_jitter_is_exact() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut c = Clock::new(0.0);
        c.charge_jittered(1000, &mut rng);
        assert_eq!(c.now(), 1000);
    }

    #[test]
    fn jitter_stays_bounded() {
        let mut rng = SimRng::seed_from_u64(42);
        let mut c = Clock::new(0.1);
        for _ in 0..100 {
            let before = c.now();
            c.charge_jittered(1000, &mut rng);
            let d = c.now() - before;
            assert!((900..=1100).contains(&d), "delta {d} out of ±10%");
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let run = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut c = Clock::new(0.05);
            for _ in 0..10 {
                c.charge_jittered(500, &mut rng);
            }
            c.now()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn default_costs_are_ordered() {
        let m = CostModel::default();
        assert!(m.alloc_small < m.mcache_refill);
        assert!(m.mcache_refill < m.span_create);
        assert!(m.tcfree_attempt < m.tcfree_large);
    }
}
