//! A shared log₂-bucketed histogram (HDR-style, integer-only).
//!
//! One implementation now backs every bucketed distribution in the
//! workspace: the per-site lifetime-drag histograms of
//! [`crate::profile`], the service harness' request-latency and GC-pause
//! histograms, and the bench bins' ASCII renderings. Bucketing rule
//! (identical to the historical drag buckets): bucket 0 holds the value
//! 0, bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`, and the last
//! bucket absorbs everything larger.
//!
//! Everything here is integer arithmetic over explicitly recorded
//! samples — no floats, no platform `libm` — so histograms built from
//! deterministic virtual-clock values are bit-identical across hosts,
//! engines, and thread counts.

use std::fmt::Write as _;

/// A log₂ histogram with `N` buckets plus exact count/sum/min/max of the
/// recorded samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram<const N: usize> {
    buckets: [u64; N],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl<const N: usize> Default for Histogram<N> {
    fn default() -> Self {
        Histogram::new()
    }
}

impl<const N: usize> Histogram<N> {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [0; N],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The log₂ bucket a value falls into: 0 for 0, else
    /// `floor(log2(v)) + 1` capped at the last bucket.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((u64::BITS - value.leading_zeros()) as usize).min(N - 1)
        }
    }

    /// The inclusive lower bound of bucket `i` (0, 1, 2, 4, 8, ...).
    pub fn bucket_lo(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; N] {
        &self.buckets
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether any sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Integer mean of the samples (`None` when empty).
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum / self.count)
    }

    /// Nearest-rank quantile estimated from the buckets: the upper edge
    /// of the first bucket whose cumulative count reaches
    /// `ceil(count · num / den)`, clamped to the recorded min/max so the
    /// estimate never leaves the sample range. Exact quantiles need the
    /// raw samples ([`percentile_sorted`]); this is the bounded-memory
    /// fallback used for rendering.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * num).div_ceil(den).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper edge of bucket i: 2^i - 1 (bucket 0 holds only 0).
                let hi = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// ASCII rendering: one digit per bucket scaled 1–9 to the row
    /// maximum, `.` for empty, trailing empty buckets trimmed. This is
    /// the historical drag-table spark format, verbatim.
    pub fn spark(&self) -> String {
        let last = self
            .buckets
            .iter()
            .rposition(|&n| n > 0)
            .map_or(0, |i| i + 1);
        let max = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        self.buckets[..last]
            .iter()
            .map(|&n| {
                if n == 0 {
                    '.'
                } else {
                    char::from_digit(((n * 9).div_ceil(max) as u32).clamp(1, 9), 10).unwrap()
                }
            })
            .collect()
    }

    /// Multi-line rendering: one row per occupied bucket with its range,
    /// count, and a proportional bar — the service report's pause/latency
    /// breakdown format.
    pub fn render(&self, unit: &str) -> String {
        let mut out = String::new();
        if self.count == 0 {
            out.push_str("  (no samples)\n");
            return out;
        }
        let peak = self.buckets.iter().copied().max().unwrap_or(1).max(1);
        let last = self
            .buckets
            .iter()
            .rposition(|&n| n > 0)
            .map_or(0, |i| i + 1);
        let first = self.buckets.iter().position(|&n| n > 0).unwrap_or(0);
        for i in first..last {
            let n = self.buckets[i];
            let lo = Self::bucket_lo(i);
            let hi = if i == 0 { 0 } else { (1u64 << i) - 1 };
            let bar_len = ((n * 40).div_ceil(peak)) as usize;
            let bar = "#".repeat(bar_len.max(usize::from(n > 0)));
            let _ = writeln!(
                out,
                "  {:>12}–{:<12} {:>8}  {bar}",
                lo,
                format!("{hi}{unit}"),
                n
            );
        }
        out
    }
}

/// Nearest-rank percentile over an **already-sorted** sample slice:
/// the sample at rank `ceil(len · num / den)` (1-based), i.e. the
/// smallest sample such that at least `num/den` of the distribution is
/// at or below it. `percentile_sorted(s, 999, 1000)` is p999;
/// `(s, 1, 2)` is the median. Returns 0 for an empty slice.
pub fn percentile_sorted(sorted: &[u64], num: u64, den: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * num).div_ceil(den).max(1);
    sorted[(rank - 1).min(sorted.len() as u64 - 1) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(Histogram::<24>::bucket_of(0), 0);
        assert_eq!(Histogram::<24>::bucket_of(1), 1);
        assert_eq!(Histogram::<24>::bucket_of(2), 2);
        assert_eq!(Histogram::<24>::bucket_of(3), 2);
        assert_eq!(Histogram::<24>::bucket_of(4), 3);
        assert_eq!(Histogram::<24>::bucket_of(u64::MAX), 23);
        assert_eq!(Histogram::<64>::bucket_of(u64::MAX), 63);
        assert_eq!(Histogram::<24>::bucket_lo(0), 0);
        assert_eq!(Histogram::<24>::bucket_lo(1), 1);
        assert_eq!(Histogram::<24>::bucket_lo(4), 8);
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let mut h = Histogram::<24>::new();
        assert!(h.is_empty());
        assert_eq!((h.min(), h.max(), h.mean()), (0, 0, None));
        for v in [3, 7, 0, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 110);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        assert_eq!(h.mean(), Some(27));
        assert_eq!(h.buckets()[0], 1);
        h.record(2); // 2 and 3 share bucket 2 (values 2..=3)
        assert_eq!(h.buckets()[Histogram::<24>::bucket_of(3)], 2);
    }

    #[test]
    fn merge_adds() {
        let mut a = Histogram::<8>::new();
        let mut b = Histogram::<8>::new();
        a.record(1);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 10);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 9);
    }

    #[test]
    fn spark_matches_historical_format() {
        let mut h = Histogram::<24>::new();
        for _ in 0..9 {
            h.record(1);
        }
        h.record(4);
        // bucket 1 has 9 (→ '9'), bucket 2 empty (→ '.'), bucket 3 has 1.
        assert_eq!(h.spark(), ".9.1");
        assert_eq!(Histogram::<24>::new().spark(), "");
    }

    #[test]
    fn quantile_stays_in_sample_range() {
        let mut h = Histogram::<64>::new();
        for v in [10, 12, 14, 900] {
            h.record(v);
        }
        let p50 = h.quantile(1, 2);
        assert!((10..=15).contains(&p50), "p50={p50}");
        assert_eq!(h.quantile(1, 1), 900, "p100 clamps to max");
        assert_eq!(Histogram::<64>::new().quantile(1, 2), 0);
    }

    #[test]
    fn percentile_sorted_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_sorted(&s, 1, 2), 50);
        assert_eq!(percentile_sorted(&s, 99, 100), 99);
        assert_eq!(percentile_sorted(&s, 999, 1000), 100);
        assert_eq!(percentile_sorted(&s, 1, 1), 100);
        assert_eq!(percentile_sorted(&[], 1, 2), 0);
        assert_eq!(percentile_sorted(&[7], 999, 1000), 7);
    }

    #[test]
    fn render_lists_occupied_buckets() {
        let mut h = Histogram::<64>::new();
        h.record(5);
        h.record(6);
        h.record(70);
        let r = h.render("t");
        assert!(r.contains("4–7t"), "{r}");
        assert!(r.contains("64–127t"), "{r}");
        assert!(Histogram::<64>::new().render("t").contains("no samples"));
    }
}
