//! Go's collector: non-moving mark-sweep with GOGC pacing and a
//! simulated concurrent-mark window (§3.3 of the paper).
//!
//! This is the policy the pre-trait runtime hard-coded, moved here
//! verbatim: the pacer trigger (`heap_live >= next_gc`), the window
//! length (`live_objects / gc_assist_divisor`, clamped to 16..=96), the
//! jittered mark charge, the full-heap sweep, and the GOGC goal
//! (`heap_marked * (1 + GOGC/100)`, floored at `min_heap`). The
//! collector-identity gate pins every observable to the pre-refactor
//! golden fingerprints, so treat any change here as a pacing-semantics
//! change, not a refactor.

use std::collections::HashSet;

use crate::clock::Clock;
use crate::heap::{Heap, ObjAddr};
use crate::rng::SimRng;
use crate::runtime::RuntimeConfig;

use super::{full_mark_cost, Collector, CollectorKind, CycleKind, CycleOutcome, GcTrigger};

/// The default backend: Go's mark-sweep.
#[derive(Debug)]
pub struct GoMarkSweep {
    gc_running: bool,
    assist_left: u64,
    next_gc: u64,
}

impl GoMarkSweep {
    /// Creates the backend; the first cycle triggers at `min_heap`.
    pub fn new(cfg: &RuntimeConfig) -> Self {
        GoMarkSweep {
            gc_running: false,
            assist_left: 0,
            next_gc: cfg.min_heap,
        }
    }
}

impl Collector for GoMarkSweep {
    fn kind(&self) -> CollectorKind {
        CollectorKind::Go
    }

    fn gc_running(&self) -> bool {
        self.gc_running
    }

    fn gc_pending(&self) -> bool {
        self.gc_running && self.assist_left == 0
    }

    fn on_object_alloc(&mut self, _addr: ObjAddr, _bytes: u64) {}

    fn pace(&mut self, cfg: &RuntimeConfig, heap: &Heap, live_objects: u64) -> Option<GcTrigger> {
        if !cfg.gc_enabled {
            return None;
        }
        if self.gc_running {
            self.assist_left = self.assist_left.saturating_sub(1);
            return None;
        }
        if heap.heap_live() < self.next_gc {
            return None;
        }
        self.gc_running = true;
        // The concurrent mark window: long enough that some tcfree calls
        // race the collector and bail (§5), short relative to the program
        // so the collector keeps up with allocation.
        self.assist_left = (live_objects / cfg.gc_assist_divisor.max(1)).clamp(16, 96);
        Some(GcTrigger {
            goal: self.next_gc,
            window: self.assist_left,
            kind: CycleKind::Major,
        })
    }

    fn record_store(&mut self, _cfg: &RuntimeConfig, _heap: &Heap, _addr: ObjAddr) -> u64 {
        // No write barrier: Go's sweep examines the whole heap, so store
        // sites cost nothing — and the identity gate requires exactly
        // that.
        0
    }

    fn on_free(&mut self, _addr: ObjAddr, _bytes: u64) {}

    fn collect(
        &mut self,
        cfg: &RuntimeConfig,
        heap: &mut Heap,
        clock: &mut Clock,
        rng: &mut SimRng,
        marked: &HashSet<ObjAddr>,
    ) -> CycleOutcome {
        // Mark cost: proportional to survivors and their bytes.
        clock.charge_jittered(full_mark_cost(cfg, heap, marked), rng);

        let sweep = heap.sweep(marked);
        clock.charge(cfg.costs.gc_sweep_span * sweep.spans_swept as u64);

        let heap_marked = heap.heap_live();
        self.next_gc = (heap_marked + heap_marked * cfg.gogc / 100).max(cfg.min_heap);
        self.gc_running = false;
        self.assist_left = 0;
        CycleOutcome {
            sweep,
            kind: CycleKind::Major,
            next_goal: self.next_gc,
        }
    }

    fn force_window(&mut self, assists: u64) {
        self.gc_running = true;
        self.assist_left = assists;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Category;

    #[test]
    fn pacer_triggers_at_goal_and_recomputes() {
        let cfg = RuntimeConfig {
            min_heap: 1024,
            jitter: 0.0,
            ..RuntimeConfig::default()
        };
        let mut heap = Heap::new(1);
        let mut clock = Clock::new(0.0);
        let mut rng = SimRng::seed_from_u64(0);
        let mut gc = GoMarkSweep::new(&cfg);
        let mut live = 0u64;
        let mut trigger = None;
        while trigger.is_none() {
            heap.alloc_small(crate::sizeclass::class_for(512), 0, Category::Other);
            live += 1;
            trigger = gc.pace(&cfg, &heap, live);
            assert!(live < 100, "never triggered");
        }
        let t = trigger.unwrap();
        assert_eq!(t.goal, 1024);
        assert_eq!(t.kind, CycleKind::Major);
        assert!(gc.gc_running());
        let out = gc.collect(&cfg, &mut heap, &mut clock, &mut rng, &HashSet::new());
        assert_eq!(out.kind, CycleKind::Major);
        assert!(!gc.gc_running());
        // Everything died: the goal falls back to the floor.
        assert_eq!(out.next_goal, 1024);
    }

    #[test]
    fn window_counts_down_to_pending() {
        let cfg = RuntimeConfig::default();
        let heap = Heap::new(1);
        let mut gc = GoMarkSweep::new(&cfg);
        gc.force_window(2);
        assert!(gc.gc_running() && !gc.gc_pending());
        gc.pace(&cfg, &heap, 10);
        assert!(!gc.gc_pending());
        gc.pace(&cfg, &heap, 10);
        assert!(gc.gc_pending());
    }

    #[test]
    fn store_barrier_is_free() {
        let cfg = RuntimeConfig::default();
        let mut heap = Heap::new(1);
        let (addr, _) = heap.alloc_small(crate::sizeclass::class_for(64), 0, Category::Other);
        let mut gc = GoMarkSweep::new(&cfg);
        assert_eq!(gc.record_store(&cfg, &heap, addr), 0);
    }
}
