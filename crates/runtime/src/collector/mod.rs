//! Collection policy behind a trait: pacing, the concurrent-mark window,
//! mark costing, the sweep, and the post-GC goal all live in a
//! [`Collector`] implementation, not in [`crate::Runtime`].
//!
//! The runtime owns the *mechanism* — the heap, the virtual clock, the
//! metrics, the tracer — and delegates every *policy* decision here:
//! when a cycle triggers ([`Collector::pace`]), how long the simulated
//! concurrent-mark window stays open, what the cycle costs on the
//! virtual clock, which objects the sweep examines, and what the next
//! pacing goal is. Two backends ship:
//!
//! - [`GoMarkSweep`] — Go's non-moving mark-sweep with GOGC pacing, the
//!   design the paper evaluates. This is the default and is
//!   **bit-identical** to the pre-trait runtime: same clock charges in
//!   the same order, same RNG draws, same sweep; the workspace's
//!   collector-identity gate (tests/collector_identity.rs) pins it to
//!   pre-refactor golden fingerprints.
//! - [`Generational`] — a nursery with minor/major cycles and a
//!   remembered set fed by the write-barrier-shaped store sites both VM
//!   engines already instrument. Minor cycles sweep only nursery
//!   objects; survivors are promoted wholesale. `tcfree` interacts with
//!   the nursery directly: an explicit free evicts the object, so freed
//!   nursery bytes never count toward the minor trigger.
//!
//! Determinism rules every backend must obey: charge the clock only
//! through the [`crate::clock::CostModel`] passed in the config, draw
//! from the RNG only via `charge_jittered`, and make every decision a
//! pure function of (config, heap state, own state) — never of hash-map
//! iteration order (summing per-object mark costs over a set is fine:
//! addition commutes). Tracing must stay invisible: a collector never
//! records events itself — it returns the cycle facts and the runtime
//! records them — so traced and untraced runs stay bit-identical.

mod gen;
mod go;

use std::collections::HashSet;
use std::fmt;
use std::str::FromStr;

use crate::clock::Clock;
use crate::heap::{Heap, ObjAddr, SweepOutcome};
use crate::rng::SimRng;
use crate::runtime::RuntimeConfig;

pub use gen::Generational;
pub use go::GoMarkSweep;

/// Selects a collection backend ([`RuntimeConfig::collector`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CollectorKind {
    /// Go's non-moving mark-sweep with GOGC pacing (the paper's design;
    /// the default).
    #[default]
    Go,
    /// Generational mark-sweep: nursery + minor/major cycles + remembered
    /// set.
    Generational,
}

impl CollectorKind {
    /// The backend's CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            CollectorKind::Go => "go",
            CollectorKind::Generational => "gen",
        }
    }

    /// All backends, in CLI order.
    pub fn all() -> [CollectorKind; 2] {
        [CollectorKind::Go, CollectorKind::Generational]
    }

    /// Instantiates the backend for a runtime configuration.
    pub fn build(self, cfg: &RuntimeConfig) -> Box<dyn Collector> {
        match self {
            CollectorKind::Go => Box::new(GoMarkSweep::new(cfg)),
            CollectorKind::Generational => Box::new(Generational::new(cfg)),
        }
    }
}

impl fmt::Display for CollectorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for CollectorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "go" => Ok(CollectorKind::Go),
            "gen" | "generational" => Ok(CollectorKind::Generational),
            other => Err(format!("unknown collector '{other}' (expected go|gen)")),
        }
    }
}

/// Whether a cycle examined the whole heap or only the nursery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CycleKind {
    /// Nursery-only cycle (generational backend).
    Minor,
    /// Full-heap cycle (every [`GoMarkSweep`] cycle; the generational
    /// backend's GOGC-paced cycles).
    Major,
}

impl CycleKind {
    /// The gctrace / report name.
    pub fn name(self) -> &'static str {
        match self {
            CycleKind::Minor => "minor",
            CycleKind::Major => "major",
        }
    }
}

impl fmt::Display for CycleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A pacer trigger: the collector opened the concurrent-mark window.
/// The runtime records the matching [`crate::trace::TraceEvent::GcStart`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcTrigger {
    /// The pacing goal that was crossed (the byte threshold, for the
    /// trace's `heap_goal`).
    pub goal: u64,
    /// Length of the concurrent-mark window in allocations.
    pub window: u64,
    /// What kind of cycle will run when the window closes.
    pub kind: CycleKind,
}

/// What a completed cycle did, beyond the sweep itself.
#[derive(Debug, Clone)]
pub struct CycleOutcome {
    /// The sweep result (freed objects, spans examined, fig. 9
    /// dangling-span retirements).
    pub sweep: SweepOutcome,
    /// Minor or major.
    pub kind: CycleKind,
    /// The next pacing goal the backend derived.
    pub next_goal: u64,
}

/// A collection backend: owns every policy decision of the GC.
///
/// See the module docs for the determinism contract. All methods receive
/// the runtime's configuration by reference so backends stay stateless
/// about anything the config already records.
pub trait Collector: fmt::Debug {
    /// Which backend this is.
    fn kind(&self) -> CollectorKind;

    /// The backend's display name (CLI flag value, gctrace tag).
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Whether the concurrent-mark window is open (`tcfree` bails with
    /// `GcRunning` while it is).
    fn gc_running(&self) -> bool;

    /// Whether the window has closed and the cycle should run at the
    /// next safepoint.
    fn gc_pending(&self) -> bool;

    /// Registers a freshly allocated object (nursery bookkeeping). Must
    /// not touch the clock, metrics, or RNG.
    fn on_object_alloc(&mut self, addr: ObjAddr, bytes: u64);

    /// The pacing decision after an allocation: counts down an open
    /// window, or opens one and returns the trigger. Must not touch the
    /// clock or RNG.
    fn pace(&mut self, cfg: &RuntimeConfig, heap: &Heap, live_objects: u64) -> Option<GcTrigger>;

    /// Write-barrier hook: the VM stored into the heap object at `addr`.
    /// Returns the ticks to charge (0 = free; [`GoMarkSweep`] has no
    /// barrier and always returns 0, keeping the default backend
    /// observably identical to the pre-trait runtime).
    fn record_store(&mut self, cfg: &RuntimeConfig, heap: &Heap, addr: ObjAddr) -> u64;

    /// A `tcfree` deallocated `addr` (nursery eviction). Must not touch
    /// the clock, metrics, or RNG.
    fn on_free(&mut self, addr: ObjAddr, bytes: u64);

    /// Runs the cycle: charge the mark cost, sweep, charge the sweep
    /// cost, derive the next goal, close the window. `marked` is the
    /// reachable set the VM computed from its roots.
    fn collect(
        &mut self,
        cfg: &RuntimeConfig,
        heap: &mut Heap,
        clock: &mut Clock,
        rng: &mut SimRng,
        marked: &HashSet<ObjAddr>,
    ) -> CycleOutcome;

    /// Test hook: force the concurrent-mark window open for `assists`
    /// allocations.
    fn force_window(&mut self, assists: u64);
}

/// The full-heap mark cost shared by [`GoMarkSweep`] cycles and the
/// generational backend's major cycles: a per-cycle base plus a
/// per-survivor charge proportional to object count and scanned bytes.
/// Summed over a set — addition commutes, so hash iteration order cannot
/// leak into the clock.
pub(crate) fn full_mark_cost(cfg: &RuntimeConfig, heap: &Heap, marked: &HashSet<ObjAddr>) -> u64 {
    let mut cost = cfg.costs.gc_cycle_base;
    for addr in marked {
        if heap.is_allocated(*addr) {
            let bytes = heap.span(addr.span).slot_size;
            cost += cfg.costs.gc_mark_object + cfg.costs.gc_scan_per_64b * bytes.div_ceil(64);
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parses_and_displays() {
        assert_eq!("go".parse::<CollectorKind>().unwrap(), CollectorKind::Go);
        assert_eq!(
            "gen".parse::<CollectorKind>().unwrap(),
            CollectorKind::Generational
        );
        assert_eq!(
            "generational".parse::<CollectorKind>().unwrap(),
            CollectorKind::Generational
        );
        assert!("shenandoah".parse::<CollectorKind>().is_err());
        assert_eq!(CollectorKind::Go.to_string(), "go");
        assert_eq!(CollectorKind::Generational.to_string(), "gen");
        assert_eq!(CollectorKind::default(), CollectorKind::Go);
    }

    #[test]
    fn cycle_kind_names() {
        assert_eq!(CycleKind::Minor.to_string(), "minor");
        assert_eq!(CycleKind::Major.to_string(), "major");
    }

    #[test]
    fn build_dispatches() {
        let cfg = RuntimeConfig::default();
        assert_eq!(CollectorKind::Go.build(&cfg).kind(), CollectorKind::Go);
        assert_eq!(
            CollectorKind::Generational.build(&cfg).kind(),
            CollectorKind::Generational
        );
    }
}
