//! The generational backend: a nursery, minor/major cycles, and a
//! remembered set fed by the VM's write-barrier store sites.
//!
//! Young objects (everything allocated since the last cycle) are
//! tracked per address; when their accumulated bytes cross
//! [`RuntimeConfig::nursery_size`], a **minor** cycle runs: only nursery
//! objects are marked and swept ([`Heap::sweep_young`]), old objects in
//! the same spans are untouched, and every survivor is promoted
//! wholesale (the nursery empties). Because the VM's roots cannot see
//! old→young pointers cheaply, the barrier records mutated *old* objects
//! in a remembered set whose size is charged as minor-mark root-scan
//! cost; promotion clears it (no old→young edges can survive a cycle
//! that promotes the whole nursery). When the full-heap GOGC goal is
//! crossed instead, a **major** cycle runs with exactly the
//! [`GoMarkSweep`](super::GoMarkSweep) cost model and sweep.
//!
//! `tcfree` interacts with the nursery directly: an explicit free evicts
//! the address ([`Collector::on_free`]), so explicitly freed bytes never
//! count toward the minor trigger — the GoFree setting therefore defers
//! minor cycles, which is precisely the cross-backend effect
//! `results/collectors.txt` measures.

use std::collections::HashSet;

use crate::clock::Clock;
use crate::heap::{Heap, ObjAddr};
use crate::rng::SimRng;
use crate::runtime::RuntimeConfig;

use super::{full_mark_cost, Collector, CollectorKind, CycleKind, CycleOutcome, GcTrigger};

/// Generational mark-sweep.
#[derive(Debug)]
pub struct Generational {
    /// Addresses allocated since the last cycle.
    young: HashSet<ObjAddr>,
    /// Bytes those addresses account for (the minor trigger's input).
    young_bytes: u64,
    /// Old objects mutated since the last cycle (minor-mark roots).
    remembered: HashSet<ObjAddr>,
    gc_running: bool,
    assist_left: u64,
    /// The major (full-heap) GOGC goal.
    next_gc: u64,
    /// What kind of cycle the open window leads to.
    pending: CycleKind,
}

impl Generational {
    /// Creates the backend; the first major cycle triggers at `min_heap`,
    /// the first minor at `nursery_size` allocated bytes.
    pub fn new(cfg: &RuntimeConfig) -> Self {
        Generational {
            young: HashSet::new(),
            young_bytes: 0,
            remembered: HashSet::new(),
            gc_running: false,
            assist_left: 0,
            next_gc: cfg.min_heap,
            pending: CycleKind::Major,
        }
    }

    /// Nursery occupancy in bytes (tests).
    pub fn young_bytes(&self) -> u64 {
        self.young_bytes
    }

    /// Remembered-set size (tests).
    pub fn remembered_len(&self) -> usize {
        self.remembered.len()
    }

    fn promote_all(&mut self) {
        self.young.clear();
        self.young_bytes = 0;
        self.remembered.clear();
    }
}

impl Collector for Generational {
    fn kind(&self) -> CollectorKind {
        CollectorKind::Generational
    }

    fn gc_running(&self) -> bool {
        self.gc_running
    }

    fn gc_pending(&self) -> bool {
        self.gc_running && self.assist_left == 0
    }

    fn on_object_alloc(&mut self, addr: ObjAddr, bytes: u64) {
        self.young.insert(addr);
        self.young_bytes += bytes;
    }

    fn pace(&mut self, cfg: &RuntimeConfig, heap: &Heap, live_objects: u64) -> Option<GcTrigger> {
        if !cfg.gc_enabled {
            return None;
        }
        if self.gc_running {
            self.assist_left = self.assist_left.saturating_sub(1);
            return None;
        }
        // Major (full-heap pressure) outranks minor: when the GOGC goal
        // is crossed, a nursery cycle alone cannot relieve it.
        if heap.heap_live() >= self.next_gc {
            self.gc_running = true;
            self.pending = CycleKind::Major;
            self.assist_left = (live_objects / cfg.gc_assist_divisor.max(1)).clamp(16, 96);
            return Some(GcTrigger {
                goal: self.next_gc,
                window: self.assist_left,
                kind: CycleKind::Major,
            });
        }
        if self.young_bytes >= cfg.nursery_size {
            self.gc_running = true;
            self.pending = CycleKind::Minor;
            // Minor windows are short: the nursery is small and the
            // cycle must run before it overflows badly.
            self.assist_left =
                (self.young.len() as u64 / cfg.gc_assist_divisor.max(1)).clamp(4, 32);
            return Some(GcTrigger {
                goal: cfg.nursery_size,
                window: self.assist_left,
                kind: CycleKind::Minor,
            });
        }
        None
    }

    fn record_store(&mut self, cfg: &RuntimeConfig, _heap: &Heap, addr: ObjAddr) -> u64 {
        if !cfg.gc_enabled {
            return 0;
        }
        // Stores into young objects need no barrier: the nursery is
        // traced in full at every cycle.
        if self.young.contains(&addr) {
            return 0;
        }
        self.remembered.insert(addr);
        cfg.costs.write_barrier
    }

    fn on_free(&mut self, addr: ObjAddr, bytes: u64) {
        if self.young.remove(&addr) {
            self.young_bytes = self.young_bytes.saturating_sub(bytes);
        }
        self.remembered.remove(&addr);
    }

    fn collect(
        &mut self,
        cfg: &RuntimeConfig,
        heap: &mut Heap,
        clock: &mut Clock,
        rng: &mut SimRng,
        marked: &HashSet<ObjAddr>,
    ) -> CycleOutcome {
        let kind = self.pending;
        let sweep = match kind {
            CycleKind::Major => {
                clock.charge_jittered(full_mark_cost(cfg, heap, marked), rng);
                let sweep = heap.sweep(marked);
                clock.charge(cfg.costs.gc_sweep_span * sweep.spans_swept as u64);
                let heap_marked = heap.heap_live();
                self.next_gc = (heap_marked + heap_marked * cfg.gogc / 100).max(cfg.min_heap);
                sweep
            }
            CycleKind::Minor => {
                // Minor mark: the cheaper stop, nursery survivors, and a
                // root-scan charge per remembered old object. Summed over
                // sets — commutative, so iteration order never reaches
                // the clock.
                let mut cost = cfg.costs.gc_minor_base;
                for addr in marked {
                    if self.young.contains(addr) && heap.is_allocated(*addr) {
                        let bytes = heap.span(addr.span).slot_size;
                        cost += cfg.costs.gc_mark_object
                            + cfg.costs.gc_scan_per_64b * bytes.div_ceil(64);
                    }
                }
                cost += cfg.costs.gc_mark_object * self.remembered.len() as u64;
                clock.charge_jittered(cost, rng);
                let sweep = heap.sweep_young(marked, &self.young);
                clock.charge(cfg.costs.gc_sweep_span * sweep.spans_swept as u64);
                sweep
            }
        };
        // Wholesale promotion: survivors become old, the remembered set
        // is vacuously satisfied again.
        self.promote_all();
        self.gc_running = false;
        self.assist_left = 0;
        self.pending = CycleKind::Major;
        CycleOutcome {
            sweep,
            kind,
            next_goal: self.next_gc,
        }
    }

    fn force_window(&mut self, assists: u64) {
        self.gc_running = true;
        self.pending = CycleKind::Major;
        self.assist_left = assists;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Category;
    use crate::sizeclass::class_for;

    fn cfg() -> RuntimeConfig {
        RuntimeConfig {
            collector: CollectorKind::Generational,
            nursery_size: 4096,
            min_heap: 64 * 1024,
            jitter: 0.0,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn nursery_fills_and_minor_triggers() {
        let cfg = cfg();
        let mut heap = Heap::new(1);
        let mut gc = Generational::new(&cfg);
        let mut live = 0;
        let trigger = loop {
            let (addr, _) = heap.alloc_small(class_for(512), 0, Category::Other);
            gc.on_object_alloc(addr, 512);
            live += 1;
            if let Some(t) = gc.pace(&cfg, &heap, live) {
                break t;
            }
            assert!(live < 100, "minor never triggered");
        };
        assert_eq!(trigger.kind, CycleKind::Minor);
        assert_eq!(trigger.goal, 4096);
        assert!(gc.young_bytes() >= 4096);
    }

    #[test]
    fn minor_sweeps_only_young_and_promotes() {
        let cfg = cfg();
        let mut heap = Heap::new(1);
        let mut clock = Clock::new(0.0);
        let mut rng = SimRng::seed_from_u64(0);
        let mut gc = Generational::new(&cfg);
        // An "old" object: allocated, then a cycle promotes it.
        let (old, _) = heap.alloc_small(class_for(64), 0, Category::Other);
        gc.on_object_alloc(old, 64);
        gc.force_window(0);
        gc.pending = CycleKind::Minor;
        let keep: HashSet<ObjAddr> = [old].into_iter().collect();
        gc.collect(&cfg, &mut heap, &mut clock, &mut rng, &keep);
        assert_eq!(gc.young_bytes(), 0, "promotion empties the nursery");
        // Now a young unmarked object dies in a minor while the old,
        // also-unmarked one survives (floating, awaiting a major).
        let (young, _) = heap.alloc_small(class_for(64), 0, Category::Other);
        gc.on_object_alloc(young, 64);
        gc.force_window(0);
        gc.pending = CycleKind::Minor;
        let out = gc.collect(&cfg, &mut heap, &mut clock, &mut rng, &HashSet::new());
        assert_eq!(out.kind, CycleKind::Minor);
        let freed: Vec<_> = out.sweep.freed.iter().map(|(a, _, _)| *a).collect();
        assert_eq!(freed, vec![young]);
        assert!(heap.is_allocated(old), "old survives the minor unmarked");
    }

    #[test]
    fn tcfree_evicts_from_nursery() {
        let cfg = cfg();
        let mut heap = Heap::new(1);
        let mut gc = Generational::new(&cfg);
        let (a, _) = heap.alloc_small(class_for(512), 0, Category::Slice);
        gc.on_object_alloc(a, 512);
        assert_eq!(gc.young_bytes(), 512);
        gc.on_free(a, 512);
        assert_eq!(gc.young_bytes(), 0, "freed bytes leave the trigger");
    }

    #[test]
    fn barrier_remembers_old_stores_only() {
        let cfg = cfg();
        let mut heap = Heap::new(1);
        let mut gc = Generational::new(&cfg);
        let (young, _) = heap.alloc_small(class_for(64), 0, Category::Other);
        gc.on_object_alloc(young, 64);
        assert_eq!(gc.record_store(&cfg, &heap, young), 0, "young: no barrier");
        assert_eq!(gc.remembered_len(), 0);
        let (old, _) = heap.alloc_small(class_for(64), 0, Category::Other);
        // Not registered young: counts as old.
        let ticks = gc.record_store(&cfg, &heap, old);
        assert_eq!(ticks, cfg.costs.write_barrier);
        assert_eq!(gc.remembered_len(), 1);
    }

    #[test]
    fn major_recomputes_goal_and_clears_nursery() {
        let cfg = cfg();
        let mut heap = Heap::new(1);
        let mut clock = Clock::new(0.0);
        let mut rng = SimRng::seed_from_u64(0);
        let mut gc = Generational::new(&cfg);
        let (a, _) = heap.alloc_small(class_for(1024), 0, Category::Other);
        gc.on_object_alloc(a, 1024);
        gc.force_window(0);
        let keep: HashSet<ObjAddr> = [a].into_iter().collect();
        let out = gc.collect(&cfg, &mut heap, &mut clock, &mut rng, &keep);
        assert_eq!(out.kind, CycleKind::Major);
        assert_eq!(out.next_goal, cfg.min_heap, "small heap: floor wins");
        assert_eq!(gc.young_bytes(), 0);
    }
}
