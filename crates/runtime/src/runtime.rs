//! The runtime facade: allocation, GC pacing, and the `tcfree` family
//! (§5 of the paper).
//!
//! The VM drives it: `alloc` on every heap allocation, `tcfree` for
//! inserted frees, and — whenever [`Runtime::gc_pending`] turns true at a
//! statement boundary — a mark pass followed by [`Runtime::collect`].
//!
//! Concurrency effects are simulated with seeded randomness: scheduler
//! migrations flush the current thread's mcache (making `tcfree` bail with
//! `OwnershipChanged`), and each GC cycle opens a "concurrent mark" window
//! over the next allocations during which `tcfree` bails with `GcRunning`.

use std::collections::HashSet;
use std::fmt;

use crate::clock::{Clock, CostModel};
use crate::collector::{Collector, CollectorKind, CycleKind};
use crate::heap::{footprint, Heap, ObjAddr, SweepOutcome};
use crate::metrics::{BailReason, Category, FreeSource, Metrics};
use crate::profile::ROOT_STACK;
use crate::rng::SimRng;
use crate::sizeclass::{class_for, class_size, large_pages, MAX_SMALL_SIZE};
use crate::trace::{FreeStep, HeapSnapshot, Trace, TraceEvent, Tracer};

/// How the §6.8 robustness mock corrupts memory instead of freeing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoisonMode {
    /// Normal operation: really deallocate.
    Off,
    /// Mock: report `Poisoned` where a free would happen; the VM zeroes
    /// the payload.
    Zero,
    /// Mock: the VM flips all bits of the payload.
    Flip,
}

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Whether GC runs at all (the paper's Go-GCOff setting disables it).
    pub gc_enabled: bool,
    /// GOGC: heap growth percentage between collections.
    pub gogc: u64,
    /// Minimum heap size before the first collection triggers.
    pub min_heap: u64,
    /// Simulated threads (mcaches).
    pub threads: u32,
    /// Per-allocation probability of a scheduler migration that flushes
    /// the current mcache.
    pub migrate_prob: f64,
    /// RNG seed (jitter + migrations); distinct seeds give the fig. 11
    /// run-to-run distribution.
    pub seed: u64,
    /// Clock jitter amplitude (fraction).
    pub jitter: f64,
    /// The concurrent-mark window: GC stays "running" for
    /// `live_objects / gc_assist_divisor` allocations before the sweep.
    pub gc_assist_divisor: u64,
    /// §6.8 robustness mock.
    pub poison: PoisonMode,
    /// Record the typed runtime event stream ([`crate::trace`]). Like the
    /// shadow sanitizer, tracing is invisible to every observable: no
    /// clock charges, no metrics, no RNG draws — the report is
    /// bit-identical with tracing on or off.
    pub trace: bool,
    /// Hard cap on the tracer's event buffer (`None` = unbounded). A
    /// capped tracer counts what it drops; the truncated trace then
    /// refuses to reconcile instead of silently folding a partial
    /// stream.
    pub trace_cap: Option<usize>,
    /// Which collection backend runs ([`crate::collector`]).
    pub collector: CollectorKind,
    /// Nursery size in bytes for the generational backend's minor
    /// trigger (ignored by the default mark-sweep backend). Must stay
    /// below `min_heap` — a nursery at or above the initial full-heap
    /// goal would let major pacing permanently shadow minor cycles
    /// ([`RuntimeConfig::validate`] rejects it).
    pub nursery_size: u64,
    /// Tick charges.
    pub costs: CostModel,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            gc_enabled: true,
            gogc: 100,
            min_heap: 512 * 1024,
            threads: 4,
            migrate_prob: 0.0005,
            seed: 0,
            jitter: 0.02,
            gc_assist_divisor: 16,
            poison: PoisonMode::Off,
            trace: false,
            trace_cap: None,
            collector: CollectorKind::Go,
            nursery_size: 64 * 1024,
            costs: CostModel::default(),
        }
    }
}

/// A nonsensical [`RuntimeConfig`] the runtime refuses to run with
/// ([`RuntimeConfig::validate`]). Typed so callers can surface the exact
/// rejection instead of a panic or a silently degenerate run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// GOGC=0 with GC enabled: the pacing goal collapses onto the live
    /// heap, so every allocation past `min_heap` would trigger a cycle —
    /// a GC livelock, not a measurement.
    ZeroGogc,
    /// `gc_assist_divisor` = 0: the concurrent-mark window length would
    /// divide by zero.
    ZeroAssistDivisor,
    /// Generational backend with a zero-byte nursery: every allocation
    /// would trigger a minor cycle.
    ZeroNursery,
    /// Generational backend with `nursery_size >= min_heap`: the
    /// full-heap goal would always be crossed before the nursery fills,
    /// so minor cycles could never run.
    NurseryAboveHeapGoal {
        /// The configured nursery size.
        nursery: u64,
        /// The initial full-heap goal (`min_heap`).
        goal: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroGogc => {
                write!(
                    f,
                    "GOGC=0 with GC enabled would collect on every allocation past min_heap"
                )
            }
            ConfigError::ZeroAssistDivisor => {
                write!(
                    f,
                    "gc_assist_divisor must be nonzero (mark-window length divides by it)"
                )
            }
            ConfigError::ZeroNursery => {
                write!(f, "the generational collector needs a nonzero nursery_size")
            }
            ConfigError::NurseryAboveHeapGoal { nursery, goal } => write!(
                f,
                "nursery_size ({nursery}) must be below the initial heap goal min_heap ({goal}); \
                 minor cycles could otherwise never trigger"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl RuntimeConfig {
    /// Rejects configurations that would panic, divide by zero, or
    /// degenerate into a GC livelock.
    ///
    /// # Errors
    ///
    /// The first [`ConfigError`] found. Checked by the VM entry points
    /// before a runtime is built; [`Runtime::new`] itself stays
    /// infallible for embedders that construct configs programmatically.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.gc_enabled && self.gogc == 0 {
            return Err(ConfigError::ZeroGogc);
        }
        if self.gc_enabled && self.gc_assist_divisor == 0 {
            return Err(ConfigError::ZeroAssistDivisor);
        }
        if self.collector == CollectorKind::Generational && self.gc_enabled {
            if self.nursery_size == 0 {
                return Err(ConfigError::ZeroNursery);
            }
            if self.nursery_size >= self.min_heap {
                return Err(ConfigError::NurseryAboveHeapGoal {
                    nursery: self.nursery_size,
                    goal: self.min_heap,
                });
            }
        }
        Ok(())
    }
}

/// One completed GC stop: when it ended and what it cost. The runtime
/// records every cycle here unconditionally — the log is bounded by the
/// cycle count and read by the service harness to attribute pauses to
/// in-flight requests, without requiring full event tracing. Like the
/// tracer, it is pure observation: no clock charges, no metrics, no RNG
/// draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pause {
    /// Virtual time the cycle completed.
    pub at: u64,
    /// Nursery-only or full-heap.
    pub kind: CycleKind,
    /// Virtual ticks the cycle cost (mark + sweep).
    pub ticks: u64,
}

/// What a `tcfree` call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreeOutcome {
    /// The object was deallocated.
    Freed {
        /// Bytes returned to the allocator.
        bytes: u64,
    },
    /// Poison mode: the object stays allocated; the VM must corrupt its
    /// payload.
    Poisoned,
    /// The free gave up (§5): the object is left for GC.
    Bailed(BailReason),
}

/// The simulated Go runtime.
#[derive(Debug)]
pub struct Runtime {
    cfg: RuntimeConfig,
    heap: Heap,
    clock: Clock,
    metrics: Metrics,
    rng: SimRng,
    current_thread: u32,
    /// The collection backend: owns pacing state, the mark window, the
    /// cost model application, and the sweep policy. A separate field so
    /// the borrow checker lets it borrow `heap`/`clock`/`rng` disjointly.
    collector: Box<dyn Collector>,
    live_objects: u64,
    /// The event recorder, present when [`RuntimeConfig::trace`] is on.
    /// Boxed so the untraced hot path only carries a pointer-sized
    /// `None` check.
    tracer: Option<Box<Tracer>>,
    /// The VM's current interned call-stack id, stamped onto traced
    /// alloc/free/bail events ([`ROOT_STACK`] when no VM frame is
    /// active). Pure trace metadata: never read by the simulation.
    cur_stack: u32,
    /// Every completed GC cycle's stop record, in order.
    pauses: Vec<Pause>,
}

impl Runtime {
    /// Creates a runtime.
    pub fn new(cfg: RuntimeConfig) -> Self {
        let clock = Clock::new(cfg.jitter);
        let heap = Heap::new(cfg.threads as usize);
        let rng = SimRng::seed_from_u64(cfg.seed);
        let tracer = cfg.trace.then(|| Box::new(Tracer::with_cap(cfg.trace_cap)));
        let collector = cfg.collector.build(&cfg);
        Runtime {
            cfg,
            heap,
            clock,
            metrics: Metrics::default(),
            rng,
            current_thread: 0,
            collector,
            live_objects: 0,
            tracer,
            cur_stack: ROOT_STACK,
            pauses: Vec::new(),
        }
    }

    /// Sets the interned call-stack id stamped onto subsequent traced
    /// events. The VM engines call this at every function entry/exit;
    /// with tracing off it is a no-op either way (the field is trace
    /// metadata only).
    pub fn set_stack(&mut self, stack: u32) {
        self.cur_stack = stack;
    }

    /// The configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Collected metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics access (the VM records stack allocations and
    /// interpreter-side counters here).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Elapsed virtual time.
    #[inline]
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Charges interpreter work to the clock.
    #[inline]
    pub fn tick(&mut self, ticks: u64) {
        self.clock.charge(ticks);
    }

    /// Current live heap bytes.
    #[inline]
    pub fn heap_live(&self) -> u64 {
        self.heap.heap_live()
    }

    /// Whether a collection should run at the next safepoint.
    #[inline]
    pub fn gc_pending(&self) -> bool {
        self.collector.gc_pending()
    }

    /// Whether the concurrent mark window is open (tcfree bails).
    pub fn gc_running(&self) -> bool {
        self.collector.gc_running()
    }

    /// Which collection backend is running.
    pub fn collector_kind(&self) -> CollectorKind {
        self.collector.kind()
    }

    /// Allocates `size` bytes of category `cat`. Returns the address; the
    /// VM stores the payload under it.
    pub fn alloc(&mut self, size: u64, cat: Category) -> ObjAddr {
        self.alloc_at(size, cat, None)
    }

    /// [`Runtime::alloc`] with an allocation-site id attached to the trace
    /// event (the VM passes the allocating expression's id). When tracing
    /// is off this is identical to `alloc`.
    pub fn alloc_at(&mut self, size: u64, cat: Category, site: Option<u32>) -> ObjAddr {
        // Simulated scheduler migration.
        if self.cfg.migrate_prob > 0.0 && self.rng.gen_bool(self.cfg.migrate_prob) {
            self.heap.flush_mcache(self.current_thread);
            if let Some(t) = &mut self.tracer {
                let at = self.clock.now();
                t.record(TraceEvent::McacheFlush {
                    at,
                    thread: self.current_thread,
                });
            }
            self.current_thread = (self.current_thread + 1) % self.cfg.threads.max(1);
        }

        let size = size.max(8);
        let (addr, bytes, large) = if size <= MAX_SMALL_SIZE {
            let class = class_for(size);
            let (addr, events) = self.heap.alloc_small(class, self.current_thread, cat);
            self.clock.charge(self.cfg.costs.alloc_small);
            if events.refilled {
                let c = self.cfg.costs.mcache_refill;
                self.clock.charge_jittered(c, &mut self.rng);
            }
            if events.created_span {
                let c = self.cfg.costs.span_create;
                self.clock.charge_jittered(c, &mut self.rng);
            }
            (addr, class_size(class), false)
        } else {
            let addr = self.heap.alloc_large(size, self.current_thread, cat);
            let c = self.cfg.costs.alloc_large
                + self.cfg.costs.alloc_large_per_page * large_pages(size) as u64;
            self.clock.charge_jittered(c, &mut self.rng);
            (addr, size, true)
        };
        self.metrics.alloced_bytes += bytes;
        self.metrics.alloced_objects += 1;
        self.metrics.heap_allocs[cat.index()] += 1;
        self.live_objects += 1;
        self.collector.on_object_alloc(addr, bytes);
        // maxheap is the page-level footprint (like RSS), not live bytes:
        // small-object frees only make slots reusable, while large-object
        // frees return whole pages — exactly the distinction fig. 10's
        // heap-size results rest on.
        self.metrics.maxheap = self.metrics.maxheap.max(footprint(&self.heap));
        if let Some(t) = &mut self.tracer {
            t.note_site(addr, site);
            t.record(TraceEvent::Alloc {
                at: self.clock.now(),
                addr,
                site,
                stack: self.cur_stack,
                cat,
                bytes,
                large,
                heap_live: self.heap.heap_live(),
                footprint: footprint(&self.heap),
            });
        }

        // GC pacing: the collector decides; the runtime records.
        if let Some(trigger) = self
            .collector
            .pace(&self.cfg, &self.heap, self.live_objects)
        {
            if let Some(t) = &mut self.tracer {
                t.record(TraceEvent::GcStart {
                    at: self.clock.now(),
                    heap_live: self.heap.heap_live(),
                    heap_goal: trigger.goal,
                    window: trigger.window,
                    kind: trigger.kind,
                });
            }
        }
        addr
    }

    /// Write-barrier entry point: the VM calls this at every
    /// heap-pointer store site (the same sites the shadow sanitizer
    /// hooks). The default mark-sweep backend makes it a total no-op —
    /// zero ticks, no state — so runs without a barrier-carrying
    /// collector stay bit-identical to the pre-barrier runtime.
    pub fn record_store(&mut self, addr: ObjAddr) {
        let ticks = self.collector.record_store(&self.cfg, &self.heap, addr);
        if ticks > 0 {
            self.clock.charge(ticks);
        }
    }

    /// Records a stack allocation made by the VM: counted in the metrics
    /// (table 8's "Stack" columns) and, when tracing, in the event stream.
    pub fn stack_alloc(&mut self, cat: Category) {
        self.metrics.record_stack_alloc(cat);
        if let Some(t) = &mut self.tracer {
            let at = self.clock.now();
            t.record(TraceEvent::StackAlloc {
                at,
                cat,
                stack: self.cur_stack,
            });
        }
    }

    /// The `tcfree` primitive (§5): best-effort explicit deallocation.
    /// `TcfreeSlice`/`TcfreeMap` unwrap to this after the VM extracts the
    /// underlying array/bucket address.
    pub fn tcfree(&mut self, addr: ObjAddr, source: FreeSource) -> FreeOutcome {
        self.tcfree_inner(addr, source, true)
    }

    /// Batched `tcfree` (§5, "Possibility of Batching"): adjacent frees in
    /// the same scope share one call overhead. The paper notes this
    /// "typically offers limited performance gains since few objects are
    /// freed in a single scope" — the `batching` experiment measures it.
    pub fn tcfree_batch(&mut self, requests: &[(ObjAddr, FreeSource)]) -> Vec<FreeOutcome> {
        requests
            .iter()
            .enumerate()
            .map(|(i, &(addr, source))| self.tcfree_inner(addr, source, i == 0))
            .collect()
    }

    /// A `tcfree` that continues an open batch: the call overhead was
    /// already paid by the batch's first free.
    pub fn tcfree_continue(&mut self, addr: ObjAddr, source: FreeSource) -> FreeOutcome {
        self.tcfree_inner(addr, source, false)
    }

    fn tcfree_inner(
        &mut self,
        addr: ObjAddr,
        source: FreeSource,
        charge_attempt: bool,
    ) -> FreeOutcome {
        self.metrics.tcfree_attempts += 1;
        if charge_attempt {
            self.clock.charge(self.cfg.costs.tcfree_attempt);
        } else {
            // Batched follow-ups still pay the per-object status checks
            // (most of tcfree's cost, per §5), just not the call overhead.
            self.clock
                .charge(self.cfg.costs.tcfree_attempt.saturating_sub(2));
        }

        if self.collector.gc_running() {
            return self.bail(BailReason::GcRunning);
        }
        if !self.heap.is_allocated(addr) {
            // Tolerated double free (§5): ignore already-freed memory.
            return self.bail(BailReason::AlreadyFree);
        }
        let span = self.heap.span(addr.span);
        let is_large = span.class.is_none();
        if !is_large {
            if !span.in_mcache {
                return self.bail(BailReason::SpanSwappedOut);
            }
            if span.owner != self.current_thread {
                return self.bail(BailReason::OwnershipChanged);
            }
        }
        if self.cfg.poison != PoisonMode::Off {
            if let Some(t) = &mut self.tracer {
                let at = self.clock.now();
                t.record(TraceEvent::FreePoison {
                    at,
                    addr,
                    stack: self.cur_stack,
                });
            }
            return FreeOutcome::Poisoned;
        }
        let cat = span.cats[addr.slot as usize].unwrap_or(Category::Other);
        let (bytes, step) = if is_large {
            let b = self.heap.free_large_step1(addr);
            self.clock.charge(self.cfg.costs.tcfree_large);
            (b, FreeStep::LargeStep1)
        } else {
            let f = self.heap.free_small(addr);
            self.clock.charge(self.cfg.costs.tcfree_small);
            let step = if f.reverted {
                FreeStep::Revert { cascade: f.cascade }
            } else {
                FreeStep::SlotClear
            };
            (f.bytes, step)
        };
        self.live_objects = self.live_objects.saturating_sub(1);
        self.collector.on_free(addr, bytes);
        self.metrics.freed_bytes += bytes;
        self.metrics.freed_bytes_by_source[source.index()] += bytes;
        self.metrics.freed_objects_by_source[source.index()] += 1;
        self.metrics.heap_tcfreed[cat.index()] += 1;
        if let Some(t) = &mut self.tracer {
            let site = t.take_site(addr);
            t.record(TraceEvent::Free {
                at: self.clock.now(),
                addr,
                site,
                stack: self.cur_stack,
                cat,
                source,
                bytes,
                step,
                heap_live: self.heap.heap_live(),
            });
        }
        FreeOutcome::Freed { bytes }
    }

    fn bail(&mut self, reason: BailReason) -> FreeOutcome {
        self.metrics.tcfree_bails[reason.index()] += 1;
        if let Some(t) = &mut self.tracer {
            let at = self.clock.now();
            t.record(TraceEvent::FreeBail {
                at,
                reason,
                stack: self.cur_stack,
            });
        }
        FreeOutcome::Bailed(reason)
    }

    /// Runs a collection: `marked` is the set of reachable addresses the
    /// VM computed. Returns the sweep result so the VM can drop payloads.
    pub fn collect(&mut self, marked: &HashSet<ObjAddr>) -> SweepOutcome {
        let before = self.clock.now();
        // Snapshot the heap at the safepoint, before the sweep runs, so
        // the cycle's garbage and any fig. 9 dangling spans are visible.
        if let Some(t) = &mut self.tracer {
            t.snapshot(HeapSnapshot::capture(
                &self.heap,
                before,
                Some(self.metrics.gcs + 1),
            ));
        }
        // The cycle itself — mark cost, sweep, next goal — is collector
        // policy; the mechanism below (metrics, live-object accounting,
        // trace events) is collector-agnostic.
        let cycle = self.collector.collect(
            &self.cfg,
            &mut self.heap,
            &mut self.clock,
            &mut self.rng,
            marked,
        );
        let out = cycle.sweep;
        for (_, cat, _) in &out.freed {
            self.metrics.heap_gced[cat.index()] += 1;
            self.live_objects = self.live_objects.saturating_sub(1);
        }

        let heap_marked = self.heap.heap_live();
        self.metrics.gcs += 1;
        match cycle.kind {
            CycleKind::Minor => self.metrics.gcs_minor += 1,
            CycleKind::Major => self.metrics.gcs_major += 1,
        }
        let ticks = self.clock.now() - before;
        self.metrics.gc_ticks += ticks;
        self.pauses.push(Pause {
            at: self.clock.now(),
            kind: cycle.kind,
            ticks,
        });
        if let Some(t) = &mut self.tracer {
            let at = self.clock.now();
            let mut swept = [0u64; 3];
            let mut swept_bytes = 0;
            for &(addr, cat, bytes) in &out.freed {
                swept[cat.index()] += 1;
                swept_bytes += bytes;
                t.forget_site(addr);
                // Per-object detail so the profile builder can attribute
                // swept garbage back to its allocating stack; the fold
                // counts only the GcEnd totals below.
                t.record(TraceEvent::Sweep {
                    at,
                    addr,
                    cat,
                    bytes,
                });
            }
            t.record(TraceEvent::GcEnd {
                at,
                heap_live: heap_marked,
                next_goal: cycle.next_goal,
                swept,
                swept_bytes,
                dangling_retired: out.dangling_retired,
                ticks,
                kind: cycle.kind,
            });
        }
        out
    }

    /// End-of-run accounting: objects still alive would eventually be
    /// collected, so they count toward the GC columns of table 8.
    pub fn finalize(&mut self) {
        self.metrics.maxheap = self.metrics.maxheap.max(footprint(&self.heap));
        let mut leftover = [0u64; 3];
        for (_, cat, _) in self.heap.live_objects() {
            self.metrics.heap_gced[cat.index()] += 1;
            leftover[cat.index()] += 1;
        }
        if let Some(t) = &mut self.tracer {
            let at = self.clock.now();
            let footprint = footprint(&self.heap);
            // Final heap picture: what the run leaves behind.
            t.snapshot(HeapSnapshot::capture(&self.heap, at, None));
            t.record(TraceEvent::Finalize {
                at,
                leftover,
                footprint,
            });
        }
    }

    /// Takes the recorded event stream (once, after the run; `None` when
    /// tracing was off). The trace is stamped with the active collector.
    pub fn take_trace(&mut self) -> Option<Trace> {
        let kind = self.collector.kind();
        self.tracer.take().map(|t| {
            let mut trace = t.finish();
            trace.collector = kind;
            trace
        })
    }

    /// Total heap footprint in bytes (pages held).
    pub fn footprint(&self) -> u64 {
        footprint(&self.heap)
    }

    /// Every completed GC cycle's stop record, in completion order.
    pub fn pauses(&self) -> &[Pause] {
        &self.pauses
    }

    /// Advances the virtual clock to absolute time `t` (no-op when `t`
    /// is in the past). Models a service worker sitting idle between
    /// requests: no work is charged, and — pacing being purely
    /// allocation-driven — no GC can trigger while idle, so the jump is
    /// exactly observationally equivalent to waiting.
    pub fn idle_until(&mut self, t: u64) {
        let now = self.clock.now();
        if t > now {
            self.clock.charge(t - now);
        }
    }

    /// Records a completed-request span ([`TraceEvent::Request`]) ending
    /// now. A pure annotation for the chrome://tracing export: no-op
    /// without tracing, ignored by [`Trace::fold`], invisible to every
    /// observable.
    pub fn trace_request(&mut self, id: u64, arrival: u64, start: u64) {
        if let Some(t) = &mut self.tracer {
            let at = self.clock.now();
            t.record(TraceEvent::Request {
                at,
                id,
                arrival,
                start,
            });
        }
    }

    /// Test-only: force the GC-running window open.
    #[doc(hidden)]
    pub fn force_gc_window(&mut self, assists: u64) {
        self.collector.force_window(assists);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_cfg() -> RuntimeConfig {
        RuntimeConfig {
            migrate_prob: 0.0,
            jitter: 0.0,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut rt = Runtime::new(quiet_cfg());
        let a = rt.alloc(100, Category::Slice);
        assert_eq!(rt.heap_live(), 112, "rounded to the size class");
        let out = rt.tcfree(a, FreeSource::SliceLifetime);
        assert_eq!(out, FreeOutcome::Freed { bytes: 112 });
        assert_eq!(rt.heap_live(), 0);
        assert_eq!(rt.metrics().freed_bytes, 112);
        assert!((rt.metrics().free_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn double_free_is_tolerated() {
        let mut rt = Runtime::new(quiet_cfg());
        let a = rt.alloc(64, Category::Slice);
        assert!(matches!(
            rt.tcfree(a, FreeSource::SliceLifetime),
            FreeOutcome::Freed { .. }
        ));
        assert_eq!(
            rt.tcfree(a, FreeSource::SliceLifetime),
            FreeOutcome::Bailed(BailReason::AlreadyFree)
        );
    }

    #[test]
    fn tcfree_bails_during_gc_window() {
        let mut rt = Runtime::new(quiet_cfg());
        let a = rt.alloc(64, Category::Slice);
        rt.force_gc_window(100);
        assert_eq!(
            rt.tcfree(a, FreeSource::SliceLifetime),
            FreeOutcome::Bailed(BailReason::GcRunning)
        );
        assert_eq!(rt.metrics().tcfree_bails[BailReason::GcRunning.index()], 1);
    }

    #[test]
    fn tcfree_bails_after_migration() {
        let mut rt = Runtime::new(RuntimeConfig {
            migrate_prob: 1.0, // migrate on every allocation
            jitter: 0.0,
            threads: 2,
            ..RuntimeConfig::default()
        });
        let a = rt.alloc(64, Category::Slice);
        // Allocating again migrates and flushes the mcache holding a's
        // span; the different size class keeps it in the mcentral.
        let _b = rt.alloc(4096, Category::Slice);
        let out = rt.tcfree(a, FreeSource::SliceLifetime);
        assert!(
            matches!(
                out,
                FreeOutcome::Bailed(BailReason::SpanSwappedOut)
                    | FreeOutcome::Bailed(BailReason::OwnershipChanged)
            ),
            "got {out:?}"
        );
    }

    #[test]
    fn gc_triggers_by_pacing_and_collects() {
        let mut rt = Runtime::new(RuntimeConfig {
            min_heap: 4096,
            gc_assist_divisor: u64::MAX, // close the window immediately
            ..quiet_cfg()
        });
        let mut addrs = Vec::new();
        while !rt.gc_pending() {
            addrs.push(rt.alloc(512, Category::Other));
            assert!(addrs.len() < 100, "pacing never triggered");
        }
        // Keep half alive.
        let marked: HashSet<ObjAddr> = addrs.iter().step_by(2).copied().collect();
        let out = rt.collect(&marked);
        assert_eq!(out.freed.len(), addrs.len() - marked.len());
        assert_eq!(rt.metrics().gcs, 1);
        assert!(rt.metrics().gc_ticks > 0);
        assert!(!rt.gc_running());
    }

    #[test]
    fn gc_off_never_triggers() {
        let mut rt = Runtime::new(RuntimeConfig {
            gc_enabled: false,
            min_heap: 1024,
            ..quiet_cfg()
        });
        for _ in 0..1000 {
            rt.alloc(512, Category::Other);
        }
        assert!(!rt.gc_pending());
        assert_eq!(rt.metrics().gcs, 0);
    }

    #[test]
    fn large_objects_roundtrip_with_two_step() {
        let mut rt = Runtime::new(quiet_cfg());
        let a = rt.alloc(100_000, Category::Slice);
        let out = rt.tcfree(a, FreeSource::SliceLifetime);
        assert_eq!(out, FreeOutcome::Freed { bytes: 100_000 });
        assert_eq!(rt.footprint(), 0, "pages returned in step 1");
    }

    #[test]
    fn poison_mode_reports_without_freeing() {
        let mut rt = Runtime::new(RuntimeConfig {
            poison: PoisonMode::Zero,
            ..quiet_cfg()
        });
        let a = rt.alloc(64, Category::Slice);
        assert_eq!(
            rt.tcfree(a, FreeSource::SliceLifetime),
            FreeOutcome::Poisoned
        );
        assert_eq!(rt.heap_live(), 64, "object stays allocated");
        assert_eq!(rt.metrics().freed_bytes, 0);
    }

    #[test]
    fn finalize_accounts_leftovers_as_gc() {
        let mut rt = Runtime::new(quiet_cfg());
        rt.alloc(64, Category::Map);
        rt.finalize();
        assert_eq!(rt.metrics().heap_gced[Category::Map.index()], 1);
    }

    #[test]
    fn metrics_track_sources() {
        let mut rt = Runtime::new(quiet_cfg());
        let a = rt.alloc(64, Category::Map);
        let b = rt.alloc(64, Category::Map);
        rt.tcfree(a, FreeSource::MapGrowOld);
        rt.tcfree(b, FreeSource::MapLifetime);
        let shares = rt.metrics().source_shares();
        assert!((shares[FreeSource::MapGrowOld.index()] - 0.5).abs() < 1e-9);
        assert!((shares[FreeSource::MapLifetime.index()] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn validate_rejects_nonsense() {
        let ok = RuntimeConfig::default();
        assert_eq!(ok.validate(), Ok(()));

        let zero_gogc = RuntimeConfig {
            gogc: 0,
            ..RuntimeConfig::default()
        };
        assert_eq!(zero_gogc.validate(), Err(ConfigError::ZeroGogc));
        // GOGC=0 is fine when GC never runs (the GoGcOff setting).
        let gc_off = RuntimeConfig {
            gogc: 0,
            gc_enabled: false,
            ..RuntimeConfig::default()
        };
        assert_eq!(gc_off.validate(), Ok(()));

        let zero_div = RuntimeConfig {
            gc_assist_divisor: 0,
            ..RuntimeConfig::default()
        };
        assert_eq!(zero_div.validate(), Err(ConfigError::ZeroAssistDivisor));

        let zero_nursery = RuntimeConfig {
            collector: CollectorKind::Generational,
            nursery_size: 0,
            ..RuntimeConfig::default()
        };
        assert_eq!(zero_nursery.validate(), Err(ConfigError::ZeroNursery));

        let fat_nursery = RuntimeConfig {
            collector: CollectorKind::Generational,
            nursery_size: 512 * 1024,
            min_heap: 512 * 1024,
            ..RuntimeConfig::default()
        };
        assert_eq!(
            fat_nursery.validate(),
            Err(ConfigError::NurseryAboveHeapGoal {
                nursery: 512 * 1024,
                goal: 512 * 1024,
            })
        );
        // The nursery bound only matters when minor cycles can run at all.
        let fat_but_off = RuntimeConfig {
            gc_enabled: false,
            ..fat_nursery
        };
        assert_eq!(fat_but_off.validate(), Ok(()));

        // Errors render as actionable text.
        let msg = ConfigError::NurseryAboveHeapGoal {
            nursery: 10,
            goal: 5,
        }
        .to_string();
        assert!(msg.contains("nursery_size"), "{msg}");
    }

    #[test]
    fn generational_runs_minor_cycles_and_tags_metrics() {
        let mut rt = Runtime::new(RuntimeConfig {
            collector: CollectorKind::Generational,
            nursery_size: 4096,
            min_heap: 1024 * 1024,
            gc_assist_divisor: u64::MAX, // close windows immediately
            ..quiet_cfg()
        });
        let mut addrs = Vec::new();
        while !rt.gc_pending() {
            addrs.push(rt.alloc(512, Category::Other));
            assert!(addrs.len() < 100, "minor pacing never triggered");
        }
        // Nothing marked: the whole nursery dies.
        let out = rt.collect(&HashSet::new());
        assert_eq!(out.freed.len(), addrs.len());
        assert_eq!(rt.metrics().gcs, 1);
        assert_eq!(rt.metrics().gcs_minor, 1);
        assert_eq!(rt.metrics().gcs_major, 0);
        assert_eq!(rt.collector_kind(), CollectorKind::Generational);
    }

    #[test]
    fn generational_minor_spares_old_objects() {
        let mut rt = Runtime::new(RuntimeConfig {
            collector: CollectorKind::Generational,
            nursery_size: 4096,
            min_heap: 1024 * 1024,
            gc_assist_divisor: u64::MAX,
            ..quiet_cfg()
        });
        // Fill a nursery generation and promote it (everything marked).
        let mut first_gen = Vec::new();
        while !rt.gc_pending() {
            first_gen.push(rt.alloc(512, Category::Other));
        }
        let keep: HashSet<ObjAddr> = first_gen.iter().copied().collect();
        rt.collect(&keep);
        // Second generation dies unmarked; the promoted one survives a
        // minor even though it is also unmarked (floating until a major).
        while !rt.gc_pending() {
            rt.alloc(512, Category::Other);
        }
        let out = rt.collect(&HashSet::new());
        assert_eq!(rt.metrics().gcs_minor, 2);
        for addr in &first_gen {
            assert!(
                !out.freed.iter().any(|(a, _, _)| a == addr),
                "old object swept by a minor cycle"
            );
        }
        assert!(rt.heap_live() >= 512 * first_gen.len() as u64);
    }

    #[test]
    fn go_collector_ignores_store_barrier() {
        let mut rt = Runtime::new(quiet_cfg());
        let a = rt.alloc(64, Category::Other);
        let before = rt.now();
        rt.record_store(a);
        assert_eq!(rt.now(), before, "mark-sweep barrier must be free");
    }

    #[test]
    fn generational_barrier_charges_old_stores() {
        let mut rt = Runtime::new(RuntimeConfig {
            collector: CollectorKind::Generational,
            nursery_size: 4096,
            min_heap: 1024 * 1024,
            gc_assist_divisor: u64::MAX,
            ..quiet_cfg()
        });
        let a = rt.alloc(512, Category::Other);
        let before = rt.now();
        rt.record_store(a);
        assert_eq!(rt.now(), before, "young store: no barrier cost");
        // Promote, then store into the now-old object.
        while !rt.gc_pending() {
            rt.alloc(512, Category::Other);
        }
        let keep: HashSet<ObjAddr> = [a].into_iter().collect();
        rt.collect(&keep);
        let before = rt.now();
        rt.record_store(a);
        assert_eq!(
            rt.now() - before,
            rt.config().costs.write_barrier,
            "old store enters the remembered set"
        );
    }

    #[test]
    fn trace_is_stamped_with_collector() {
        let mut rt = Runtime::new(RuntimeConfig {
            collector: CollectorKind::Generational,
            trace: true,
            ..quiet_cfg()
        });
        rt.alloc(64, Category::Other);
        let trace = rt.take_trace().expect("traced");
        assert_eq!(trace.collector, CollectorKind::Generational);
    }

    #[test]
    fn identical_seeds_identical_clocks() {
        let run = |seed| {
            let mut rt = Runtime::new(RuntimeConfig {
                seed,
                ..RuntimeConfig::default()
            });
            for i in 0..500 {
                let a = rt.alloc(64 + (i % 7) * 100, Category::Slice);
                if i % 3 == 0 {
                    rt.tcfree(a, FreeSource::SliceLifetime);
                }
            }
            rt.now()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds perturb the clock");
    }
}
