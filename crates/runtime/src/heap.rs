//! The heap: mspans, per-thread mcaches, the mcentral span pool, and the
//! page heap (§3.3 and fig. 9 of the paper).
//!
//! Memory itself is simulated — the heap tracks addresses, occupancy
//! bitmaps, and byte accounting; object payloads live in the VM. The
//! structure mirrors Go's TCMalloc: small objects come from size-class
//! mspans cached per thread (lock-free fast path), large objects get
//! dedicated multi-page mspans pushed to the mcentral.

use std::collections::HashSet;

use crate::metrics::Category;
use crate::sizeclass::{class_pages, class_size, class_slots, large_pages, PAGE_SIZE};

/// Identifies an mspan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u32);

/// The simulated address of a heap object: a span and a slot within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjAddr {
    /// The owning span.
    pub span: SpanId,
    /// Slot index within the span (0 for large objects).
    pub slot: u32,
}

/// An mspan: a run of pages carved into equal slots (small classes) or
/// dedicated to one large object.
#[derive(Debug, Clone)]
pub struct Mspan {
    /// Size class; `None` for a dedicated large-object span.
    pub class: Option<usize>,
    /// Pages backing the span.
    pub npages: u32,
    /// Bytes per slot (the rounded size class, or the large object size).
    pub slot_size: u64,
    /// Number of slots.
    pub nslots: u32,
    /// Allocation scan position: slots below it may still be allocated.
    pub free_index: u32,
    /// Occupancy bitmap.
    pub alloc_bits: Vec<bool>,
    /// Category per occupied slot (for tables 8/9 accounting).
    pub cats: Vec<Option<Category>>,
    /// Owning thread (mcache affinity).
    pub owner: u32,
    /// Whether the span currently sits in its owner's mcache.
    pub in_mcache: bool,
    /// Large-object 2-step free: pages returned, span struct awaiting the
    /// next GC sweep (fig. 9 step 1).
    pub dangling: bool,
    /// Whether the span is live (backing pages held) at all.
    pub active: bool,
}

impl Mspan {
    /// Number of allocated slots.
    pub fn live_slots(&self) -> u32 {
        self.alloc_bits.iter().filter(|&&b| b).count() as u32
    }

    /// Whether every slot is taken.
    pub fn is_full(&self) -> bool {
        self.free_index >= self.nslots && self.alloc_bits[..self.nslots as usize].iter().all(|&b| b)
    }

    fn next_free(&self) -> Option<u32> {
        (self.free_index..self.nslots).find(|&i| !self.alloc_bits[i as usize])
    }
}

/// What the allocation fast path had to do (the runtime charges costs
/// accordingly).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocEvents {
    /// The mcache had to be refilled from the mcentral.
    pub refilled: bool,
    /// A fresh span was carved from the page heap.
    pub created_span: bool,
}

/// Result of a GC sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepOutcome {
    /// Freed objects: address, category, bytes.
    pub freed: Vec<(ObjAddr, Category, u64)>,
    /// Spans examined (cost accounting).
    pub spans_swept: usize,
    /// Dangling large-object spans that completed fig. 9 step 2 (their
    /// struct joined the idle list).
    pub dangling_retired: u64,
}

/// What an explicit small-object free did to its span (the §5
/// allocation-index revert the tracing layer reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmallFree {
    /// Bytes returned (the span's slot size).
    pub bytes: u64,
    /// Whether the freed slot was on top and the allocation index was
    /// reverted (immediate reuse); `false` means the occupancy bit was
    /// cleared and the slot waits for the next sweep.
    pub reverted: bool,
    /// Extra index steps the revert cascaded over earlier freed slots
    /// (0 = only the freed slot itself was reclaimed).
    pub cascade: u32,
}

/// The simulated heap.
#[derive(Debug, Clone)]
pub struct Heap {
    spans: Vec<Mspan>,
    /// mcaches[thread][class] = span currently cached.
    mcaches: Vec<Vec<Option<SpanId>>>,
    /// mcentral: per-class spans with free slots, not in any mcache.
    partial: Vec<Vec<SpanId>>,
    /// Span structs whose pages were returned (reusable).
    idle: Vec<SpanId>,
    /// Pages currently backing live spans.
    pages_in_use: u64,
    /// Live heap bytes (allocated minus freed/swept).
    heap_live: u64,
}

impl Heap {
    /// Creates a heap serving `threads` mcaches.
    pub fn new(threads: usize) -> Self {
        let classes = crate::sizeclass::class_count();
        Heap {
            spans: Vec::new(),
            mcaches: vec![vec![None; classes]; threads.max(1)],
            partial: vec![Vec::new(); classes],
            idle: Vec::new(),
            pages_in_use: 0,
            heap_live: 0,
        }
    }

    /// Live heap bytes.
    pub fn heap_live(&self) -> u64 {
        self.heap_live
    }

    /// Pages currently in use.
    pub fn pages_in_use(&self) -> u64 {
        self.pages_in_use
    }

    /// Read access to a span.
    pub fn span(&self, id: SpanId) -> &Mspan {
        &self.spans[id.0 as usize]
    }

    /// Mutable access to a span.
    pub fn span_mut(&mut self, id: SpanId) -> &mut Mspan {
        &mut self.spans[id.0 as usize]
    }

    /// Number of span structs ever created (tests).
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Allocates a small object of the given class on `thread`.
    pub fn alloc_small(
        &mut self,
        class: usize,
        thread: u32,
        cat: Category,
    ) -> (ObjAddr, AllocEvents) {
        let mut events = AllocEvents::default();
        loop {
            let cached = self.mcaches[thread as usize][class];
            let sid = match cached {
                Some(sid) if self.span(sid).next_free().is_some() => sid,
                other => {
                    // Swap the full span out of the cache (it keeps its
                    // slots; tcfree will bail on it from now on).
                    if let Some(full) = other {
                        let s = self.span_mut(full);
                        s.in_mcache = false;
                    }
                    events.refilled = true;
                    let sid = self.refill(class, thread, &mut events);
                    self.mcaches[thread as usize][class] = Some(sid);
                    sid
                }
            };
            let span = self.span_mut(sid);
            if let Some(slot) = span.next_free() {
                span.alloc_bits[slot as usize] = true;
                span.cats[slot as usize] = Some(cat);
                span.free_index = slot + 1;
                let bytes = span.slot_size;
                self.heap_live += bytes;
                return (ObjAddr { span: sid, slot }, events);
            }
            // Raced our own bookkeeping (span filled): loop refills.
        }
    }

    fn refill(&mut self, class: usize, thread: u32, events: &mut AllocEvents) -> SpanId {
        // Try the mcentral's partial spans first.
        while let Some(sid) = self.partial[class].pop() {
            let span = self.span_mut(sid);
            if span.active && !span.dangling && span.next_free().is_some() {
                span.owner = thread;
                span.in_mcache = true;
                return sid;
            }
        }
        events.created_span = true;
        let npages = class_pages(class);
        let slot_size = class_size(class);
        let nslots = class_slots(class);
        self.new_span(Some(class), npages, slot_size, nslots, thread, true)
    }

    fn new_span(
        &mut self,
        class: Option<usize>,
        npages: u32,
        slot_size: u64,
        nslots: u32,
        thread: u32,
        in_mcache: bool,
    ) -> SpanId {
        self.pages_in_use += npages as u64;
        let span = Mspan {
            class,
            npages,
            slot_size,
            nslots,
            free_index: 0,
            alloc_bits: vec![false; nslots as usize],
            cats: vec![None; nslots as usize],
            owner: thread,
            in_mcache,
            dangling: false,
            active: true,
        };
        if let Some(sid) = self.idle.pop() {
            self.spans[sid.0 as usize] = span;
            sid
        } else {
            let sid = SpanId(self.spans.len() as u32);
            self.spans.push(span);
            sid
        }
    }

    /// Allocates a large object in a dedicated span (fig. 9).
    pub fn alloc_large(&mut self, size: u64, thread: u32, cat: Category) -> ObjAddr {
        let npages = large_pages(size);
        let sid = self.new_span(None, npages, size, 1, thread, false);
        let span = self.span_mut(sid);
        span.alloc_bits[0] = true;
        span.cats[0] = Some(cat);
        span.free_index = 1;
        self.heap_live += size;
        ObjAddr { span: sid, slot: 0 }
    }

    /// Explicitly frees a small object: reverts the allocation index when
    /// the object is on top, otherwise just clears its bit (the slot is
    /// reused after the next sweep). Returns the freed bytes and what the
    /// free did to the allocation index.
    pub fn free_small(&mut self, addr: ObjAddr) -> SmallFree {
        let span = self.span_mut(addr.span);
        debug_assert!(span.alloc_bits[addr.slot as usize]);
        span.alloc_bits[addr.slot as usize] = false;
        span.cats[addr.slot as usize] = None;
        let mut reverted = false;
        let mut cascade = 0;
        if addr.slot + 1 == span.free_index {
            // Revert the allocator pointer; cascade over earlier frees.
            reverted = true;
            while span.free_index > 0 && !span.alloc_bits[span.free_index as usize - 1] {
                span.free_index -= 1;
            }
            cascade = addr.slot - span.free_index;
        }
        let bytes = span.slot_size;
        self.heap_live -= bytes;
        SmallFree {
            bytes,
            reverted,
            cascade,
        }
    }

    /// Step 1 of the large-object free (fig. 9): return the pages and mark
    /// the span dangling. Returns the freed bytes.
    pub fn free_large_step1(&mut self, addr: ObjAddr) -> u64 {
        let npages;
        let bytes;
        {
            let span = self.span_mut(addr.span);
            debug_assert!(span.class.is_none() && span.alloc_bits[0]);
            span.alloc_bits[0] = false;
            span.cats[0] = None;
            span.dangling = true;
            npages = span.npages;
            bytes = span.slot_size;
        }
        self.pages_in_use -= npages as u64;
        self.heap_live -= bytes;
        bytes
    }

    /// Whether an address is currently allocated.
    pub fn is_allocated(&self, addr: ObjAddr) -> bool {
        let span = self.span(addr.span);
        span.active && !span.dangling && span.alloc_bits[addr.slot as usize]
    }

    /// Flushes every span of `thread`'s mcache back to the mcentral
    /// (simulated scheduler migration).
    pub fn flush_mcache(&mut self, thread: u32) {
        let classes = self.mcaches[thread as usize].len();
        for class in 0..classes {
            if let Some(sid) = self.mcaches[thread as usize][class].take() {
                let span = self.span_mut(sid);
                span.in_mcache = false;
                if span.next_free().is_some() {
                    self.partial[class].push(sid);
                }
            }
        }
    }

    /// Sweeps the heap after a mark phase: unmarked allocated slots are
    /// freed, dangling large spans complete step 2 (returned to the idle
    /// list), and empty spans give their pages back.
    pub fn sweep(&mut self, marked: &HashSet<ObjAddr>) -> SweepOutcome {
        let mut out = SweepOutcome::default();
        for i in 0..self.spans.len() {
            let sid = SpanId(i as u32);
            if !self.spans[i].active {
                continue;
            }
            out.spans_swept += 1;
            if self.spans[i].dangling {
                // Fig. 9 step 2: the span struct joins the idle list.
                self.retire_span(sid);
                out.dangling_retired += 1;
                continue;
            }
            let nslots = self.spans[i].nslots;
            for slot in 0..nslots {
                if self.spans[i].alloc_bits[slot as usize]
                    && !marked.contains(&ObjAddr { span: sid, slot })
                {
                    let cat = self.spans[i].cats[slot as usize].unwrap_or(Category::Other);
                    let bytes = self.spans[i].slot_size;
                    self.spans[i].alloc_bits[slot as usize] = false;
                    self.spans[i].cats[slot as usize] = None;
                    self.heap_live -= bytes;
                    out.freed.push((ObjAddr { span: sid, slot }, cat, bytes));
                }
            }
            let span = &mut self.spans[i];
            span.free_index = 0;
            if span.live_slots() == 0 && !span.in_mcache {
                self.retire_span(sid);
            }
        }
        // Rebuild the mcentral partial lists.
        for list in &mut self.partial {
            list.clear();
        }
        for i in 0..self.spans.len() {
            let s = &self.spans[i];
            if s.active && !s.in_mcache && !s.dangling {
                if let Some(class) = s.class {
                    if s.next_free().is_some() {
                        self.partial[class].push(SpanId(i as u32));
                    }
                }
            }
        }
        out
    }

    /// The generational minor sweep: like [`Heap::sweep`], but only
    /// objects in `young` are candidates — old objects sharing a span
    /// with nursery objects are never examined, and spans holding no
    /// young objects are skipped entirely (`spans_swept` reflects that,
    /// which is what makes minor cycles cheap). Dangling large-object
    /// spans still complete fig. 9 step 2: step 1 already returned their
    /// pages, so retirement is generation-agnostic bookkeeping.
    pub fn sweep_young(
        &mut self,
        marked: &HashSet<ObjAddr>,
        young: &HashSet<ObjAddr>,
    ) -> SweepOutcome {
        let young_spans: HashSet<u32> = young.iter().map(|a| a.span.0).collect();
        let mut out = SweepOutcome::default();
        for i in 0..self.spans.len() {
            let sid = SpanId(i as u32);
            if !self.spans[i].active {
                continue;
            }
            if self.spans[i].dangling {
                out.spans_swept += 1;
                self.retire_span(sid);
                out.dangling_retired += 1;
                continue;
            }
            if !young_spans.contains(&sid.0) {
                continue;
            }
            out.spans_swept += 1;
            let nslots = self.spans[i].nslots;
            for slot in 0..nslots {
                let addr = ObjAddr { span: sid, slot };
                if self.spans[i].alloc_bits[slot as usize]
                    && young.contains(&addr)
                    && !marked.contains(&addr)
                {
                    let cat = self.spans[i].cats[slot as usize].unwrap_or(Category::Other);
                    let bytes = self.spans[i].slot_size;
                    self.spans[i].alloc_bits[slot as usize] = false;
                    self.spans[i].cats[slot as usize] = None;
                    self.heap_live -= bytes;
                    out.freed.push((addr, cat, bytes));
                }
            }
            let span = &mut self.spans[i];
            span.free_index = 0;
            if span.live_slots() == 0 && !span.in_mcache {
                self.retire_span(sid);
            }
        }
        // Rebuild the mcentral partial lists (ascending span order, same
        // as the full sweep — determinism).
        for list in &mut self.partial {
            list.clear();
        }
        for i in 0..self.spans.len() {
            let s = &self.spans[i];
            if s.active && !s.in_mcache && !s.dangling {
                if let Some(class) = s.class {
                    if s.next_free().is_some() {
                        self.partial[class].push(SpanId(i as u32));
                    }
                }
            }
        }
        out
    }

    fn retire_span(&mut self, sid: SpanId) {
        let span = self.span_mut(sid);
        if span.active {
            let npages = span.npages;
            let was_dangling = span.dangling;
            span.active = false;
            span.dangling = false;
            span.in_mcache = false;
            if !was_dangling {
                // Dangling spans already returned their pages in step 1.
                self.pages_in_use -= npages as u64;
            }
        }
        self.idle.push(sid);
    }

    /// All currently allocated addresses (used by the end-of-run
    /// accounting and by tests).
    pub fn live_objects(&self) -> Vec<(ObjAddr, Category, u64)> {
        let mut out = Vec::new();
        for (i, span) in self.spans.iter().enumerate() {
            if !span.active || span.dangling {
                continue;
            }
            for slot in 0..span.nslots {
                if span.alloc_bits[slot as usize] {
                    out.push((
                        ObjAddr {
                            span: SpanId(i as u32),
                            slot,
                        },
                        span.cats[slot as usize].unwrap_or(Category::Other),
                        span.slot_size,
                    ));
                }
            }
        }
        out
    }
}

/// Estimated total heap footprint in bytes (pages held by live spans).
pub fn footprint(heap: &Heap) -> u64 {
    heap.pages_in_use() * PAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizeclass::class_for;

    #[test]
    fn small_alloc_bumps_and_accounts() {
        let mut h = Heap::new(1);
        let class = class_for(64);
        let (a, ev) = h.alloc_small(class, 0, Category::Slice);
        assert!(ev.refilled && ev.created_span);
        assert_eq!(a.slot, 0);
        assert_eq!(h.heap_live(), 64);
        let (b, ev2) = h.alloc_small(class, 0, Category::Slice);
        assert_eq!(ev2, AllocEvents::default(), "fast path after refill");
        assert_eq!(b.slot, 1);
        assert_eq!(h.heap_live(), 128);
    }

    #[test]
    fn top_free_reverts_index() {
        let mut h = Heap::new(1);
        let class = class_for(64);
        let (a, _) = h.alloc_small(class, 0, Category::Slice);
        let (b, _) = h.alloc_small(class, 0, Category::Slice);
        assert_eq!(
            h.free_small(b),
            SmallFree {
                bytes: 64,
                reverted: true,
                cascade: 0
            }
        );
        // Slot b is immediately reusable.
        let (c, _) = h.alloc_small(class, 0, Category::Slice);
        assert_eq!(c.slot, b.slot);
        assert!(h.is_allocated(a));
    }

    #[test]
    fn cascading_revert() {
        let mut h = Heap::new(1);
        let class = class_for(32);
        let (a, _) = h.alloc_small(class, 0, Category::Other);
        let (b, _) = h.alloc_small(class, 0, Category::Other);
        let (c, _) = h.alloc_small(class, 0, Category::Other);
        let mid = h.free_small(b); // middle: bit cleared, index stays
        assert!(!mid.reverted);
        assert_eq!(mid.cascade, 0);
        assert_eq!(h.span(c.span).free_index, 3);
        let top = h.free_small(c); // top: cascades past b down to 1
        assert!(top.reverted);
        assert_eq!(top.cascade, 1);
        assert_eq!(h.span(c.span).free_index, 1);
        assert!(h.is_allocated(a));
    }

    #[test]
    fn span_fills_and_refills() {
        let mut h = Heap::new(1);
        let class = class_for(4096);
        let slots = class_slots(class);
        let mut first_span = None;
        for i in 0..=slots {
            let (a, _) = h.alloc_small(class, 0, Category::Other);
            if i == 0 {
                first_span = Some(a.span);
            }
            if i == slots {
                assert_ne!(Some(a.span), first_span, "rolled to a new span");
            }
        }
        let old = first_span.unwrap();
        assert!(!h.span(old).in_mcache, "full span left the mcache");
    }

    #[test]
    fn large_alloc_and_two_step_free() {
        let mut h = Heap::new(1);
        let a = h.alloc_large(100_000, 0, Category::Slice);
        assert_eq!(h.pages_in_use(), 13);
        assert_eq!(h.heap_live(), 100_000);
        let freed = h.free_large_step1(a);
        assert_eq!(freed, 100_000);
        assert_eq!(h.pages_in_use(), 0, "step 1 returns the pages");
        assert!(h.span(a.span).dangling);
        assert!(!h.is_allocated(a));
        // Step 2 happens at sweep: the span struct becomes reusable.
        let out = h.sweep(&HashSet::new());
        assert!(out.freed.is_empty());
        assert_eq!(out.dangling_retired, 1);
        assert!(!h.span(a.span).active);
        let b = h.alloc_large(8192, 0, Category::Map);
        assert_eq!(b.span, a.span, "idle span struct reused");
    }

    #[test]
    fn sweep_frees_unmarked_and_reports_categories() {
        let mut h = Heap::new(1);
        let class = class_for(64);
        let (a, _) = h.alloc_small(class, 0, Category::Slice);
        let (b, _) = h.alloc_small(class, 0, Category::Map);
        let marked: HashSet<ObjAddr> = [a].into_iter().collect();
        let out = h.sweep(&marked);
        let freed: Vec<_> = out.freed.iter().map(|(ad, c, _)| (*ad, *c)).collect();
        assert_eq!(freed, vec![(b, Category::Map)]);
        assert!(h.is_allocated(a));
        assert_eq!(h.heap_live(), 64);
    }

    #[test]
    fn sweep_makes_freed_slots_reusable() {
        let mut h = Heap::new(1);
        let class = class_for(64);
        let (a, _) = h.alloc_small(class, 0, Category::Other);
        let (_b, _) = h.alloc_small(class, 0, Category::Other);
        h.sweep(&HashSet::new()); // everything dies
        assert_eq!(h.heap_live(), 0);
        let (c, _) = h.alloc_small(class, 0, Category::Other);
        assert_eq!(c.slot, 0, "allocation restarts at the swept span's base");
        assert_eq!(c.span, a.span);
    }

    #[test]
    fn sweep_young_skips_old_objects_and_foreign_spans() {
        let mut h = Heap::new(1);
        let class = class_for(64);
        let (old, _) = h.alloc_small(class, 0, Category::Slice);
        let (young_dead, _) = h.alloc_small(class, 0, Category::Map);
        let (young_live, _) = h.alloc_small(class, 0, Category::Other);
        // A large old object in its own span: not young, span skipped.
        let big = h.alloc_large(50_000, 0, Category::Slice);
        let young: HashSet<ObjAddr> = [young_dead, young_live].into_iter().collect();
        let marked: HashSet<ObjAddr> = [young_live].into_iter().collect();
        let out = h.sweep_young(&marked, &young);
        let freed: Vec<_> = out.freed.iter().map(|(a, c, _)| (*a, *c)).collect();
        assert_eq!(freed, vec![(young_dead, Category::Map)]);
        assert!(h.is_allocated(old), "old object untouched though unmarked");
        assert!(h.is_allocated(young_live));
        assert!(h.is_allocated(big));
        assert_eq!(out.spans_swept, 1, "only the nursery span was examined");
    }

    #[test]
    fn sweep_young_retires_dangling_spans() {
        let mut h = Heap::new(1);
        let a = h.alloc_large(50_000, 0, Category::Slice);
        h.free_large_step1(a);
        let out = h.sweep_young(&HashSet::new(), &HashSet::new());
        assert_eq!(out.dangling_retired, 1);
        assert!(!h.span(a.span).active);
    }

    #[test]
    fn flush_mcache_disowns_spans() {
        let mut h = Heap::new(2);
        let class = class_for(64);
        let (a, _) = h.alloc_small(class, 0, Category::Other);
        assert!(h.span(a.span).in_mcache);
        h.flush_mcache(0);
        assert!(!h.span(a.span).in_mcache);
        // Thread 1 can pick the span up from the mcentral.
        let (b, _) = h.alloc_small(class, 1, Category::Other);
        assert_eq!(b.span, a.span);
        assert_eq!(h.span(b.span).owner, 1);
    }

    #[test]
    fn live_objects_enumerates_everything() {
        let mut h = Heap::new(1);
        let class = class_for(64);
        h.alloc_small(class, 0, Category::Slice);
        h.alloc_large(50_000, 0, Category::Map);
        let live = h.live_objects();
        assert_eq!(live.len(), 2);
        let cats: Vec<_> = live.iter().map(|(_, c, _)| *c).collect();
        assert!(cats.contains(&Category::Slice) && cats.contains(&Category::Map));
    }

    #[test]
    fn footprint_counts_pages() {
        let mut h = Heap::new(1);
        h.alloc_large(PAGE_SIZE * 3, 0, Category::Other);
        assert_eq!(footprint(&h), PAGE_SIZE * 3);
    }
}
