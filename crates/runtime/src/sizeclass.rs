//! Size-segregated allocation classes, mirroring Go's TCMalloc-derived
//! allocator (§3.3 of the paper).
//!
//! Objects up to [`MAX_SMALL_SIZE`] are rounded up to one of the size
//! classes and allocated from per-class mspans; larger objects get a
//! dedicated multi-page mspan.

/// Bytes per heap page (Go uses 8 KiB pages).
pub const PAGE_SIZE: u64 = 8192;

/// Largest object served from size-class mspans; bigger objects get
/// dedicated spans.
pub const MAX_SMALL_SIZE: u64 = 32768;

/// The size classes (a representative subset of Go's 67 classes).
pub const SIZE_CLASSES: &[u64] = &[
    8, 16, 32, 48, 64, 80, 96, 112, 128, 160, 192, 224, 256, 320, 384, 448, 512, 640, 768, 896,
    1024, 1280, 1536, 1792, 2048, 2560, 3072, 3584, 4096, 5120, 6144, 7168, 8192, 10240, 12288,
    16384, 20480, 24576, 32768,
];

/// Number of size classes.
pub fn class_count() -> usize {
    SIZE_CLASSES.len()
}

/// Precomputed size→class map so the allocation fast path is a single
/// table load instead of a binary search (Go keeps the same table as
/// `size_to_class8`/`size_to_class128`). Entry `s` is the smallest class
/// whose slot size is `>= s`.
static CLASS_TABLE: [u8; (MAX_SMALL_SIZE + 1) as usize] = build_class_table();

const fn build_class_table() -> [u8; (MAX_SMALL_SIZE + 1) as usize] {
    let mut table = [0u8; (MAX_SMALL_SIZE + 1) as usize];
    let mut class = 0;
    let mut size = 0;
    while size <= MAX_SMALL_SIZE {
        if size > SIZE_CLASSES[class] {
            class += 1;
        }
        table[size as usize] = class as u8;
        size += 1;
    }
    table
}

/// The smallest class index whose slot size fits `size`.
///
/// # Panics
///
/// Panics if `size > MAX_SMALL_SIZE`; use a large allocation instead.
pub fn class_for(size: u64) -> usize {
    assert!(
        size <= MAX_SMALL_SIZE,
        "size {size} exceeds the largest small class"
    );
    CLASS_TABLE[size as usize] as usize
}

/// Slot size of a class.
pub fn class_size(class: usize) -> u64 {
    SIZE_CLASSES[class]
}

/// Pages per mspan of a class: enough for at least 8 slots (capped at 4
/// pages for the biggest classes, which then hold fewer slots).
pub fn class_pages(class: usize) -> u32 {
    let size = SIZE_CLASSES[class];
    let want = (size * 8).div_ceil(PAGE_SIZE);
    want.clamp(1, 4) as u32
}

/// Slots per mspan of a class.
pub fn class_slots(class: usize) -> u32 {
    ((class_pages(class) as u64 * PAGE_SIZE) / SIZE_CLASSES[class]) as u32
}

/// Pages needed for a large (dedicated-span) allocation.
pub fn large_pages(size: u64) -> u32 {
    size.div_ceil(PAGE_SIZE).max(1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_sorted_and_unique() {
        for w in SIZE_CLASSES.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(*SIZE_CLASSES.last().unwrap(), MAX_SMALL_SIZE);
    }

    #[test]
    fn class_for_rounds_up() {
        assert_eq!(class_size(class_for(1)), 8);
        assert_eq!(class_size(class_for(8)), 8);
        assert_eq!(class_size(class_for(9)), 16);
        assert_eq!(class_size(class_for(100)), 112);
        assert_eq!(class_size(class_for(32768)), 32768);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn class_for_rejects_large() {
        class_for(MAX_SMALL_SIZE + 1);
    }

    #[test]
    fn class_table_matches_binary_search() {
        for size in 0..=MAX_SMALL_SIZE {
            let expected = match SIZE_CLASSES.binary_search(&size.max(8)) {
                Ok(i) => i,
                Err(i) => i,
            };
            assert_eq!(class_for(size), expected, "size {size}");
        }
    }

    #[test]
    fn every_class_fits_its_slots() {
        for c in 0..class_count() {
            let slots = class_slots(c);
            assert!(slots >= 1, "class {c} has no slots");
            assert!(
                slots as u64 * class_size(c) <= class_pages(c) as u64 * PAGE_SIZE,
                "class {c} overflows its pages"
            );
        }
    }

    #[test]
    fn small_classes_have_many_slots() {
        assert!(class_slots(class_for(8)) >= 512);
        assert!(class_slots(class_for(4096)) >= 8);
    }

    #[test]
    fn large_pages_rounds_up() {
        assert_eq!(large_pages(1), 1);
        assert_eq!(large_pages(8192), 1);
        assert_eq!(large_pages(8193), 2);
        assert_eq!(large_pages(100_000), 13);
    }
}
